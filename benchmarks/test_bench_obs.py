"""Overhead benchmark for the observability layer.

The obs instrumentation lives inside the MEMCON hot loops, so its cost
when *disabled* (the default: module registry disabled, no trace sink)
must be negligible. There is no uninstrumented code path left to diff
against, so the bound is established directly:

1. run the controller with observability off and time it,
2. re-run with an enabled registry + in-memory sink while *counting*
   every instrumentation call (counter increments and trace-guard
   checks) via shims,
3. micro-time what each of those calls costs in the disabled state,

and assert calls x per-call-cost stays under 5% of the disabled run
(the issue's acceptance bar). The measured numbers are recorded into
``BENCH_obs.json`` so later PRs can track the trajectory.
"""

import gc
import io
import time

import numpy as np
import pytest

from repro import obs
from repro.core import MemconConfig, MemconController
from repro.core.testing import RowTestEngine
from repro.dram import DramDevice, DramGeometry
from repro.dram.faults import FaultMap, FaultModelConfig
from repro.obs import registry as obs_registry
from repro.traces.events import WriteTrace

QUANTUM_MS = 1024.0
QUANTA = 48
PAGES = 768
OVERHEAD_BUDGET = 0.05


def _workload_trace(seed: int = 11) -> WriteTrace:
    """A busy synthetic workload: most pages written, many per quantum."""
    rng = np.random.default_rng(seed)
    duration_ms = QUANTA * QUANTUM_MS
    writes = {}
    for page in range(PAGES):
        if page % 8 == 7:
            continue  # leave some pages read-only
        count = int(rng.integers(1, 24))
        times = np.sort(rng.uniform(0.0, duration_ms - 1.0, size=count))
        writes[page] = times.astype(np.float64)
    return WriteTrace(duration_ms=duration_ms, writes=writes,
                      total_pages=PAGES, name="bench-obs")


def _run_controller(trace: WriteTrace) -> float:
    controller = MemconController(
        total_pages=trace.total_pages, config=MemconConfig(quantum_ms=QUANTUM_MS)
    )
    start = time.perf_counter()
    controller.run(trace)
    return time.perf_counter() - start


def _best_of(fn, repeats: int = 5) -> float:
    """Minimum of several timings: the noise-free cost estimate."""
    return min(fn() for _ in range(repeats))


def _per_call_costs(loops: int = 50_000):
    """Cost of one disabled counter.inc() and one inactive trace guard."""
    registry = obs.MetricsRegistry(enabled=False)
    counter = registry.counter("bench.noop")

    def time_inc():
        start = time.perf_counter()
        for _ in range(loops):
            counter.inc()
        return (time.perf_counter() - start) / loops

    previous = obs.set_sink(None)
    try:
        active = obs.trace_active

        def time_guard():
            start = time.perf_counter()
            for _ in range(loops):
                active()
            return (time.perf_counter() - start) / loops

        return _best_of(time_inc), _best_of(time_guard)
    finally:
        obs.set_sink(previous)


class TestDisabledInstrumentationOverhead:
    def test_disabled_overhead_under_5_percent(self, run_once, record_bench):
        trace = _workload_trace()

        def measure():
            # -- disabled wall time: default off state, best of three runs.
            previous_registry = obs.set_registry(
                obs.MetricsRegistry(enabled=False)
            )
            previous_sink = obs.set_sink(None)
            try:
                disabled_s = _best_of(lambda: _run_controller(trace))

                # -- enabled run, counting every instrumentation call.
                calls = {"inc": 0, "guard": 0}
                real_inc = obs_registry.Counter.inc
                real_active = obs.trace_active

                def counting_inc(self, n=1):
                    calls["inc"] += 1
                    return real_inc(self, n)

                def counting_active():
                    calls["guard"] += 1
                    return real_active()

                registry = obs.MetricsRegistry(enabled=True)
                sink = obs.ListTraceSink()
                obs.set_registry(registry)
                obs.set_sink(sink)
                obs_registry.Counter.inc = counting_inc
                obs.trace_active = counting_active
                try:
                    enabled_s = _run_controller(trace)
                finally:
                    obs_registry.Counter.inc = real_inc
                    obs.trace_active = real_active
            finally:
                obs.set_registry(previous_registry)
                obs.set_sink(previous_sink)

            inc_s, guard_s = _per_call_costs()
            overhead_s = calls["inc"] * inc_s + calls["guard"] * guard_s
            return disabled_s, enabled_s, calls, overhead_s, len(sink.records)

        disabled_s, enabled_s, calls, overhead_s, events = run_once(measure)

        # The run must actually exercise the instrumentation heavily.
        assert calls["inc"] > 1_000
        assert calls["guard"] > 1_000
        assert events > 1_000

        fraction = overhead_s / disabled_s
        record_bench(
            "obs_disabled_overhead",
            disabled_run_s=round(disabled_s, 6),
            enabled_run_s=round(enabled_s, 6),
            obs_calls=calls["inc"] + calls["guard"],
            trace_events=events,
            est_disabled_overhead_s=round(overhead_s, 6),
            est_disabled_overhead_fraction=round(fraction, 6),
            budget_fraction=OVERHEAD_BUDGET,
        )
        assert fraction < OVERHEAD_BUDGET, (
            f"disabled instrumentation costs {fraction:.2%} of the "
            f"{disabled_s:.3f}s run ({calls} calls, "
            f"{overhead_s * 1e3:.2f} ms) — budget is {OVERHEAD_BUDGET:.0%}"
        )


class TestEnabledRunSanity:
    def test_enabled_run_reconciles_and_terminates(self, run_once, obs_env):
        """Enabled-path benchmark smoke: events reconcile at full scale."""
        registry, sink = obs_env
        trace = _workload_trace(seed=5)

        def run():
            controller = MemconController(
                total_pages=trace.total_pages,
                config=MemconConfig(quantum_ms=QUANTUM_MS),
            )
            return controller.run(trace)

        report = run_once(run)
        kinds = sink.kinds()
        assert kinds["test_started"] == report.tests_total
        assert kinds["test_started"] == (
            kinds.get("test_aborted", 0)
            + kinds.get("test_passed", 0)
            + kinds.get("test_failed", 0)
        )
        counters = registry.snapshot()["counters"]
        assert counters["memcon.tests_started"] == report.tests_total


class TestLiveAggregationOverhead:
    """ISSUE 3's bar: live aggregation adds <5% to a *traced* MEMCON run.

    The aggregator consumes the identical record stream the JSONL sink
    serialises, so its marginal cost is measured directly: capture the
    run's records once, replay them through a fresh ``AggregatingSink``
    under a timer (including the final ``to_dict`` fold), and compare
    with the wall time of the traced run itself. Because machine load
    drifts between measurements, the two timings are taken in adjacent
    pairs over several rounds and the minimum *ratio* is asserted — a
    load spike inflates both sides of a round rather than just one.
    """

    def test_live_aggregation_overhead_under_5_percent(
        self, run_once, record_bench
    ):
        trace = _workload_trace(seed=7)

        def measure():
            previous_registry = obs.set_registry(
                obs.MetricsRegistry(enabled=True)
            )
            capture = obs.ListTraceSink()
            previous_sink = obs.set_sink(capture)

            def traced_run():
                obs.set_sink(obs.JsonlTraceSink(io.StringIO()))
                return _run_controller(trace)

            def replay():
                # Time the full cost: buffered ingestion plus the final
                # fold that to_dict() forces, so the deferred work of the
                # two-phase design is charged to the aggregator.
                aggregator = obs.AggregatingSink(window_ms=QUANTUM_MS)
                start = time.perf_counter()
                for record in capture.records:
                    aggregator.emit(record)
                aggregator.to_dict()
                elapsed = time.perf_counter() - start
                return elapsed, aggregator

            # GC pauses land arbitrarily inside whichever timed region is
            # running; disabling it for the whole measurement keeps both
            # the numerator and the denominator free of that noise.
            gc_was_enabled = gc.isenabled()
            gc.disable()
            try:
                obs.set_sink(capture)
                _run_controller(trace)  # capture the record stream once
                rounds = []
                for _ in range(3):
                    try:
                        traced_s = _best_of(traced_run, repeats=2)
                    finally:
                        obs.set_sink(previous_sink)
                    aggregation_s, aggregator = min(
                        (replay() for _ in range(3)),
                        key=lambda pair: pair[0],
                    )
                    rounds.append(
                        (aggregation_s / traced_s, traced_s,
                         aggregation_s, aggregator)
                    )
            finally:
                if gc_was_enabled:
                    gc.enable()
                obs.set_registry(previous_registry)
                obs.set_sink(previous_sink)
            _, traced_s, aggregation_s, aggregator = min(
                rounds, key=lambda round_: round_[0]
            )
            return traced_s, aggregation_s, aggregator, len(capture.records)

        traced_s, aggregation_s, aggregator, events = run_once(measure)

        # The rollups must actually cover the run, not skip events.
        assert events > 1_000
        assert aggregator.events_total == events
        rollup = aggregator.to_dict()
        assert rollup["windows"], "no windowed rollups produced"
        assert any(q["started"] for q in rollup["pril"])

        fraction = aggregation_s / traced_s
        record_bench(
            "obs_live_aggregation_overhead",
            traced_run_s=round(traced_s, 6),
            aggregation_s=round(aggregation_s, 6),
            trace_events=events,
            live_overhead_fraction=round(fraction, 6),
            budget_fraction=OVERHEAD_BUDGET,
        )
        assert fraction < OVERHEAD_BUDGET, (
            f"live aggregation costs {fraction:.2%} of the {traced_s:.3f}s "
            f"traced run ({events} events, {aggregation_s * 1e3:.2f} ms) — "
            f"budget is {OVERHEAD_BUDGET:.0%}"
        )


class TestBusOverhead:
    """ISSUE 7's bar: bus telemetry adds <5% to a sharded run.

    A worker publishes exactly two heartbeats per work unit (start and
    finish), each a ``rss_bytes()`` read plus a non-blocking
    ``mp.Queue.put_nowait``; the parent pays one ``get_nowait`` plus a
    table fold per message. Both sides are micro-timed over thousands of
    messages and charged against a deliberately pessimistic 10 ms unit —
    every real work unit in the repo runs for longer, so the asserted
    fraction is an upper bound on what any actual run pays.
    """

    FLOOR_UNIT_S = 0.010
    HEARTBEATS_PER_UNIT = 2

    def test_bus_overhead_under_5_percent(self, run_once, record_bench):
        def measure(messages=4000):
            bus = obs.TelemetryBus(maxsize=messages + 64)
            try:
                publisher = bus.publisher("bench-worker")

                def publish_batch():
                    start = time.perf_counter()
                    for i in range(messages):
                        publisher.heartbeat(
                            "start" if i % 2 == 0 else "finish",
                            experiment="bench", unit=f"u{i // 2}",
                            seq=i // 2,
                        )
                    return (time.perf_counter() - start) / messages

                publish_s = publish_batch()

                # Everything published above is still queued. The parent
                # side pays a queue pop plus a worker-table fold per
                # message. Pop and fold are timed individually on
                # *successful* operations only: an empty-queue poll while
                # the mp feeder thread is still pushing bytes through the
                # pipe is queue latency the executor's supervision loop
                # absorbs inside its existing 0.5 s wait timeout, not a
                # per-message cost.
                import queue as queue_module

                received = []
                pop_s = 0.0
                deadline = time.perf_counter() + 30.0
                while (len(received) < 2 * messages
                       and time.perf_counter() < deadline):
                    start = time.perf_counter()
                    try:
                        message = bus.queue.get_nowait()
                    except queue_module.Empty:
                        time.sleep(0.001)
                        continue
                    pop_s += time.perf_counter() - start
                    received.append(message)
                drained = len(received)

                start = time.perf_counter()
                for message in received:
                    bus.table.observe(message, now=0.0)
                fold_s = time.perf_counter() - start

                drain_s = (pop_s + fold_s) / max(drained, 1)
                dropped = publisher.dropped
            finally:
                bus.close()
            return publish_s, drain_s, drained, dropped

        publish_s, drain_s, drained, dropped = run_once(measure)

        assert drained > 1_000
        assert dropped == 0  # the queue was sized for the batch

        per_unit_s = self.HEARTBEATS_PER_UNIT * (publish_s + drain_s)
        fraction = per_unit_s / self.FLOOR_UNIT_S
        record_bench(
            "obs_bus_overhead",
            publish_per_message_s=round(publish_s, 9),
            drain_per_message_s=round(drain_s, 9),
            messages=drained,
            est_per_unit_s=round(per_unit_s, 9),
            est_bus_overhead_fraction=round(fraction, 6),
            floor_unit_s=self.FLOOR_UNIT_S,
            budget_fraction=OVERHEAD_BUDGET,
        )
        assert fraction < OVERHEAD_BUDGET, (
            f"bus telemetry costs {fraction:.2%} of a worst-case "
            f"{self.FLOOR_UNIT_S * 1e3:.0f} ms unit "
            f"({per_unit_s * 1e6:.1f} us per unit) — budget is "
            f"{OVERHEAD_BUDGET:.0%}"
        )


class TestProfilerOverhead:
    """The sampler must stay under 5% at its default 5 ms interval.

    One sample reads the span stack, joins a handful of names and takes
    an RSS reading; the steady-state overhead is per-sample cost divided
    by the sampling interval. (With ``--profile`` off the profiler is
    never constructed, so the disabled cost is exactly zero — guarded
    by ``test_unprofiled_manifest_has_no_profile`` in the CLI tests.)
    """

    DEFAULT_INTERVAL_S = 0.005

    def test_sampling_overhead_under_5_percent(self, run_once, record_bench):
        from repro.obs.profile import SampledProfiler

        def measure(samples=2000):
            profiler = SampledProfiler(interval_s=self.DEFAULT_INTERVAL_S)
            with obs.collect_spans("run"):
                with obs.span("bench"):
                    with obs.span("inner"):
                        start = time.perf_counter()
                        for _ in range(samples):
                            profiler.sample_once()
                        per_sample_s = (
                            time.perf_counter() - start
                        ) / samples
            return per_sample_s, profiler

        per_sample_s, profiler = run_once(measure)

        assert profiler.sample_count == 2000
        assert profiler.attributed_fraction == 1.0

        fraction = per_sample_s / self.DEFAULT_INTERVAL_S
        record_bench(
            "obs_profiler_overhead",
            sample_s=round(per_sample_s, 9),
            interval_s=self.DEFAULT_INTERVAL_S,
            est_profiler_overhead_fraction=round(fraction, 6),
            budget_fraction=OVERHEAD_BUDGET,
        )
        assert fraction < OVERHEAD_BUDGET, (
            f"sampling costs {fraction:.2%} of wall time at the default "
            f"{self.DEFAULT_INTERVAL_S * 1e3:.0f} ms interval "
            f"({per_sample_s * 1e6:.1f} us per sample) — budget is "
            f"{OVERHEAD_BUDGET:.0%}"
        )


def _engine_workload(seed: int = 9):
    """A full-stack traced MEMCON run: real device content, Read&Compare
    retention tests against the fault model.

    The forensic budget is defined against MEMCON doing its *actual*
    work. The accounting-only workload above spends most of its wall
    time serialising trace records — by construction, any extra ledger
    record looks expensive against it — so the overhead bar uses this
    engine-wired run instead, where each test reads and evaluates row
    content the way the experiments do.
    """
    geometry = DramGeometry(
        channels=1, ranks=1, banks=2, rows_per_bank=128,
        row_size_bytes=512, block_size_bytes=64,
    )
    device = DramDevice(geometry, seed=seed)
    device.cells.fault_map = FaultMap(
        total_rows=geometry.total_rows,
        bits_per_row=device.cells.vendor_mapping.physical_columns,
        config=FaultModelConfig(vulnerable_cell_rate=1e-3),
        seed=seed,
    )
    rows = geometry.total_rows
    rng = np.random.default_rng(seed + 1)
    duration_ms = QUANTA * QUANTUM_MS
    writes = {
        page: np.sort(rng.uniform(0.0, duration_ms - 1.0,
                                  size=int(rng.integers(1, 8))))
        for page in range(rows)
    }
    trace = WriteTrace(duration_ms=duration_ms, writes=writes,
                       total_pages=rows, name="bench-forensics")
    config = MemconConfig(quantum_ms=QUANTUM_MS, test_duration_ms=328.0,
                          test_read_only_pages=False)
    return device, trace, config


class TestForensicsOverhead:
    """ISSUE 8's bar: the forensics ledger adds <5% to a traced MEMCON
    run, and costs nothing measurable when the gate is off.

    Enabled cost is a direct diff: the identical engine-wired traced run
    with the forensics gate off vs on (extra ledger records assembled
    and serialised), timed in adjacent pairs with the minimum ratio
    asserted (the same load-drift discipline as the live-aggregation
    bar).

    Disabled cost is one boolean gate check per *decision point* — and
    only on paths already behind ``trace_active()``, so an untraced run
    pays literally nothing. The gate is counted via a shim and
    micro-timed; calls x per-call must stay in the noise (<0.5%).
    """

    DISABLED_BUDGET = 0.005

    def test_forensics_enabled_overhead_under_5_percent(
        self, run_once, record_bench
    ):
        device, trace, config = _engine_workload(seed=9)

        def engine_run(forensics):
            controller = MemconController(
                total_pages=trace.total_pages, config=config,
                test_engine=RowTestEngine(
                    device, test_interval_ms=config.test_duration_ms
                ),
            )
            previous = obs.set_forensics(forensics)
            obs.set_sink(obs.JsonlTraceSink(io.StringIO()))
            try:
                start = time.perf_counter()
                controller.run(trace)
                return time.perf_counter() - start
            finally:
                obs.set_sink(None)
                obs.set_forensics(previous)

        def measure():
            previous_registry = obs.set_registry(
                obs.MetricsRegistry(enabled=True)
            )
            previous_sink = obs.set_sink(None)
            gc_was_enabled = gc.isenabled()
            gc.disable()
            try:
                engine_run(False)  # warm caches before the pairs
                rounds = []
                for _ in range(3):
                    base_s = _best_of(lambda: engine_run(False), repeats=2)
                    forensic_s = _best_of(lambda: engine_run(True), repeats=2)
                    rounds.append((forensic_s / base_s, base_s, forensic_s))

                # Sanity: the forensic run actually emits ledger records.
                capture = obs.ListTraceSink()
                obs.set_sink(capture)
                gate = obs.set_forensics(True)
                try:
                    MemconController(
                        total_pages=trace.total_pages, config=config,
                        test_engine=RowTestEngine(
                            device,
                            test_interval_ms=config.test_duration_ms,
                        ),
                    ).run(trace)
                finally:
                    obs.set_forensics(gate)
                    obs.set_sink(None)
                grants = capture.kinds().get("pril_grant", 0)
            finally:
                if gc_was_enabled:
                    gc.enable()
                obs.set_registry(previous_registry)
                obs.set_sink(previous_sink)
            ratio, base_s, forensic_s = min(rounds, key=lambda r: r[0])
            return ratio, base_s, forensic_s, grants

        ratio, base_s, forensic_s, grants = run_once(measure)

        assert grants > 500  # the workload exercises the ledger
        fraction = max(ratio - 1.0, 0.0)
        record_bench(
            "obs_forensics_overhead",
            traced_run_s=round(base_s, 6),
            forensics_run_s=round(forensic_s, 6),
            ledger_grants=grants,
            forensics_overhead_fraction=round(fraction, 6),
            budget_fraction=OVERHEAD_BUDGET,
        )
        assert fraction < OVERHEAD_BUDGET, (
            f"forensics costs {fraction:.2%} of the {base_s:.3f}s traced "
            f"run ({grants} grant records) — budget is {OVERHEAD_BUDGET:.0%}"
        )

    def test_forensics_gate_off_cost_unmeasurable(
        self, run_once, record_bench
    ):
        trace = _workload_trace(seed=13)

        def measure():
            calls = {"gate": 0}
            real_gate = obs.forensics_active

            def counting_gate():
                calls["gate"] += 1
                return real_gate()

            previous_registry = obs.set_registry(
                obs.MetricsRegistry(enabled=True)
            )
            previous_sink = obs.set_sink(obs.JsonlTraceSink(io.StringIO()))
            obs.forensics_active = counting_gate
            try:
                start = time.perf_counter()
                _run_controller(trace)
                traced_s = time.perf_counter() - start
            finally:
                obs.forensics_active = real_gate
                obs.set_registry(previous_registry)
                obs.set_sink(previous_sink)

            loops = 100_000

            def time_gate():
                start = time.perf_counter()
                for _ in range(loops):
                    real_gate()
                return (time.perf_counter() - start) / loops

            return traced_s, calls["gate"], _best_of(time_gate)

        traced_s, gate_calls, gate_s = run_once(measure)

        # Gated decision points fire on the traced path...
        assert gate_calls > 1_000
        overhead_s = gate_calls * gate_s
        fraction = overhead_s / traced_s
        record_bench(
            "obs_forensics_disabled_cost",
            traced_run_s=round(traced_s, 6),
            gate_calls=gate_calls,
            gate_call_s=round(gate_s, 12),
            est_disabled_overhead_s=round(overhead_s, 9),
            est_disabled_overhead_fraction=round(fraction, 9),
            budget_fraction=self.DISABLED_BUDGET,
        )
        assert fraction < self.DISABLED_BUDGET, (
            f"the off gate costs {fraction:.3%} of the {traced_s:.3f}s "
            f"traced run ({gate_calls} checks) — it must be unmeasurable"
        )

    def test_untraced_run_never_consults_the_gate(self, run_once):
        # ...and with tracing off the gate is never even reached: the
        # forensics guards all sit behind ``trace_active()``.
        trace = _workload_trace(seed=13)

        def measure():
            calls = {"gate": 0}
            real_gate = obs.forensics_active

            def counting_gate():
                calls["gate"] += 1
                return real_gate()

            previous_registry = obs.set_registry(
                obs.MetricsRegistry(enabled=False)
            )
            previous_sink = obs.set_sink(None)
            obs.forensics_active = counting_gate
            try:
                _run_controller(trace)
            finally:
                obs.forensics_active = real_gate
                obs.set_registry(previous_registry)
                obs.set_sink(previous_sink)
            return calls["gate"]

        assert run_once(measure) == 0
