"""Figure 12 bench: interval-time coverage falls as CIL grows."""

from repro.experiments import fig12


def test_bench_fig12_coverage_vs_cil(run_once):
    result = run_once(fig12.run, quick=True, seed=1)
    for row in result.rows:
        assert row["cil_64ms"] >= row["cil_2048ms"] >= row["cil_32768ms"]
        assert row["cil_2048ms"] > 0.6  # the paper's CIL sweet spot
    print(result.to_text())
