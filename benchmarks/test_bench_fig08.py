"""Figure 8 bench: Pareto CCDF fits with paper-grade R^2."""

from repro.experiments import fig08


def test_bench_fig08_pareto_fit(run_once):
    result = run_once(fig08.run, quick=True, seed=1)
    for row in result.rows:
        assert row["r_squared"] > 0.93  # paper: 0.94-0.99
    print(result.to_text())
