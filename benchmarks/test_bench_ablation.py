"""Ablation benches for the design choices DESIGN.md calls out.

* PRIL's single-write tracking vs an oracle interval predictor and an
  always-test policy (footnote 8's design choice).
* Read&Compare vs Copy&Compare test mode (latency vs controller storage).
* Write-buffer capacity (footnote 10's overflow-degrades-gracefully rule).
* Quantum length sensitivity.
"""

import numpy as np

from repro.core.costmodel import CostModel, TestMode
from repro.core.memcon import MemconConfig, MemconController, simulate_refresh_reduction
from repro.traces.generator import generate_trace
from repro.traces.workloads import WORKLOADS

TRACE_MS = 30_000.0


def _trace(seed=1):
    return generate_trace(WORKLOADS["BlurMotion"], seed=seed,
                          duration_ms=TRACE_MS)


def _oracle_reduction(trace, config):
    """Upper-bound predictor: LO-REF for every idle span > MinWriteInterval.

    Knows the future: each gap longer than the amortisation point is spent
    at LO-REF from (write + test window) until the next write.
    """
    min_interval = CostModel().min_write_interval_ms(config.test_mode)
    lo_ms = 0.0
    window = trace.duration_ms
    for page, times in trace.writes.items():
        if len(times) == 0:
            continue
        gaps = np.append(np.diff(times), window - times[-1])
        long_gaps = gaps[gaps > min_interval]
        lo_ms += float(np.maximum(long_gaps - config.test_duration_ms, 0).sum())
    lo_ms += (trace.total_pages - len(trace.written_pages)) * (
        window - config.test_duration_ms
    )
    hi_ms = trace.total_pages * window - lo_ms
    refreshes = (hi_ms / config.hi_ref_interval_ms
                 + lo_ms / config.lo_ref_interval_ms)
    baseline = trace.total_pages * window / config.hi_ref_interval_ms
    return 1.0 - refreshes / baseline


def test_bench_ablation_pril_vs_oracle(run_once):
    """PRIL should recover most of the oracle's refresh reduction."""

    def compare():
        trace = _trace()
        config = MemconConfig(quantum_ms=1024.0)
        pril = simulate_refresh_reduction(trace, config).refresh_reduction
        oracle = _oracle_reduction(trace, config)
        return pril, oracle

    pril, oracle = run_once(compare)
    assert oracle <= 0.75
    assert pril > 0.75 * oracle, (
        f"PRIL ({pril:.3f}) should reach at least 75% of the oracle "
        f"({oracle:.3f})"
    )
    print(f"ablation: PRIL reduction {pril:.3f} vs oracle {oracle:.3f}")


def test_bench_ablation_test_modes(run_once):
    """Copy&Compare pays ~50% more test latency for less SRAM."""

    def compare():
        trace = _trace()
        results = {}
        for mode in TestMode:
            report = simulate_refresh_reduction(
                trace, MemconConfig(quantum_ms=1024.0, test_mode=mode),
            )
            results[mode] = (report.refresh_reduction, report.testing_time_ns)
        return results

    results = run_once(compare)
    read_red, read_ns = results[TestMode.READ_AND_COMPARE]
    copy_red, copy_ns = results[TestMode.COPY_AND_COMPARE]
    assert read_red == copy_red  # reduction is mode-independent
    assert copy_ns / read_ns == 1602.0 / 1068.0
    print(f"ablation: test-mode latency ratio {copy_ns / read_ns:.3f}")


def test_bench_ablation_buffer_capacity(run_once):
    """Small write-buffers lose opportunity but never correctness."""

    def sweep():
        trace = _trace()
        reductions = {}
        for capacity in (4, 64, None):
            controller = MemconController(
                total_pages=trace.total_pages,
                config=MemconConfig(quantum_ms=1024.0),
                buffer_capacity=capacity,
            )
            reductions[capacity] = controller.run(trace).refresh_reduction
        return reductions

    reductions = run_once(sweep)
    assert reductions[4] <= reductions[64] <= reductions[None] + 1e-9
    assert reductions[4] >= 0.0
    print("ablation: reduction by buffer capacity:", {
        str(k): round(v, 3) for k, v in reductions.items()
    })


def test_bench_ablation_quantum_length(run_once):
    """Longer quanta trade coverage for accuracy; reduction degrades
    gently across 512-4096 ms (the paper's Figure 14 insensitivity)."""

    def sweep():
        trace = _trace()
        return {
            quantum: simulate_refresh_reduction(
                trace, MemconConfig(quantum_ms=quantum),
            ).refresh_reduction
            for quantum in (512.0, 1024.0, 2048.0, 4096.0)
        }

    reductions = run_once(sweep)
    values = list(reductions.values())
    assert max(values) - min(values) < 0.15
    assert all(v > 0.5 for v in values)
    print("ablation: reduction by quantum:", {
        int(k): round(v, 3) for k, v in reductions.items()
    })
