"""Fleet service at quick scale: 1000 hosts, bounded memory.

The ISSUE acceptance gate: a 1000-host fleet run must finish with the
resident-rows budget enforced on every host's fault screen and the
service's peak RSS bounded — per-host state must not accumulate
unboundedly in the scheduler, registry, or aggregator. Headline numbers
land in ``BENCH_fleet.json``.
"""

import json
import os
import time

from repro import obs
from repro.fleet.client import FleetClient
from repro.fleet.server import FleetService, run_service_in_thread
from repro.obs.bus import rss_bytes

BENCH_FLEET_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir,
    "BENCH_fleet.json",
)

HOSTS = 1000
RESIDENT_BUDGET = 64
#: RSS growth ceiling for the whole run. Host payloads/tables are
#: retained by the registry on purpose (they are the serveable results),
#: so the bound covers O(hosts) small dicts — not the fault maps, whose
#: row populations must be evicted under RESIDENT_BUDGET.
RSS_DELTA_LIMIT = 400 * 1024 * 1024

TENANT = {
    "tenant_id": "scale",
    "duration_ms": 2048.0,
    "seed_base": 404,
    "fault_screen": {
        "max_resident_rows": RESIDENT_BUDGET,
        "bits_per_row": 512,
        "chunk_rows": 64,
        "vulnerable_cell_rate": 5.0e-4,
    },
}

WRITES = {3: [10.0, 750.0, 1400.0], 97: [5.0, 1900.0]}


def test_thousand_host_fleet_bounded_rss(run_once, obs_env, record_bench):
    _registry, _sink = obs_env
    rss_before = rss_bytes() or 0
    service = FleetService(jobs=1, batch_max=64)
    server, thread = run_service_in_thread(service)
    client = FleetClient(port=server.port)
    try:
        started = time.perf_counter()

        def drive():
            client.register_tenant(dict(TENANT))
            for i in range(HOSTS):
                host_id = f"scale-{i:04d}"
                client.register_host({
                    "host_id": host_id, "tenant": "scale",
                    "total_pages": 256,
                })
                client.stream_trace(host_id, WRITES)
                client.seal(host_id)
            return client.wait_all_done(timeout_s=1800.0)

        status = run_once(drive)
        drive_wall_s = time.perf_counter() - started
    finally:
        try:
            client.shutdown()
        except Exception:
            pass
        thread.join(timeout=60)
        service.close(wait=True)
    rss_after = rss_bytes() or 0

    counts = status["hosts"]
    assert counts["done"] == HOSTS, counts
    assert counts["failed"] == 0, counts

    # Resident-rows budget enforced on every single host's screen.
    fleet = status["fleet"]
    assert fleet["resident_rows"]["peak"] <= RESIDENT_BUDGET
    over_budget = [
        state.spec.host_id
        for state in service.registry._hosts.values()
        if state.payload["screen"]["resident_rows_peak"] > RESIDENT_BUDGET
    ]
    assert not over_budget, over_budget[:5]
    assert fleet["resident_rows"]["evicted"] > 0

    # Peak RSS bounded: the service holds O(hosts) result dicts, never
    # O(hosts) fault maps.
    rss_delta = rss_after - rss_before
    assert rss_delta < RSS_DELTA_LIMIT, f"RSS grew {rss_delta / 2**20:.0f} MiB"

    wall_s = status["queue"]  # scheduler counters for the record
    record_bench(
        "fleet_thousand_hosts",
        path=BENCH_FLEET_PATH,
        hosts=HOSTS,
        wall_s=drive_wall_s,
        hosts_per_s=HOSTS / drive_wall_s,
        batches=wall_s["batches"],
        units_executed=wall_s["units_executed"],
        ingest_records=fleet["ingest"]["records"],
        resident_rows_peak=fleet["resident_rows"]["peak"],
        resident_budget=RESIDENT_BUDGET,
        rows_evicted=fleet["resident_rows"]["evicted"],
        rss_delta_bytes=rss_delta,
        coverage_mean=fleet["coverage"]["mean"],
        pril_hit_rate=fleet["pril_hit_rate"],
        wall_p95_s=fleet["wall"]["p95_s"],
    )
    path = os.path.abspath(BENCH_FLEET_PATH)
    with open(path, "r", encoding="utf-8") as handle:
        assert "fleet_thousand_hosts" in json.load(handle)
