"""Figure 18 bench: refresh + testing time, normalised to the baseline."""

from repro.experiments import fig18


def test_bench_fig18_testing_overhead(run_once):
    result = run_once(fig18.run, quick=True, seed=1)
    for row in result.rows:
        testing = (
            float(row["testing_correct"].rstrip("%"))
            + float(row["testing_mispredicted"].rstrip("%"))
        )
        assert testing < 3.0
        assert float(row["testing_at_8GB"].rstrip("%")) < 0.01  # paper: 0.01%
    print(result.to_text())
