"""Figure 16 bench: MEMCON vs 32 ms baseline, RAIDR, and ideal 64 ms."""

from repro.sim.metrics import geometric_mean, speedup
from repro.sim.system import simulate_workload

WINDOW_NS = 60_000.0
WORKLOADS = (["mcf"], ["lbm"])

MECHANISMS = (
    ("32ms", 0.50, 0),
    ("RAIDR", 0.63, 0),
    ("MEMCON", 0.66, 256),
    ("64ms", 0.75, 0),
)


def _compare():
    baselines = [
        simulate_workload(names, density_gbit=32, window_ns=WINDOW_NS,
                          seed=21 + i)
        for i, names in enumerate(WORKLOADS)
    ]
    means = {}
    for label, reduction, tests in MECHANISMS:
        ratios = [
            speedup(
                simulate_workload(
                    names, density_gbit=32, refresh_reduction=reduction,
                    concurrent_tests=tests, window_ns=WINDOW_NS,
                    seed=21 + i,
                ),
                baselines[i],
            )
            for i, names in enumerate(WORKLOADS)
        ]
        means[label] = geometric_mean(ratios)
    return means


def test_bench_fig16_mechanism_comparison(run_once):
    means = run_once(_compare)
    # Paper ordering: 32 ms < RAIDR < MEMCON <= ideal 64 ms.
    assert means["32ms"] < means["RAIDR"]
    assert means["RAIDR"] < means["MEMCON"] + 0.02
    assert means["MEMCON"] < means["64ms"] + 0.02
    # MEMCON within a few percent of the ideal (paper: 3-5%).
    assert means["64ms"] / means["MEMCON"] < 1.12
    print("fig16 mean speedups over 16 ms baseline:", {
        k: round(v, 3) for k, v in means.items()
    })
