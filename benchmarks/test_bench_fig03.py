"""Figure 3 bench: pattern-conditional failures on the simulated chip."""

from repro.experiments import fig03


def test_bench_fig03_pattern_battery(run_once):
    result = run_once(fig03.run, quick=True, seed=1)
    counts = [row["failing_cells"] for row in result.rows]
    assert max(counts) > min(counts), "failures must depend on the pattern"
    print(result.to_text())
