"""Table 3 bench: slowdown from injected testing traffic."""

from repro.sim.metrics import geometric_mean, speedup
from repro.sim.system import simulate_workload

WINDOW_NS = 60_000.0
WORKLOADS = (["mcf"], ["lbm"])


def _losses():
    ideal = [
        simulate_workload(names, refresh_reduction=0.66, concurrent_tests=0,
                          window_ns=WINDOW_NS, seed=31 + i)
        for i, names in enumerate(WORKLOADS)
    ]
    losses = {}
    for tests in (256, 512, 1024):
        ratios = [
            speedup(
                simulate_workload(
                    names, refresh_reduction=0.66, concurrent_tests=tests,
                    window_ns=WINDOW_NS, seed=31 + i,
                ),
                ideal[i],
            )
            for i, names in enumerate(WORKLOADS)
        ]
        losses[tests] = 1.0 - geometric_mean(ratios)
    return losses


def test_bench_table3_testing_loss(run_once):
    losses = run_once(_losses)
    # Paper: 0.54%/1.03%/1.88% single-core; overhead grows with test count
    # and stays far below the refresh-reduction win.
    assert losses[1024] >= losses[256] - 0.005
    assert losses[1024] < 0.05
    print("table3 losses:", {k: f"{100 * v:.2f}%" for k, v in losses.items()})
