"""Benches for the paper's optional/future-work extensions.

* In-DRAM copy (RowClone/LISA, footnote 6): how much of Copy&Compare's
  amortisation gap the accelerated copy closes.
* Silent-write filtering (footnote 9): refresh reduction gained by not
  restarting PRIL's clock on value-preserving writes.
* ECC mitigation (§1): refresh cost of mitigating detected failures with
  SECDED instead of HI-REF.
* Energy: refresh energy saved by MEMCON's reduction at 8-32 Gb.
"""

import numpy as np

from repro.core.ecc import choose_mitigation, summarise_mitigations
from repro.core.indram import CopyMechanism, min_write_interval_by_mechanism
from repro.core.memcon import MemconConfig, simulate_refresh_reduction
from repro.core.silentwrites import filter_trace
from repro.dram import DramGeometry
from repro.dram.faults import FaultMap, FaultModelConfig
from repro.dram.scramble import make_vendor_mapping
from repro.sim.energy import refresh_energy_savings
from repro.sim.system import simulate_workload
from repro.traces.generator import generate_trace
from repro.traces.workloads import WORKLOADS


def test_bench_ext_indram_copy(benchmark):
    intervals = benchmark(min_write_interval_by_mechanism)
    over_channel = intervals[CopyMechanism.OVER_CHANNEL]
    rowclone = intervals[CopyMechanism.ROWCLONE]
    assert over_channel == 864.0
    assert rowclone < over_channel  # accelerated copy amortises sooner
    print("ext: MinWriteInterval by copy mechanism:", {
        m.value: v for m, v in intervals.items()
    })


def test_bench_ext_silent_writes(run_once):
    def compare():
        trace = generate_trace(WORKLOADS["SystemMgt"], seed=2,
                               duration_ms=20_000.0)
        config = MemconConfig(quantum_ms=1024.0)
        plain = simulate_refresh_reduction(trace, config).refresh_reduction
        filtered, stats = filter_trace(trace, 0.4, seed=3)
        silent = simulate_refresh_reduction(
            filtered, config
        ).refresh_reduction
        return plain, silent, stats.silent_fraction

    plain, silent, fraction = run_once(compare)
    assert silent >= plain - 0.01
    print(f"ext: reduction {plain:.3f} -> {silent:.3f} after filtering "
          f"{100 * fraction:.0f}% silent writes")


def test_bench_ext_ecc_mitigation(run_once):
    """ECC absorbs most failing rows, cutting HI-REF pressure."""

    def mitigate():
        geometry = DramGeometry(
            channels=1, ranks=1, banks=4, rows_per_bank=512,
            row_size_bytes=8192, block_size_bytes=64,
        )
        mapping = make_vendor_mapping(
            columns=geometry.bits_per_row, seed=5,
            spare_columns=geometry.bits_per_row // 256,
        )
        fault_map = FaultMap(
            total_rows=geometry.total_rows,
            bits_per_row=mapping.physical_columns,
            config=FaultModelConfig(vulnerable_cell_rate=2e-5),
            seed=5,
        )
        rng = np.random.default_rng(6)
        assignments = {True: [], False: []}
        for row in range(geometry.total_rows):
            bits = mapping.to_silicon(
                rng.integers(0, 2, geometry.bits_per_row).astype(np.uint8)
            )
            failing = fault_map.failing_cells(row, bits, 328.0)
            for ecc in (True, False):
                assignments[ecc].append(
                    choose_mitigation(failing, ecc_enabled=ecc)
                )
        return (summarise_mitigations(assignments[True]),
                summarise_mitigations(assignments[False]))

    with_ecc, without_ecc = run_once(mitigate)
    assert with_ecc.hi_ref_rows <= without_ecc.hi_ref_rows
    assert (with_ecc.refresh_ops_per_window()
            <= without_ecc.refresh_ops_per_window())
    print(f"ext: HI-REF rows {without_ecc.hi_ref_rows} -> "
          f"{with_ecc.hi_ref_rows} with SECDED; refresh ops "
          f"{without_ecc.refresh_ops_per_window():.0f} -> "
          f"{with_ecc.refresh_ops_per_window():.0f}")


def test_bench_ext_refresh_energy(run_once):
    """Refresh energy savings grow with chip density, like performance."""

    def sweep():
        window = 60_000.0
        savings = {}
        for density in (8, 32):
            base = simulate_workload(["mcf"], density_gbit=density,
                                     window_ns=window, seed=4)
            memcon = simulate_workload(["mcf"], density_gbit=density,
                                       refresh_reduction=0.66,
                                       concurrent_tests=256,
                                       window_ns=window, seed=4)
            savings[density] = refresh_energy_savings(
                base.refreshes_issued, memcon.refreshes_issued,
                density_gbit=density,
            )
        return savings

    savings = run_once(sweep)
    assert savings[32] > savings[8] > 0
    print("ext: refresh energy saved (nJ per 60 us):", {
        f"{k}Gb": round(v) for k, v in savings.items()
    })


def test_bench_ext_row_granular_refresh(run_once):
    """RAIDR-style per-row refresh beats all-bank REF at equal work."""
    from repro.mc.rowrefresh import RowRefreshSettings
    from repro.mc.controller import RefreshSettings
    from repro.sim.system import SystemConfig, SystemSimulator
    from repro.traces.spec import get_benchmark

    def compare():
        settings = RowRefreshSettings(hi_rows=1311, lo_rows=6881)
        row_sim = SystemSimulator(
            [get_benchmark("mcf")],
            SystemConfig(density_gbit=32, row_refresh=settings),
            seed=3,
        )
        allbank_sim = SystemSimulator(
            [get_benchmark("mcf")],
            SystemConfig(
                density_gbit=32,
                refresh=RefreshSettings(
                    reduction=settings.refresh_reduction()
                ),
            ),
            seed=3,
        )
        return (row_sim.run(40_000.0).cores[0].ipc,
                allbank_sim.run(40_000.0).cores[0].ipc)

    row_ipc, allbank_ipc = run_once(compare)
    assert row_ipc > allbank_ipc
    print(f"ext: row-granular IPC {row_ipc:.3f} vs all-bank "
          f"{allbank_ipc:.3f} at equal refresh work "
          f"(+{100 * (row_ipc / allbank_ipc - 1):.1f}%)")
