"""Parallel-execution bench: sharded fig14 vs serial, recorded honestly.

Measures the end-to-end unit path (decompose -> pool dispatch -> merge)
for the heaviest decomposable experiment and records serial vs
``--jobs 4`` wall clock into ``BENCH_parallel.json`` together with the
CPU count it was measured on. The >= 2.5x speedup assertion only fires
on machines with >= 4 cores — on smaller boxes the numbers are still
recorded (a 1-core container cannot speed up CPU-bound work, and the
trajectory file should say so rather than flatter).
"""

import os
import time

from repro.parallel import ParallelExecutor, decompose, merge_payloads

BENCH_PARALLEL_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir,
    "BENCH_parallel.json",
)

JOBS = 4
EXPERIMENT = "fig14"


def _run_units(jobs):
    units = decompose(EXPERIMENT, quick=True, seed=1)
    started = time.perf_counter()
    with ParallelExecutor(jobs, quick=True, seed=1) as executor:
        payloads, stats = executor.run_units(units)
    wall_s = time.perf_counter() - started
    result = merge_payloads(EXPERIMENT, payloads, quick=True, seed=1)
    return result, stats, wall_s


def test_bench_parallel_speedup(record_bench):
    serial_result, _, serial_s = _run_units(1)
    sharded_result, stats, sharded_s = _run_units(JOBS)

    # Correctness before speed: the sharded table is the serial table.
    assert sharded_result.to_text() == serial_result.to_text()
    assert stats.degraded == 0

    cpus = os.cpu_count() or 1
    speedup = serial_s / sharded_s if sharded_s > 0 else 0.0
    record_bench(
        f"parallel_{EXPERIMENT}_jobs{JOBS}",
        path=BENCH_PARALLEL_PATH,
        serial_s=round(serial_s, 3),
        sharded_s=round(sharded_s, 3),
        speedup=round(speedup, 3),
        units=len(decompose(EXPERIMENT, quick=True, seed=1)),
        jobs=JOBS,
        cpus=cpus,
    )
    print(
        f"{EXPERIMENT}: serial {serial_s:.2f}s, jobs={JOBS} {sharded_s:.2f}s "
        f"(speedup {speedup:.2f}x on {cpus} cpus)"
    )
    if cpus >= 4:
        # Four workers over twelve CPU-bound units: the pool must win big.
        assert speedup >= 2.5
