"""Figure 19 bench: interval halving barely moves P(RIL > 1024 ms)."""

from repro.experiments import fig19


def test_bench_fig19_cache_sensitivity(run_once):
    result = run_once(fig19.run, quick=True, seed=1)
    for row in result.rows:
        assert abs(row["delta"]) < 0.1
    print(result.to_text())
