"""Microbenchmarks for the vectorised batch fault-evaluation engine.

Two hot paths from the experiments, each measured against the retained
legacy per-cell implementation on an identically-seeded module:

* the full-module ALL-FAIL scan (Figure 4's worst-case bound), and
* a row-test sweep (the SoftMC battery / online-testing inner loop).

The vectorised paths must agree exactly with the legacy loops and beat
them by >= 10x on the ALL-FAIL scan (the issue's acceptance bar).
"""

import time

import numpy as np
import pytest

from repro.dram.faults import FaultMap, FaultModelConfig

ROWS = 4096
BITS = 65536 + 256  # one 8 KB row plus spare columns
INTERVAL_MS = 328.0


def _fresh_map(config=None) -> FaultMap:
    if config is None:
        config = FaultModelConfig()
    return FaultMap(
        total_rows=ROWS, bits_per_row=BITS, config=config, seed=1,
    )


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


class TestAllFailScan:
    def test_vectorised_scan_10x_faster_and_identical(self, run_once,
                                                      record_bench):
        def compare():
            legacy_map = _fresh_map()
            legacy, legacy_s = _timed(lambda: [
                row for row in range(ROWS)
                if legacy_map.row_can_ever_fail(row, INTERVAL_MS)
            ])
            vector_map = _fresh_map()
            vectorised, vector_s = _timed(
                lambda: vector_map.all_fail_rows(INTERVAL_MS)
            )
            return legacy, vectorised, legacy_s, vector_s

        legacy, vectorised, legacy_s, vector_s = run_once(compare)
        record_bench(
            "faultmap_all_fail_scan",
            legacy_s=round(legacy_s, 6),
            vectorised_s=round(vector_s, 6),
            speedup=round(legacy_s / vector_s, 2),
            rows=ROWS,
        )
        assert vectorised == legacy
        # Paper: ~13.5% of rows are ALL-FAIL at the 328 ms window.
        assert 0.05 < len(vectorised) / ROWS < 0.25
        assert legacy_s / vector_s >= 10.0, (
            f"speedup only {legacy_s / vector_s:.1f}x "
            f"({legacy_s:.3f}s -> {vector_s:.3f}s)"
        )


class TestRowTestSweep:
    def test_mask_sweep_beats_per_cell_loop(self, run_once, record_bench):
        dense = FaultModelConfig(vulnerable_cell_rate=2e-4)

        def compare():
            fault_map = _fresh_map(dense)
            rng = np.random.default_rng(7)
            bits = rng.integers(0, 2, size=BITS, dtype=np.uint8)
            rows = range(0, ROWS, 4)
            fault_map.rows_can_ever_fail(  # populate outside the clock
                np.arange(ROWS), INTERVAL_MS
            )
            legacy, legacy_s = _timed(lambda: [
                sum(
                    fault_map.cell_fails(cell, bits, INTERVAL_MS)
                    for cell in fault_map.cells_in_row(row)
                )
                for row in rows
            ])
            vectorised, vector_s = _timed(lambda: [
                int(fault_map.failing_mask(row, bits, INTERVAL_MS).sum())
                for row in rows
            ])
            return legacy, vectorised, legacy_s, vector_s

        legacy, vectorised, legacy_s, vector_s = run_once(compare)
        record_bench(
            "faultmap_row_test_sweep",
            legacy_s=round(legacy_s, 6),
            vectorised_s=round(vector_s, 6),
            speedup=round(legacy_s / vector_s, 2),
            rows_swept=ROWS // 4,
        )
        assert vectorised == legacy
        assert legacy_s > vector_s, (
            f"mask sweep slower than per-cell loop "
            f"({legacy_s:.3f}s vs {vector_s:.3f}s)"
        )
