"""Figure 6 / Appendix bench: MinWriteInterval crossovers (exact)."""

from repro.core.costmodel import CostModel, TestMode
from repro.experiments import fig06


def test_bench_fig06_min_write_interval(benchmark):
    result = benchmark(fig06.run)
    assert all(row["match"] == "yes" for row in result.rows)
    print(result.to_text())


def test_bench_fig06_cost_curve_sweep(benchmark):
    """Sweep the accumulated-cost curves over a 2-second horizon."""

    def sweep():
        model = CostModel()
        return model.cost_curves(TestMode.COPY_AND_COMPARE, 2000.0)

    times, hi, mem = benchmark(sweep)
    assert hi[-1] > mem[-1]  # past the crossover, HI-REF costs more
