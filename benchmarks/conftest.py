"""Shared benchmark helpers.

Every benchmark regenerates one of the paper's tables or figures via its
experiment module and asserts the claim's *shape* (who wins, by roughly
what factor). Heavy experiments run one pedantic round; analytic ones
benchmark normally.

Headline numbers land in ``BENCH_obs.json`` at the repository root (via
the ``record_bench`` fixture) so successive PRs accumulate a measured
perf trajectory instead of prose claims. Re-recording an entry keeps
the previous values in its ``history`` list (newest last, capped at
``HISTORY_LIMIT``) instead of overwriting them, so the trajectory
survives repeated local runs; ``python -m repro.obs.compare`` diffs the
latest values of two such files.
"""

import json
import os
import time

import pytest

from repro import obs

#: The committed perf-trajectory file, next to this directory.
BENCH_OBS_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir, "BENCH_obs.json"
)

#: Prior recordings kept per entry (newest last).
HISTORY_LIMIT = 20


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under the benchmark clock."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner


@pytest.fixture
def obs_env():
    """Fresh enabled registry + in-memory sink, restored afterwards."""
    registry = obs.MetricsRegistry(enabled=True)
    sink = obs.ListTraceSink()
    previous_registry = obs.set_registry(registry)
    previous_sink = obs.set_sink(sink)
    try:
        yield registry, sink
    finally:
        obs.set_registry(previous_registry)
        obs.set_sink(previous_sink)


@pytest.fixture
def record_bench():
    """Merge one named entry into a BENCH_*.json trajectory file.

    Entries land in ``BENCH_obs.json`` unless ``path=`` points elsewhere
    (the parallel-execution benchmarks keep their own
    ``BENCH_parallel.json``). Every entry records the worker count it
    was measured with (``jobs``, default 1) so sharded and serial
    numbers are never conflated in the history.
    """

    def recorder(name, path=BENCH_OBS_PATH, **fields):
        path = os.path.abspath(path)
        data = {}
        if os.path.exists(path):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    data = json.load(handle)
            except (OSError, json.JSONDecodeError):
                data = {}
        entry = dict(fields)
        entry.setdefault("jobs", 1)
        entry["recorded_at"] = time.strftime("%Y-%m-%dT%H:%M:%S")
        # Append, don't overwrite: the displaced entry joins the new
        # entry's history so the measured trajectory accumulates.
        previous = data.get(name)
        if isinstance(previous, dict):
            history = previous.pop("history", [])
            history.append(previous)
            entry["history"] = history[-HISTORY_LIMIT:]
        data[name] = entry
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(data, handle, indent=2, sort_keys=True)
            handle.write("\n")

    return recorder
