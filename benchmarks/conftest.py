"""Shared benchmark helpers.

Every benchmark regenerates one of the paper's tables or figures via its
experiment module and asserts the claim's *shape* (who wins, by roughly
what factor). Heavy experiments run one pedantic round; analytic ones
benchmark normally.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under the benchmark clock."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
