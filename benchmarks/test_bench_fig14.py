"""Figure 14 bench: MEMCON refresh reduction near the 75% bound."""

from repro.experiments import fig14


def test_bench_fig14_refresh_reduction(run_once):
    result = run_once(fig14.run, quick=True, seed=1)
    for row in result.rows:
        for key in ("cil_512ms", "cil_1024ms", "cil_2048ms"):
            value = float(row[key].rstrip("%"))
            assert 55.0 <= value < 75.0  # paper: 64.7-74.5%, bound 75%
    print(result.to_text())
