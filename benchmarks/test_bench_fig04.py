"""Figure 4 bench: program-content vs ALL-FAIL failing-row fractions."""

from repro.experiments import fig04


def test_bench_fig04_failing_rows(run_once):
    result = run_once(fig04.run, quick=True, seed=1)
    fractions = [
        float(row["failing_rows"].rstrip("%")) for row in result.rows[:-1]
    ]
    all_fail = float(result.rows[-1]["failing_rows"].rstrip("%"))
    # Paper: 13.5% ALL-FAIL; program content 2.4x-35.2x fewer failures.
    assert 10.0 <= all_fail <= 18.0
    assert all_fail / max(fractions) > 2.0
    assert all_fail / min(fractions) > 15.0
    print(result.to_text())
