"""Figure 7 bench: write-interval distributions of the traced workloads."""

from repro.experiments import fig07


def test_bench_fig07_interval_distribution(run_once):
    result = run_once(fig07.run, quick=True, seed=1)
    for row in result.rows:
        assert float(row["<1ms"].rstrip("%")) > 95.0
    print(result.to_text())
