"""Figure 17 bench: PRIL's LO-REF execution-time coverage."""

from repro.experiments import fig17


def test_bench_fig17_lo_ref_coverage(run_once):
    result = run_once(fig17.run, quick=True, seed=1)
    for row in result.rows:
        assert float(row["cil_1024ms"].rstrip("%")) > 75.0  # paper: ~95%
    print(result.to_text())
