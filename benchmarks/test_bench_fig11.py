"""Figure 11 bench: P(RIL > 1024 ms) grows with CIL (DHR in action)."""

from repro.experiments import fig11


def test_bench_fig11_ril_vs_cil(run_once):
    result = run_once(fig11.run, quick=True, seed=1)
    for row in result.rows:
        assert row["cil_64ms"] < row["cil_512ms"] < row["cil_16384ms"]
        assert 0.4 <= row["cil_512ms"] <= 0.9  # paper: 50-80% at 512 ms
    print(result.to_text())
