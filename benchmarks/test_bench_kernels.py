"""Compiled-kernels bench: numba backend vs the python oracle paths.

Times the fig15/8-core simulator shapes and a module-scale fault-
predicate batch under ``backend="python"`` and ``backend="numba"`` and
records wall clock, speedup and the one-time JIT warm-up cost into
``BENCH_kernels.json``. Warm-up runs *before* the timed window and is
reported as its own field (mirroring the ``kernels.warmup_s`` gauge) —
compile time is never folded into a kernel measurement.

Honest numbers, PR-4 style: the >= 5x speed gate arms only when the
numba backend actually runs. On machines without numba the equality
smoke below still executes (via the interpreted ``pyfunc`` backend, the
same kernel code paths), but no timing entry is recorded —
``BENCH_kernels.json`` accumulates entries only where compiled kernels
exist, and ``repro.obs.compare`` treats the file's absence as warn-only
no-data rather than a regression.
"""

import os
import time
from dataclasses import asdict

import numpy as np
import pytest

from repro import kernels, obs
from repro.dram.faults import FaultMap, FaultModelConfig
from repro.mc.controller import RefreshSettings, TestTrafficSettings
from repro.sim.system import SystemConfig, SystemSimulator
from repro.traces.spec import get_benchmark

BENCH_KERNELS_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir,
    "BENCH_kernels.json",
)

#: The compiled-vs-oracle speed gate from the kernels issue.
TARGET_SPEEDUP = 5.0

SCENARIOS = {
    # fig15/table3 shape: 4 cores, one channel, MEMCON test traffic.
    "kernels_sim_fig15_4core": dict(
        benches=["mcf", "libquantum", "gcc", "tonto"],
        channels=1,
        tests=4,
        window_ns=100_000.0,
    ),
    # Many actors, four schedulers: the pick/heap kernels' best regime.
    "kernels_sim_8core_4ch": dict(
        benches=["mcf", "tonto", "gcc", "libquantum"] * 2,
        channels=4,
        tests=0,
        window_ns=100_000.0,
    ),
}


def _simulate(spec, seed=1):
    config = SystemConfig(
        channels=spec["channels"],
        refresh=RefreshSettings(base_interval_ms=16.0, reduction=0.0),
        test_traffic=TestTrafficSettings(concurrent_tests=spec["tests"]),
    )
    benchmarks = [get_benchmark(name) for name in spec["benches"]]
    simulator = SystemSimulator(benchmarks, config, seed=seed)
    started = time.perf_counter()
    result = simulator.run(spec["window_ns"])
    return result, time.perf_counter() - started


def _under(backend, fn):
    kernels.set_backend(backend)
    try:
        warmup_s = kernels.warmup()  # compiles outside the timed window
        value, wall_s = fn()
        return value, wall_s, warmup_s
    finally:
        kernels.set_backend(None)


def _predicate_batch():
    fault_map = FaultMap(
        total_rows=4096, bits_per_row=1024,
        config=FaultModelConfig(vulnerable_cell_rate=5e-3), seed=1,
    )
    rows = np.arange(4096)
    bits = np.random.default_rng(7).integers(
        0, 2, size=(4096, 1024), dtype=np.uint8
    )
    stress = np.random.default_rng(8).uniform(0.0, 1.0, size=4096)
    fault_map.rows_fail(rows, bits, 328.0)  # populate outside the window
    started = time.perf_counter()
    out = fault_map.failing_cells_batch(rows, bits, 328.0, stress)
    return out, time.perf_counter() - started


@pytest.mark.skipif(not kernels.numba_available(),
                    reason="numba not installed; no compiled kernels to time")
def test_bench_kernels_speedup(record_bench):
    for name, spec in SCENARIOS.items():
        oracle, python_s, _ = _under("python", lambda: _simulate(spec))
        result, numba_s, warmup_s = _under("numba", lambda: _simulate(spec))
        # Correctness before speed: backends must agree exactly.
        assert asdict(result) == asdict(oracle)
        speedup = python_s / numba_s if numba_s > 0 else 0.0
        record_bench(
            name, path=BENCH_KERNELS_PATH,
            cores=len(spec["benches"]),
            channels=spec["channels"],
            window_ns=spec["window_ns"],
            python_s=round(python_s, 6),
            numba_s=round(numba_s, 6),
            warmup_s=round(warmup_s, 6),
            speedup=round(speedup, 3),
        )
        assert speedup >= TARGET_SPEEDUP, (
            f"{name}: numba backend {speedup:.2f}x vs python "
            f"({numba_s:.3f}s vs {python_s:.3f}s), target "
            f"{TARGET_SPEEDUP}x"
        )


@pytest.mark.skipif(not kernels.numba_available(),
                    reason="numba not installed; no compiled kernels to time")
def test_bench_kernels_faultpred(record_bench):
    (exp_rows, exp_cols), python_s, _ = _under("python", _predicate_batch)
    (got_rows, got_cols), numba_s, warmup_s = _under(
        "numba", _predicate_batch)
    np.testing.assert_array_equal(got_rows, exp_rows)
    np.testing.assert_array_equal(got_cols, exp_cols)
    speedup = python_s / numba_s if numba_s > 0 else 0.0
    record_bench(
        "kernels_faultpred_batch", path=BENCH_KERNELS_PATH,
        rows=4096, bits_per_row=1024,
        python_s=round(python_s, 6),
        numba_s=round(numba_s, 6),
        warmup_s=round(warmup_s, 6),
        speedup=round(speedup, 3),
    )


def test_bench_kernels_equality_smoke():
    """Always-on gate: an engaged backend changes nothing observable.

    Runs the fig15 shape under the best engaged backend available
    (numba, else interpreted pyfunc) and pins the full SystemResult to
    the oracle's. This is what makes a speed number *meaningful*; it
    runs even where the timing tests skip.
    """
    backend = "numba" if kernels.numba_available() else "pyfunc"
    spec = SCENARIOS["kernels_sim_fig15_4core"]
    oracle, _, _ = _under("python", lambda: _simulate(spec))
    result, _, _ = _under(backend, lambda: _simulate(spec))
    assert asdict(result) == asdict(oracle)
