"""Figure 9 bench: long write intervals dominate execution time."""

from repro.experiments import fig09


def test_bench_fig09_time_in_long_intervals(run_once):
    result = run_once(fig09.run, quick=True, seed=1)
    average = float(result.rows[-1]["time_in_long_intervals"].rstrip("%"))
    assert average > 80.0  # paper: 89.5%
    print(result.to_text())
