"""Figure 15 bench: performance gain from refresh reduction.

Scaled-down sweep (3 workloads, short windows, 32 Gb + 8 Gb endpoints)
asserting the paper's shape: improvement grows with chip density and with
the reduction amount, and the 32 Gb band lands near the paper's +40-50%.
"""

from repro.sim.metrics import geometric_mean, speedup
from repro.sim.system import simulate_workload

WINDOW_NS = 60_000.0
WORKLOADS = (["mcf"], ["lbm"], ["omnetpp"])


def _sweep():
    means = {}
    for density in (8, 32):
        for reduction in (0.60, 0.75):
            ratios = []
            for i, names in enumerate(WORKLOADS):
                base = simulate_workload(
                    names, density_gbit=density, window_ns=WINDOW_NS,
                    seed=11 + i,
                )
                memcon = simulate_workload(
                    names, density_gbit=density,
                    refresh_reduction=reduction, concurrent_tests=256,
                    window_ns=WINDOW_NS, seed=11 + i,
                )
                ratios.append(speedup(memcon, base))
            means[(density, reduction)] = geometric_mean(ratios)
    return means


def test_bench_fig15_speedup_sweep(run_once):
    means = run_once(_sweep)
    # Shape: density scaling and reduction scaling, as in the paper.
    assert means[(32, 0.75)] > means[(8, 0.75)]
    assert means[(32, 0.75)] > means[(32, 0.60)]
    # Memory-bound 32 Gb band: paper reports +40-50% mean improvement.
    assert 1.25 < means[(32, 0.75)] < 1.75
    print("fig15 mean speedups:", {
        f"{d}Gb@{int(r * 100)}%": round(v, 3) for (d, r), v in means.items()
    })
