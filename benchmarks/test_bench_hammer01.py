"""Hammer study bench: disturbance flips vs write-triggered testing.

Quick-mode hammer01 run asserting the experiment's shape claim: the
controller's real ACT stream produces hammer flips, the write-triggered
content test alone misses most of them, and folding the disturbance
pressure into the predicate recovers a strictly larger share.
"""

from repro.experiments import hammer01


def _totals():
    result = hammer01.run(quick=True, seed=1)
    flipped = sum(row["rows_flipped"] for row in result.rows)
    content = [
        float(row["content_test"].rstrip("%")) for row in result.rows
    ]
    composed = [
        float(row["composed_test"].rstrip("%")) for row in result.rows
    ]
    acts = [row["weighted_acts"] for row in result.rows]
    return flipped, content, composed, acts


def test_bench_hammer01_composed_predicate_catches_more(run_once):
    flipped, content, composed, acts = run_once(_totals)
    # The ACT stream is real: every benchmark drives activations, and the
    # hammer population produces flips somewhere in the sweep.
    assert all(a > 0 for a in acts)
    assert flipped > 0
    # Composition only adds detections, and adds some: per benchmark the
    # composed column dominates, and the sweep-wide gap is strict.
    assert all(c >= p for c, p in zip(composed, content))
    assert sum(composed) > sum(content)
    print("hammer01 rows flipped:", flipped,
          "content%:", [round(v, 1) for v in content],
          "composed%:", [round(v, 1) for v in composed])
