"""Simulator engine bench: event-heap loop vs the poll-loop oracle.

Times the same simulation twice — ``engine="event"`` (the heap-scheduled
discrete-event loop) against ``engine="poll"`` (the retired
poll-everything loop kept as the equivalence oracle) — and records wall
clock, loop iterations and events/sec per engine into ``BENCH_sim.json``.

Honest numbers, recorded PR-4 style: bit-identity with the oracle pins
the event engine to the *same instant grid* the poll loop walks (the
tCK-floor advance rule is observable through RNG draw order), so the
structural win is per-iteration cost — O(due actors) instead of
O(cores + channels) — not a smaller iteration count. On small
single-channel configs that is parity-to-modest; it grows with idle
actors (multi-channel, many cores). The issue's >= 5x target is
unattainable under bit-identity and the gate here is a no-regression
bound plus exact result equality; the trajectory file keeps the
measured reality.
"""

import os
import time
from dataclasses import asdict

from repro import obs
from repro.mc.controller import RefreshSettings, TestTrafficSettings
from repro.sim.system import SystemConfig, SystemSimulator
from repro.traces.spec import get_benchmark

BENCH_SIM_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir, "BENCH_sim.json"
)

#: The speed gate only arms while the poll oracle is still in the tree;
#: once it is retired the bench records event-engine numbers alone.
ORACLE_AVAILABLE = hasattr(SystemSimulator, "_reference_run")

SCENARIOS = {
    # fig15/table3 shape: 4 cores, one channel, MEMCON test traffic.
    "sim_engine_fig15_4core": dict(
        benches=["mcf", "libquantum", "gcc", "tonto"],
        channels=1,
        tests=4,
        window_ns=100_000.0,
    ),
    # The engine's favourable regime: many mostly-idle actors.
    "sim_engine_8core_4ch": dict(
        benches=["mcf", "tonto", "gcc", "libquantum"] * 2,
        channels=4,
        tests=0,
        window_ns=100_000.0,
    ),
}


def _simulator(spec, seed=1):
    config = SystemConfig(
        channels=spec["channels"],
        refresh=RefreshSettings(base_interval_ms=16.0, reduction=0.0),
        test_traffic=TestTrafficSettings(concurrent_tests=spec["tests"]),
    )
    benchmarks = [get_benchmark(name) for name in spec["benches"]]
    return SystemSimulator(benchmarks, config, seed=seed)


def _timed_run(spec, engine):
    """(result, wall seconds, loop iterations) for one fresh run."""
    registry = obs.MetricsRegistry(enabled=True)
    previous = obs.set_registry(registry)
    try:
        simulator = _simulator(spec)
        started = time.perf_counter()
        result = simulator.run(spec["window_ns"], engine=engine)
        wall_s = time.perf_counter() - started
    finally:
        obs.set_registry(previous)
    return result, wall_s, registry.counter("sim.loop_iterations").value


def test_bench_sim_engines(record_bench):
    for name, spec in SCENARIOS.items():
        event_result, event_s, event_iters = _timed_run(spec, "event")
        if ORACLE_AVAILABLE:
            poll_result, poll_s, poll_iters = _timed_run(spec, "poll")
            # Correctness before speed: the engines must agree exactly.
            assert asdict(event_result) == asdict(poll_result)
        else:
            poll_s = poll_iters = None

        entry = dict(
            cores=len(spec["benches"]),
            channels=spec["channels"],
            window_ns=spec["window_ns"],
            event_s=round(event_s, 6),
            event_iterations=event_iters,
            event_iters_per_s=round(event_iters / event_s, 1),
        )
        if ORACLE_AVAILABLE:
            speedup = poll_s / event_s if event_s > 0 else 0.0
            entry.update(
                poll_s=round(poll_s, 6),
                poll_iterations=poll_iters,
                poll_iters_per_s=round(poll_iters / poll_s, 1),
                speedup=round(speedup, 3),
            )
            # No-regression bound (generous: 1-cpu CI boxes are noisy).
            # Bit-identity caps the upside — see the module docstring —
            # so the gate guards against the event engine losing ground,
            # not for a multiple the instant grid cannot produce.
            assert speedup >= 0.6, (
                f"{name}: event engine regressed vs poll oracle "
                f"({event_s:.3f}s vs {poll_s:.3f}s)"
            )
        record_bench(name, path=BENCH_SIM_PATH, **entry)
