"""Pareto-distribution analysis of write intervals (paper §4.1, Figure 8).

The paper's claim: write-interval lengths follow a Pareto distribution,
``P(L > x) = k * x**(-alpha)``, verified by a linear fit on the log-log
CCDF with R² above 0.93. The decreasing-hazard-rate (DHR) property of the
Pareto family is what justifies PRIL: the longer a page has been idle, the
longer it is expected to stay idle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class ParetoFit:
    """Result of fitting ``P(L > x) = k * x**(-alpha)`` on the log-log CCDF."""

    alpha: float       # tail index (slope magnitude on log-log axes)
    k: float           # scale constant
    r_squared: float   # goodness of the log-log linear fit
    n_samples: int
    x_min: float       # smallest interval used in the fit

    def ccdf(self, x: np.ndarray) -> np.ndarray:
        """Model survival probability at the given interval lengths."""
        x = np.asarray(x, dtype=np.float64)
        return np.clip(self.k * x ** (-self.alpha), 0.0, 1.0)


def empirical_ccdf(
    samples: np.ndarray, x_values: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical survival function P(L > x) of a sample.

    Returns ``(x, p)``. When ``x_values`` is omitted, evaluates at the
    sorted unique sample points.
    """
    samples = np.asarray(samples, dtype=np.float64)
    if len(samples) == 0:
        raise ValueError("samples must not be empty")
    sorted_samples = np.sort(samples)
    if x_values is None:
        x_values = np.unique(sorted_samples)
    x_values = np.asarray(x_values, dtype=np.float64)
    # P(L > x): count of samples strictly greater than x.
    counts = len(sorted_samples) - np.searchsorted(sorted_samples, x_values, side="right")
    return x_values, counts / len(sorted_samples)


def fit_pareto(
    samples: np.ndarray,
    x_min: float = 1.0,
    x_max: Optional[float] = None,
    n_points: int = 40,
) -> ParetoFit:
    """Fit the Pareto tail of a sample on log-log axes, as the paper does.

    The CCDF is evaluated at ``n_points`` log-spaced abscissae between
    ``x_min`` and ``x_max`` (default: the sample maximum), and a
    least-squares line is fitted to ``log P(L > x)`` vs ``log x``. R² is
    that of the linear fit. ``x_max`` bounds only the *fit grid*; the CCDF
    itself is always computed from the full sample, so bounding the grid
    away from the capture-window truncation does not distort the tail.
    """
    samples = np.asarray(samples, dtype=np.float64)
    samples = samples[samples > 0]
    if len(samples) < 10:
        raise ValueError("need at least 10 positive samples to fit")
    if x_max is None:
        x_max = float(samples.max())
    if x_max <= x_min:
        raise ValueError("x_max must exceed x_min")
    x_grid = np.logspace(np.log10(x_min), np.log10(x_max), n_points)
    x_grid, ccdf = empirical_ccdf(samples, x_grid)
    keep = ccdf > 0
    if keep.sum() < 3:
        raise ValueError("not enough non-empty CCDF points to fit")
    log_x = np.log10(x_grid[keep])
    log_p = np.log10(ccdf[keep])
    result = stats.linregress(log_x, log_p)
    return ParetoFit(
        alpha=-float(result.slope),
        k=float(10 ** result.intercept),
        r_squared=float(result.rvalue ** 2),
        n_samples=len(samples),
        x_min=x_min,
    )


def hazard_rate(samples: np.ndarray, grid: np.ndarray) -> np.ndarray:
    """Empirical hazard rate h(x) = f(x) / P(L > x) on a grid.

    For a Pareto distribution, h(x) = alpha / x: strictly decreasing. The
    DHR property underpins PRIL's prediction rule.
    """
    samples = np.sort(np.asarray(samples, dtype=np.float64))
    grid = np.asarray(grid, dtype=np.float64)
    if len(grid) < 2:
        raise ValueError("grid must have at least two points")
    rates = np.empty(len(grid) - 1)
    n = len(samples)
    for i in range(len(grid) - 1):
        lo, hi = grid[i], grid[i + 1]
        surviving = n - np.searchsorted(samples, lo, side="left")
        dying = (
            np.searchsorted(samples, hi, side="left")
            - np.searchsorted(samples, lo, side="left")
        )
        width = hi - lo
        rates[i] = (dying / surviving / width) if surviving > 0 else np.nan
    return rates


def is_decreasing_hazard(
    samples: np.ndarray,
    grid: Optional[np.ndarray] = None,
    tolerance: float = 0.25,
) -> bool:
    """Check the DHR property: hazard mostly decreases along the grid.

    Allows ``tolerance`` fraction of adjacent grid steps to move the wrong
    way (empirical hazards are noisy in the extreme tail).
    """
    samples = np.asarray(samples, dtype=np.float64)
    if grid is None:
        grid = np.logspace(0, np.log10(max(samples.max(), 10.0)), 12)
    rates = hazard_rate(samples, grid)
    rates = rates[~np.isnan(rates)]
    if len(rates) < 2:
        return True
    increases = np.sum(np.diff(rates) > 0)
    return increases <= tolerance * (len(rates) - 1)
