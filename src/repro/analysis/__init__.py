"""Statistical analysis: Pareto fitting and write-interval metrics."""

from .coverage import (
    ContentFailureCoverage,
    PredictionQuality,
    accuracy_coverage_tradeoff,
    content_failure_coverage,
    evaluate_predictor,
)
from .intervals import (
    CIL_GRID_MS,
    INTERVAL_BUCKETS_MS,
    LONG_INTERVAL_MS,
    IntervalDistribution,
    coverage_curve,
    fraction_of_writes_below,
    interval_distribution,
    interval_time_coverage,
    ril_exceeds_probability,
    ril_probability_curve,
    time_in_long_intervals,
)
from .model import ParetoIntervalModel, dhr_increase_with_cil
from .pareto import (
    ParetoFit,
    empirical_ccdf,
    fit_pareto,
    hazard_rate,
    is_decreasing_hazard,
)

__all__ = [
    "CIL_GRID_MS",
    "ContentFailureCoverage",
    "INTERVAL_BUCKETS_MS",
    "IntervalDistribution",
    "LONG_INTERVAL_MS",
    "ParetoFit",
    "ParetoIntervalModel",
    "PredictionQuality",
    "dhr_increase_with_cil",
    "accuracy_coverage_tradeoff",
    "content_failure_coverage",
    "coverage_curve",
    "empirical_ccdf",
    "evaluate_predictor",
    "fit_pareto",
    "fraction_of_writes_below",
    "hazard_rate",
    "interval_distribution",
    "interval_time_coverage",
    "is_decreasing_hazard",
    "ril_exceeds_probability",
    "ril_probability_curve",
    "time_in_long_intervals",
]
