"""Prediction accuracy and coverage analysis for interval predictors.

The paper evaluates PRIL by two complementary metrics (§4.1): *accuracy*
(of the intervals predicted long, how many really were) and *coverage*
(how much of the total write-interval time the predictions capture). This
module computes both for any CIL-threshold predictor, plus the confusion
counts needed for misprediction-overhead accounting (Figure 18).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..traces.events import WriteTrace
from .intervals import LONG_INTERVAL_MS


@dataclass(frozen=True)
class PredictionQuality:
    """Confusion summary for a wait-CIL-then-predict-long rule."""

    cil_ms: float
    ril_threshold_ms: float
    true_positives: int    # predicted long, remaining length was long
    false_positives: int   # predicted long, next write arrived early
    missed_long: int       # long intervals never predicted (L < cil)
    short_skipped: int     # short intervals correctly never predicted
    accuracy: float        # TP / (TP + FP)
    time_coverage: float   # long-interval time captured / total long time

    @property
    def n_predictions(self) -> int:
        return self.true_positives + self.false_positives


def evaluate_predictor(
    trace: WriteTrace,
    cil_ms: float,
    ril_threshold_ms: float = LONG_INTERVAL_MS,
) -> PredictionQuality:
    """Score the rule "after CIL of idleness, predict RIL > threshold".

    An interval of length L triggers a prediction iff L >= cil; the
    prediction is correct iff L - cil > threshold. Coverage is measured
    against the total time in intervals longer than ``threshold`` (the
    opportunity PRIL is trying to harvest). Trailing censored intervals
    are included, lower-bounding their true length by the observed idle.
    """
    if cil_ms < 0:
        raise ValueError("cil_ms must be non-negative")
    intervals = trace.all_intervals(include_trailing=True)
    if len(intervals) == 0:
        return PredictionQuality(
            cil_ms=cil_ms, ril_threshold_ms=ril_threshold_ms,
            true_positives=0, false_positives=0, missed_long=0,
            short_skipped=0, accuracy=0.0, time_coverage=0.0,
        )
    predicted = intervals >= cil_ms
    long_remaining = intervals - cil_ms > ril_threshold_ms
    is_long = intervals > ril_threshold_ms

    tp = int(np.sum(predicted & long_remaining))
    fp = int(np.sum(predicted & ~long_remaining))
    missed = int(np.sum(~predicted & is_long))
    skipped = int(np.sum(~predicted & ~is_long))

    total_long_time = intervals[is_long].sum()
    captured = np.clip(intervals[predicted & long_remaining] - cil_ms, 0.0, None).sum()
    return PredictionQuality(
        cil_ms=cil_ms,
        ril_threshold_ms=ril_threshold_ms,
        true_positives=tp,
        false_positives=fp,
        missed_long=missed,
        short_skipped=skipped,
        accuracy=tp / (tp + fp) if tp + fp else 0.0,
        time_coverage=float(captured / total_long_time) if total_long_time else 0.0,
    )


def accuracy_coverage_tradeoff(
    trace: WriteTrace,
    cil_grid_ms: np.ndarray,
    ril_threshold_ms: float = LONG_INTERVAL_MS,
) -> list:
    """The accuracy/coverage sweep behind the paper's 512-2048 ms choice."""
    return [
        evaluate_predictor(trace, float(c), ril_threshold_ms)
        for c in cil_grid_ms
    ]
