"""Prediction accuracy and coverage analysis for interval predictors.

The paper evaluates PRIL by two complementary metrics (§4.1): *accuracy*
(of the intervals predicted long, how many really were) and *coverage*
(how much of the total write-interval time the predictions capture). This
module computes both for any CIL-threshold predictor, plus the confusion
counts needed for misprediction-overhead accounting (Figure 18).

It also hosts the content-failure coverage summary behind the paper's
Figure 4 argument — how many rows fail with the content actually in
memory versus the ALL-FAIL worst case — computed with the vectorised
batch fault-evaluation engine so module-scale modules stay cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from ..dram.cell_array import CellArray
from ..traces.events import WriteTrace
from .intervals import LONG_INTERVAL_MS


@dataclass(frozen=True)
class PredictionQuality:
    """Confusion summary for a wait-CIL-then-predict-long rule."""

    cil_ms: float
    ril_threshold_ms: float
    true_positives: int    # predicted long, remaining length was long
    false_positives: int   # predicted long, next write arrived early
    missed_long: int       # long intervals never predicted (L < cil)
    short_skipped: int     # short intervals correctly never predicted
    accuracy: float        # TP / (TP + FP)
    time_coverage: float   # long-interval time captured / total long time

    @property
    def n_predictions(self) -> int:
        return self.true_positives + self.false_positives


def evaluate_predictor(
    trace: WriteTrace,
    cil_ms: float,
    ril_threshold_ms: float = LONG_INTERVAL_MS,
) -> PredictionQuality:
    """Score the rule "after CIL of idleness, predict RIL > threshold".

    An interval of length L triggers a prediction iff L >= cil; the
    prediction is correct iff L - cil > threshold. Coverage is measured
    against the total time in intervals longer than ``threshold`` (the
    opportunity PRIL is trying to harvest). Trailing censored intervals
    are included, lower-bounding their true length by the observed idle.
    """
    if cil_ms < 0:
        raise ValueError("cil_ms must be non-negative")
    intervals = trace.all_intervals(include_trailing=True)
    if len(intervals) == 0:
        return PredictionQuality(
            cil_ms=cil_ms, ril_threshold_ms=ril_threshold_ms,
            true_positives=0, false_positives=0, missed_long=0,
            short_skipped=0, accuracy=0.0, time_coverage=0.0,
        )
    predicted = intervals >= cil_ms
    long_remaining = intervals - cil_ms > ril_threshold_ms
    is_long = intervals > ril_threshold_ms

    tp = int(np.sum(predicted & long_remaining))
    fp = int(np.sum(predicted & ~long_remaining))
    missed = int(np.sum(~predicted & is_long))
    skipped = int(np.sum(~predicted & ~is_long))

    total_long_time = intervals[is_long].sum()
    captured = np.clip(intervals[predicted & long_remaining] - cil_ms, 0.0, None).sum()
    return PredictionQuality(
        cil_ms=cil_ms,
        ril_threshold_ms=ril_threshold_ms,
        true_positives=tp,
        false_positives=fp,
        missed_long=missed,
        short_skipped=skipped,
        accuracy=tp / (tp + fp) if tp + fp else 0.0,
        time_coverage=float(captured / total_long_time) if total_long_time else 0.0,
    )


@dataclass(frozen=True)
class ContentFailureCoverage:
    """How much of the worst-case failure exposure the content triggers."""

    refresh_interval_ms: float
    rows_evaluated: int
    failing_with_content: int   # rows that lose bits with current content
    failing_worst_case: int     # rows that could fail under *some* content

    @property
    def content_fraction(self) -> float:
        if self.rows_evaluated == 0:
            return 0.0
        return self.failing_with_content / self.rows_evaluated

    @property
    def worst_case_fraction(self) -> float:
        if self.rows_evaluated == 0:
            return 0.0
        return self.failing_worst_case / self.rows_evaluated

    @property
    def worst_case_ratio(self) -> float:
        """ALL-FAIL rows per content-failing row (Fig. 4's 2.4x-35.2x)."""
        if self.failing_with_content == 0:
            return float("inf") if self.failing_worst_case else 1.0
        return self.failing_worst_case / self.failing_with_content


def content_failure_coverage(
    cells: CellArray,
    refresh_interval_ms: float,
    rows: Optional[Iterable[int]] = None,
) -> ContentFailureCoverage:
    """Figure 4's comparison for one module: content failures vs ALL-FAIL.

    Both counts come from the batch fault-evaluation engine: one pass of
    :meth:`CellArray.evaluate_rows` for the current content and one of
    :meth:`FaultMap.rows_can_ever_fail` for the worst case.
    """
    if rows is None:
        row_array = np.arange(cells.geometry.total_rows, dtype=np.int64)
    else:
        row_array = np.asarray(sorted(set(int(r) for r in rows)), dtype=np.int64)
    with_content = cells.evaluate_rows(row_array, refresh_interval_ms)
    worst_case = cells.fault_map.rows_can_ever_fail(row_array, refresh_interval_ms)
    return ContentFailureCoverage(
        refresh_interval_ms=refresh_interval_ms,
        rows_evaluated=len(row_array),
        failing_with_content=int(with_content.sum()),
        failing_worst_case=int(worst_case.sum()),
    )


def accuracy_coverage_tradeoff(
    trace: WriteTrace,
    cil_grid_ms: np.ndarray,
    ril_threshold_ms: float = LONG_INTERVAL_MS,
) -> list:
    """The accuracy/coverage sweep behind the paper's 512-2048 ms choice."""
    return [
        evaluate_predictor(trace, float(c), ril_threshold_ms)
        for c in cil_grid_ms
    ]
