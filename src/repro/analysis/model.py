"""Closed-form write-interval models (the analytics behind paper §4.1).

For a Pareto interval distribution ``P(L > x) = (xm / x) ** alpha`` the
conditional survival of the *remaining* interval has the closed form

    P(RIL > r | CIL = c) = P(L > c + r) / P(L > c) = (c / (c + r)) ** alpha

for c >= xm — increasing in ``c``: the decreasing-hazard-rate property
that makes PRIL work. These helpers let the library cross-check the
empirical CIL/RIL curves of :mod:`repro.analysis.intervals` against the
theory, and size quanta analytically before any trace exists.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class ParetoIntervalModel:
    """Analytic interval model: Pareto(xm, alpha)."""

    alpha: float
    xm_ms: float = 1.0

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")
        if self.xm_ms <= 0:
            raise ValueError("xm_ms must be positive")

    # ------------------------------------------------------------------
    def survival(self, x_ms: float) -> float:
        """P(interval > x)."""
        if x_ms < 0:
            raise ValueError("x_ms must be non-negative")
        if x_ms <= self.xm_ms:
            return 1.0
        return (self.xm_ms / x_ms) ** self.alpha

    def conditional_ril_survival(self, cil_ms: float, ril_ms: float) -> float:
        """P(RIL > ril | CIL = cil), the paper's Figure 11 quantity."""
        if cil_ms < 0 or ril_ms < 0:
            raise ValueError("times must be non-negative")
        effective_cil = max(cil_ms, self.xm_ms)
        return (effective_cil / (effective_cil + ril_ms)) ** self.alpha

    def hazard(self, x_ms: float) -> float:
        """Instantaneous hazard rate h(x) = alpha / x (for x >= xm)."""
        if x_ms < self.xm_ms:
            raise ValueError("hazard defined for x >= xm")
        return self.alpha / x_ms

    # ------------------------------------------------------------------
    def expected_remaining_ms(self, cil_ms: float) -> float:
        """E[RIL | CIL = cil]; finite only when alpha > 1.

        For alpha <= 1 the conditional mean diverges — the regime real
        write traces sit in, which is why MEMCON's benefit is so large.
        """
        if self.alpha <= 1.0:
            return math.inf
        effective_cil = max(cil_ms, self.xm_ms)
        return effective_cil / (self.alpha - 1.0)

    def cil_for_target_confidence(
        self, ril_ms: float, confidence: float
    ) -> float:
        """Smallest CIL giving P(RIL > ril | CIL) >= confidence.

        Solves the Figure 11 relation for the quantum: how long must a
        page be idle before predicting another ``ril_ms`` of idleness is
        right with the requested probability.
        """
        if not 0.0 < confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")
        if ril_ms <= 0:
            raise ValueError("ril_ms must be positive")
        # (c / (c + r)) ** alpha >= p  <=>  c >= r * q / (1 - q),
        # with q = p ** (1 / alpha).
        q = confidence ** (1.0 / self.alpha)
        cil = ril_ms * q / (1.0 - q)
        return max(cil, self.xm_ms)


def dhr_increase_with_cil(
    model: ParetoIntervalModel, ril_ms: float, cil_lo_ms: float,
    cil_hi_ms: float,
) -> float:
    """How much waiting longer helps: P at cil_hi minus P at cil_lo."""
    if cil_hi_ms < cil_lo_ms:
        raise ValueError("cil_hi_ms must be >= cil_lo_ms")
    return (
        model.conditional_ril_survival(cil_hi_ms, ril_ms)
        - model.conditional_ril_survival(cil_lo_ms, ril_ms)
    )
