"""Write-interval statistics: distributions, CIL/RIL conditionals.

Terminology (paper Figure 10): within one write interval, the *current
interval length* (CIL) is the time elapsed since the last write, and the
*remaining interval length* (RIL) is the time until the next write. PRIL
predicts "RIL will exceed the MinWriteInterval" from "CIL already exceeds a
quantum", exploiting the Pareto DHR property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..traces.events import WriteTrace

#: The write-interval bucket edges the paper plots (Figure 7), in ms.
INTERVAL_BUCKETS_MS = np.array(
    [1.0, 8.0, 64.0, 512.0, 4096.0, 32768.0, np.inf]
)

#: The CIL sweep used in Figures 11 and 12, in ms.
CIL_GRID_MS = np.array(
    [1, 2, 4, 8, 16, 32, 64, 128, 256, 512,
     1024, 2048, 4096, 8192, 16384, 32768],
    dtype=np.float64,
)

#: The paper's definition of a "long" write interval, in ms.
LONG_INTERVAL_MS = 1024.0


@dataclass(frozen=True)
class IntervalDistribution:
    """Histogram of write-interval lengths (per-write, Figure 7 style)."""

    bucket_edges_ms: np.ndarray
    counts: np.ndarray
    n_intervals: int

    @property
    def percentages(self) -> np.ndarray:
        if self.n_intervals == 0:
            return np.zeros_like(self.counts, dtype=np.float64)
        return 100.0 * self.counts / self.n_intervals


def interval_distribution(
    trace: WriteTrace,
    bucket_edges_ms: Optional[np.ndarray] = None,
) -> IntervalDistribution:
    """Bucket every write interval of a trace (paper Figure 7)."""
    edges = INTERVAL_BUCKETS_MS if bucket_edges_ms is None else bucket_edges_ms
    intervals = trace.all_intervals()
    counts = np.histogram(intervals, bins=np.concatenate(([0.0], edges)))[0]
    return IntervalDistribution(
        bucket_edges_ms=np.asarray(edges),
        counts=counts,
        n_intervals=len(intervals),
    )


def fraction_of_writes_below(trace: WriteTrace, threshold_ms: float) -> float:
    """Fraction of write intervals shorter than a threshold."""
    intervals = trace.all_intervals()
    if len(intervals) == 0:
        return 0.0
    return float(np.mean(intervals < threshold_ms))


def time_in_long_intervals(
    trace: WriteTrace,
    threshold_ms: float = LONG_INTERVAL_MS,
    include_trailing: bool = True,
) -> float:
    """Fraction of total write-interval *time* in intervals >= threshold.

    This is the paper's Figure 9 metric: long intervals are rare by count
    but dominate by time. Trailing (right-censored) idle periods count by
    default, as they do for refresh-reduction purposes.
    """
    intervals = trace.all_intervals(include_trailing=include_trailing)
    total = intervals.sum()
    if total == 0:
        return 0.0
    return float(intervals[intervals >= threshold_ms].sum() / total)


def ril_exceeds_probability(
    trace: WriteTrace,
    cil_ms: float,
    ril_threshold_ms: float = LONG_INTERVAL_MS,
) -> float:
    """P(RIL > threshold | CIL >= cil) over all write intervals.

    An interval of length L reaches current-interval-length ``cil`` iff
    L >= cil, and its remaining length at that moment is L - cil. So the
    conditional is P(L - cil > threshold | L >= cil). Trailing censored
    intervals are included: a page that stays idle to the end of the trace
    genuinely had a long remaining interval (lower-bounded), so censored
    intervals count as exceeding whenever their observed remainder does.
    """
    intervals = trace.all_intervals(include_trailing=True)
    reached = intervals[intervals >= cil_ms]
    if len(reached) == 0:
        return 0.0
    return float(np.mean(reached - cil_ms > ril_threshold_ms))


def ril_probability_curve(
    trace: WriteTrace,
    cil_grid_ms: Optional[np.ndarray] = None,
    ril_threshold_ms: float = LONG_INTERVAL_MS,
) -> np.ndarray:
    """Figure 11: P(RIL > threshold) as a function of CIL."""
    grid = CIL_GRID_MS if cil_grid_ms is None else cil_grid_ms
    return np.array(
        [ril_exceeds_probability(trace, c, ril_threshold_ms) for c in grid]
    )


def interval_time_coverage(
    trace: WriteTrace,
    cil_ms: float,
) -> float:
    """Figure 12: fraction of write-interval time captured by waiting CIL.

    Waiting ``cil`` before acting forfeits the first ``cil`` of every
    interval and skips intervals shorter than that entirely; the covered
    time is ``sum(max(L - cil, 0)) / sum(L)``.
    """
    intervals = trace.all_intervals(include_trailing=True)
    total = intervals.sum()
    if total == 0:
        return 0.0
    covered = np.clip(intervals - cil_ms, 0.0, None).sum()
    return float(covered / total)


def coverage_curve(
    trace: WriteTrace,
    cil_grid_ms: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Figure 12 curve over the CIL grid."""
    grid = CIL_GRID_MS if cil_grid_ms is None else cil_grid_ms
    return np.array([interval_time_coverage(trace, c) for c in grid])
