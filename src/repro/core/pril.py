"""PRIL: probabilistic remaining-interval-length prediction (paper §4.2).

PRIL exploits the decreasing hazard rate of Pareto-distributed write
intervals: a page that has already been idle for a quantum is likely to
stay idle much longer. Rather than a per-page idle counter, PRIL tracks
writes over coarse, fixed-length time quanta with two small structures
(Figure 13):

* a **write-map** — one bit per page, set on the page's first write in the
  current quantum;
* a **write-buffer** — the addresses of pages written *exactly once* in
  the quantum. A second write inside the quantum deletes the page: a page
  rewritten within one quantum clearly has a short interval, and dropping
  it keeps the buffer small (the paper's footnote 8 design choice).

Two quanta are tracked. At each quantum boundary, pages still sitting in
the *previous* buffer were written once in that quantum and never since —
their current interval length provably exceeds one quantum — so they are
predicted to stay idle and handed to MEMCON for testing. Buffers/maps then
swap, and the drained previous set is cleared.

A bounded buffer capacity is honoured exactly as the paper specifies
(footnote 10): on overflow the new page is discarded — it simply stays at
HI-REF, affecting opportunity but never correctness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from .. import obs


@dataclass
class PrilStats:
    """Bookkeeping counters for analysis and the Figure 18 accounting."""

    writes_observed: int = 0
    first_writes: int = 0
    repeat_write_drops: int = 0
    cross_quantum_drops: int = 0
    buffer_overflow_drops: int = 0
    predictions_made: int = 0


class _QuantumTracker:
    """One quantum's write-map plus write-buffer."""

    __slots__ = ("written", "buffer")

    def __init__(self) -> None:
        self.written: Set[int] = set()   # write-map: pages with >= 1 write
        self.buffer: Set[int] = set()    # pages with exactly one write

    def clear(self) -> None:
        self.written.clear()
        self.buffer.clear()


class PrilPredictor:
    """The quantum-based long-write-interval predictor.

    Parameters
    ----------
    quantum_ms:
        Quantum length. The paper uses the CIL sweet spot of 512-2048 ms.
    buffer_capacity:
        Maximum pages held per write-buffer (paper sizes ~4000 entries for
        a 17 KB overhead); ``None`` means unbounded.
    """

    def __init__(
        self,
        quantum_ms: float = 1024.0,
        buffer_capacity: Optional[int] = None,
    ) -> None:
        if quantum_ms <= 0:
            raise ValueError("quantum_ms must be positive")
        if buffer_capacity is not None and buffer_capacity <= 0:
            raise ValueError("buffer_capacity must be positive or None")
        self.quantum_ms = quantum_ms
        self.buffer_capacity = buffer_capacity
        self._current = _QuantumTracker()
        self._previous = _QuantumTracker()
        self._quantum_index = 0
        self.stats = PrilStats()
        registry = obs.get_registry()
        self._c_writes = registry.counter("pril.writes_observed")
        self._c_predictions = registry.counter("pril.predictions")
        self._c_overflow_drops = registry.counter("pril.buffer_overflow_drops")
        # The write path is the predictor's hottest loop, so the registry
        # counter is synced from ``stats`` at quantum granularity rather
        # than paying an instrument call per write.
        self._writes_synced = 0

    # ------------------------------------------------------------------
    @property
    def quantum_index(self) -> int:
        """How many quantum boundaries have passed."""
        return self._quantum_index

    @property
    def current_buffer_size(self) -> int:
        return len(self._current.buffer)

    @property
    def previous_buffer_size(self) -> int:
        return len(self._previous.buffer)

    # ------------------------------------------------------------------
    def observe_write(self, page: int) -> None:
        """Process one write access (Figure 13, left half).

        * first write of this page in the current quantum — record it in
          the current map and (capacity permitting) the current buffer;
        * repeat write — drop it from the current buffer (interval shorter
          than a quantum);
        * any write also evicts the page from the *previous* buffer: the
          page did not stay idle across the quantum boundary.
        """
        if page < 0:
            raise ValueError("page must be non-negative")
        stats = self.stats
        stats.writes_observed += 1

        if page in self._current.written:
            # Step 2: repeat write in the same quantum.
            if page in self._current.buffer:
                self._current.buffer.discard(page)
                stats.repeat_write_drops += 1
                if obs.trace_active() and obs.forensics_active():
                    obs.emit(
                        "pril_revoke",
                        page=page,
                        reason="repeat_write",
                        quantum=self._quantum_index,
                    )
        else:
            # Step 1: first occurrence this quantum.
            self._current.written.add(page)
            stats.first_writes += 1
            if (
                self.buffer_capacity is not None
                and len(self._current.buffer) >= self.buffer_capacity
            ):
                stats.buffer_overflow_drops += 1
                self._c_overflow_drops.inc()
                if obs.trace_active() and obs.forensics_active():
                    obs.emit(
                        "pril_revoke",
                        page=page,
                        reason="buffer_overflow",
                        quantum=self._quantum_index,
                    )
            else:
                self._current.buffer.add(page)

        # Step 3: the page was written, so its interval did not span the
        # previous-quantum boundary.
        if page in self._previous.buffer:
            self._previous.buffer.discard(page)
            stats.cross_quantum_drops += 1
            if obs.trace_active() and obs.forensics_active():
                obs.emit(
                    "pril_revoke",
                    page=page,
                    reason="cross_quantum_write",
                    quantum=self._quantum_index,
                )

    def end_quantum(self) -> List[int]:
        """Close the current quantum (Figure 13, right half).

        Returns the pages predicted to have a long remaining interval:
        everything still in the previous buffer (written exactly once in
        the previous quantum, untouched in the current one). Clears the
        previous structures and swaps.
        """
        predicted = sorted(self._previous.buffer)
        self.flush_metrics()
        self.stats.predictions_made += len(predicted)
        self._c_predictions.inc(len(predicted))
        self._previous.clear()
        self._previous, self._current = self._current, self._previous
        self._quantum_index += 1
        if obs.trace_active():
            obs.emit(
                "pril_quantum",
                quantum=self._quantum_index,
                predicted=len(predicted),
                buffer=len(self._previous.buffer),
            )
        return predicted

    def flush_metrics(self) -> None:
        """Sync ``pril.writes_observed`` with writes seen since last sync.

        Runs automatically at every quantum boundary; callers draining a
        trace that ends mid-quantum call it once at the end of the run.
        """
        delta = self.stats.writes_observed - self._writes_synced
        if delta:
            self._c_writes.inc(delta)
            self._writes_synced = self.stats.writes_observed

    def reset(self) -> None:
        """Forget all tracked state (quantum counter included)."""
        self._current.clear()
        self._previous.clear()
        self._quantum_index = 0
        self.stats = PrilStats()
        self._writes_synced = 0

    # ------------------------------------------------------------------
    def storage_overhead_bytes(
        self, total_pages: int, address_bits: int = 34
    ) -> int:
        """Hardware cost estimate: two write-maps plus two write-buffers.

        One bit per page per map; ``address_bits`` per buffer entry. With
        an 8 GB / 8 KB-page memory and 4000-entry buffers this matches the
        paper's ~17 KB buffer + 128 KB map figure (§6.4).
        """
        if total_pages <= 0:
            raise ValueError("total_pages must be positive")
        if address_bits <= 0:
            raise ValueError("address_bits must be positive")
        map_bytes = 2 * total_pages // 8
        capacity = self.buffer_capacity if self.buffer_capacity else 4000
        buffer_bytes = 2 * capacity * address_bits // 8
        return map_bytes + buffer_bytes
