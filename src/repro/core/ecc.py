"""ECC-based mitigation of detected failures.

The paper lists three mitigation options for a row whose current content
fails: a higher refresh rate (what the main evaluation uses), ECC, or
remapping (§1, §2). This module provides the ECC alternative: a
SECDED(72,64) code protects each 64-bit word, so a failing row whose
failures are confined to *at most one bit per word* can stay at LO-REF
with its errors corrected on read — only rows with a multi-bit word need
HI-REF.

The module also provides the mitigation-policy abstraction used by the
ablation bench: given a row's failing cells, decide the cheapest safe
treatment.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, List, Sequence

from ..dram.faults import VulnerableCell

#: SECDED(72,64): data bits per protected word.
SECDED_WORD_BITS = 64
#: Check bits per word (storage overhead 8/64 = 12.5%).
SECDED_CHECK_BITS = 8


class Mitigation(Enum):
    """Treatment assigned to a row for its current content."""

    LO_REF = "lo_ref"            # no failures: slow refresh, no help needed
    ECC_LO_REF = "ecc_lo_ref"    # correctable failures: slow refresh + ECC
    HI_REF = "hi_ref"            # uncorrectable: fast refresh


@dataclass(frozen=True)
class EccConfig:
    """SECDED geometry and its costs."""

    word_bits: int = SECDED_WORD_BITS
    check_bits: int = SECDED_CHECK_BITS
    #: Bits correctable per word (1 for SECDED).
    correctable_per_word: int = 1

    def __post_init__(self) -> None:
        if self.word_bits <= 0 or self.check_bits <= 0:
            raise ValueError("word and check bits must be positive")
        if self.correctable_per_word < 0:
            raise ValueError("correctable_per_word must be non-negative")

    @property
    def storage_overhead(self) -> float:
        """Extra capacity consumed by check bits."""
        return self.check_bits / self.word_bits


def failures_per_word(
    failing_bits: Iterable[int], word_bits: int = SECDED_WORD_BITS
) -> Counter:
    """Histogram of failing-bit counts per ECC word."""
    counts: Counter = Counter()
    for bit in failing_bits:
        if bit < 0:
            raise ValueError("bit positions must be non-negative")
        counts[bit // word_bits] += 1
    return counts


def row_is_correctable(
    failing_bits: Sequence[int], config: EccConfig = EccConfig()
) -> bool:
    """Whether ECC alone can cover a row's current-content failures."""
    if not failing_bits:
        return True
    per_word = failures_per_word(failing_bits, config.word_bits)
    return max(per_word.values()) <= config.correctable_per_word


def choose_mitigation(
    failing_cells: Sequence[VulnerableCell],
    config: EccConfig = EccConfig(),
    ecc_enabled: bool = True,
) -> Mitigation:
    """Pick the cheapest safe treatment for a tested row.

    Order of preference: LO_REF (free) -> ECC_LO_REF (uses up the code's
    correction budget) -> HI_REF (4x refresh cost).
    """
    if not failing_cells:
        return Mitigation.LO_REF
    if ecc_enabled and row_is_correctable(
        [cell.physical_column for cell in failing_cells], config
    ):
        return Mitigation.ECC_LO_REF
    return Mitigation.HI_REF


@dataclass(frozen=True)
class MitigationSummary:
    """How a population of tested rows was treated."""

    lo_ref_rows: int
    ecc_rows: int
    hi_ref_rows: int

    @property
    def total(self) -> int:
        return self.lo_ref_rows + self.ecc_rows + self.hi_ref_rows

    @property
    def hi_ref_fraction(self) -> float:
        return self.hi_ref_rows / self.total if self.total else 0.0

    def refresh_ops_per_window(
        self, hi_per_lo: float = 4.0
    ) -> float:
        """Refresh operations per LO-REF window across the population.

        LO-REF rows (plain or ECC-covered) refresh once; HI-REF rows
        ``hi_per_lo`` times (4 for 16 ms vs 64 ms).
        """
        return (
            self.lo_ref_rows + self.ecc_rows + self.hi_ref_rows * hi_per_lo
        )


def summarise_mitigations(
    assignments: Iterable[Mitigation],
) -> MitigationSummary:
    """Tally a stream of per-row mitigation decisions."""
    counts = Counter(assignments)
    return MitigationSummary(
        lo_ref_rows=counts.get(Mitigation.LO_REF, 0),
        ecc_rows=counts.get(Mitigation.ECC_LO_REF, 0),
        hi_ref_rows=counts.get(Mitigation.HI_REF, 0),
    )
