"""The MEMCON controller and its refresh-reduction accounting.

Two implementations of the same mechanism:

* :class:`MemconController` — the event-driven reference. It wires PRIL,
  a row-test engine, a functional DRAM device and a refresh ledger
  together and processes a write trace event by event, exactly following
  the paper's workflow: every write bumps its row to HI-REF and updates
  PRIL; at each quantum boundary PRIL yields the pages predicted idle, and
  MEMCON tests them; rows that pass move to LO-REF, rows that fail stay at
  HI-REF.

* :func:`simulate_refresh_reduction` — a fast, vectorised accounting model
  with identical semantics for unbounded PRIL buffers (cross-checked in
  the test suite). It evaluates per page which writes qualify as
  single-write-in-quantum followed by an idle quantum, and integrates
  LO-REF time directly. The experiments driving the paper's Figures 14,
  17 and 18 use this path so full traces stay fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set

import numpy as np

from .. import obs
from ..dram.cell_array import CellArray
from ..dram.timing import HI_REF_INTERVAL_MS, LO_REF_INTERVAL_MS, DDR3_1600
from ..traces.events import WriteTrace
from .costmodel import TestMode, test_cost_ns
from .pril import PrilPredictor
from .refresh import RefreshLedger, RefreshState
from .testing import RowTestEngine


def content_fail_batch(
    cells: CellArray,
    refresh_interval_ms: float,
    page_to_row: Optional[Callable[[np.ndarray], np.ndarray]] = None,
) -> Callable[[Sequence[int]], np.ndarray]:
    """Batch test-outcome predicate backed by the *current* memory content.

    Returns ``fails(pages) -> bool array`` answered by the vectorised
    fault-evaluation engine (:meth:`CellArray.evaluate_rows`), so the
    controller can classify, e.g., every read-only page of a module in one
    pass instead of one device-level row test per page. ``page_to_row``
    translates page numbers to flat DRAM rows (identity by default).
    """

    def fails(pages: Sequence[int]) -> np.ndarray:
        pages = np.asarray(pages, dtype=np.int64)
        rows = page_to_row(pages) if page_to_row is not None else pages
        return cells.evaluate_rows(rows, refresh_interval_ms)

    return fails


@dataclass
class MemconConfig:
    """Knobs shared by both MEMCON implementations."""

    quantum_ms: float = 1024.0
    hi_ref_interval_ms: float = HI_REF_INTERVAL_MS
    lo_ref_interval_ms: float = LO_REF_INTERVAL_MS
    test_mode: TestMode = TestMode.READ_AND_COMPARE
    #: Duration a row sits idle during a test: one LO-REF retention window.
    test_duration_ms: float = LO_REF_INTERVAL_MS
    #: Test read-only pages (never written in the trace) once at start-up
    #: and run them at LO-REF — the paper's read-only-row optimisation.
    test_read_only_pages: bool = True
    #: Threshold separating correct from mispredicted tests in reporting.
    long_interval_ms: float = 1024.0

    def __post_init__(self) -> None:
        if self.quantum_ms <= 0:
            raise ValueError("quantum_ms must be positive")
        if self.hi_ref_interval_ms <= 0 or self.lo_ref_interval_ms <= 0:
            raise ValueError("refresh intervals must be positive")
        if self.lo_ref_interval_ms <= self.hi_ref_interval_ms:
            raise ValueError("LO-REF interval must exceed HI-REF interval")
        if self.test_duration_ms <= 0:
            raise ValueError("test_duration_ms must be positive")


@dataclass
class MemconReport:
    """Outcome of running MEMCON over one trace."""

    workload: str
    config: MemconConfig
    window_ms: float
    total_pages: int
    refresh_count: float
    baseline_refresh_count: float
    lo_ref_time_fraction: float
    tests_total: int
    tests_failed: int
    tests_correct: int        # prediction held: no write within long_interval
    tests_mispredicted: int
    refresh_time_ns: float
    baseline_refresh_time_ns: float
    testing_time_ns: float
    testing_time_correct_ns: float
    testing_time_mispredicted_ns: float
    #: Tests interrupted by a write inside the test window (the row goes
    #: straight back to HI-REF without a pass/fail verdict).
    tests_aborted: int = 0

    @property
    def refresh_reduction(self) -> float:
        if self.baseline_refresh_count == 0:
            return 0.0
        return 1.0 - self.refresh_count / self.baseline_refresh_count

    @property
    def upper_bound_reduction(self) -> float:
        """Reduction if every row ran at LO-REF always (75% for 16/64 ms)."""
        return 1.0 - (
            self.config.hi_ref_interval_ms / self.config.lo_ref_interval_ms
        )

    @property
    def testing_time_vs_baseline_refresh(self) -> float:
        """Figure 18's headline: testing time / baseline refresh time."""
        if self.baseline_refresh_time_ns == 0:
            return 0.0
        return self.testing_time_ns / self.baseline_refresh_time_ns


# ----------------------------------------------------------------------
# Fast accounting model
# ----------------------------------------------------------------------
@obs.timed("memcon.simulate")
def simulate_refresh_reduction(
    trace: WriteTrace,
    config: Optional[MemconConfig] = None,
    failing_page_fraction: float = 0.0,
    seed: int = 0,
) -> MemconReport:
    """Account MEMCON's refresh and testing costs over a write trace.

    Semantics (unbounded PRIL buffers): a write qualifies for testing iff
    it is the only write to its page within its quantum and the page stays
    unwritten through the following quantum; the test starts at that
    quantum boundary, holds the row for ``test_duration_ms``, and — if the
    content passes — the row runs at LO-REF until its next write. Failing
    pages (drawn pseudo-randomly with ``failing_page_fraction``, modelling
    content that trips the fault model) always return to HI-REF.

    Read-only pages are tested once at time zero when enabled.

    The accounting is evaluated in one vectorised pass over the flattened
    write stream (all pages at once); the retired per-page loop survives
    as :func:`_simulate_refresh_reduction_loop`, the equivalence oracle.
    Results are bit-identical: the failing-page draws consume the same
    RNG stream (one double per written page, in dict order) and both time
    accumulators sum their contributions in the same order (``np.cumsum``
    is sequential left-to-right, like the loop's ``+=``).

    With a trace sink active the model also replays its verdicts as the
    standard event stream (``pril_quantum``, ``test_*``,
    ``ref_transition``), emitted in global time order so windowed
    aggregation over the stream is meaningful; that path runs through the
    loop implementation, which owns per-test event emission.
    """
    config = config or MemconConfig()
    if not 0.0 <= failing_page_fraction <= 1.0:
        raise ValueError("failing_page_fraction must be a probability")
    if obs.trace_active():
        return _simulate_refresh_reduction_loop(
            trace, config, failing_page_fraction, seed
        )
    rng = np.random.default_rng(seed)
    quantum = config.quantum_ms
    window = trace.duration_ms
    test_ms = config.test_duration_ms
    cost_ns = test_cost_ns(config.test_mode)

    lo_time_ms = 0.0
    testing_time_ms = 0.0
    tests_total = 0
    tests_failed = 0
    tests_correct = 0
    tests_mispredicted = 0
    tests_aborted = 0

    # Flatten every page's (sorted) write times into one stream, keeping
    # dict order so the per-page failing draws consume the RNG exactly as
    # the loop did: one double per written page, skipping empty pages.
    kept_arrays = [times for times in trace.writes.values() if len(times)]
    n_written = len(kept_arrays)
    if n_written:
        page_fails = rng.random(n_written) < failing_page_fraction
        counts = np.array([len(a) for a in kept_arrays], dtype=np.int64)
        all_times = np.concatenate(kept_arrays)
        n = len(all_times)
        ends = np.cumsum(counts)
        starts = ends - counts
        first_of_page = np.zeros(n, dtype=bool)
        first_of_page[starts] = True
        # A write qualifies iff it is alone in its quantum (neither
        # neighbour within the same page shares it). `quanta` stays
        # float64: floor(t / q) is exact below 2**53, so comparisons and
        # the boundary product below match the loop's int64 arithmetic
        # bit for bit — and the candidate set is narrowed before any
        # further full-width work (bursty traces are mostly non-single).
        quanta = np.floor(all_times / quantum)
        same_prev = np.zeros(n, dtype=bool)
        same_prev[1:] = (quanta[1:] == quanta[:-1]) & ~first_of_page[1:]
        same_next = np.zeros(n, dtype=bool)
        same_next[:-1] = same_prev[1:]
        single = np.flatnonzero(~(same_prev | same_next))
        # The page must stay unwritten through the following quantum (the
        # prediction boundary), which must land inside the window.
        is_last = np.zeros(n, dtype=bool)
        is_last[ends - 1] = True
        next_write = np.where(
            is_last[single], window, all_times[np.minimum(single + 1, n - 1)]
        )
        boundary = (quanta[single] + 2) * quantum
        qualify = (boundary < window) & (next_write >= boundary)
        idle = next_write[qualify]
        start = boundary[qualify]
        test_end = start + test_ms
        page_of = np.searchsorted(starts, single[qualify], side="right") - 1
        fails = page_fails[page_of]

        tests_total = int(qualify.sum())
        tests_aborted = int(np.count_nonzero(idle < test_end))
        tests_failed = int(np.count_nonzero(fails))
        tests_correct = int(np.count_nonzero(idle - start > config.long_interval_ms))
        tests_mispredicted = tests_total - tests_correct
        if tests_total:
            testing_contrib = np.minimum(
                test_ms, np.maximum(0.0, idle - start)
            )
            testing_time_ms = float(np.cumsum(testing_contrib)[-1])
            lo_mask = ~fails & (idle > test_end)
            if lo_mask.any():
                lo_contrib = (
                    np.minimum(idle[lo_mask], window) - test_end[lo_mask]
                )
                lo_time_ms = float(np.cumsum(lo_contrib)[-1])

    # Read-only pages: one test at start-up, then LO-REF for the window.
    n_read_only = trace.total_pages - n_written
    if config.test_read_only_pages and n_read_only > 0:
        n_ro_failing = int(round(n_read_only * failing_page_fraction))
        n_ro_passing = n_read_only - n_ro_failing
        tests_total += n_read_only
        tests_failed += n_ro_failing
        tests_correct += n_read_only
        testing_time_ms += n_read_only * test_ms
        lo_time_ms += n_ro_passing * max(0.0, window - test_ms)

    return _memcon_report(
        trace, config, cost_ns, lo_time_ms, testing_time_ms, tests_total,
        tests_failed, tests_correct, tests_mispredicted, tests_aborted,
    )


def _simulate_refresh_reduction_loop(
    trace: WriteTrace,
    config: MemconConfig,
    failing_page_fraction: float = 0.0,
    seed: int = 0,
) -> MemconReport:
    """The retired per-page accounting loop (equivalence oracle).

    Bit-identical to the vectorised path; also the implementation behind
    traced runs, where it interleaves verdict events into the stream.
    """
    rng = np.random.default_rng(seed)
    quantum = config.quantum_ms
    window = trace.duration_ms
    test_ms = config.test_duration_ms
    cost_ns = test_cost_ns(config.test_mode)
    emit_trace = obs.trace_active()
    emit_forensics = emit_trace and obs.forensics_active()
    # (t_ms, order, kind, fields); order ranks pril_quantum events ahead
    # of the tests they predict at the same boundary instant.
    trace_events: List[tuple] = []
    predicted_per_quantum: Dict[int, int] = {}

    lo_time_ms = 0.0
    testing_time_ms = 0.0
    tests_total = 0
    tests_failed = 0
    tests_correct = 0
    tests_mispredicted = 0
    tests_aborted = 0

    written = set(trace.writes)
    for page, times in trace.writes.items():
        if len(times) == 0:
            written.discard(page)
            continue
        page_fails = rng.random() < failing_page_fraction
        quanta = np.floor(times / quantum).astype(np.int64)
        unique, first_idx, counts = np.unique(
            quanta, return_index=True, return_counts=True
        )
        next_write = np.append(times[1:], window)
        for u, idx, count in zip(unique, first_idx, counts):
            if count != 1:
                continue
            boundary = (u + 2) * quantum  # end of the following quantum
            if boundary >= window:
                continue  # the trace ends before PRIL could predict
            if next_write[idx] < boundary:
                continue  # written again before prediction fired
            tests_total += 1
            test_end = boundary + test_ms
            idle_until = next_write[idx]
            if idle_until < test_end:
                tests_aborted += 1
            testing_time_ms += min(test_ms, max(0.0, idle_until - boundary))
            if idle_until - boundary > config.long_interval_ms:
                tests_correct += 1
            else:
                tests_mispredicted += 1
            if emit_trace:
                q_start = int(u) + 2
                predicted_per_quantum[q_start] = (
                    predicted_per_quantum.get(q_start, 0) + 1
                )
                p = int(page)
                if emit_forensics:
                    # The grant and its write-interval evidence: the one
                    # write that qualified the page, and how long the
                    # page actually stayed idle (the trace's future).
                    trace_events.append(
                        (float(boundary), 1, "pril_grant",
                         {"page": p, "quantum": q_start,
                          "write_ms": float(times[idx]),
                          "next_write_ms": float(idle_until)}))
                trace_events.append(
                    (float(boundary), 1, "test_started", {"page": p}))
                trace_events.append((float(boundary), 1, "ref_transition",
                                     {"page": p, "from": "hi_ref",
                                      "to": "testing"}))
                if idle_until < test_end:
                    end = float(idle_until)
                    trace_events.append((end, 1, "test_aborted", {"page": p}))
                    trace_events.append((end, 1, "ref_transition",
                                         {"page": p, "from": "testing",
                                          "to": "hi_ref"}))
                elif page_fails:
                    trace_events.append(
                        (float(test_end), 1, "test_failed", {"page": p}))
                    trace_events.append((float(test_end), 1, "ref_transition",
                                         {"page": p, "from": "testing",
                                          "to": "hi_ref"}))
                else:
                    trace_events.append(
                        (float(test_end), 1, "test_passed", {"page": p}))
                    trace_events.append((float(test_end), 1, "ref_transition",
                                         {"page": p, "from": "testing",
                                          "to": "lo_ref"}))
                    if idle_until < window:
                        trace_events.append(
                            (float(idle_until), 1, "ref_transition",
                             {"page": p, "from": "lo_ref", "to": "hi_ref"}))
            if page_fails:
                tests_failed += 1
                continue
            if idle_until > test_end:
                lo_time_ms += min(idle_until, window) - test_end

    # Read-only pages: one test at start-up, then LO-REF for the window.
    n_read_only = trace.total_pages - len(written)
    if config.test_read_only_pages and n_read_only > 0:
        n_ro_failing = int(round(n_read_only * failing_page_fraction))
        n_ro_passing = n_read_only - n_ro_failing
        tests_total += n_read_only
        tests_failed += n_ro_failing
        tests_correct += n_read_only
        testing_time_ms += n_read_only * test_ms
        lo_time_ms += n_ro_passing * max(0.0, window - test_ms)
        if emit_trace:
            ro_pages = [
                p for p in range(trace.total_pages) if p not in written
            ][:n_read_only]
            for i, p in enumerate(ro_pages):
                trace_events.append((0.0, 1, "test_started", {"page": p}))
                trace_events.append((0.0, 1, "ref_transition",
                                     {"page": p, "from": "hi_ref",
                                      "to": "testing"}))
                outcome = "test_failed" if i < n_ro_failing else "test_passed"
                state = "hi_ref" if i < n_ro_failing else "lo_ref"
                trace_events.append(
                    (float(test_ms), 1, outcome, {"page": p}))
                trace_events.append((float(test_ms), 1, "ref_transition",
                                     {"page": p, "from": "testing",
                                      "to": state}))

    if emit_trace:
        for q, n in predicted_per_quantum.items():
            trace_events.append(
                (q * quantum, 0, "pril_quantum",
                 {"quantum": q, "predicted": n, "buffer": n}))
        trace_events.sort(key=lambda e: (e[0], e[1]))
        for t_ms, _, kind, fields in trace_events:
            if kind == "pril_quantum":
                obs.emit(kind, **fields)
            else:
                obs.emit(kind, t_ms=t_ms, **fields)

    return _memcon_report(
        trace, config, cost_ns, lo_time_ms, testing_time_ms, tests_total,
        tests_failed, tests_correct, tests_mispredicted, tests_aborted,
    )


def _memcon_report(
    trace: WriteTrace,
    config: MemconConfig,
    cost_ns: float,
    lo_time_ms: float,
    testing_time_ms: float,
    tests_total: int,
    tests_failed: int,
    tests_correct: int,
    tests_mispredicted: int,
    tests_aborted: int,
) -> MemconReport:
    """Fold accumulated times and counts into the :class:`MemconReport`."""
    window = trace.duration_ms
    hi_time_ms = trace.total_pages * window - lo_time_ms - testing_time_ms
    refresh_count = (
        hi_time_ms / config.hi_ref_interval_ms
        + lo_time_ms / config.lo_ref_interval_ms
    )
    baseline_count = trace.total_pages * window / config.hi_ref_interval_ms
    refresh_ns = DDR3_1600.row_refresh_ns
    correct_frac = tests_correct / tests_total if tests_total else 0.0
    registry = obs.get_registry()
    registry.counter("memcon.tests_started").inc(tests_total)
    registry.counter("memcon.tests_failed").inc(tests_failed)
    registry.counter("memcon.tests_aborted").inc(tests_aborted)
    return MemconReport(
        workload=trace.name,
        config=config,
        window_ms=window,
        total_pages=trace.total_pages,
        refresh_count=refresh_count,
        baseline_refresh_count=baseline_count,
        lo_ref_time_fraction=lo_time_ms / (trace.total_pages * window),
        tests_total=tests_total,
        tests_failed=tests_failed,
        tests_correct=tests_correct,
        tests_mispredicted=tests_mispredicted,
        refresh_time_ns=refresh_count * refresh_ns,
        baseline_refresh_time_ns=baseline_count * refresh_ns,
        testing_time_ns=tests_total * cost_ns,
        testing_time_correct_ns=tests_total * cost_ns * correct_frac,
        testing_time_mispredicted_ns=tests_total * cost_ns * (1 - correct_frac),
        tests_aborted=tests_aborted,
    )


# ----------------------------------------------------------------------
# Event-driven reference controller
# ----------------------------------------------------------------------
class MemconController:
    """Event-driven MEMCON over a write trace (reference implementation).

    ``page_to_row`` maps trace pages to DRAM rows (identity by default).
    When a device and test engine are supplied, tests run real content
    through the fault model; otherwise a ``fails`` predicate decides test
    outcomes (useful for accounting-only runs and unit tests).
    """

    def __init__(
        self,
        total_pages: int,
        config: Optional[MemconConfig] = None,
        test_engine: Optional[RowTestEngine] = None,
        fails: Optional[Callable[[int], bool]] = None,
        fails_batch: Optional[Callable[[Sequence[int]], np.ndarray]] = None,
        buffer_capacity: Optional[int] = None,
    ) -> None:
        if total_pages <= 0:
            raise ValueError("total_pages must be positive")
        self.config = config or MemconConfig()
        self.total_pages = total_pages
        self._fails_batch = fails_batch
        if fails is None and fails_batch is not None:
            fails = lambda page: bool(fails_batch([page])[0])
        self.pril = PrilPredictor(
            quantum_ms=self.config.quantum_ms,
            buffer_capacity=buffer_capacity,
        )
        self.ledger = RefreshLedger(
            total_rows=total_pages,
            hi_ref_interval_ms=self.config.hi_ref_interval_ms,
            lo_ref_interval_ms=self.config.lo_ref_interval_ms,
        )
        self.engine = test_engine
        self._fails = fails if fails is not None else (lambda page: False)
        self._now_ms = 0.0
        self._next_boundary_ms = self.config.quantum_ms
        self._last_write_ms: Dict[int, float] = {}
        self.tests_total = 0
        self.tests_failed = 0
        self.tests_correct = 0
        self.tests_mispredicted = 0
        self.tests_aborted = 0
        registry = obs.get_registry()
        self._c_started = registry.counter("memcon.tests_started")
        self._c_aborted = registry.counter("memcon.tests_aborted")
        self._c_passed = registry.counter("memcon.tests_passed")
        self._c_failed = registry.counter("memcon.tests_failed")
        self._c_to_lo = registry.counter("memcon.transitions_to_lo")
        self._c_to_hi = registry.counter("memcon.transitions_to_hi")

    # ------------------------------------------------------------------
    def _set_state(
        self, page: int, state: RefreshState, now_ms: float
    ) -> None:
        """Ledger transition plus transition counters and trace events."""
        previous = self.ledger.state_of(page)
        self.ledger.set_state(page, state, now_ms)
        if state is previous:
            return
        if state is RefreshState.LO_REF:
            self._c_to_lo.inc()
        elif state is RefreshState.HI_REF:
            self._c_to_hi.inc()
        if obs.trace_active():
            obs.emit(
                "ref_transition", t_ms=now_ms, page=page,
                **{"from": previous.value, "to": state.value},
            )

    def _advance_to(self, now_ms: float, trace: WriteTrace) -> None:
        """Cross any quantum boundaries between the clock and ``now_ms``."""
        while self._next_boundary_ms <= now_ms:
            boundary = self._next_boundary_ms
            for page in self.pril.end_quantum():
                self._start_test(page, boundary, trace)
            self._next_boundary_ms += self.config.quantum_ms
        self._now_ms = now_ms

    def _start_test(self, page: int, boundary_ms: float, trace: WriteTrace) -> None:
        cfg = self.config
        test_end = boundary_ms + cfg.test_duration_ms
        self.tests_total += 1
        self._c_started.inc()
        next_write = self._next_write_after(page, boundary_ms, trace)
        if obs.trace_active():
            if obs.forensics_active():
                obs.emit(
                    "pril_grant", t_ms=boundary_ms, page=page,
                    quantum=int(round(boundary_ms / cfg.quantum_ms)),
                    next_write_ms=next_write,
                )
            obs.emit("test_started", t_ms=boundary_ms, page=page)
        # Classify the prediction against the trace's future for reporting.
        if next_write - boundary_ms > cfg.long_interval_ms:
            self.tests_correct += 1
        else:
            self.tests_mispredicted += 1
        self._set_state(page, RefreshState.TESTING, boundary_ms)
        if next_write < test_end:
            # The test will be aborted by the write; the write handler
            # moves the row back to HI-REF when it arrives.
            self.tests_aborted += 1
            self._c_aborted.inc()
            if obs.trace_active():
                obs.emit("test_aborted", t_ms=next_write, page=page)
            return
        if self.engine is not None:
            failed = not self.engine.run_test(page, boundary_ms).passed
        else:
            failed = self._fails(page)
        if failed:
            self.tests_failed += 1
            self._c_failed.inc()
            if obs.trace_active():
                obs.emit("test_failed", t_ms=test_end, page=page)
            self._set_state(page, RefreshState.HI_REF, test_end)
        else:
            self._c_passed.inc()
            if obs.trace_active():
                obs.emit("test_passed", t_ms=test_end, page=page)
            self._set_state(page, RefreshState.LO_REF, test_end)

    @staticmethod
    def _next_write_after(page: int, t_ms: float, trace: WriteTrace) -> float:
        times = trace.writes.get(page)
        if times is None or len(times) == 0:
            return trace.duration_ms
        idx = np.searchsorted(times, t_ms, side="right")
        if idx >= len(times):
            return trace.duration_ms
        return float(times[idx])

    # ------------------------------------------------------------------
    @obs.timed("memcon.run")
    def run(self, trace: WriteTrace, failing_page_fraction: float = 0.0,
            seed: int = 0) -> MemconReport:
        """Process a whole trace and return the accounting report."""
        if trace.total_pages != self.total_pages:
            raise ValueError("trace footprint does not match controller")
        cfg = self.config
        rng = np.random.default_rng(seed)
        if failing_page_fraction:
            # Compose with any content-backed predicate instead of
            # replacing it: a page fails when its content trips the fault
            # model *or* the pseudo-random draw marks it failing.
            failing = {
                page for page in range(self.total_pages)
                if rng.random() < failing_page_fraction
            }
            content_fails = self._fails
            self._fails = (
                lambda page: page in failing or content_fails(page)
            )
        # Read-only pages: tested once at start-up. With a batch predicate
        # the whole module is classified in one vectorised pass.
        if cfg.test_read_only_pages:
            written = {p for p, t in trace.writes.items() if len(t)}
            read_only = [p for p in range(self.total_pages) if p not in written]
            if self._fails_batch is not None:
                outcomes = np.asarray(self._fails_batch(read_only), dtype=bool)
                if failing_page_fraction:
                    outcomes |= np.fromiter(
                        (p in failing for p in read_only),
                        bool, len(read_only),
                    )
            else:
                outcomes = np.fromiter(
                    (self._fails(page) for page in read_only),
                    bool, len(read_only),
                )
            for page, failed in zip(read_only, outcomes):
                self.tests_total += 1
                self.tests_correct += 1
                self._c_started.inc()
                if obs.trace_active():
                    obs.emit("test_started", t_ms=0.0, page=page)
                self._set_state(page, RefreshState.TESTING, 0.0)
                if failed:
                    self.tests_failed += 1
                    self._c_failed.inc()
                    if obs.trace_active():
                        obs.emit(
                            "test_failed", t_ms=cfg.test_duration_ms, page=page
                        )
                    self._set_state(
                        page, RefreshState.HI_REF, cfg.test_duration_ms
                    )
                else:
                    self._c_passed.inc()
                    if obs.trace_active():
                        obs.emit(
                            "test_passed", t_ms=cfg.test_duration_ms, page=page
                        )
                    self._set_state(
                        page, RefreshState.LO_REF, cfg.test_duration_ms
                    )
        for time_ms, page in trace.merged_events():
            self._advance_to(time_ms, trace)
            if self.ledger.state_of(page) is not RefreshState.HI_REF:
                self._set_state(page, RefreshState.HI_REF, time_ms)
            self.pril.observe_write(page)
            self._last_write_ms[page] = time_ms
        # Advance to just below the window end: a quantum boundary landing
        # exactly on the capture edge cannot start a (zero-length) test.
        self._advance_to(float(np.nextafter(trace.duration_ms, 0.0)), trace)
        self.pril.flush_metrics()  # writes landing in a trailing partial quantum
        self.ledger.finalize(trace.duration_ms)

        cost_ns = test_cost_ns(cfg.test_mode)
        refresh_ns = DDR3_1600.row_refresh_ns
        refresh_count = self.ledger.refresh_count()
        baseline = self.ledger.baseline_refresh_count()
        return MemconReport(
            workload=trace.name,
            config=cfg,
            window_ms=trace.duration_ms,
            total_pages=self.total_pages,
            refresh_count=refresh_count,
            baseline_refresh_count=baseline,
            lo_ref_time_fraction=self.ledger.lo_ref_time_fraction(),
            tests_total=self.tests_total,
            tests_failed=self.tests_failed,
            tests_correct=self.tests_correct,
            tests_mispredicted=self.tests_mispredicted,
            refresh_time_ns=refresh_count * refresh_ns,
            baseline_refresh_time_ns=baseline * refresh_ns,
            testing_time_ns=self.tests_total * cost_ns,
            testing_time_correct_ns=self.tests_correct * cost_ns,
            testing_time_mispredicted_ns=self.tests_mispredicted * cost_ns,
            tests_aborted=self.tests_aborted,
        )
