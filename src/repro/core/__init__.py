"""MEMCON core: cost model, PRIL predictor, test engines, controller."""

from .costmodel import (
    CostModel,
    TestMode,
    copy_and_compare_storage_overhead,
    test_cost_ns,
)
from .ecc import (
    EccConfig,
    Mitigation,
    MitigationSummary,
    choose_mitigation,
    row_is_correctable,
    summarise_mitigations,
)
from .indram import (
    AcceleratedCostModel,
    CopyMechanism,
    accelerated_test_cost_ns,
    copy_cost_ns,
    min_write_interval_by_mechanism,
)
from .memcon import (
    MemconConfig,
    MemconController,
    MemconReport,
    simulate_refresh_reduction,
)
from .pril import PrilPredictor, PrilStats
from .refresh import (
    FixedRefreshPolicy,
    RaidrPolicy,
    RefreshLedger,
    RefreshState,
    StateTimes,
)
from .remap import MitigationPlan, RemapTable, plan_mitigations
from .silentwrites import SilentWriteFilter, SilentWriteStats, filter_trace
from .testing import (
    ReservedRegion,
    RowTestEngine,
    RowTestResult,
    make_reserved_region,
)

__all__ = [
    "AcceleratedCostModel",
    "CopyMechanism",
    "CostModel",
    "EccConfig",
    "FixedRefreshPolicy",
    "Mitigation",
    "MitigationPlan",
    "MitigationSummary",
    "RemapTable",
    "plan_mitigations",
    "SilentWriteFilter",
    "SilentWriteStats",
    "accelerated_test_cost_ns",
    "choose_mitigation",
    "copy_cost_ns",
    "filter_trace",
    "min_write_interval_by_mechanism",
    "row_is_correctable",
    "summarise_mitigations",
    "MemconConfig",
    "MemconController",
    "MemconReport",
    "PrilPredictor",
    "PrilStats",
    "RaidrPolicy",
    "RefreshLedger",
    "RefreshState",
    "ReservedRegion",
    "RowTestEngine",
    "RowTestResult",
    "StateTimes",
    "TestMode",
    "copy_and_compare_storage_overhead",
    "make_reserved_region",
    "simulate_refresh_reduction",
    "test_cost_ns",
]
