"""In-DRAM copy acceleration for Copy&Compare (paper footnote 6).

Copy&Compare's extra cost over Read&Compare is the full-row write that
parks the in-test row in the reserved region. The paper notes this copy
can be done inside DRAM — RowClone (bank-internal, two back-to-back
activations) or LISA (inter-subarray links) — dropping the copy from a
128-burst streaming write to a couple of row-cycle times, and leaving
only the two reads (for ECC computation) on the channel.

This module extends the cost model with those mechanisms and recomputes
the MinWriteInterval, quantifying how much of Copy&Compare's amortisation
gap the accelerated copies close.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict

from ..dram.timing import DDR3_1600, TimingParameters
from .costmodel import CostModel, TestMode


class CopyMechanism(Enum):
    """How the in-test row reaches the reserved region."""

    OVER_CHANNEL = "over_channel"   # baseline: read out, write back
    ROWCLONE = "rowclone"           # in-bank: ACT src -> ACT dst -> PRE
    LISA = "lisa"                   # inter-subarray row-buffer movement


def copy_cost_ns(
    mechanism: CopyMechanism,
    timing: TimingParameters = DDR3_1600,
) -> float:
    """Latency of copying one full row to the reserved region."""
    if mechanism is CopyMechanism.OVER_CHANNEL:
        return timing.row_write_ns
    if mechanism is CopyMechanism.ROWCLONE:
        # Back-to-back activation of source then destination row, then
        # precharge: tRAS + tRAS + tRP (RowClone's FPM intra-subarray copy).
        return 2 * timing.tRAS + timing.tRP
    if mechanism is CopyMechanism.LISA:
        # Row-buffer movement across linked subarrays: one activation plus
        # a handful of link transfers, slightly slower than RowClone FPM.
        return 2 * timing.tRAS + timing.tRP + 8 * timing.tCK
    raise ValueError(f"unknown copy mechanism {mechanism!r}")


def accelerated_test_cost_ns(
    mechanism: CopyMechanism,
    timing: TimingParameters = DDR3_1600,
) -> float:
    """Copy&Compare cost with the given copy mechanism.

    Two full-row reads (ECC before/after) always cross the channel; only
    the parking copy is accelerated.
    """
    return 2 * timing.row_read_ns + copy_cost_ns(mechanism, timing)


@dataclass(frozen=True)
class AcceleratedCostModel(CostModel):
    """Cost model whose Copy&Compare uses an in-DRAM copy mechanism."""

    copy_mechanism: CopyMechanism = CopyMechanism.ROWCLONE

    def memcon_cost_ns(self, t_ms: float, mode: TestMode) -> float:
        if mode is not TestMode.COPY_AND_COMPARE:
            return super().memcon_cost_ns(t_ms, mode)
        baseline = super().memcon_cost_ns(t_ms, mode)
        saved = self.timing.copy_and_compare_ns - accelerated_test_cost_ns(
            self.copy_mechanism, self.timing
        )
        return baseline - saved


def min_write_interval_by_mechanism(
    timing: TimingParameters = DDR3_1600,
    lo_ref_interval_ms: float = 64.0,
) -> Dict[CopyMechanism, float]:
    """MinWriteInterval of Copy&Compare under each copy mechanism."""
    results = {}
    for mechanism in CopyMechanism:
        model = AcceleratedCostModel(
            timing=timing,
            lo_ref_interval_ms=lo_ref_interval_ms,
            copy_mechanism=mechanism,
        )
        results[mechanism] = model.min_write_interval_ms(
            TestMode.COPY_AND_COMPARE
        )
    return results
