"""Silent-write detection (the paper's footnote 9 optimisation).

A *silent write* stores the value that is already in memory. Content is
unchanged, so MEMCON need not re-test the row — and, just as importantly,
the row's write interval is effectively still running, so PRIL should not
restart its idle clock. The paper cites the silent-store literature
(Lepak & Lipasti) observing that a substantial fraction of stores are
silent.

The detector keeps a content digest per page (what a memory controller
could maintain with one extra read per write, or for free on
read-modify-write paths) and classifies each write as silent or not. The
filtered trace it produces feeds straight into the existing PRIL/MEMCON
pipeline.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional, Tuple

import numpy as np

from ..traces.events import WriteTrace


@dataclass
class SilentWriteStats:
    """Counts from one filtering pass."""

    writes_seen: int = 0
    silent_writes: int = 0

    @property
    def silent_fraction(self) -> float:
        if self.writes_seen == 0:
            return 0.0
        return self.silent_writes / self.writes_seen


class SilentWriteFilter:
    """Per-page content digests that classify writes as silent."""

    def __init__(self) -> None:
        self._digests: Dict[int, int] = {}
        self.stats = SilentWriteStats()

    def observe(self, page: int, content: bytes) -> bool:
        """Record a write of ``content`` to ``page``; True when silent."""
        if page < 0:
            raise ValueError("page must be non-negative")
        digest = zlib.crc32(content)
        self.stats.writes_seen += 1
        silent = self._digests.get(page) == digest
        if silent:
            self.stats.silent_writes += 1
        else:
            self._digests[page] = digest
        return silent


def filter_trace(
    trace: WriteTrace,
    silent_probability: float,
    seed: int = 0,
) -> Tuple[WriteTrace, SilentWriteStats]:
    """Drop a ``silent_probability`` fraction of writes from a trace.

    Write traces carry no data values, so silence is modelled
    statistically: each write is independently silent with the given
    probability (the silent-store literature reports 20-60% depending on
    workload). The first write to a page is never silent — there is no
    prior content to match.

    Returns the filtered trace plus the statistics, ready for
    :func:`repro.core.memcon.simulate_refresh_reduction`.
    """
    if not 0.0 <= silent_probability <= 1.0:
        raise ValueError("silent_probability must be a probability")
    rng = np.random.default_rng(seed)
    stats = SilentWriteStats()
    filtered: Dict[int, np.ndarray] = {}
    for page, times in trace.writes.items():
        if len(times) == 0:
            continue
        keep = rng.random(len(times)) >= silent_probability
        keep[0] = True  # the first write always changes content
        stats.writes_seen += len(times)
        stats.silent_writes += int((~keep).sum())
        kept = times[keep]
        if len(kept):
            filtered[page] = kept
    return (
        WriteTrace(
            duration_ms=trace.duration_ms,
            writes=filtered,
            total_pages=trace.total_pages,
            name=f"{trace.name}(silent-filtered)" if trace.name else "",
        ),
        stats,
    )
