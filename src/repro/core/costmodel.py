"""Cost-benefit analysis of content testing (paper §3.3, Figure 6, Appendix).

MEMCON trades the one-time cost of testing a row's content against the
refresh savings of running that row at LO-REF afterwards. This module
models both accumulated-latency curves and finds the crossover — the
*MinWriteInterval*: the minimum gap between two consecutive writes (tests)
to a row for testing to pay for itself.

With the default DDR3-1600 timings the model reproduces the paper exactly:

===================  ==============  ==================
test mode            LO-REF interval  MinWriteInterval
===================  ==============  ==================
Read and Compare      64 ms           560 ms
Copy and Compare      64 ms           864 ms
Read and Compare     128 ms           480 ms
Read and Compare     256 ms           448 ms
===================  ==============  ==================

Accounting detail that the paper's Figure 6 implies: the test itself keeps
the row idle for one full LO-REF retention window (cells must be tested at
their lowest charge), so the row's first post-test LO-REF refresh is not
an *extra* cost — MEMCON's refresh charges start one LO-REF interval after
the test. The HI-REF baseline refreshes on its grid from time zero.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Sequence, Tuple

from ..dram.timing import (
    HI_REF_INTERVAL_MS,
    LO_REF_INTERVAL_MS,
    DDR3_1600,
    TimingParameters,
)


class TestMode(Enum):
    """Where in-test row content is buffered during the idle window.

    READ_AND_COMPARE buffers the whole row in the memory controller (two
    full-row reads). COPY_AND_COMPARE parks the row in a reserved DRAM
    region and keeps only ECC in the controller (two reads plus one write),
    trading 50% more test latency for far less controller storage.
    """

    __test__ = False  # "Test" prefix is domain vocabulary, not a pytest class

    READ_AND_COMPARE = "read_and_compare"
    COPY_AND_COMPARE = "copy_and_compare"


def test_cost_ns(mode: TestMode, timing: TimingParameters = DDR3_1600) -> float:
    """Latency cost of one row test in the given mode (paper Appendix)."""
    if mode is TestMode.READ_AND_COMPARE:
        return timing.read_and_compare_ns
    if mode is TestMode.COPY_AND_COMPARE:
        return timing.copy_and_compare_ns
    raise ValueError(f"unknown test mode {mode!r}")


@dataclass(frozen=True)
class CostModel:
    """Accumulated per-row latency cost of HI-REF vs MEMCON over time."""

    timing: TimingParameters = DDR3_1600
    hi_ref_interval_ms: float = HI_REF_INTERVAL_MS
    lo_ref_interval_ms: float = LO_REF_INTERVAL_MS

    def __post_init__(self) -> None:
        if self.hi_ref_interval_ms <= 0 or self.lo_ref_interval_ms <= 0:
            raise ValueError("refresh intervals must be positive")
        if self.lo_ref_interval_ms <= self.hi_ref_interval_ms:
            raise ValueError("LO-REF interval must exceed HI-REF interval")

    # ------------------------------------------------------------------
    def hi_ref_cost_ns(self, t_ms: float) -> float:
        """Accumulated refresh latency of the always-HI-REF baseline.

        Refreshes land on the HI-REF grid: one at every multiple of the
        interval that has elapsed by time ``t``.
        """
        if t_ms < 0:
            raise ValueError("t_ms must be non-negative")
        refreshes = math.floor(t_ms / self.hi_ref_interval_ms)
        return refreshes * self.timing.row_refresh_ns

    def memcon_cost_ns(self, t_ms: float, mode: TestMode) -> float:
        """Accumulated cost of MEMCON: test once at t=0, then LO-REF.

        The test holds the row idle through the first LO-REF window, so
        LO-REF refreshes start one interval after the test completes.
        """
        if t_ms < 0:
            raise ValueError("t_ms must be non-negative")
        cost = test_cost_ns(mode, self.timing)
        post_test_ms = t_ms - self.lo_ref_interval_ms
        if post_test_ms > 0:
            refreshes = math.floor(post_test_ms / self.lo_ref_interval_ms)
            cost += refreshes * self.timing.row_refresh_ns
        return cost

    # ------------------------------------------------------------------
    def min_write_interval_ms(
        self,
        mode: TestMode,
        resolution_ms: float = 16.0,
        horizon_ms: float = 60_000.0,
    ) -> float:
        """Smallest write interval at which testing beats HI-REF.

        Scans the accumulated-cost curves on the HI-REF refresh grid (the
        curves only change at refresh instants, so the HI-REF interval is
        the natural resolution) and returns the first time the HI-REF curve
        meets or exceeds the MEMCON curve.
        """
        if resolution_ms <= 0:
            raise ValueError("resolution_ms must be positive")
        steps = int(horizon_ms / resolution_ms)
        for step in range(1, steps + 1):
            t_ms = step * resolution_ms
            if self.hi_ref_cost_ns(t_ms) >= self.memcon_cost_ns(t_ms, mode):
                return t_ms
        raise RuntimeError(
            f"no crossover within {horizon_ms} ms; testing never amortises"
        )

    def cost_curves(
        self,
        mode: TestMode,
        horizon_ms: float,
        resolution_ms: float = 16.0,
    ) -> Tuple[List[float], List[float], List[float]]:
        """(times, hi_ref_costs, memcon_costs) for plotting Figure 6."""
        if horizon_ms <= 0:
            raise ValueError("horizon_ms must be positive")
        times = [
            step * resolution_ms
            for step in range(1, int(horizon_ms / resolution_ms) + 1)
        ]
        hi = [self.hi_ref_cost_ns(t) for t in times]
        mem = [self.memcon_cost_ns(t, mode) for t in times]
        return times, hi, mem

    # ------------------------------------------------------------------
    def refresh_savings_ns(self, interval_ms: float, mode: TestMode) -> float:
        """Net latency saved over one write interval by testing at its start.

        Positive when the interval exceeds the MinWriteInterval; negative
        when testing was a loss.
        """
        if interval_ms < 0:
            raise ValueError("interval_ms must be non-negative")
        return self.hi_ref_cost_ns(interval_ms) - self.memcon_cost_ns(
            interval_ms, mode
        )


def copy_and_compare_storage_overhead(
    reserved_rows_per_bank: int = 512,
    rows_per_bank: int = 32768,
    banks: int = 8,
) -> float:
    """DRAM capacity fraction reserved for in-test row parking.

    The paper's Appendix: 512 reserved rows per bank in a 2 GB module with
    8 banks costs 4096 / 262144 = 1.56% of capacity.
    """
    if reserved_rows_per_bank < 0 or rows_per_bank <= 0 or banks <= 0:
        raise ValueError("row and bank counts must be positive")
    if reserved_rows_per_bank > rows_per_bank:
        raise ValueError("cannot reserve more rows than a bank has")
    return (reserved_rows_per_bank * banks) / (rows_per_bank * banks)
