"""Online row-test engines: Read&Compare and Copy&Compare (paper §3.3).

A content test holds the in-test row idle for one full retention window so
its cells reach their lowest charge, then compares the content before and
after. The two modes differ in where the *before* image lives while the
row is idle:

* **Read&Compare** — the whole row is buffered in the memory controller;
* **Copy&Compare** — the row is parked in a reserved DRAM region (so
  program reads can still be served) and only an ECC digest stays in the
  controller.

Both engines run against the functional :class:`~repro.dram.DramDevice`,
so detected failures are the *actual* data-dependent failures the fault
model produces for the row's current content. Each engine also reports its
memory-traffic cost, which the performance simulator injects as extra
requests (Table 3).
"""

from __future__ import annotations

import hashlib
import zlib
from dataclasses import dataclass, field

import numpy as np
from enum import Enum
from typing import Dict, List, Optional, Set

from ..dram.device import DramDevice
from ..dram.timing import LO_REF_INTERVAL_MS, DDR3_1600, TimingParameters
from .costmodel import TestMode, test_cost_ns


@dataclass(frozen=True)
class RowTestResult:
    """Outcome of one content test."""

    row: int
    mode: TestMode
    passed: bool              # True -> no bit changed across the window
    started_ms: float
    finished_ms: float
    flipped_bits: int         # 0 for Copy&Compare failures (digest only)
    latency_cost_ns: float    # controller-side latency charged to the test
    extra_reads: int          # full-row reads issued
    extra_writes: int         # full-row writes issued


class ReservedRegion:
    """The Copy&Compare parking area: reserved rows at the top of each bank.

    Allocation is a simple free list; requests to in-test rows are
    redirected here by the memory controller (the paper notes the
    redirection table is small because few rows are in test at once).
    """

    def __init__(self, rows: List[int]) -> None:
        if not rows:
            raise ValueError("reserved region needs at least one row")
        if len(set(rows)) != len(rows):
            raise ValueError("duplicate reserved rows")
        self._free: List[int] = list(rows)
        self._in_use: Dict[int, int] = {}  # in-test row -> parking row

    @property
    def capacity(self) -> int:
        return len(self._free) + len(self._in_use)

    @property
    def available(self) -> int:
        return len(self._free)

    def acquire(self, in_test_row: int) -> int:
        """Reserve a parking row for an in-test row."""
        if in_test_row in self._in_use:
            raise ValueError(f"row {in_test_row} is already parked")
        if not self._free:
            raise RuntimeError("reserved region exhausted")
        parking = self._free.pop()
        self._in_use[in_test_row] = parking
        return parking

    def release(self, in_test_row: int) -> None:
        """Return an in-test row's parking slot to the free list."""
        parking = self._in_use.pop(in_test_row, None)
        if parking is None:
            raise ValueError(f"row {in_test_row} is not parked")
        self._free.append(parking)

    def redirect(self, row: int) -> Optional[int]:
        """Where requests to ``row`` should go while it is in test."""
        return self._in_use.get(row)


def _ecc_digest(data: bytes) -> int:
    """The controller-resident integrity digest used by Copy&Compare."""
    return zlib.crc32(data)


class RowTestEngine:
    """Runs content tests against a DRAM device.

    The engine is synchronous at the model level: :meth:`run_test` advances
    the supplied clock across the idle window and returns the completed
    result. (The cycle simulator accounts for the traffic separately.)
    """

    def __init__(
        self,
        device: DramDevice,
        mode: TestMode = TestMode.READ_AND_COMPARE,
        test_interval_ms: float = LO_REF_INTERVAL_MS,
        timing: TimingParameters = DDR3_1600,
        reserved_region: Optional[ReservedRegion] = None,
    ) -> None:
        if test_interval_ms <= 0:
            raise ValueError("test_interval_ms must be positive")
        if mode is TestMode.COPY_AND_COMPARE and reserved_region is None:
            raise ValueError("Copy&Compare needs a reserved region")
        self.device = device
        self.mode = mode
        self.test_interval_ms = test_interval_ms
        self.timing = timing
        self.reserved = reserved_region
        self.tests_run = 0
        self.tests_failed = 0

    # ------------------------------------------------------------------
    def run_test(self, row: int, now_ms: float) -> RowTestResult:
        """Test ``row``'s current content across one retention window."""
        if self.mode is TestMode.READ_AND_COMPARE:
            result = self._read_and_compare(row, now_ms)
        else:
            result = self._copy_and_compare(row, now_ms)
        self.tests_run += 1
        if not result.passed:
            self.tests_failed += 1
        return result

    def _read_and_compare(self, row: int, now_ms: float) -> RowTestResult:
        before = self.device.read_row(row, now_ms)
        finish_ms = now_ms + self.test_interval_ms
        after = self.device.read_row(row, finish_ms)
        flipped = _count_flipped_bits(before, after)
        if flipped:
            # Repair from the buffered copy: the controller holds the
            # pristine row, so a failing test never loses data.
            self.device.write_row(row, before, finish_ms)
        return RowTestResult(
            row=row,
            mode=self.mode,
            passed=flipped == 0,
            started_ms=now_ms,
            finished_ms=finish_ms,
            flipped_bits=flipped,
            latency_cost_ns=test_cost_ns(self.mode, self.timing),
            extra_reads=2,
            extra_writes=1 if flipped else 0,
        )

    def _copy_and_compare(self, row: int, now_ms: float) -> RowTestResult:
        assert self.reserved is not None
        before = self.device.read_row(row, now_ms)
        digest_before = _ecc_digest(before)
        parking = self.reserved.acquire(row)
        self.device.write_row(parking, before, now_ms)
        finish_ms = now_ms + self.test_interval_ms
        after = self.device.read_row(row, finish_ms)
        passed = _ecc_digest(after) == digest_before
        extra_writes = 1
        if not passed:
            # Restore the pristine content from the parking row. The
            # reserved region is refreshed at HI-REF while in use, so its
            # copy does not decay across the test window — read it with
            # the charge timestamp of its write.
            pristine = self.device.read_row(parking, now_ms)
            self.device.write_row(row, pristine, finish_ms)
            extra_writes += 1
        self.reserved.release(row)
        return RowTestResult(
            row=row,
            mode=self.mode,
            passed=passed,
            started_ms=now_ms,
            finished_ms=finish_ms,
            flipped_bits=0 if passed else _count_flipped_bits(before, after),
            latency_cost_ns=test_cost_ns(self.mode, self.timing),
            extra_reads=2 if passed else 3,
            extra_writes=extra_writes,
        )


def _count_flipped_bits(before: bytes, after: bytes) -> int:
    """Popcount of the XOR of two row images, vectorised.

    Row tests compare full 8 KB rows on every run, so this sits on the
    simulator's hot path; the byte-at-a-time Python loop it replaces
    dominated Read&Compare cost.
    """
    if len(before) != len(after):
        raise ValueError("row images differ in length")
    if before == after:
        return 0
    diff = np.frombuffer(before, dtype=np.uint8) ^ np.frombuffer(after, dtype=np.uint8)
    return int(np.unpackbits(diff).sum())


def make_reserved_region(
    rows_per_bank: int,
    banks: int,
    reserved_per_bank: int = 512,
) -> ReservedRegion:
    """Reserve the top ``reserved_per_bank`` rows of each bank.

    Matches the paper's sizing: 512 rows per bank of a 2 GB 8-bank module
    is a 1.56% capacity loss.
    """
    if reserved_per_bank <= 0 or reserved_per_bank > rows_per_bank:
        raise ValueError("invalid reserved_per_bank")
    rows = [
        bank * rows_per_bank + row
        for bank in range(banks)
        for row in range(rows_per_bank - reserved_per_bank, rows_per_bank)
    ]
    return ReservedRegion(rows)
