"""Row remapping: the paper's third mitigation option (§1, §2).

Besides a higher refresh rate and ECC, detected failures can be mitigated
by remapping the failing row to a reliable spare region — the system-level
analogue of the manufacturer's column remapping. A :class:`RemapTable`
manages a bounded pool of spare rows: rows remapped there run at LO-REF
regardless of their content (spares are selected/validated to be strong),
at the cost of one indirection entry per remapped row and the capacity
the spare region consumes.

:func:`plan_mitigations` combines all three options into one policy:
clean rows run at LO-REF; correctable rows use ECC; uncorrectable rows
are remapped while spares last and pinned at HI-REF after that — the
cheapest-first cascade a real controller would implement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..dram.faults import VulnerableCell
from .ecc import EccConfig, Mitigation, row_is_correctable


class RemapTable:
    """Bounded indirection from failing rows to spare rows."""

    def __init__(self, spare_rows: Sequence[int]) -> None:
        spares = list(spare_rows)
        if len(set(spares)) != len(spares):
            raise ValueError("duplicate spare rows")
        self._free: List[int] = spares
        self._mapping: Dict[int, int] = {}

    @property
    def capacity(self) -> int:
        return len(self._free) + len(self._mapping)

    @property
    def available(self) -> int:
        return len(self._free)

    @property
    def remapped_rows(self) -> int:
        return len(self._mapping)

    def lookup(self, row: int) -> Optional[int]:
        """Spare serving ``row``, or None when not remapped."""
        return self._mapping.get(row)

    def remap(self, row: int) -> Optional[int]:
        """Assign a spare to ``row``; None when the pool is exhausted."""
        if row in self._mapping:
            raise ValueError(f"row {row} is already remapped")
        if not self._free:
            return None
        spare = self._free.pop()
        self._mapping[row] = spare
        return spare

    def release(self, row: int) -> None:
        """Return a row's spare to the pool (content changed and passed)."""
        spare = self._mapping.pop(row, None)
        if spare is None:
            raise ValueError(f"row {row} is not remapped")
        self._free.append(spare)

    def storage_overhead_bits(self, row_address_bits: int = 18) -> int:
        """Indirection-table cost: two addresses per possible entry."""
        if row_address_bits <= 0:
            raise ValueError("row_address_bits must be positive")
        return self.capacity * 2 * row_address_bits


@dataclass(frozen=True)
class MitigationPlan:
    """Outcome of the cheapest-first cascade over a tested row set."""

    lo_ref_rows: int
    ecc_rows: int
    remapped_rows: int
    hi_ref_rows: int

    @property
    def total(self) -> int:
        return (self.lo_ref_rows + self.ecc_rows
                + self.remapped_rows + self.hi_ref_rows)

    def refresh_ops_per_window(self, hi_per_lo: float = 4.0) -> float:
        """Refresh work per LO-REF window; only HI-REF rows pay extra."""
        lo_like = self.lo_ref_rows + self.ecc_rows + self.remapped_rows
        return lo_like + self.hi_ref_rows * hi_per_lo


def plan_mitigations(
    failing_cells_by_row: Dict[int, Sequence[VulnerableCell]],
    remap_table: Optional[RemapTable] = None,
    ecc: Optional[EccConfig] = None,
) -> MitigationPlan:
    """Run the LO-REF -> ECC -> remap -> HI-REF cascade over tested rows.

    ``failing_cells_by_row`` maps each tested row to its current-content
    failing cells (empty sequence = clean). ECC and remapping are each
    optional; disabled stages fall through to the next.
    """
    lo = ecc_count = remapped = hi = 0
    for row in sorted(failing_cells_by_row):
        cells = failing_cells_by_row[row]
        if not cells:
            lo += 1
            continue
        if ecc is not None and row_is_correctable(
            [cell.physical_column for cell in cells], ecc
        ):
            ecc_count += 1
            continue
        if remap_table is not None and remap_table.remap(row) is not None:
            remapped += 1
            continue
        hi += 1
    return MitigationPlan(
        lo_ref_rows=lo,
        ecc_rows=ecc_count,
        remapped_rows=remapped,
        hi_ref_rows=hi,
    )
