"""Per-row refresh states, accounting ledger, and baseline policies.

MEMCON's mitigation is a two-rate refresh scheme: rows whose current
content is proven safe run at LO-REF; everything else (freshly written,
failing, or untested rows) runs at HI-REF; rows under test receive no
refreshes at all (the test *is* a retention window). The
:class:`RefreshLedger` integrates time-in-state per row and converts it to
refresh-operation counts, the metric behind the paper's Figures 14-18.

Baselines:

* :class:`FixedRefreshPolicy` — every row at one rate (the paper's 16, 32
  and 64 ms configurations);
* :class:`RaidrPolicy` — RAIDR-style profiling: rows that could fail under
  *any* content (the ALL-FAIL set, requiring DRAM-internals knowledge to
  find) are pinned at HI-REF forever; all others run at LO-REF.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, Optional, Set

from ..dram.timing import HI_REF_INTERVAL_MS, LO_REF_INTERVAL_MS


class RefreshState(Enum):
    """Refresh treatment of one row at a point in time."""

    HI_REF = "hi_ref"
    LO_REF = "lo_ref"
    TESTING = "testing"   # idle retention window: no refreshes at all


@dataclass
class StateTimes:
    """Accumulated milliseconds a row spent in each state."""

    hi_ms: float = 0.0
    lo_ms: float = 0.0
    testing_ms: float = 0.0

    def add(self, state: RefreshState, duration_ms: float) -> None:
        if duration_ms < 0:
            raise ValueError("duration must be non-negative")
        if state is RefreshState.HI_REF:
            self.hi_ms += duration_ms
        elif state is RefreshState.LO_REF:
            self.lo_ms += duration_ms
        else:
            self.testing_ms += duration_ms

    @property
    def total_ms(self) -> float:
        return self.hi_ms + self.lo_ms + self.testing_ms


class RefreshLedger:
    """Integrates per-row refresh state over time and counts refreshes.

    Rows default to HI_REF from time zero (MEMCON refreshes aggressively
    until a row is proven safe). Call :meth:`set_state` on transitions and
    :meth:`finalize` once at the end of the simulated window.
    """

    def __init__(
        self,
        total_rows: int,
        hi_ref_interval_ms: float = HI_REF_INTERVAL_MS,
        lo_ref_interval_ms: float = LO_REF_INTERVAL_MS,
    ) -> None:
        if total_rows <= 0:
            raise ValueError("total_rows must be positive")
        if hi_ref_interval_ms <= 0 or lo_ref_interval_ms <= 0:
            raise ValueError("refresh intervals must be positive")
        if lo_ref_interval_ms <= hi_ref_interval_ms:
            raise ValueError("LO-REF interval must exceed HI-REF interval")
        self.total_rows = total_rows
        self.hi_ref_interval_ms = hi_ref_interval_ms
        self.lo_ref_interval_ms = lo_ref_interval_ms
        self._state: Dict[int, RefreshState] = {}
        self._since: Dict[int, float] = {}
        self._times: Dict[int, StateTimes] = {}
        self._finalized_at: Optional[float] = None

    # ------------------------------------------------------------------
    def state_of(self, row: int) -> RefreshState:
        self._check_row(row)
        return self._state.get(row, RefreshState.HI_REF)

    def set_state(self, row: int, state: RefreshState, now_ms: float) -> None:
        """Transition a row to a new state at time ``now_ms``."""
        self._check_row(row)
        if self._finalized_at is not None:
            raise RuntimeError("ledger already finalized")
        since = self._since.get(row, 0.0)
        if now_ms < since:
            raise ValueError("time must not go backwards")
        current = self._state.get(row, RefreshState.HI_REF)
        self._times.setdefault(row, StateTimes()).add(current, now_ms - since)
        self._state[row] = state
        self._since[row] = now_ms

    def finalize(self, end_ms: float) -> None:
        """Close the accounting window at ``end_ms``."""
        if self._finalized_at is not None:
            raise RuntimeError("ledger already finalized")
        for row in list(self._times) + [
            r for r in self._state if r not in self._times
        ]:
            since = self._since.get(row, 0.0)
            if end_ms < since:
                raise ValueError("end time precedes a recorded transition")
            current = self._state.get(row, RefreshState.HI_REF)
            self._times.setdefault(row, StateTimes()).add(
                current, end_ms - since
            )
            self._since[row] = end_ms
        self._finalized_at = end_ms

    # ------------------------------------------------------------------
    def row_times(self, row: int) -> StateTimes:
        """Per-state time of one row. Untouched rows are all-HI."""
        self._check_row(row)
        if self._finalized_at is None:
            raise RuntimeError("finalize the ledger first")
        times = self._times.get(row)
        if times is None:
            return StateTimes(hi_ms=self._finalized_at)
        return times

    def refresh_count(self) -> float:
        """Total refresh operations issued across all rows."""
        if self._finalized_at is None:
            raise RuntimeError("finalize the ledger first")
        end = self._finalized_at
        touched_hi = 0.0
        touched_lo = 0.0
        for times in self._times.values():
            touched_hi += times.hi_ms
            touched_lo += times.lo_ms
        untouched = self.total_rows - len(self._times)
        touched_hi += untouched * end
        return (
            touched_hi / self.hi_ref_interval_ms
            + touched_lo / self.lo_ref_interval_ms
        )

    def baseline_refresh_count(self) -> float:
        """Refreshes the all-HI-REF baseline issues over the same window."""
        if self._finalized_at is None:
            raise RuntimeError("finalize the ledger first")
        return self.total_rows * self._finalized_at / self.hi_ref_interval_ms

    def refresh_reduction(self) -> float:
        """Fractional reduction in refresh operations vs the baseline."""
        baseline = self.baseline_refresh_count()
        if baseline == 0:
            return 0.0
        return 1.0 - self.refresh_count() / baseline

    def lo_ref_time_fraction(self) -> float:
        """Fraction of row-time spent at LO-REF (Figure 17's coverage)."""
        if self._finalized_at is None:
            raise RuntimeError("finalize the ledger first")
        total = self.total_rows * self._finalized_at
        if total == 0:
            return 0.0
        lo = sum(t.lo_ms for t in self._times.values())
        return lo / total

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.total_rows:
            raise ValueError(f"row {row} out of range")


@dataclass(frozen=True)
class FixedRefreshPolicy:
    """Every row refreshed at one fixed interval (baseline systems)."""

    interval_ms: float

    def __post_init__(self) -> None:
        if self.interval_ms <= 0:
            raise ValueError("interval_ms must be positive")

    def refresh_count(self, total_rows: int, window_ms: float) -> float:
        """Refresh operations issued over a window."""
        if total_rows <= 0 or window_ms < 0:
            raise ValueError("invalid row count or window")
        return total_rows * window_ms / self.interval_ms


@dataclass(frozen=True)
class RaidrPolicy:
    """RAIDR-style multi-rate refresh from a worst-case failure profile.

    ``hi_ref_rows`` is the profiled ALL-FAIL set: rows that can fail under
    some content at the LO-REF interval. RAIDR pins them at HI-REF for the
    lifetime of the system; content never matters.
    """

    hi_ref_rows: frozenset
    hi_ref_interval_ms: float = HI_REF_INTERVAL_MS
    lo_ref_interval_ms: float = LO_REF_INTERVAL_MS

    def __post_init__(self) -> None:
        if self.hi_ref_interval_ms <= 0 or self.lo_ref_interval_ms <= 0:
            raise ValueError("refresh intervals must be positive")

    def interval_for(self, row: int) -> float:
        return (
            self.hi_ref_interval_ms
            if row in self.hi_ref_rows
            else self.lo_ref_interval_ms
        )

    def refresh_count(self, total_rows: int, window_ms: float) -> float:
        """Refresh operations issued over a window."""
        if total_rows <= 0 or window_ms < 0:
            raise ValueError("invalid row count or window")
        n_hi = len(self.hi_ref_rows)
        n_lo = total_rows - n_hi
        if n_lo < 0:
            raise ValueError("more HI-REF rows than total rows")
        return (
            n_hi * window_ms / self.hi_ref_interval_ms
            + n_lo * window_ms / self.lo_ref_interval_ms
        )

    def refresh_reduction(self, total_rows: int) -> float:
        """Reduction vs the all-HI baseline (window-independent)."""
        if total_rows <= 0:
            raise ValueError("total_rows must be positive")
        fixed = FixedRefreshPolicy(self.hi_ref_interval_ms)
        window = 1.0
        return 1.0 - self.refresh_count(total_rows, window) / fixed.refresh_count(
            total_rows, window
        )
