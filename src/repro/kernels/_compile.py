"""Numba availability probe and the ``maybe_njit`` compile shim.

The kernels package must import — and the python backend must work —
on an interpreter with no numba installed, so the probe is lazy and the
decorator degrades to a no-op that simply tags the function with its own
``py_func`` (mirroring the attribute a numba dispatcher carries). Every
kernel module decorates with :func:`maybe_njit`; backend dispatch then
only has to choose between the dispatcher and ``fn.py_func``.

``NUMBA_DISABLE_JIT`` is honoured as "numba is not usable": with JIT
disabled a numba dispatcher runs interpreted anyway, which would make
the ``auto`` backend silently slower than the tuned numpy paths.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Optional

_probe_done = False
_numba_mod: Optional[Any] = None


def _jit_disabled() -> bool:
    """True when the environment forces numba to interpret (no JIT)."""
    return os.environ.get("NUMBA_DISABLE_JIT", "0") not in ("", "0")


def _probe() -> Optional[Any]:
    global _probe_done, _numba_mod
    if not _probe_done:
        _probe_done = True
        try:
            import numba  # noqa: F401 — optional dependency
            _numba_mod = numba
        except Exception:
            _numba_mod = None
    return _numba_mod


def numba_available() -> bool:
    """Whether numba imports *and* is allowed to JIT-compile."""
    return _probe() is not None and not _jit_disabled()


def numba_version() -> Optional[str]:
    """The installed numba version string, or None when absent."""
    mod = _probe()
    return getattr(mod, "__version__", None) if mod is not None else None


def maybe_njit(**njit_kwargs: Any) -> Callable[[Callable], Callable]:
    """``numba.njit`` when usable, else identity; always sets ``py_func``.

    The returned object is either a numba dispatcher (which natively
    carries ``py_func``) or the plain function with ``py_func`` pointing
    at itself — so ``fn.py_func`` is the interpreted kernel either way,
    and the ``pyfunc`` backend can exercise kernel code paths without
    numba installed.
    """

    def wrap(func: Callable) -> Callable:
        if numba_available():
            import numba

            return numba.njit(**njit_kwargs)(func)
        func.py_func = func  # type: ignore[attr-defined]
        return func

    return wrap
