"""Compiled hot-kernel backend for the simulator and fault engine.

Three inner loops dominate every figure experiment, fleet host screen
and hammer sweep: the per-cell fault predicate, the FR-FCFS pick /
earliest-issue scan, and the event-heap drain of the system simulator.
This package holds njit-compiled ports of those loops; the numpy /
pure-python implementations stay in place, verbatim, as the equivalence
oracles the kernels are property-tested against.

Backends
--------

``auto``
    Use numba when it is importable and JIT is not disabled
    (``NUMBA_DISABLE_JIT``); silently fall back to ``python`` otherwise.
    The default everywhere.
``numba``
    Require the compiled kernels; raises when numba is unusable.
``python``
    The tuned numpy/pure-python paths, untouched. The reference.
``pyfunc``
    Run the *kernel* code paths through the interpreter (each kernel's
    ``py_func``). Slow, but it exercises the exact kernel logic and
    array plumbing, so cross-backend equivalence suites are meaningful
    on machines without numba — CI's no-numba leg and this repo's
    development environment both rely on it.

Selection is process-global: the ``REPRO_KERNELS`` environment variable
(inherited by parallel workers, so sharded runs resolve the same
backend) or :func:`set_backend`. A backend is *engaged* when kernel
code paths — compiled or interpreted — replace the numpy oracles.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, Optional

from ._compile import maybe_njit, numba_available, numba_version

__all__ = [
    "BACKENDS",
    "backend_info",
    "engaged",
    "get_backend",
    "impl",
    "maybe_njit",
    "numba_available",
    "numba_version",
    "resolve_backend",
    "set_backend",
    "warmup",
]

BACKENDS = ("auto", "numba", "python", "pyfunc")

#: Metric name for the one-time JIT warm-up wall time.
WARMUP_GAUGE = "kernels.warmup_s"

_requested: Optional[str] = None  # set_backend override (beats the env)
_resolved: Optional[str] = None   # cache of the resolved backend
_warmup_s: Optional[float] = None


def resolve_backend(requested: Optional[str] = None) -> str:
    """Resolve a backend request to ``numba`` | ``python`` | ``pyfunc``.

    ``requested`` falls back to ``$REPRO_KERNELS``, then ``auto``.
    ``auto`` never raises; ``numba`` raises when numba is unusable so a
    run that *asked* for compiled kernels cannot silently measure the
    interpreter.
    """
    req = requested
    if req is None:
        req = os.environ.get("REPRO_KERNELS", "").strip().lower() or "auto"
    if req not in BACKENDS:
        raise ValueError(
            f"unknown kernels backend {req!r}; expected one of {BACKENDS}"
        )
    if req == "auto":
        return "numba" if numba_available() else "python"
    if req == "numba" and not numba_available():
        raise RuntimeError(
            "kernels backend 'numba' requested but numba is not usable "
            "(not installed, or NUMBA_DISABLE_JIT is set); install the "
            "repro[kernels] extra or use backend 'auto'/'python'"
        )
    return req


def get_backend() -> str:
    """The process's resolved backend (cached; see :func:`set_backend`)."""
    global _resolved
    if _resolved is None:
        _resolved = resolve_backend(_requested)
    return _resolved


def set_backend(name: Optional[str]) -> str:
    """Select the process backend; returns the resolved name.

    ``None`` clears any prior override and re-resolves from the
    environment. Resetting also clears the warm-up record: a new
    backend has not been warmed.
    """
    global _requested, _resolved, _warmup_s
    _requested = name
    _resolved = None
    _warmup_s = None
    return get_backend()


def engaged() -> bool:
    """Whether kernel code paths replace the numpy/python oracles."""
    return get_backend() in ("numba", "pyfunc")


def impl(kernel: Callable) -> Callable:
    """The callable to run for ``kernel`` under the current backend.

    ``pyfunc`` unwraps to the interpreted kernel; anything else runs the
    object produced by :func:`maybe_njit` (a numba dispatcher when
    compiled, the plain function otherwise).
    """
    if get_backend() == "pyfunc":
        return kernel.py_func  # type: ignore[attr-defined]
    return kernel


def warmup() -> float:
    """Compile every kernel once, off the timed path; returns seconds.

    Safe to call under any backend: a no-op (0.0 s) unless the numba
    backend is engaged. The wall time is recorded on the
    ``kernels.warmup_s`` gauge so manifests and ``obs.compare`` see JIT
    cost as its own metric, never folded into a benchmark window.
    Idempotent per backend selection — repeat calls return the first
    measurement.
    """
    global _warmup_s
    if _warmup_s is not None:
        return _warmup_s
    if get_backend() != "numba":
        _warmup_s = 0.0
        return _warmup_s
    from . import eventheap, faultpred, sched

    start = time.perf_counter()
    faultpred.warmup()
    sched.warmup()
    eventheap.warmup()
    _warmup_s = time.perf_counter() - start
    from .. import obs

    obs.get_registry().gauge(WARMUP_GAUGE).set(_warmup_s)
    return _warmup_s


def backend_info() -> Dict[str, object]:
    """JSON-safe description of the backend for run manifests."""
    return {
        "backend": get_backend(),
        "numba_available": numba_available(),
        "numba_version": numba_version(),
        "warmup_s": _warmup_s,
    }
