"""Compiled per-cell failure predicates (content + read-disturbance).

Ports the two vectorised numpy predicates to explicit per-cell loops:

* :func:`evaluate` mirrors ``FaultMap._evaluate`` — charged-cell check,
  physical-neighbour aggressor count, stress-table lookup, optional
  ``disturb_stress`` composition, threshold compare;
* :func:`disturb_hit` mirrors the dose/charge compare inside
  ``DisturbMap.flips``.

Bit-identity contract: the kernels use only additions, multiplications
in the oracle's association order, table lookups and comparisons — no
transcendental functions — so their float results are exactly the
oracle's. Population *generation* (Box-Muller draws over hashed
uniforms) deliberately stays on the shared numpy path: vectorised
``log``/``cos``/``exp`` are not guaranteed ulp-identical across
implementations, and a 1-ulp threshold shift would break the exact
equality gate.

Array-layout contract: content bits arrive as a 2-D ``(rows, width)``
matrix; a single shared row is passed as shape ``(1, width)`` with
``shared=True`` so every cell reads row 0. ``row_pos`` aligns each cell
with its batch row; per-row extra stress is indexed by ``row_pos``,
scalar extra is broadcast. Adding a 0.0 scalar is bitwise safe here
(model stresses are never ``-0.0``), so the kernel adds unconditionally
where the numpy path skips the add.
"""

from __future__ import annotations

import numpy as np

from . import impl
from ._compile import maybe_njit

_EMPTY_F64 = np.empty(0, dtype=np.float64)
_EMPTY_I64 = np.empty(0, dtype=np.int64)


@maybe_njit(cache=True)
def _predicate_kernel(
    cols, thresholds, true_cell, bits, row_pos, shared,
    s0, s1, s2, extra_scalar, extra_rows, extra_per_row, out,
):
    width = bits.shape[1]
    for i in range(cols.shape[0]):
        c = cols[i]
        if c >= width:
            out[i] = False
            continue
        r = 0 if shared else row_pos[i]
        v = bits[r, c]
        if true_cell[i]:
            charged = v == 1
        else:
            charged = v == 0
        if not charged:
            out[i] = False
            continue
        agg = 0
        if c > 0 and bits[r, c - 1] != v:
            agg += 1
        if c + 1 < width and bits[r, c + 1] != v:
            agg += 1
        if agg == 0:
            stress = s0
        elif agg == 1:
            stress = s1
        else:
            stress = s2
        if extra_per_row:
            stress = stress + extra_rows[row_pos[i]]
        else:
            stress = stress + extra_scalar
        out[i] = stress >= thresholds[i]
    return out


@maybe_njit(cache=True)
def _disturb_kernel(
    thresholds, row_pos, pressures, hc_first, interval_factor,
    cols, true_cell, bits, shared, use_bits, out,
):
    for i in range(thresholds.shape[0]):
        effective = thresholds[i] * hc_first * interval_factor
        hit = pressures[row_pos[i]] >= effective
        if hit and use_bits:
            width = bits.shape[1]
            c = cols[i]
            if c >= width:
                hit = False
            else:
                r = 0 if shared else row_pos[i]
                v = bits[r, c]
                if true_cell[i]:
                    hit = v == 1
                else:
                    hit = v == 0
        out[i] = hit
    return out


def evaluate(cols, thresholds, true_cell, bits, row_pos,
             stress_table, disturb_stress):
    """Kernel-backed equivalent of ``FaultMap._evaluate``.

    Same argument semantics: ``bits`` is a 1-D shared row or a matrix
    indexed by ``row_pos``; ``disturb_stress`` is None, a scalar, or an
    array aligned with the batch's rows. Returns the boolean fail mask.
    """
    n = len(cols)
    if n == 0:
        return np.zeros(0, dtype=bool)
    bits = np.ascontiguousarray(bits)
    shared = bits.ndim == 1
    if shared:
        bits = bits.reshape(1, -1)
    pos = _EMPTY_I64 if row_pos is None else np.ascontiguousarray(row_pos)
    extra_scalar = 0.0
    extra_rows = _EMPTY_F64
    extra_per_row = False
    if disturb_stress is not None:
        extra = np.asarray(disturb_stress, dtype=np.float64)
        if extra.ndim == 0:
            extra_scalar = float(extra)
        elif row_pos is not None:
            extra_rows = np.ascontiguousarray(extra)
            extra_per_row = True
        else:
            raise ValueError(
                "per-row disturb_stress needs a batched evaluation"
            )
    out = np.empty(n, dtype=np.bool_)
    impl(_predicate_kernel)(
        np.ascontiguousarray(cols),
        np.ascontiguousarray(thresholds),
        np.ascontiguousarray(true_cell),
        bits, pos, shared,
        float(stress_table[0]), float(stress_table[1]),
        float(stress_table[2]),
        extra_scalar, extra_rows, extra_per_row, out,
    )
    return out


def disturb_hit(thresholds, row_pos, pressures, hc_first, interval_factor,
                cols, true_cell, content_bits):
    """Kernel-backed dose/charge compare of ``DisturbMap.flips``.

    Returns the boolean hit mask over the flat cell batch;
    ``content_bits`` of None skips the charge check (worst case).
    """
    n = len(thresholds)
    if n == 0:
        return np.zeros(0, dtype=bool)
    use_bits = content_bits is not None
    if use_bits:
        bits = np.ascontiguousarray(content_bits)
        shared = bits.ndim == 1
        if shared:
            bits = bits.reshape(1, -1)
    else:
        bits = np.zeros((1, 1), dtype=np.uint8)
        shared = True
    out = np.empty(n, dtype=np.bool_)
    impl(_disturb_kernel)(
        np.ascontiguousarray(thresholds),
        np.ascontiguousarray(row_pos),
        np.ascontiguousarray(pressures),
        float(hc_first), float(interval_factor),
        np.ascontiguousarray(cols),
        np.ascontiguousarray(true_cell),
        bits, shared, use_bits, out,
    )
    return out


def warmup() -> None:
    """Force one compilation of each kernel for the common dtypes."""
    cols = np.array([1], dtype=np.int64)
    thr = np.array([0.5], dtype=np.float64)
    tc = np.array([True])
    pos = np.array([0], dtype=np.int64)
    bits = np.zeros((1, 4), dtype=np.uint8)
    table = np.array([0.1, 0.5, 1.0])
    for shared_bits in (bits[0], bits):
        evaluate(cols, thr, tc, shared_bits, pos, table, None)
        evaluate(cols, thr, tc, shared_bits, pos, table,
                 np.array([0.25]))
    evaluate(cols, thr, tc, bits[0], None, table, 0.25)
    press = np.array([1.0])
    disturb_hit(thr, pos, press, 48.0, 1.0, cols, tc, None)
    disturb_hit(thr, pos, press, 48.0, 1.0, cols, tc, bits[0])
    disturb_hit(thr, pos, press, 48.0, 1.0, cols, tc, bits)
