"""Compiled FR-FCFS pick and earliest-issue scans.

The oracle (``FrFcfsScheduler``) keeps one FIFO deque per (kind, bank)
and scans banks-with-work per pick. The kernel path mirrors each kind's
pending entries into a flat append-ordered ring — ``(seq, bank, row,
arrival)`` typed arrays with tombstones for removed entries — plus
per-bank ``ready_ns`` / ``open_row`` arrays maintained by the memory
controller. Because enqueue order *is* sequence order, one ascending
scan of the ring replicates the per-bank rule exactly:

* the first eligible entry overall is the oldest eligible (``best_any``);
* the first entry matching its bank's open row is the winning row-buffer
  hit — any later bank's first hit would carry a larger seq;
* a per-bank ``done`` flag reproduces the oracle's break rules (bank not
  ready, or precharged bank once its oldest candidate is known).

The deques remain the source of truth (debug views, counters,
min-arrival bookkeeping); the ring is an index over them, compacted
when tombstones dominate.
"""

from __future__ import annotations

import numpy as np

from . import impl
from ._compile import maybe_njit

_INF = float("inf")


@maybe_njit(cache=True)
def _pick_kernel(seqs, banks, rows, arrivals, head, tail,
                 ready, open_rows, done, now):
    for b in range(done.shape[0]):
        done[b] = False
    best_any = -1
    for idx in range(head, tail):
        if seqs[idx] < 0:
            continue  # tombstone
        b = banks[idx]
        if done[b]:
            continue
        if ready[b] > now:
            done[b] = True  # bank cannot accept a command this instant
            continue
        if arrivals[idx] > now:
            continue
        orow = open_rows[b]
        if best_any < 0:
            best_any = idx
        if orow < 0:
            done[b] = True  # no hit possible in a precharged bank
            continue
        if rows[idx] == orow:
            return idx  # first hit in global seq order wins
    return best_any


@maybe_njit(cache=True)
def _earliest_kernel(min_arrival, count, ready, floor):
    best = _INF
    for b in range(count.shape[0]):
        if count[b] == 0:
            continue
        t = min_arrival[b]
        if ready[b] > t:
            t = ready[b]
        if floor > t:
            t = floor
        if t < best:
            best = t
    return best


class KindRing:
    """Append-ordered typed-array mirror of one request kind's entries."""

    __slots__ = ("seqs", "banks", "rows", "arrivals", "head", "tail",
                 "live", "_slot_of")

    def __init__(self, capacity: int = 256) -> None:
        self.seqs = np.empty(capacity, dtype=np.int64)
        self.banks = np.empty(capacity, dtype=np.int64)
        self.rows = np.empty(capacity, dtype=np.int64)
        self.arrivals = np.empty(capacity, dtype=np.float64)
        self.head = 0
        self.tail = 0
        self.live = 0
        self._slot_of = {}  # seq -> slot, for removals not chosen by pick

    def append(self, seq: int, bank: int, row: int, arrival: float) -> None:
        if self.tail == len(self.seqs):
            self._compact_or_grow()
        slot = self.tail
        self.seqs[slot] = seq
        self.banks[slot] = bank
        self.rows[slot] = row
        self.arrivals[slot] = arrival
        self._slot_of[seq] = slot
        self.tail = slot + 1
        self.live += 1

    def kill_slot(self, slot: int) -> None:
        """Tombstone a slot chosen by the pick kernel."""
        self._slot_of.pop(int(self.seqs[slot]), None)
        self.seqs[slot] = -1
        self.live -= 1
        self._advance_head()

    def kill_seq(self, seq: int) -> None:
        """Tombstone by sequence number (removal outside the pick path)."""
        slot = self._slot_of.pop(seq, None)
        if slot is not None:
            self.seqs[slot] = -1
            self.live -= 1
            self._advance_head()

    def _advance_head(self) -> None:
        seqs, tail = self.seqs, self.tail
        head = self.head
        while head < tail and seqs[head] < 0:
            head += 1
        self.head = head

    def _compact_or_grow(self) -> None:
        window = self.tail - self.head
        if self.live * 2 <= window or self.head > 0:
            keep = slice(self.head, self.tail)
            mask = self.seqs[keep] >= 0
            n = int(mask.sum())
            capacity = max(256, len(self.seqs))
            while capacity < 2 * n:
                capacity *= 2
            for name in ("seqs", "banks", "rows", "arrivals"):
                old = getattr(self, name)
                fresh = np.empty(capacity, dtype=old.dtype)
                fresh[:n] = old[keep][mask]
                setattr(self, name, fresh)
            self.head = 0
            self.tail = n
            self._slot_of = {
                int(s): i for i, s in enumerate(self.seqs[:n])
            }
        else:
            for name in ("seqs", "banks", "rows", "arrivals"):
                old = getattr(self, name)
                fresh = np.empty(len(old) * 2, dtype=old.dtype)
                fresh[: self.tail] = old[: self.tail]
                setattr(self, name, fresh)

    def pick(self, ready: np.ndarray, open_rows: np.ndarray,
             done: np.ndarray, now: float) -> int:
        """Winning slot per the FR-FCFS rule, or -1. Does not remove."""
        if not self.live:
            return -1
        return int(impl(_pick_kernel)(
            self.seqs, self.banks, self.rows, self.arrivals,
            self.head, self.tail, ready, open_rows, done, now,
        ))


def earliest_issue(min_arrival: np.ndarray, count: np.ndarray,
                   ready: np.ndarray, floor: float) -> float:
    """min over banks-with-work of max(min arrival, ready, floor)."""
    return float(impl(_earliest_kernel)(min_arrival, count, ready, floor))


def warmup() -> None:
    """Force one compilation of each scheduler kernel."""
    ring = KindRing(4)
    ring.append(0, 0, 5, 0.0)
    ready = np.zeros(1, dtype=np.float64)
    open_rows = np.full(1, -1, dtype=np.int64)
    done = np.zeros(1, dtype=np.bool_)
    ring.pick(ready, open_rows, done, 1.0)
    earliest_issue(np.zeros(1), np.ones(1, dtype=np.int64), ready, 0.0)
