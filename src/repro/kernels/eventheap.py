"""Flattened typed-array event heap for the system simulator.

``FlatEventHeap`` mirrors :class:`repro.sim.events.EventHeap` — lazy
invalidation over ``(time, actor, version)`` min-heap entries — with the
heap stored in parallel ``float64``/``int64`` arrays and sift / prune /
peek loops as njit kernels. Actors are dense small integers (the system
simulator encodes core ``i`` as ``i`` and channel ``ch`` as
``n_cores + ch``, preserving the tuple actors' tiebreak order), so the
per-actor version/time maps become flat arrays too.

Pop order is layout-independent: every live entry is unique under the
``(time, actor, version)`` lexicographic order (same actor + same time
still differ by version), so any correct binary heap yields the same
ascending drain sequence as ``heapq`` over tuples — the property the
equivalence suite pins.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from . import impl
from ._compile import maybe_njit


@maybe_njit(cache=True)
def _less(times, actors, versions, i, j):
    ti, tj = times[i], times[j]
    if ti != tj:
        return ti < tj
    ai, aj = actors[i], actors[j]
    if ai != aj:
        return ai < aj
    return versions[i] < versions[j]


@maybe_njit(cache=True)
def _swap(times, actors, versions, i, j):
    times[i], times[j] = times[j], times[i]
    actors[i], actors[j] = actors[j], actors[i]
    versions[i], versions[j] = versions[j], versions[i]


@maybe_njit(cache=True)
def _sift_down(times, actors, versions, size, i):
    while True:
        left = 2 * i + 1
        if left >= size:
            return
        smallest = left
        right = left + 1
        if right < size and _less(times, actors, versions, right, left):
            smallest = right
        if _less(times, actors, versions, smallest, i):
            _swap(times, actors, versions, i, smallest)
            i = smallest
        else:
            return


@maybe_njit(cache=True)
def _heap_push(times, actors, versions, size, t, a, v):
    i = size
    times[i] = t
    actors[i] = a
    versions[i] = v
    while i > 0:
        parent = (i - 1) >> 1
        if _less(times, actors, versions, i, parent):
            _swap(times, actors, versions, i, parent)
            i = parent
        else:
            break
    return size + 1


@maybe_njit(cache=True)
def _heap_pop_root(times, actors, versions, size):
    last = size - 1
    _swap(times, actors, versions, 0, last)
    _sift_down(times, actors, versions, last, 0)
    return last


@maybe_njit(cache=True)
def _prune_due(times, actors, versions, size, now,
               cur_version, has_time, out):
    count = 0
    while size > 0 and times[0] <= now:
        actor = actors[0]
        version = versions[0]
        size = _heap_pop_root(times, actors, versions, size)
        if has_time[actor] and cur_version[actor] == version:
            cur_version[actor] = version + 1  # consume
            has_time[actor] = False
            out[count] = actor
            count += 1
    return size, count


@maybe_njit(cache=True)
def _next_time(times, actors, versions, size, cur_version, has_time,
               default):
    while size > 0:
        actor = actors[0]
        if has_time[actor] and cur_version[actor] == versions[0]:
            return size, times[0]
        size = _heap_pop_root(times, actors, versions, size)
    return size, default


class FlatEventHeap:
    """Drop-in :class:`~repro.sim.events.EventHeap` for integer actors.

    Same push / current / invalidate / prune_due / next_time API and
    identical observable behaviour; requires actors in ``[0, n_actors)``.
    """

    __slots__ = ("_times", "_actors", "_versions", "_size",
                 "_cur_version", "_cur_time", "_has_time", "_due")

    def __init__(self, n_actors: int, capacity: int = 64) -> None:
        if n_actors <= 0:
            raise ValueError("n_actors must be positive")
        self._times = np.empty(capacity, dtype=np.float64)
        self._actors = np.empty(capacity, dtype=np.int64)
        self._versions = np.empty(capacity, dtype=np.int64)
        self._size = 0
        self._cur_version = np.zeros(n_actors, dtype=np.int64)
        self._cur_time = np.zeros(n_actors, dtype=np.float64)
        self._has_time = np.zeros(n_actors, dtype=np.bool_)
        self._due = np.empty(n_actors, dtype=np.int64)

    def __len__(self) -> int:
        return int(self._has_time.sum())

    def _grow(self) -> None:
        capacity = len(self._times) * 2
        for name in ("_times", "_actors", "_versions"):
            old = getattr(self, name)
            fresh = np.empty(capacity, dtype=old.dtype)
            fresh[: self._size] = old[: self._size]
            setattr(self, name, fresh)

    def push(self, actor: int, time: float) -> None:
        """Post (or re-post) an actor's next-ready time."""
        if self._size == len(self._times):
            self._grow()
        version = int(self._cur_version[actor]) + 1
        self._cur_version[actor] = version
        self._cur_time[actor] = time
        self._has_time[actor] = True
        self._size = int(impl(_heap_push)(
            self._times, self._actors, self._versions, self._size,
            time, actor, version,
        ))

    def current(self, actor: int) -> Optional[float]:
        """The actor's posted time, or None when it has none."""
        if self._has_time[actor]:
            return float(self._cur_time[actor])
        return None

    def invalidate(self, actor: int) -> None:
        """Withdraw an actor's posted time (lazy: entry dropped on pop)."""
        if self._has_time[actor]:
            self._cur_version[actor] += 1
            self._has_time[actor] = False

    def prune_due(self, now: float) -> List[int]:
        """Consume every posted time ``<= now``; returns those actors."""
        self._size, count = impl(_prune_due)(
            self._times, self._actors, self._versions, self._size,
            now, self._cur_version, self._has_time, self._due,
        )
        self._size = int(self._size)
        return [int(a) for a in self._due[:count]]

    def next_time(self, default: float) -> float:
        """Earliest posted time, skipping stale entries."""
        self._size, time = impl(_next_time)(
            self._times, self._actors, self._versions, self._size,
            self._cur_version, self._has_time, default,
        )
        self._size = int(self._size)
        return float(time)


def warmup() -> None:
    """Force one compilation of each heap kernel."""
    heap = FlatEventHeap(2)
    heap.push(0, 1.0)
    heap.push(1, 2.0)
    heap.invalidate(1)
    heap.next_time(9.0)
    heap.prune_due(1.5)
