"""SoftMC-style retention tester.

Replays the protocol of the paper's FPGA infrastructure against the
simulated DRAM device: (i) fill the module with a data pattern or captured
program content, (ii) keep it idle for one retention interval, (iii) read
everything back and diff. The result is a :class:`FailureReport` listing
failing cells and rows in *system* coordinates — the tester, like a real
host, never sees the silicon layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..dram.cell_array import bits_to_bytes
from ..dram.device import DramDevice
from .patterns import DataPattern


@dataclass(frozen=True)
class CellFailure:
    """One bit observed flipped after the idle window (system coords)."""

    row_index: int
    bit: int          # bit offset within the row, system order
    expected: int
    observed: int


@dataclass
class FailureReport:
    """Outcome of one retention test pass."""

    refresh_interval_ms: float
    rows_tested: int
    failures: List[CellFailure] = field(default_factory=list)

    @property
    def failing_rows(self) -> List[int]:
        return sorted({f.row_index for f in self.failures})

    @property
    def failing_row_fraction(self) -> float:
        if self.rows_tested == 0:
            return 0.0
        return len(self.failing_rows) / self.rows_tested

    def failures_in_row(self, row_index: int) -> List[CellFailure]:
        return [f for f in self.failures if f.row_index == row_index]


class SoftMCTester:
    """Drives fill / idle / read-back retention tests on a device."""

    def __init__(self, device: DramDevice) -> None:
        self.device = device
        self._now_ms = 0.0
        registry = obs.get_registry()
        self._c_rows_filled = registry.counter("softmc.rows_filled")
        self._c_rows_tested = registry.counter("softmc.rows_tested")
        self._c_cell_failures = registry.counter("softmc.cell_failures")

    @property
    def now_ms(self) -> float:
        """The tester's notion of wall-clock time, advanced by tests."""
        return self._now_ms

    # ------------------------------------------------------------------
    def fill_pattern(
        self, pattern: DataPattern, rows: Optional[Sequence[int]] = None
    ) -> None:
        """Write a data pattern into the given rows (default: whole module)."""
        geometry = self.device.geometry
        target_rows = range(geometry.total_rows) if rows is None else rows
        with obs.span("softmc.fill"):
            count = 0
            for row in target_rows:
                bits = pattern.row_bits(row, geometry.bits_per_row)
                self.device.write_row(row, bits_to_bytes(bits), self._now_ms)
                count += 1
        self._c_rows_filled.inc(count)
        if obs.trace_active():
            obs.emit("softmc_phase", phase="fill", rows=count,
                     pattern=pattern.name)

    def fill_content(
        self, content: Dict[int, bytes], replicate: bool = False
    ) -> List[int]:
        """Load captured program content, keyed by flat row index.

        With ``replicate=True`` the content image is tiled across the whole
        module, the way the paper duplicates each workload's footprint so
        that all of DRAM holds program data. Returns the rows written.
        """
        geometry = self.device.geometry
        if not content:
            raise ValueError("content must not be empty")
        written: List[int] = []
        with obs.span("softmc.fill"):
            if not replicate:
                for row, data in content.items():
                    self.device.write_row(row, data, self._now_ms)
                    written.append(row)
                written.sort()
            else:
                images = sorted(content.items())
                n_images = len(images)
                for row in range(geometry.total_rows):
                    _, data = images[row % n_images]
                    self.device.write_row(row, data, self._now_ms)
                    written.append(row)
        self._c_rows_filled.inc(len(written))
        if obs.trace_active():
            obs.emit("softmc_phase", phase="fill", rows=len(written))
        return written

    # ------------------------------------------------------------------
    def run_retention_test(
        self,
        refresh_interval_ms: float,
        rows: Optional[Sequence[int]] = None,
    ) -> FailureReport:
        """Idle the module for one retention window, then diff the content.

        ``rows`` limits both the reference snapshot and the read-back to a
        subset (used for row-scoped tests); default is the whole module.
        """
        if refresh_interval_ms <= 0:
            raise ValueError("refresh_interval_ms must be positive")
        geometry = self.device.geometry
        target_rows = list(range(geometry.total_rows)) if rows is None else list(rows)

        with obs.span("softmc.snapshot"):
            before = {
                row: self.device.cells.read_row_bits(row) for row in target_rows
            }
        with obs.span("softmc.idle"):
            self._now_ms += refresh_interval_ms
        if obs.trace_active():
            obs.emit("softmc_phase", phase="idle", rows=len(target_rows),
                     interval_ms=refresh_interval_ms)
        report = FailureReport(
            refresh_interval_ms=refresh_interval_ms,
            rows_tested=len(target_rows),
        )
        with obs.span("softmc.readback"):
            for row in target_rows:
                observed_bits = np.frombuffer(
                    self.device.read_row(row, self._now_ms), dtype=np.uint8
                )
                observed = np.unpackbits(observed_bits, bitorder="little")
                expected = before[row]
                diff = np.nonzero(observed != expected)[0]
                for bit in diff:
                    report.failures.append(
                        CellFailure(
                            row_index=row,
                            bit=int(bit),
                            expected=int(expected[bit]),
                            observed=int(observed[bit]),
                        )
                    )
        self._c_rows_tested.inc(len(target_rows))
        self._c_cell_failures.inc(len(report.failures))
        if obs.trace_active():
            obs.emit("softmc_phase", phase="readback", rows=len(target_rows),
                     failures=len(report.failures))
        return report

    # ------------------------------------------------------------------
    def test_pattern(
        self,
        pattern: DataPattern,
        refresh_interval_ms: float,
        rows: Optional[Sequence[int]] = None,
    ) -> FailureReport:
        """Fill with a pattern and run one retention pass."""
        self.fill_pattern(pattern, rows)
        return self.run_retention_test(refresh_interval_ms, rows)

    def test_content(
        self,
        content: Dict[int, bytes],
        refresh_interval_ms: float,
        replicate: bool = True,
    ) -> FailureReport:
        """Fill with program content (optionally tiled) and test retention."""
        rows = self.fill_content(content, replicate=replicate)
        return self.run_retention_test(refresh_interval_ms, rows)
