"""HMTT-style memory-bus tracer.

The paper's second FPGA infrastructure intercepts the memory bus and logs
(command, address, timestamp) for every DRAM request. Here the tracer sits
between a request source and the recorded trace: callers report bus events
to :meth:`BusTracer.record`, and :meth:`BusTracer.finish` assembles the
per-page write trace that the analysis and MEMCON layers consume. A
convenience driver replays a workload profile through the tracer, which is
how the library's canned traces are produced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..traces.events import WriteTrace
from ..traces.generator import generate_trace
from ..traces.workloads import WorkloadProfile


@dataclass(frozen=True)
class BusEvent:
    """One intercepted memory-bus transaction."""

    time_ms: float
    page: int
    is_write: bool


class BusTracer:
    """Accumulates bus events into a per-page write trace.

    Mirrors the capture discipline of the paper's tracer: events arriving
    before ``warmup_ms`` are discarded (the paper skips each application's
    initialisation phase), and the capture stops after ``duration_ms``.
    """

    def __init__(
        self,
        total_pages: int,
        duration_ms: float,
        warmup_ms: float = 0.0,
        name: str = "",
    ) -> None:
        if total_pages <= 0:
            raise ValueError("total_pages must be positive")
        if duration_ms <= 0:
            raise ValueError("duration_ms must be positive")
        if warmup_ms < 0:
            raise ValueError("warmup_ms must be non-negative")
        self.total_pages = total_pages
        self.duration_ms = duration_ms
        self.warmup_ms = warmup_ms
        self.name = name
        self._writes: Dict[int, List[float]] = {}
        self._n_events = 0
        self._n_dropped = 0

    @property
    def events_recorded(self) -> int:
        return self._n_events

    @property
    def events_dropped(self) -> int:
        """Events outside the capture window (warmup or post-capture)."""
        return self._n_dropped

    def record(self, event: BusEvent) -> None:
        """Observe one bus transaction. Reads are counted but not stored."""
        capture_time = event.time_ms - self.warmup_ms
        if capture_time < 0 or capture_time >= self.duration_ms:
            self._n_dropped += 1
            return
        self._n_events += 1
        if not event.is_write:
            return
        if not 0 <= event.page < self.total_pages:
            raise ValueError(f"page {event.page} out of range")
        self._writes.setdefault(event.page, []).append(capture_time)

    def finish(self) -> WriteTrace:
        """Assemble the captured write trace."""
        writes = {
            page: np.asarray(sorted(times), dtype=np.float64)
            for page, times in self._writes.items()
        }
        return WriteTrace(
            duration_ms=self.duration_ms,
            writes=writes,
            total_pages=self.total_pages,
            name=self.name,
        )


def capture_workload(
    profile: WorkloadProfile,
    seed: int = 0,
    warmup_ms: float = 0.0,
) -> WriteTrace:
    """Replay a workload's bus activity through a tracer and capture it.

    Equivalent to :func:`repro.traces.generator.generate_trace` plus the
    tracer's warmup discipline; exercises the full record/finish path.
    """
    raw = generate_trace(profile, seed=seed,
                         duration_ms=profile.duration_ms + warmup_ms)
    tracer = BusTracer(
        total_pages=profile.n_pages,
        duration_ms=profile.duration_ms,
        warmup_ms=warmup_ms,
        name=profile.name,
    )
    for time_ms, page in raw.merged_events():
        tracer.record(BusEvent(time_ms=time_ms, page=page, is_write=True))
    return tracer.finish()
