"""Simulated evaluation infrastructure (SoftMC tester, HMTT bus tracer)."""

from .patterns import (
    CANONICAL_PATTERNS,
    DataPattern,
    pattern_battery,
    pattern_by_name,
    random_pattern,
)
from .softmc import CellFailure, FailureReport, SoftMCTester

__all__ = [
    "CANONICAL_PATTERNS",
    "CellFailure",
    "DataPattern",
    "FailureReport",
    "SoftMCTester",
    "pattern_battery",
    "pattern_by_name",
    "random_pattern",
]
