"""Canonical DRAM test data patterns.

Manufacturers detect data-dependent failures by exhaustively writing
patterns that maximise cell-to-cell interference (paper §2). This module
provides the standard pattern families used for that style of testing, each
expressed as a function from (row index, bits per row) to a bit array, so
patterns that alternate per row (row stripes, checkerboards) are expressible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

PatternFn = Callable[[int, int], np.ndarray]


@dataclass(frozen=True)
class DataPattern:
    """A named test data pattern."""

    name: str
    fn: PatternFn

    def row_bits(self, row_index: int, bits_per_row: int) -> np.ndarray:
        bits = self.fn(row_index, bits_per_row)
        if len(bits) != bits_per_row:
            raise ValueError(
                f"pattern {self.name!r} produced {len(bits)} bits, "
                f"expected {bits_per_row}"
            )
        return bits.astype(np.uint8)


def _solid(value: int) -> PatternFn:
    def fn(row_index: int, n: int) -> np.ndarray:
        return np.full(n, value, dtype=np.uint8)

    return fn


def _column_stripe(phase: int) -> PatternFn:
    def fn(row_index: int, n: int) -> np.ndarray:
        return ((np.arange(n) + phase) & 1).astype(np.uint8)

    return fn


def _row_stripe(phase: int) -> PatternFn:
    def fn(row_index: int, n: int) -> np.ndarray:
        return np.full(n, (row_index + phase) & 1, dtype=np.uint8)

    return fn


def _checkerboard(phase: int) -> PatternFn:
    def fn(row_index: int, n: int) -> np.ndarray:
        return ((np.arange(n) + row_index + phase) & 1).astype(np.uint8)

    return fn


def _walking(value: int, stride: int) -> PatternFn:
    """A walking-1 (or walking-0) with the hot bit shifting per row."""

    def fn(row_index: int, n: int) -> np.ndarray:
        bits = np.full(n, 1 - value, dtype=np.uint8)
        bits[(row_index * stride) % n:: stride] = value
        return bits

    return fn


def random_pattern(seed: int) -> DataPattern:
    """An i.i.d. uniform random pattern (fresh stream per row)."""

    def fn(row_index: int, n: int) -> np.ndarray:
        rng = np.random.default_rng((seed << 20) ^ row_index)
        return rng.integers(0, 2, size=n, dtype=np.uint8)

    return DataPattern(name=f"random{seed}", fn=fn)


SOLID_0 = DataPattern("solid0", _solid(0))
SOLID_1 = DataPattern("solid1", _solid(1))
COLSTRIPE_0 = DataPattern("colstripe0", _column_stripe(0))
COLSTRIPE_1 = DataPattern("colstripe1", _column_stripe(1))
ROWSTRIPE_0 = DataPattern("rowstripe0", _row_stripe(0))
ROWSTRIPE_1 = DataPattern("rowstripe1", _row_stripe(1))
CHECKER_0 = DataPattern("checker0", _checkerboard(0))
CHECKER_1 = DataPattern("checker1", _checkerboard(1))
WALKING_1 = DataPattern("walking1", _walking(1, 9))
WALKING_0 = DataPattern("walking0", _walking(0, 9))

#: The deterministic manufacturer-style pattern battery.
CANONICAL_PATTERNS: List[DataPattern] = [
    SOLID_0, SOLID_1,
    COLSTRIPE_0, COLSTRIPE_1,
    ROWSTRIPE_0, ROWSTRIPE_1,
    CHECKER_0, CHECKER_1,
    WALKING_1, WALKING_0,
]


def pattern_battery(n_random: int = 90, seed: int = 1) -> List[DataPattern]:
    """The canonical patterns plus ``n_random`` random patterns.

    With the default arguments this yields the 100-pattern battery used to
    reproduce the paper's Figure 3.
    """
    if n_random < 0:
        raise ValueError("n_random must be non-negative")
    return CANONICAL_PATTERNS + [random_pattern(seed + i) for i in range(n_random)]


def pattern_by_name(name: str) -> DataPattern:
    """Look up one of the canonical patterns by name."""
    for pattern in CANONICAL_PATTERNS:
        if pattern.name == name:
            return pattern
    raise KeyError(f"unknown pattern {name!r}")
