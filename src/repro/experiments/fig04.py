"""Figure 4: failing rows with program content vs all possible content.

The paper fills the test DIMM with each SPEC CPU2006 benchmark's memory
image (replicated to cover the module), idles for the retention window,
and counts failing rows. Program content trips only 0.38%-5.6% of rows,
against 13.5% for the ALL-FAIL worst case — a 2.4x-35.2x gap, the headline
motivation for content-based detection.

Parallel decomposition: the ALL-FAIL scan shards into contiguous row
ranges (each unit carries its range's counter-RNG coordinates, so the
checkpoint fingerprint pins the exact population it scanned), and each
benchmark's content evaluation is one unit. The ALL-FAIL count is an
integer sum over shards and each benchmark's fraction is computed whole
inside its unit, so the merged table is bit-identical to the serial one.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any, Dict, List, Tuple

import numpy as np

from ..dram import DramGeometry
from ..dram.faults import FaultMap
from ..dram.scramble import VendorMapping, make_vendor_mapping
from ..parallel.units import WorkUnit
from ..traces.phases import generate_content_trace
from ..traces.spec import BENCHMARKS, FIGURE4_BENCHMARKS
from .common import ExperimentResult, percent

TEST_INTERVAL_MS = 328.0


def _module(quick: bool) -> DramGeometry:
    rows = 4096 if quick else 32768
    return DramGeometry(
        channels=1, ranks=1, banks=8, rows_per_bank=rows // 8,
        row_size_bytes=8192, block_size_bytes=64,
    )


def _scan_shards(quick: bool) -> int:
    return 8 if quick else 16


@lru_cache(maxsize=4)
def _setup(
    quick: bool, seed: int
) -> Tuple[DramGeometry, VendorMapping, FaultMap]:
    geometry = _module(quick)
    mapping = make_vendor_mapping(
        columns=geometry.bits_per_row, seed=seed,
        spare_columns=geometry.bits_per_row // 256, faulty_fraction=0.002,
    )
    fault_map = FaultMap(
        total_rows=geometry.total_rows,
        bits_per_row=mapping.physical_columns,
        seed=seed,
    )
    return geometry, mapping, fault_map


def units(quick: bool = True, seed: int = 1) -> List[WorkUnit]:
    """Row-range scan shards, then one unit per benchmark."""
    geometry, _, fault_map = _setup(quick, seed)
    shards = _scan_shards(quick)
    total = geometry.total_rows
    out: List[WorkUnit] = []
    for i in range(shards):
        start, stop = i * total // shards, (i + 1) * total // shards
        out.append(WorkUnit(
            "fig04", f"scan{i:02d}",
            {
                "rows": [start, stop],
                "rng": fault_map.rng_coordinates(start, stop),
            },
            seq=i,
        ))
    for j, name in enumerate(FIGURE4_BENCHMARKS):
        out.append(WorkUnit(
            "fig04", f"bench-{name}", {"benchmark": name}, seq=shards + j,
        ))
    return out


def run_unit(unit: WorkUnit, quick: bool = True, seed: int = 1) -> Dict[str, Any]:
    geometry, mapping, fault_map = _setup(quick, seed)
    if "rows" in unit.params:
        start, stop = unit.params["rows"]
        shard_rows = np.arange(start, stop, dtype=np.int64)
        return {"failing": int(
            fault_map.rows_can_ever_fail(shard_rows, TEST_INTERVAL_MS).sum()
        )}

    name = unit.params["benchmark"]
    n_image_rows = 32 if quick else 128
    images_per_benchmark = 2 if quick else 4
    every_row = np.arange(geometry.total_rows, dtype=np.int64)
    profile = BENCHMARKS[name].content
    # Average over drifting content checkpoints, like the paper
    # averages over per-100M-instruction snapshots.
    content_trace = generate_content_trace(
        profile, n_rows=n_image_rows,
        row_bytes=geometry.row_size_bytes,
        n_phases=images_per_benchmark, churn_fraction=0.25,
        seed=seed,
    )
    snapshot_fractions = []
    for snapshot in content_trace:
        # Rows tile the image modulo n_image_rows: every row sharing an
        # image index holds the same silicon bits, so each image is laid
        # out once and its whole row group is evaluated in one batch.
        failing = 0
        for i in range(n_image_rows):
            silicon = mapping.to_silicon(np.unpackbits(
                np.frombuffer(snapshot.image[i], dtype=np.uint8),
                bitorder="little",
            ))
            group = every_row[i::n_image_rows]
            failing += int(fault_map.rows_fail(
                group, silicon, TEST_INTERVAL_MS
            ).sum())
        snapshot_fractions.append(failing / geometry.total_rows)
    return {"benchmark": name, "fraction": float(np.mean(snapshot_fractions))}


def merge_units(
    payloads: List[Dict[str, Any]], quick: bool = True, seed: int = 1
) -> ExperimentResult:
    geometry = _module(quick)
    shards = _scan_shards(quick)
    all_fail_rows = sum(p["failing"] for p in payloads[:shards])
    all_fail_fraction = all_fail_rows / geometry.total_rows

    result = ExperimentResult(
        experiment_id="fig04",
        title="Percentage of rows that exhibit failures",
        paper_claim=(
            "0.38%-5.6% of rows fail with program content vs 13.5% with "
            "any possible content (ALL FAIL): 2.4x-35.2x fewer failures"
        ),
    )
    fractions: List[float] = []
    for payload in payloads[shards:]:
        fraction = payload["fraction"]
        fractions.append(fraction)
        result.add_row(
            benchmark=payload["benchmark"],
            failing_rows=percent(fraction, 2),
            vs_all_fail=f"{all_fail_fraction / max(fraction, 1e-9):.1f}x",
        )
    result.add_row(
        benchmark="ALL FAIL",
        failing_rows=percent(all_fail_fraction, 2),
        vs_all_fail="1.0x",
    )
    lo, hi = min(fractions), max(fractions)
    result.notes = (
        f"program content: {percent(lo, 2)}-{percent(hi, 2)} of rows; "
        f"ALL FAIL {percent(all_fail_fraction, 2)}; ratio "
        f"{all_fail_fraction / max(hi, 1e-9):.1f}x-"
        f"{all_fail_fraction / max(lo, 1e-9):.1f}x"
    )
    return result


def run(quick: bool = True, seed: int = 1) -> ExperimentResult:
    """Measure per-benchmark failing-row fractions and the ALL-FAIL bound.

    Uses the fault model directly (fill content, evaluate failures per
    row) rather than the byte-level device path, so module-scale row
    counts stay fast; the device path is exercised in the test suite.
    The serial path runs the same units the pool would, in ``seq``
    order — bit-identity with ``--jobs N`` is structural.
    """
    payloads = [
        run_unit(unit, quick=quick, seed=seed)
        for unit in units(quick=quick, seed=seed)
    ]
    return merge_units(payloads, quick=quick, seed=seed)
