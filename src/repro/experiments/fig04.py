"""Figure 4: failing rows with program content vs all possible content.

The paper fills the test DIMM with each SPEC CPU2006 benchmark's memory
image (replicated to cover the module), idles for the retention window,
and counts failing rows. Program content trips only 0.38%-5.6% of rows,
against 13.5% for the ALL-FAIL worst case — a 2.4x-35.2x gap, the headline
motivation for content-based detection.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..dram import DramGeometry
from ..dram.faults import FaultMap
from ..dram.scramble import make_vendor_mapping
from ..traces.phases import generate_content_trace
from ..traces.spec import BENCHMARKS, FIGURE4_BENCHMARKS
from .common import ExperimentResult, percent

TEST_INTERVAL_MS = 328.0


def _module(quick: bool) -> DramGeometry:
    rows = 4096 if quick else 32768
    return DramGeometry(
        channels=1, ranks=1, banks=8, rows_per_bank=rows // 8,
        row_size_bytes=8192, block_size_bytes=64,
    )


def run(quick: bool = True, seed: int = 1) -> ExperimentResult:
    """Measure per-benchmark failing-row fractions and the ALL-FAIL bound.

    Uses the fault model directly (fill content, evaluate failures per
    row) rather than the byte-level device path, so module-scale row
    counts stay fast; the device path is exercised in the test suite.
    """
    geometry = _module(quick)
    mapping = make_vendor_mapping(
        columns=geometry.bits_per_row, seed=seed,
        spare_columns=geometry.bits_per_row // 256, faulty_fraction=0.002,
    )
    fault_map = FaultMap(
        total_rows=geometry.total_rows,
        bits_per_row=mapping.physical_columns,
        seed=seed,
    )
    n_image_rows = 32 if quick else 128
    images_per_benchmark = 2 if quick else 4

    result = ExperimentResult(
        experiment_id="fig04",
        title="Percentage of rows that exhibit failures",
        paper_claim=(
            "0.38%-5.6% of rows fail with program content vs 13.5% with "
            "any possible content (ALL FAIL): 2.4x-35.2x fewer failures"
        ),
    )
    every_row = np.arange(geometry.total_rows, dtype=np.int64)
    all_fail_rows = int(
        fault_map.rows_can_ever_fail(every_row, TEST_INTERVAL_MS).sum()
    )
    all_fail_fraction = all_fail_rows / geometry.total_rows

    fractions: List[float] = []
    for name in FIGURE4_BENCHMARKS:
        profile = BENCHMARKS[name].content
        # Average over drifting content checkpoints, like the paper
        # averages over per-100M-instruction snapshots.
        content_trace = generate_content_trace(
            profile, n_rows=n_image_rows,
            row_bytes=geometry.row_size_bytes,
            n_phases=images_per_benchmark, churn_fraction=0.25,
            seed=seed,
        )
        snapshot_fractions = []
        for snapshot in content_trace:
            # Rows tile the image modulo n_image_rows: every row sharing an
            # image index holds the same silicon bits, so each image is laid
            # out once and its whole row group is evaluated in one batch.
            failing = 0
            for i in range(n_image_rows):
                silicon = mapping.to_silicon(np.unpackbits(
                    np.frombuffer(snapshot.image[i], dtype=np.uint8),
                    bitorder="little",
                ))
                group = every_row[i::n_image_rows]
                failing += int(fault_map.rows_fail(
                    group, silicon, TEST_INTERVAL_MS
                ).sum())
            snapshot_fractions.append(failing / geometry.total_rows)
        fraction = float(np.mean(snapshot_fractions))
        fractions.append(fraction)
        result.add_row(
            benchmark=name,
            failing_rows=percent(fraction, 2),
            vs_all_fail=f"{all_fail_fraction / max(fraction, 1e-9):.1f}x",
        )
    result.add_row(
        benchmark="ALL FAIL",
        failing_rows=percent(all_fail_fraction, 2),
        vs_all_fail="1.0x",
    )
    lo, hi = min(fractions), max(fractions)
    result.notes = (
        f"program content: {percent(lo, 2)}-{percent(hi, 2)} of rows; "
        f"ALL FAIL {percent(all_fail_fraction, 2)}; ratio "
        f"{all_fail_fraction / max(hi, 1e-9):.1f}x-"
        f"{all_fail_fraction / max(lo, 1e-9):.1f}x"
    )
    return result
