"""Figure 18: time spent on refresh and testing, vs baseline refresh.

MEMCON's time budget, normalised to the time the 16 ms baseline spends on
refresh: the remaining refresh work drops to roughly the refresh-reduction
complement (~25-35%), and testing — correctly predicted plus mispredicted
— adds only ~0.01% on top.
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from ..core.memcon import MemconConfig, simulate_refresh_reduction
from ..parallel.units import WorkUnit
from ..traces.generator import generate_trace
from ..traces.workloads import WORKLOADS
from .common import ExperimentResult, percent, plain
from .fig14 import FAILING_PAGE_FRACTION


def units(quick: bool = True, seed: int = 1) -> List[WorkUnit]:
    """One unit per application trace."""
    return [
        WorkUnit("fig18", name, {"workload": name}, seq=i)
        for i, name in enumerate(WORKLOADS)
    ]


def run_unit(unit: WorkUnit, quick: bool = True, seed: int = 1) -> Dict[str, Any]:
    name = unit.params["workload"]
    duration = 60_000.0 if quick else None
    trace = generate_trace(WORKLOADS[name], seed=seed, duration_ms=duration)
    report = simulate_refresh_reduction(
        trace,
        MemconConfig(quantum_ms=1024.0),
        failing_page_fraction=FAILING_PAGE_FRACTION,
        seed=seed,
    )
    base = report.baseline_refresh_time_ns
    testing_fraction = report.testing_time_ns / base
    # Baseline refresh covers every row of the module; our footprint is
    # scaled down from the paper's 8 GB (1M rows of 8 KB). Project the
    # denominator back to module scale for an apples-to-apples ratio.
    scale = (8 * 1024 ** 3 // 8192) / trace.total_pages
    row = {
        "workload": name,
        "refresh": percent(report.refresh_time_ns / base),
        "testing_correct": percent(report.testing_time_correct_ns / base, 4),
        "testing_mispredicted": percent(
            report.testing_time_mispredicted_ns / base, 4
        ),
        "testing_at_8GB": percent(testing_fraction / scale, 4),
    }
    return plain({
        "row": row,
        "testing_fraction": testing_fraction,
        "projected_fraction": report.testing_time_ns / (base * scale),
    })


def merge_units(
    payloads: List[Dict[str, Any]], quick: bool = True, seed: int = 1
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig18",
        title="Time on refresh and testing, normalised to baseline refresh",
        paper_claim=(
            "testing (correct + mispredicted) costs on average only 0.01% "
            "of the baseline's refresh time"
        ),
    )
    testing_fractions = [p["testing_fraction"] for p in payloads]
    projected_fractions = [p["projected_fraction"] for p in payloads]
    for payload in payloads:
        result.add_row(**payload["row"])
    result.notes = (
        f"mean testing time = "
        f"{percent(float(np.mean(testing_fractions)), 4)} of baseline "
        "refresh at the scaled footprint; projected to the paper's 8 GB "
        f"module: {percent(float(np.mean(projected_fractions)), 4)} "
        "(testing scales with active pages, baseline refresh with all rows)"
    )
    return result


def run(quick: bool = True, seed: int = 1) -> ExperimentResult:
    """Refresh/testing time split per workload (normalised to baseline)."""
    payloads = [
        run_unit(unit, quick=quick, seed=seed)
        for unit in units(quick=quick, seed=seed)
    ]
    return merge_units(payloads, quick=quick, seed=seed)
