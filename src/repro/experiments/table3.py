"""Table 3: performance loss from the extra accesses testing injects.

256/512/1024 concurrent tests every 64 ms add background read traffic;
the paper measures 0.54%/1.03%/1.88% average slowdown on a single core
and 0.05%/0.09%/0.48% on four cores (more parallelism absorbs the
traffic better), against an ideal system whose testing is free.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..parallel.units import WorkUnit
from ..sim.metrics import geometric_mean, speedup
from ..sim.system import simulate_workload
from ..sim.workloads import multicore_mixes, singlecore_workloads
from .common import ExperimentResult, percent, plain

CONCURRENT_TESTS = (256, 512, 1024)
MEMCON_REDUCTION = 0.66

PAPER_LOSS = {
    (1, 256): 0.0054, (1, 512): 0.0103, (1, 1024): 0.0188,
    (4, 256): 0.0005, (4, 512): 0.0009, (4, 1024): 0.0048,
}

#: The table's three system configurations, in row order.
CONFIGS = ((1, 1), (4, 1), (4, 2))


def units(quick: bool = True, seed: int = 1) -> List[WorkUnit]:
    """One unit per (cores, channels) system configuration."""
    return [
        WorkUnit(
            "table3", f"c{cores}-ch{channels}",
            {"cores": cores, "channels": channels}, seq=i,
        )
        for i, (cores, channels) in enumerate(CONFIGS)
    ]


def run_unit(unit: WorkUnit, quick: bool = True, seed: int = 1) -> Dict[str, Any]:
    cores = unit.params["cores"]
    channels = unit.params["channels"]
    n_workloads = 6 if quick else 30
    window_ns = 100_000.0 if quick else 500_000.0
    workloads = (
        singlecore_workloads(n_workloads, seed=seed) if cores == 1
        else multicore_mixes(n_workloads, seed=seed)
    )
    ideal = [
        simulate_workload(
            names, refresh_reduction=MEMCON_REDUCTION,
            concurrent_tests=0, window_ns=window_ns,
            channels=channels, seed=seed + i,
        )
        for i, names in enumerate(workloads)
    ]
    row: Dict[str, object] = {"cores": cores, "channels": channels}
    for tests in CONCURRENT_TESTS:
        ratios = [
            speedup(
                simulate_workload(
                    names, refresh_reduction=MEMCON_REDUCTION,
                    concurrent_tests=tests, window_ns=window_ns,
                    channels=channels, seed=seed + i,
                ),
                ideal[i],
            )
            for i, names in enumerate(workloads)
        ]
        loss = 1.0 - geometric_mean(ratios)
        row[f"tests_{tests}"] = percent(loss, 2)
        row[f"paper_{tests}"] = percent(PAPER_LOSS[(cores, tests)], 2)
    return {"row": plain(row)}


def merge_units(
    payloads: List[Dict[str, Any]], quick: bool = True, seed: int = 1
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="table3",
        title="Performance loss due to testing accesses",
        paper_claim=(
            "0.54%/1.03%/1.88% (1-core) and 0.05%/0.09%/0.48% (4-core) "
            "for 256/512/1024 concurrent tests"
        ),
    )
    for payload in payloads:
        result.add_row(**payload["row"])
    result.notes = (
        "loss measured against MEMCON with free testing (the paper's "
        "ideal). The 4-core single-channel row shows the contention of "
        "one shared channel; giving the 4-core system a second channel "
        "(last row) reproduces the paper's near-zero multicore overhead"
    )
    return result


def run(quick: bool = True, seed: int = 1) -> ExperimentResult:
    """Slowdown vs a zero-testing-overhead ideal, per test concurrency."""
    payloads = [
        run_unit(unit, quick=quick, seed=seed)
        for unit in units(quick=quick, seed=seed)
    ]
    return merge_units(payloads, quick=quick, seed=seed)
