"""Figure 9: execution time is dominated by long write intervals.

Counting *time* instead of writes flips the picture of Figure 7: write
intervals of at least 1024 ms hold ~89.5% of the total write-interval time
on average across the twelve applications.
"""

from __future__ import annotations

import numpy as np

from ..analysis.intervals import LONG_INTERVAL_MS, time_in_long_intervals
from ..traces.generator import generate_trace
from ..traces.workloads import WORKLOADS
from .common import ExperimentResult, percent


def run(quick: bool = True, seed: int = 1) -> ExperimentResult:
    """Fraction of write-interval time in >=1024 ms intervals, per app."""
    result = ExperimentResult(
        experiment_id="fig09",
        title="Time spent in long write intervals (>= 1024 ms)",
        paper_claim=(
            "write intervals >= 1024 ms hold 89.5% of total write-interval "
            "time on average"
        ),
    )
    duration = 60_000.0 if quick else None
    fractions = []
    for name, profile in WORKLOADS.items():
        trace = generate_trace(profile, seed=seed, duration_ms=duration)
        frac = time_in_long_intervals(trace, LONG_INTERVAL_MS)
        fractions.append(frac)
        result.add_row(
            workload=name,
            time_in_long_intervals=percent(frac),
            time_in_short_intervals=percent(1.0 - frac),
        )
    result.add_row(
        workload="AVERAGE",
        time_in_long_intervals=percent(float(np.mean(fractions))),
        time_in_short_intervals=percent(float(1.0 - np.mean(fractions))),
    )
    return result
