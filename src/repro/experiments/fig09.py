"""Figure 9: execution time is dominated by long write intervals.

Counting *time* instead of writes flips the picture of Figure 7: write
intervals of at least 1024 ms hold ~89.5% of the total write-interval time
on average across the twelve applications.
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from ..analysis.intervals import LONG_INTERVAL_MS, time_in_long_intervals
from ..parallel.units import WorkUnit
from ..traces.generator import generate_trace
from ..traces.workloads import WORKLOADS
from .common import ExperimentResult, percent, plain


def units(quick: bool = True, seed: int = 1) -> List[WorkUnit]:
    """One unit per application trace."""
    return [
        WorkUnit("fig09", name, {"workload": name}, seq=i)
        for i, name in enumerate(WORKLOADS)
    ]


def run_unit(unit: WorkUnit, quick: bool = True, seed: int = 1) -> Dict[str, Any]:
    name = unit.params["workload"]
    duration = 60_000.0 if quick else None
    trace = generate_trace(WORKLOADS[name], seed=seed, duration_ms=duration)
    frac = time_in_long_intervals(trace, LONG_INTERVAL_MS)
    return plain({"workload": name, "fraction": frac})


def merge_units(
    payloads: List[Dict[str, Any]], quick: bool = True, seed: int = 1
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig09",
        title="Time spent in long write intervals (>= 1024 ms)",
        paper_claim=(
            "write intervals >= 1024 ms hold 89.5% of total write-interval "
            "time on average"
        ),
    )
    fractions = [payload["fraction"] for payload in payloads]
    for payload in payloads:
        frac = payload["fraction"]
        result.add_row(
            workload=payload["workload"],
            time_in_long_intervals=percent(frac),
            time_in_short_intervals=percent(1.0 - frac),
        )
    result.add_row(
        workload="AVERAGE",
        time_in_long_intervals=percent(float(np.mean(fractions))),
        time_in_short_intervals=percent(float(1.0 - np.mean(fractions))),
    )
    return result


def run(quick: bool = True, seed: int = 1) -> ExperimentResult:
    """Fraction of write-interval time in >=1024 ms intervals, per app."""
    payloads = [
        run_unit(unit, quick=quick, seed=seed)
        for unit in units(quick=quick, seed=seed)
    ]
    return merge_units(payloads, quick=quick, seed=seed)
