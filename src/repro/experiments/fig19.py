"""Figure 19: sensitivity to cache size (halved write intervals).

A smaller last-level cache evicts dirty blocks sooner, compressing write
intervals. The paper halves every interval and shows the long-interval
conditional probability P(RIL > 1024 ms | CIL) barely moves — the
exponential headroom of the Pareto tail absorbs a 2x shift.
"""

from __future__ import annotations

import numpy as np

from ..analysis.intervals import LONG_INTERVAL_MS, ril_exceeds_probability
from ..traces.generator import generate_trace
from ..traces.workloads import WORKLOADS
from .common import ExperimentResult

REPORT_CILS_MS = (512.0, 1024.0, 2048.0)
WORKLOAD = "ACBrotherHood"


def run(quick: bool = True, seed: int = 1) -> ExperimentResult:
    """Full vs halved intervals for the paper's example workload."""
    result = ExperimentResult(
        experiment_id="fig19",
        title="Write-interval halving (cache-size sensitivity)",
        paper_claim=(
            "halving all write intervals does not significantly change "
            "P(RIL > 1024 ms | CIL) at CIL = 512-2048 ms"
        ),
    )
    duration = 60_000.0 if quick else None
    trace = generate_trace(WORKLOADS[WORKLOAD], seed=seed,
                           duration_ms=duration)
    halved = trace.scaled_intervals(0.5)
    deltas = []
    for cil in REPORT_CILS_MS:
        full_p = ril_exceeds_probability(trace, cil, LONG_INTERVAL_MS)
        half_p = ril_exceeds_probability(halved, cil, LONG_INTERVAL_MS)
        deltas.append(abs(full_p - half_p))
        result.add_row(
            cil_ms=cil,
            full_interval=full_p,
            half_interval=half_p,
            delta=full_p - half_p,
        )
    # Distribution shift: share of intervals under 1 ms before and after.
    full_iv = trace.all_intervals()
    half_iv = halved.all_intervals()
    result.notes = (
        f"max |delta P| = {max(deltas):.3f}; intervals < 1 ms: "
        f"{np.mean(full_iv < 1.0):.3f} (full) vs "
        f"{np.mean(half_iv < 1.0):.3f} (halved)"
    )
    return result
