"""Figure 19: sensitivity to cache size (halved write intervals).

A smaller last-level cache evicts dirty blocks sooner, compressing write
intervals. The paper halves every interval and shows the long-interval
conditional probability P(RIL > 1024 ms | CIL) barely moves — the
exponential headroom of the Pareto tail absorbs a 2x shift.
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from ..analysis.intervals import LONG_INTERVAL_MS, ril_exceeds_probability
from ..parallel.units import WorkUnit
from ..traces.generator import generate_trace
from ..traces.workloads import WORKLOADS
from .common import ExperimentResult, plain

REPORT_CILS_MS = (512.0, 1024.0, 2048.0)
WORKLOAD = "ACBrotherHood"


def _traces(quick: bool, seed: int):
    duration = 60_000.0 if quick else None
    trace = generate_trace(WORKLOADS[WORKLOAD], seed=seed,
                           duration_ms=duration)
    return trace, trace.scaled_intervals(0.5)


def units(quick: bool = True, seed: int = 1) -> List[WorkUnit]:
    """One unit per CIL point plus one for the distribution shift."""
    out = [
        WorkUnit("fig19", f"cil{int(cil)}", {"cil_ms": cil}, seq=i)
        for i, cil in enumerate(REPORT_CILS_MS)
    ]
    out.append(WorkUnit(
        "fig19", "dist", {"kind": "dist"}, seq=len(REPORT_CILS_MS),
    ))
    return out


def run_unit(unit: WorkUnit, quick: bool = True, seed: int = 1) -> Dict[str, Any]:
    trace, halved = _traces(quick, seed)
    if unit.params.get("kind") == "dist":
        # Distribution shift: share of intervals under 1 ms before/after.
        full_iv = trace.all_intervals()
        half_iv = halved.all_intervals()
        return plain({
            "full_sub_1ms": np.mean(full_iv < 1.0),
            "half_sub_1ms": np.mean(half_iv < 1.0),
        })
    cil = unit.params["cil_ms"]
    full_p = ril_exceeds_probability(trace, cil, LONG_INTERVAL_MS)
    half_p = ril_exceeds_probability(halved, cil, LONG_INTERVAL_MS)
    return plain({"cil_ms": cil, "full_p": full_p, "half_p": half_p})


def merge_units(
    payloads: List[Dict[str, Any]], quick: bool = True, seed: int = 1
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig19",
        title="Write-interval halving (cache-size sensitivity)",
        paper_claim=(
            "halving all write intervals does not significantly change "
            "P(RIL > 1024 ms | CIL) at CIL = 512-2048 ms"
        ),
    )
    deltas = []
    for payload in payloads[:len(REPORT_CILS_MS)]:
        full_p, half_p = payload["full_p"], payload["half_p"]
        deltas.append(abs(full_p - half_p))
        result.add_row(
            cil_ms=payload["cil_ms"],
            full_interval=full_p,
            half_interval=half_p,
            delta=full_p - half_p,
        )
    dist = payloads[len(REPORT_CILS_MS)]
    result.notes = (
        f"max |delta P| = {max(deltas):.3f}; intervals < 1 ms: "
        f"{dist['full_sub_1ms']:.3f} (full) vs "
        f"{dist['half_sub_1ms']:.3f} (halved)"
    )
    return result


def run(quick: bool = True, seed: int = 1) -> ExperimentResult:
    """Full vs halved intervals for the paper's example workload."""
    payloads = [
        run_unit(unit, quick=quick, seed=seed)
        for unit in units(quick=quick, seed=seed)
    ]
    return merge_units(payloads, quick=quick, seed=seed)
