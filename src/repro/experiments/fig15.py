"""Figure 15: performance improvement from MEMCON's refresh reduction.

The paper models its measured 60-75% refresh reduction inside a
cycle-accurate simulator (with 256 concurrent tests of injected traffic)
on 30 single-core and 4-core SPEC/TPC workloads, for 8/16/32 Gb chips.
Reported improvement over the 16 ms baseline: 10%/17%/40% to 12%/22%/50%
(single-core) and 10%/23%/52% to 17%/29%/65% (four-core).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from ..parallel.units import WorkUnit
from ..sim.metrics import geometric_mean, speedup
from ..sim.system import simulate_workload
from ..sim.workloads import multicore_mixes, singlecore_workloads
from .common import ExperimentResult, percent, plain

DENSITIES_GBIT = (8, 16, 32)
REDUCTIONS = (0.60, 0.75)
CONCURRENT_TESTS = 256

#: Paper-reported mean improvements, keyed by (cores, reduction, density).
PAPER_IMPROVEMENT = {
    (1, 0.60, 8): 0.10, (1, 0.60, 16): 0.17, (1, 0.60, 32): 0.40,
    (1, 0.75, 8): 0.12, (1, 0.75, 16): 0.22, (1, 0.75, 32): 0.50,
    (4, 0.60, 8): 0.10, (4, 0.60, 16): 0.23, (4, 0.60, 32): 0.52,
    (4, 0.75, 8): 0.17, (4, 0.75, 16): 0.29, (4, 0.75, 32): 0.65,
}


def _mean_speedup(
    workloads: Sequence[List[str]],
    density: int,
    reduction: float,
    window_ns: float,
    seed: int,
) -> float:
    speedups = []
    for i, names in enumerate(workloads):
        base = simulate_workload(
            names, density_gbit=density, window_ns=window_ns, seed=seed + i,
        )
        memcon = simulate_workload(
            names, density_gbit=density, refresh_reduction=reduction,
            concurrent_tests=CONCURRENT_TESTS, window_ns=window_ns,
            seed=seed + i,
        )
        speedups.append(speedup(memcon, base))
    return geometric_mean(speedups)


def units(quick: bool = True, seed: int = 1) -> List[WorkUnit]:
    """One unit per (cores, density) simulator configuration."""
    out: List[WorkUnit] = []
    for cores in (1, 4):
        for density in DENSITIES_GBIT:
            out.append(WorkUnit(
                "fig15", f"c{cores}-d{density}",
                {"cores": cores, "density": density}, seq=len(out),
            ))
    return out


def run_unit(unit: WorkUnit, quick: bool = True, seed: int = 1) -> Dict[str, Any]:
    cores = unit.params["cores"]
    density = unit.params["density"]
    n_workloads = 6 if quick else 30
    window_ns = 100_000.0 if quick else 500_000.0
    workloads = (
        singlecore_workloads(n_workloads, seed=seed) if cores == 1
        else multicore_mixes(n_workloads, seed=seed)
    )
    row: Dict[str, object] = {"cores": cores, "density": f"{density}Gb"}
    for reduction in REDUCTIONS:
        mean = _mean_speedup(workloads, density, reduction, window_ns, seed)
        row[f"speedup_{int(reduction * 100)}pct"] = mean
        row[f"paper_{int(reduction * 100)}pct"] = (
            1.0 + PAPER_IMPROVEMENT[(cores, reduction, density)]
        )
    return {"row": plain(row)}


def merge_units(
    payloads: List[Dict[str, Any]], quick: bool = True, seed: int = 1
) -> ExperimentResult:
    n_workloads = 6 if quick else 30
    window_ns = 100_000.0 if quick else 500_000.0
    result = ExperimentResult(
        experiment_id="fig15",
        title="MEMCON performance improvement over the 16 ms baseline",
        paper_claim=(
            "1-core: +10/17/40% to +12/22/50%; 4-core: +10/23/52% to "
            "+17/29/65% for 8/16/32 Gb (60% to 75% refresh reduction)"
        ),
    )
    for payload in payloads:
        result.add_row(**payload["row"])
    result.notes = (
        f"{n_workloads} workloads per configuration, {window_ns / 1e3:.0f} us "
        f"windows, {CONCURRENT_TESTS} concurrent tests injected; speedups "
        "are geometric means of weighted speedup over the 16 ms baseline"
    )
    return result


def run(quick: bool = True, seed: int = 1) -> ExperimentResult:
    """Mean speedup per core count, density, and reduction amount."""
    payloads = [
        run_unit(unit, quick=quick, seed=seed)
        for unit in units(quick=quick, seed=seed)
    ]
    return merge_units(payloads, quick=quick, seed=seed)
