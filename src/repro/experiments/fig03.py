"""Figure 3: cells fail only under some data patterns.

The paper tests one chip with ~100 data patterns and plots, for each
failing cell, the set of patterns that trips it — showing the failures are
conditional on content. We run the canonical + random pattern battery on a
slice of the simulated module via the SoftMC tester and report, per
pattern, how many cells fail, plus the per-cell pattern-sensitivity
summary (cells failing under every pattern would not be data-dependent).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Set, Tuple

from ..dram import DramDevice, DramGeometry
from ..dram.faults import FaultMap, FaultModelConfig
from ..testinfra import SoftMCTester, pattern_battery
from .common import ExperimentResult

#: Test conditions mirroring the paper's FPGA setup: a 328 ms-equivalent
#: retention window.
TEST_INTERVAL_MS = 328.0


def run(quick: bool = True, seed: int = 1) -> ExperimentResult:
    """Run the pattern battery and collect per-pattern failing cells."""
    n_patterns = 24 if quick else 100
    rows = 96 if quick else 512
    geometry = DramGeometry(
        channels=1, ranks=1, banks=2, rows_per_bank=rows // 2,
        row_size_bytes=2048, block_size_bytes=64,
    )
    # Densify the fault population so a small slice shows many cells, as
    # the paper's single-chip plot does.
    fault_config = FaultModelConfig(vulnerable_cell_rate=2e-4)
    device = DramDevice(geometry, seed=seed)
    device.cells.fault_map = FaultMap(
        total_rows=geometry.total_rows,
        bits_per_row=device.cells.vendor_mapping.physical_columns,
        config=fault_config,
        seed=seed,
    )
    tester = SoftMCTester(device)

    cell_patterns: Dict[Tuple[int, int], Set[int]] = defaultdict(set)
    per_pattern_failures: List[Tuple[str, int]] = []
    for pattern_id, pattern in enumerate(pattern_battery(
        n_random=n_patterns - 10, seed=seed,
    )[:n_patterns]):
        report = tester.test_pattern(pattern, TEST_INTERVAL_MS)
        for failure in report.failures:
            cell_patterns[(failure.row_index, failure.bit)].add(pattern_id)
        per_pattern_failures.append((pattern.name, len(report.failures)))

    result = ExperimentResult(
        experiment_id="fig03",
        title="Cells failing with different data content",
        paper_claim=(
            "each failing cell trips under only a subset of ~100 data "
            "patterns: failures are conditional on memory content"
        ),
    )
    for name, count in per_pattern_failures:
        result.add_row(pattern=name, failing_cells=count)

    n_cells = len(cell_patterns)
    conditional = sum(
        1 for patterns in cell_patterns.values()
        if 0 < len(patterns) < n_patterns
    )
    result.notes = (
        f"{n_cells} distinct cells failed across {n_patterns} patterns; "
        f"{conditional} of them ({100 * conditional / max(n_cells, 1):.0f}%) "
        "fail under only a strict subset of patterns (data-dependent)"
    )
    return result


def cell_pattern_matrix(quick: bool = True, seed: int = 1):
    """(cell_id, pattern_id) scatter points, the raw Figure 3 plot data."""
    n_patterns = 24 if quick else 100
    rows = 96 if quick else 512
    geometry = DramGeometry(
        channels=1, ranks=1, banks=2, rows_per_bank=rows // 2,
        row_size_bytes=2048, block_size_bytes=64,
    )
    device = DramDevice(geometry, seed=seed)
    device.cells.fault_map = FaultMap(
        total_rows=geometry.total_rows,
        bits_per_row=device.cells.vendor_mapping.physical_columns,
        config=FaultModelConfig(vulnerable_cell_rate=2e-4),
        seed=seed,
    )
    tester = SoftMCTester(device)
    cell_ids: Dict[Tuple[int, int], int] = {}
    points = []
    for pattern_id, pattern in enumerate(pattern_battery(
        n_random=n_patterns - 10, seed=seed,
    )[:n_patterns]):
        report = tester.test_pattern(pattern, TEST_INTERVAL_MS)
        for failure in report.failures:
            key = (failure.row_index, failure.bit)
            cell = cell_ids.setdefault(key, len(cell_ids))
            points.append((cell, pattern_id))
    return points
