"""Figure 3: cells fail only under some data patterns.

The paper tests one chip with ~100 data patterns and plots, for each
failing cell, the set of patterns that trips it — showing the failures are
conditional on content. We run the canonical + random pattern battery on a
slice of the simulated module and report, per pattern, how many cells
fail, plus the per-cell pattern-sensitivity summary (cells failing under
every pattern would not be data-dependent).

The battery runs through the vectorised batch fault-evaluation engine:
each pattern is laid out in silicon order for every row at once
(:meth:`VendorMapping.to_silicon_batch`) and evaluated in a single
:meth:`FaultMap.failing_cells_batch` pass. Failures are reported in
*system* coordinates, exactly as the SoftMC read-back path would see
them — flips at silicon positions that hold no system data (zeroed
faulty columns) are invisible and excluded, and the same protocol is
cross-checked against the device path in the test suite.
"""

from __future__ import annotations

from collections import defaultdict
from functools import lru_cache
from typing import Any, Dict, List, Set, Tuple

import numpy as np

from ..dram import DramGeometry
from ..dram.faults import FaultMap, FaultModelConfig
from ..dram.scramble import VendorMapping, make_vendor_mapping
from ..parallel.units import WorkUnit
from ..testinfra import pattern_battery
from ..testinfra.patterns import DataPattern
from .common import ExperimentResult

#: Test conditions mirroring the paper's FPGA setup: a 328 ms-equivalent
#: retention window.
TEST_INTERVAL_MS = 328.0


@lru_cache(maxsize=4)
def _setup(quick: bool, seed: int) -> Tuple[DramGeometry, VendorMapping, FaultMap]:
    rows = 96 if quick else 512
    geometry = DramGeometry(
        channels=1, ranks=1, banks=2, rows_per_bank=rows // 2,
        row_size_bytes=2048, block_size_bytes=64,
    )
    # Same vendor-mapping parameters a CellArray would auto-build.
    mapping = make_vendor_mapping(
        columns=geometry.bits_per_row,
        seed=seed,
        spare_columns=max(8, geometry.bits_per_row // 256),
        faulty_fraction=0.002,
    )
    # Densify the fault population so a small slice shows many cells, as
    # the paper's single-chip plot does.
    fault_map = FaultMap(
        total_rows=geometry.total_rows,
        bits_per_row=mapping.physical_columns,
        config=FaultModelConfig(vulnerable_cell_rate=2e-4),
        seed=seed,
    )
    return geometry, mapping, fault_map


def _pattern_failures(
    geometry: DramGeometry,
    mapping: VendorMapping,
    fault_map: FaultMap,
    pattern: DataPattern,
    system_of_silicon: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """(row, system bit) of every read-back-visible failure of a pattern."""
    rows = np.arange(geometry.total_rows, dtype=np.int64)
    system = np.stack(
        [pattern.row_bits(int(r), geometry.bits_per_row) for r in rows]
    )
    silicon = mapping.to_silicon_batch(system)
    fail_rows, fail_cols = fault_map.failing_cells_batch(
        rows, silicon, TEST_INTERVAL_MS
    )
    bits = system_of_silicon[fail_cols]
    visible = bits >= 0
    return fail_rows[visible], bits[visible]


def _n_patterns(quick: bool) -> int:
    return 24 if quick else 100


def units(quick: bool = True, seed: int = 1) -> List[WorkUnit]:
    """Chunks of the pattern battery (4 patterns quick, 10 full)."""
    n_patterns = _n_patterns(quick)
    chunk = 4 if quick else 10
    out: List[WorkUnit] = []
    for seq, start in enumerate(range(0, n_patterns, chunk)):
        stop = min(start + chunk, n_patterns)
        out.append(WorkUnit(
            "fig03", f"pat{start:03d}", {"patterns": [start, stop]}, seq=seq,
        ))
    return out


def run_unit(unit: WorkUnit, quick: bool = True, seed: int = 1) -> Dict[str, Any]:
    """Evaluate one pattern-range chunk of the battery.

    Returns per-pattern failure counts plus the raw ``(row, bit,
    pattern_id)`` triples so the merge can rebuild the cross-pattern
    cell-sensitivity sets exactly as the serial loop does.
    """
    n_patterns = _n_patterns(quick)
    start, stop = unit.params["patterns"]
    geometry, mapping, fault_map = _setup(quick, seed)
    system_of_silicon = mapping.system_of_silicon()
    battery = pattern_battery(n_random=n_patterns - 10, seed=seed)[:n_patterns]

    per_pattern: List[List[Any]] = []
    cells: List[List[int]] = []
    for pattern_id in range(start, stop):
        pattern = battery[pattern_id]
        rows, bits = _pattern_failures(
            geometry, mapping, fault_map, pattern, system_of_silicon
        )
        for row, bit in zip(rows, bits):
            cells.append([int(row), int(bit), pattern_id])
        per_pattern.append([pattern.name, int(len(rows))])
    return {"per_pattern": per_pattern, "cells": cells}


def merge_units(
    payloads: List[Dict[str, Any]], quick: bool = True, seed: int = 1
) -> ExperimentResult:
    n_patterns = _n_patterns(quick)
    cell_patterns: Dict[Tuple[int, int], Set[int]] = defaultdict(set)
    result = ExperimentResult(
        experiment_id="fig03",
        title="Cells failing with different data content",
        paper_claim=(
            "each failing cell trips under only a subset of ~100 data "
            "patterns: failures are conditional on memory content"
        ),
    )
    for payload in payloads:
        for name, count in payload["per_pattern"]:
            result.add_row(pattern=name, failing_cells=count)
        for row, bit, pattern_id in payload["cells"]:
            cell_patterns[(row, bit)].add(pattern_id)

    n_cells = len(cell_patterns)
    conditional = sum(
        1 for patterns in cell_patterns.values()
        if 0 < len(patterns) < n_patterns
    )
    result.notes = (
        f"{n_cells} distinct cells failed across {n_patterns} patterns; "
        f"{conditional} of them ({100 * conditional / max(n_cells, 1):.0f}%) "
        "fail under only a strict subset of patterns (data-dependent)"
    )
    return result


def run(quick: bool = True, seed: int = 1) -> ExperimentResult:
    """Run the pattern battery and collect per-pattern failing cells."""
    payloads = [
        run_unit(unit, quick=quick, seed=seed)
        for unit in units(quick=quick, seed=seed)
    ]
    return merge_units(payloads, quick=quick, seed=seed)


def cell_pattern_matrix(quick: bool = True, seed: int = 1):
    """(cell_id, pattern_id) scatter points, the raw Figure 3 plot data."""
    n_patterns = 24 if quick else 100
    geometry, mapping, fault_map = _setup(quick, seed)
    system_of_silicon = mapping.system_of_silicon()
    cell_ids: Dict[Tuple[int, int], int] = {}
    points = []
    for pattern_id, pattern in enumerate(pattern_battery(
        n_random=n_patterns - 10, seed=seed,
    )[:n_patterns]):
        rows, bits = _pattern_failures(
            geometry, mapping, fault_map, pattern, system_of_silicon
        )
        for row, bit in zip(rows, bits):
            key = (int(row), int(bit))
            cell = cell_ids.setdefault(key, len(cell_ids))
            points.append((cell, pattern_id))
    return points
