"""Figure 16: MEMCON vs other refresh mechanisms.

All mechanisms are expressed as refresh-operation reductions relative to
the aggressive 16 ms baseline and run through the same simulator:

* 32 ms baseline      — 50% fewer refreshes, no testing traffic;
* RAIDR               — profiled ALL-FAIL rows (16% of rows) at 16 ms, the
                        rest at 64 ms: a 63% reduction, no testing traffic;
* MEMCON              — the Figure 14 reduction (~66%) plus 256 concurrent
                        tests of injected traffic;
* ideal 64 ms         — 75% reduction, no testing (the upper bound).

The paper's ordering: 32 ms < RAIDR < MEMCON < 64 ms, with MEMCON within
3-5% of the ideal.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from ..parallel.units import WorkUnit
from ..sim.metrics import geometric_mean, speedup
from ..sim.system import simulate_workload
from ..sim.workloads import multicore_mixes, singlecore_workloads
from .common import ExperimentResult, plain

DENSITIES_GBIT = (8, 16, 32)

#: RAIDR pins the profiled ALL-FAIL rows (16% of all rows, matching the
#: paper's random-failure model and our Figure 4 measurement) at HI-REF.
RAIDR_HI_FRACTION = 0.16
#: MEMCON's measured refresh reduction (Figure 14 mean).
MEMCON_REDUCTION = 0.66

MECHANISMS = (
    ("32ms", 0.50, 0),
    ("RAIDR", 1.0 - (RAIDR_HI_FRACTION + (1 - RAIDR_HI_FRACTION) / 4.0), 0),
    ("MEMCON", MEMCON_REDUCTION, 256),
    ("64ms", 0.75, 0),
)


def units(quick: bool = True, seed: int = 1) -> List[WorkUnit]:
    """One unit per (cores, density) simulator configuration."""
    out: List[WorkUnit] = []
    for cores in (1, 4):
        for density in DENSITIES_GBIT:
            out.append(WorkUnit(
                "fig16", f"c{cores}-d{density}",
                {"cores": cores, "density": density}, seq=len(out),
            ))
    return out


def run_unit(unit: WorkUnit, quick: bool = True, seed: int = 1) -> Dict[str, Any]:
    cores = unit.params["cores"]
    density = unit.params["density"]
    n_workloads = 6 if quick else 30
    window_ns = 100_000.0 if quick else 500_000.0
    workloads = (
        singlecore_workloads(n_workloads, seed=seed) if cores == 1
        else multicore_mixes(n_workloads, seed=seed)
    )
    baselines = [
        simulate_workload(
            names, density_gbit=density, window_ns=window_ns, seed=seed + i,
        )
        for i, names in enumerate(workloads)
    ]
    row: Dict[str, object] = {"cores": cores, "density": f"{density}Gb"}
    for label, reduction, tests in MECHANISMS:
        speedups = [
            speedup(
                simulate_workload(
                    names, density_gbit=density,
                    refresh_reduction=reduction,
                    concurrent_tests=tests,
                    window_ns=window_ns, seed=seed + i,
                ),
                baselines[i],
            )
            for i, names in enumerate(workloads)
        ]
        row[label] = geometric_mean(speedups)
    return {"row": plain(row)}


def merge_units(
    payloads: List[Dict[str, Any]], quick: bool = True, seed: int = 1
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig16",
        title="Comparison with other refresh mechanisms",
        paper_claim=(
            "32 ms < RAIDR < MEMCON < ideal 64 ms; MEMCON beats the 32 ms "
            "baseline by 4-17% and lands within 3-5% of ideal 64 ms"
        ),
    )
    for payload in payloads:
        result.add_row(**payload["row"])
    result.notes = (
        f"RAIDR modelled with {int(RAIDR_HI_FRACTION * 100)}% of rows "
        f"pinned at HI-REF; MEMCON at {int(MEMCON_REDUCTION * 100)}% "
        "reduction plus testing traffic; all speedups vs the 16 ms baseline"
    )
    return result


def run(quick: bool = True, seed: int = 1) -> ExperimentResult:
    """Mean speedup of each mechanism over the 16 ms baseline."""
    payloads = [
        run_unit(unit, quick=quick, seed=seed)
        for unit in units(quick=quick, seed=seed)
    ]
    return merge_units(payloads, quick=quick, seed=seed)
