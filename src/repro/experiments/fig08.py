"""Figure 8: write intervals follow a Pareto distribution.

The paper fits ``P(interval > x) = k * x**-alpha`` on log-log axes for
three representative workloads and reports R^2 of 0.94-0.99. We fit the
pooled interval CCDF of the synthetic traces over the same tail region
(above the burst knee, below the capture-window truncation).
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..analysis.pareto import fit_pareto, is_decreasing_hazard
from ..parallel.units import WorkUnit
from ..traces.generator import generate_trace
from ..traces.workloads import REPRESENTATIVE_WORKLOADS, WORKLOADS
from .common import ExperimentResult, plain

#: The paper's R^2 values for ACBrotherhood / Netflix / SystemMgt.
PAPER_R2 = {
    "ACBrotherHood": 0.944,
    "Netflix": 0.937,
    "SystemMgt": 0.986,
}

#: Fit window: above the sub-ms burst knee, below end-of-trace truncation.
FIT_X_MIN_MS = 2.0
FIT_X_MAX_FRACTION = 1.0 / 40.0


def units(quick: bool = True, seed: int = 1) -> List[WorkUnit]:
    """One unit per plotted workload trace."""
    return [
        WorkUnit("fig08", name, {"workload": name}, seq=i)
        for i, name in enumerate(REPRESENTATIVE_WORKLOADS)
    ]


def run_unit(unit: WorkUnit, quick: bool = True, seed: int = 1) -> Dict[str, Any]:
    name = unit.params["workload"]
    duration = 60_000.0 if quick else None
    trace = generate_trace(WORKLOADS[name], seed=seed, duration_ms=duration)
    intervals = trace.all_intervals()
    fit = fit_pareto(
        intervals[intervals >= FIT_X_MIN_MS],
        x_min=FIT_X_MIN_MS,
        x_max=trace.duration_ms * FIT_X_MAX_FRACTION,
    )
    return {"row": plain({
        "workload": name,
        "alpha": fit.alpha,
        "r_squared": fit.r_squared,
        "paper_r_squared": PAPER_R2[name],
        "dhr": str(is_decreasing_hazard(intervals[intervals >= 1.0])),
        "n_intervals": fit.n_samples,
    })}


def merge_units(
    payloads: List[Dict[str, Any]], quick: bool = True, seed: int = 1
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig08",
        title="Pareto distribution of write intervals",
        paper_claim="log-log linear CCDF fits with R^2 = 0.94/0.94/0.99",
    )
    for payload in payloads:
        result.add_row(**payload["row"])
    result.notes = (
        "alpha is the fitted tail index; dhr confirms the decreasing "
        "hazard rate property PRIL relies on"
    )
    return result


def run(quick: bool = True, seed: int = 1) -> ExperimentResult:
    """Fit the Pareto tail for the three plotted workloads."""
    payloads = [
        run_unit(unit, quick=quick, seed=seed)
        for unit in units(quick=quick, seed=seed)
    ]
    return merge_units(payloads, quick=quick, seed=seed)
