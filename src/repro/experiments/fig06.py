"""Figure 6 + Appendix: accumulated cost curves and MinWriteInterval.

Pure analytic reproduction: with the paper's DDR3-1600 cost arithmetic
(Read&Compare 1068 ns, Copy&Compare 1602 ns, refresh 39 ns) the crossover
of MEMCON's accumulated cost against the aggressive 16 ms baseline lands
at 560 ms / 864 ms for the two test modes at a 64 ms LO-REF interval, and
at 480 ms / 448 ms for 128 ms / 256 ms LO-REF intervals.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..core.costmodel import (
    CostModel,
    TestMode,
    copy_and_compare_storage_overhead,
    test_cost_ns,
)
from ..dram.timing import DDR3_1600
from ..parallel.units import WorkUnit
from .common import ExperimentResult, plain

#: (LO-REF interval ms, test mode, the paper's MinWriteInterval in ms).
PAPER_POINTS = (
    (64.0, TestMode.READ_AND_COMPARE, 560.0),
    (64.0, TestMode.COPY_AND_COMPARE, 864.0),
    (128.0, TestMode.READ_AND_COMPARE, 480.0),
    (256.0, TestMode.READ_AND_COMPARE, 448.0),
)


def units(quick: bool = True, seed: int = 1) -> List[WorkUnit]:
    """One unit per paper configuration point."""
    return [
        WorkUnit(
            "fig06", f"lo{int(lo_ms)}-{mode.value}",
            {"lo_ms": lo_ms, "mode": mode.value, "paper_ms": paper_ms},
            seq=i,
        )
        for i, (lo_ms, mode, paper_ms) in enumerate(PAPER_POINTS)
    ]


def run_unit(unit: WorkUnit, quick: bool = True, seed: int = 1) -> Dict[str, Any]:
    lo_ms = unit.params["lo_ms"]
    mode = TestMode(unit.params["mode"])
    paper_ms = unit.params["paper_ms"]
    model = CostModel(lo_ref_interval_ms=lo_ms)
    measured = model.min_write_interval_ms(mode)
    return {"row": plain({
        "lo_ref_ms": lo_ms,
        "test_mode": mode.value,
        "test_cost_ns": test_cost_ns(mode),
        "min_write_interval_ms": measured,
        "paper_ms": paper_ms,
        "match": "yes" if measured == paper_ms else "NO",
    })}


def merge_units(
    payloads: List[Dict[str, Any]], quick: bool = True, seed: int = 1
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig06",
        title="Determining MinWriteInterval (accumulated cost crossover)",
        paper_claim=(
            "MinWriteInterval = 560/864 ms (Read&Compare / Copy&Compare at "
            "64 ms LO-REF); 480/448 ms at 128/256 ms LO-REF; test costs "
            "1068/1602 ns; refresh 39 ns; 1.56% storage for Copy&Compare"
        ),
    )
    for payload in payloads:
        result.add_row(**payload["row"])
    result.notes = (
        f"row read {DDR3_1600.row_read_ns:.0f} ns, refresh "
        f"{DDR3_1600.row_refresh_ns:.0f} ns, Copy&Compare reserved-region "
        f"overhead {100 * copy_and_compare_storage_overhead():.2f}%"
    )
    return result


def run(quick: bool = True, seed: int = 1) -> ExperimentResult:
    """Compute MinWriteInterval for the paper's four configurations."""
    payloads = [
        run_unit(unit, quick=quick, seed=seed)
        for unit in units(quick=quick, seed=seed)
    ]
    return merge_units(payloads, quick=quick, seed=seed)


def cost_curve_series(horizon_ms: float = 2000.0):
    """The three Figure 6 series: HI-REF and both MEMCON test modes."""
    model = CostModel()
    times, hi, _ = model.cost_curves(TestMode.READ_AND_COMPARE, horizon_ms)
    _, _, read_cmp = model.cost_curves(TestMode.READ_AND_COMPARE, horizon_ms)
    _, _, copy_cmp = model.cost_curves(TestMode.COPY_AND_COMPARE, horizon_ms)
    return times, hi, read_cmp, copy_cmp
