"""Figure 12: coverage of write-interval time vs CIL.

Waiting longer before predicting makes predictions more accurate but
forfeits the waited-out time. A CIL of 512-2048 ms keeps 65-85% of the
total write-interval time on the table — the paper's sweet spot for the
PRIL quantum.
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from ..analysis.intervals import interval_time_coverage
from ..parallel.units import WorkUnit
from ..traces.generator import generate_trace
from ..traces.workloads import WORKLOADS
from .common import ExperimentResult, plain

REPORT_CILS_MS = (64.0, 256.0, 512.0, 1024.0, 2048.0, 8192.0, 32768.0)


def units(quick: bool = True, seed: int = 1) -> List[WorkUnit]:
    """One unit per application trace (full CIL sweep inside)."""
    return [
        WorkUnit("fig12", name, {"workload": name}, seq=i)
        for i, name in enumerate(WORKLOADS)
    ]


def run_unit(unit: WorkUnit, quick: bool = True, seed: int = 1) -> Dict[str, Any]:
    name = unit.params["workload"]
    duration = 60_000.0 if quick else None
    trace = generate_trace(WORKLOADS[name], seed=seed, duration_ms=duration)
    row: Dict[str, Any] = {"workload": name}
    sweet: List[float] = []
    for cil in REPORT_CILS_MS:
        coverage = interval_time_coverage(trace, cil)
        row[f"cil_{int(cil)}ms"] = coverage
        if cil in (512.0, 2048.0):
            sweet.append(coverage)
    return plain({"row": row, "sweet": sweet})


def merge_units(
    payloads: List[Dict[str, Any]], quick: bool = True, seed: int = 1
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig12",
        title="Coverage of write-interval time vs CIL",
        paper_claim=(
            "coverage falls as CIL grows; CIL = 512-2048 ms retains on "
            "average 65-85% of the total write-interval time"
        ),
    )
    sweet_spot: List[float] = []
    for payload in payloads:
        sweet_spot.extend(payload["sweet"])
        result.add_row(**payload["row"])
    result.notes = (
        f"coverage at CIL 512-2048 ms spans {min(sweet_spot):.2f}-"
        f"{max(sweet_spot):.2f} (mean {np.mean(sweet_spot):.2f})"
    )
    return result


def run(quick: bool = True, seed: int = 1) -> ExperimentResult:
    """Time coverage per workload across the CIL sweep."""
    payloads = [
        run_unit(unit, quick=quick, seed=seed)
        for unit in units(quick=quick, seed=seed)
    ]
    return merge_units(payloads, quick=quick, seed=seed)
