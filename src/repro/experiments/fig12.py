"""Figure 12: coverage of write-interval time vs CIL.

Waiting longer before predicting makes predictions more accurate but
forfeits the waited-out time. A CIL of 512-2048 ms keeps 65-85% of the
total write-interval time on the table — the paper's sweet spot for the
PRIL quantum.
"""

from __future__ import annotations

import numpy as np

from ..analysis.intervals import interval_time_coverage
from ..traces.generator import generate_trace
from ..traces.workloads import WORKLOADS
from .common import ExperimentResult

REPORT_CILS_MS = (64.0, 256.0, 512.0, 1024.0, 2048.0, 8192.0, 32768.0)


def run(quick: bool = True, seed: int = 1) -> ExperimentResult:
    """Time coverage per workload across the CIL sweep."""
    result = ExperimentResult(
        experiment_id="fig12",
        title="Coverage of write-interval time vs CIL",
        paper_claim=(
            "coverage falls as CIL grows; CIL = 512-2048 ms retains on "
            "average 65-85% of the total write-interval time"
        ),
    )
    duration = 60_000.0 if quick else None
    sweet_spot = []
    for name, profile in WORKLOADS.items():
        trace = generate_trace(profile, seed=seed, duration_ms=duration)
        row = {"workload": name}
        for cil in REPORT_CILS_MS:
            coverage = interval_time_coverage(trace, cil)
            row[f"cil_{int(cil)}ms"] = coverage
            if cil in (512.0, 2048.0):
                sweet_spot.append(coverage)
        result.add_row(**row)
    result.notes = (
        f"coverage at CIL 512-2048 ms spans {min(sweet_spot):.2f}-"
        f"{max(sweet_spot):.2f} (mean {np.mean(sweet_spot):.2f})"
    )
    return result
