"""Shared infrastructure for the per-figure experiment modules.

Every experiment module exposes ``run(quick=True, seed=1) -> ExperimentResult``.
``quick`` trims workload counts and simulation windows so the whole suite
finishes in minutes; the full settings match the paper's scale. Results
render as aligned text tables with the paper's claim alongside, which is
what ``python -m repro.experiments`` prints and EXPERIMENTS.md records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


@dataclass
class ExperimentResult:
    """One reproduced table or figure."""

    experiment_id: str          # e.g. "fig14"
    title: str
    paper_claim: str            # the number/shape the paper reports
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, **fields: Any) -> None:
        self.rows.append(fields)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form; round-trips exactly (floats survive json)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "paper_claim": self.paper_claim,
            "rows": [dict(row) for row in self.rows],
            "notes": self.notes,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentResult":
        return cls(
            experiment_id=data["experiment_id"],
            title=data["title"],
            paper_claim=data["paper_claim"],
            rows=[dict(row) for row in data.get("rows", [])],
            notes=data.get("notes", ""),
        )

    # ------------------------------------------------------------------
    def columns(self) -> List[str]:
        seen: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in seen:
                    seen.append(key)
        return seen

    def to_text(self) -> str:
        """Render the result as an aligned text table."""
        lines = [
            f"== {self.experiment_id}: {self.title} ==",
            f"paper: {self.paper_claim}",
        ]
        if self.rows:
            cols = self.columns()
            rendered = [
                [_fmt(row.get(col, "")) for col in cols] for row in self.rows
            ]
            widths = [
                max(len(col), *(len(r[i]) for r in rendered))
                for i, col in enumerate(cols)
            ]
            header = "  ".join(col.ljust(w) for col, w in zip(cols, widths))
            lines.append(header)
            lines.append("-" * len(header))
            for r in rendered:
                lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def percent(value: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string."""
    return f"{100.0 * value:.{digits}f}%"


def plain(value: Any) -> Any:
    """Coerce numpy scalars (recursively) to JSON-safe Python values.

    Work-unit payloads cross process boundaries and the checkpoint
    journal as JSON; ``float(np.float64)`` is exact, so the coercion
    never perturbs a result.
    """
    if isinstance(value, dict):
        return {key: plain(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [plain(item) for item in value]
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return float(value)
    if isinstance(value, int):
        return int(value)
    if hasattr(value, "item"):  # remaining numpy scalars (np.int64, ...)
        return value.item()
    return value
