"""Figure 11: P(remaining interval > 1024 ms) as a function of CIL.

The decreasing hazard rate in action: the probability that a page stays
idle for another second grows with how long it has already been idle —
roughly 50-80% once the current interval length reaches 512 ms, and close
to 1 past 16 s.
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from ..analysis.intervals import LONG_INTERVAL_MS, ril_exceeds_probability
from ..parallel.units import WorkUnit
from ..traces.generator import generate_trace
from ..traces.workloads import WORKLOADS
from .common import ExperimentResult, plain

#: The CIL values reported in the summary table (full grid available via
#: repro.analysis.intervals.CIL_GRID_MS).
REPORT_CILS_MS = (64.0, 256.0, 512.0, 1024.0, 2048.0, 8192.0, 16384.0)


def units(quick: bool = True, seed: int = 1) -> List[WorkUnit]:
    """One unit per application trace (full CIL sweep inside)."""
    return [
        WorkUnit("fig11", name, {"workload": name}, seq=i)
        for i, name in enumerate(WORKLOADS)
    ]


def run_unit(unit: WorkUnit, quick: bool = True, seed: int = 1) -> Dict[str, Any]:
    name = unit.params["workload"]
    duration = 60_000.0 if quick else None
    trace = generate_trace(WORKLOADS[name], seed=seed, duration_ms=duration)
    row: Dict[str, Any] = {"workload": name}
    at_512 = None
    for cil in REPORT_CILS_MS:
        p = ril_exceeds_probability(trace, cil, LONG_INTERVAL_MS)
        row[f"cil_{int(cil)}ms"] = p
        if cil == 512.0:
            at_512 = p
    return plain({"row": row, "at_512": at_512})


def merge_units(
    payloads: List[Dict[str, Any]], quick: bool = True, seed: int = 1
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig11",
        title="P(RIL > 1024 ms) as a function of CIL",
        paper_claim=(
            "probability low for CIL <= 256 ms, ~50-80% at CIL = 512 ms, "
            "approaching 1 above 16384 ms"
        ),
    )
    at_512 = [payload["at_512"] for payload in payloads]
    for payload in payloads:
        result.add_row(**payload["row"])
    result.notes = (
        f"P(RIL > 1024 ms | CIL = 512 ms) spans "
        f"{min(at_512):.2f}-{max(at_512):.2f} across workloads "
        f"(mean {np.mean(at_512):.2f})"
    )
    return result


def run(quick: bool = True, seed: int = 1) -> ExperimentResult:
    """Conditional long-interval probability per workload and CIL."""
    payloads = [
        run_unit(unit, quick=quick, seed=seed)
        for unit in units(quick=quick, seed=seed)
    ]
    return merge_units(payloads, quick=quick, seed=seed)
