"""Figure 7: distribution of write intervals in representative workloads.

More than 95% of writes arrive within 1 ms of the previous write to the
same page, while a tiny fraction (<0.5% in the paper) of intervals exceed
1024 ms — the heavy Pareto tail the rest of the mechanism exploits.
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from ..analysis.intervals import INTERVAL_BUCKETS_MS, interval_distribution
from ..parallel.units import WorkUnit
from ..traces.generator import generate_trace
from ..traces.workloads import REPRESENTATIVE_WORKLOADS, WORKLOADS
from .common import ExperimentResult, percent, plain


def units(quick: bool = True, seed: int = 1) -> List[WorkUnit]:
    """One unit per plotted workload trace."""
    return [
        WorkUnit("fig07", name, {"workload": name}, seq=i)
        for i, name in enumerate(REPRESENTATIVE_WORKLOADS)
    ]


def run_unit(unit: WorkUnit, quick: bool = True, seed: int = 1) -> Dict[str, Any]:
    name = unit.params["workload"]
    duration = 60_000.0 if quick else None
    trace = generate_trace(WORKLOADS[name], seed=seed, duration_ms=duration)
    dist = interval_distribution(trace)
    intervals = trace.all_intervals()
    frac_short = float(np.mean(intervals < 1.0))
    frac_long = float(np.mean(intervals >= 1024.0))
    row = {"workload": name, "<1ms": percent(frac_short, 1)}
    labels = ["1-8ms", "8-64ms", "64-512ms", "512ms-4s", "4-32s", ">32s"]
    # dist.counts[0] is the <1ms bucket; the rest follow the edges.
    for label, count in zip(labels, dist.counts[1:]):
        row[label] = percent(count / max(dist.n_intervals, 1), 3)
    row[">=1024ms"] = percent(frac_long, 3)
    return plain({
        "row": row, "frac_short": frac_short, "frac_long": frac_long,
    })


def merge_units(
    payloads: List[Dict[str, Any]], quick: bool = True, seed: int = 1
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig07",
        title="Distribution of write intervals (three workloads)",
        paper_claim=(
            ">95% of writes occur within 1 ms; on average <0.43% of write "
            "intervals exceed 1024 ms"
        ),
    )
    sub_1ms = [payload["frac_short"] for payload in payloads]
    over_1024 = [payload["frac_long"] for payload in payloads]
    for payload in payloads:
        result.add_row(**payload["row"])
    result.notes = (
        f"measured: {percent(min(sub_1ms))}-{percent(max(sub_1ms))} of "
        f"writes within 1 ms; {percent(min(over_1024), 2)}-"
        f"{percent(max(over_1024), 2)} of intervals >= 1024 ms"
    )
    return result


def run(quick: bool = True, seed: int = 1) -> ExperimentResult:
    """Bucket write intervals for the three plotted workloads."""
    payloads = [
        run_unit(unit, quick=quick, seed=seed)
        for unit in units(quick=quick, seed=seed)
    ]
    return merge_units(payloads, quick=quick, seed=seed)
