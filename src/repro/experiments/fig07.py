"""Figure 7: distribution of write intervals in representative workloads.

More than 95% of writes arrive within 1 ms of the previous write to the
same page, while a tiny fraction (<0.5% in the paper) of intervals exceed
1024 ms — the heavy Pareto tail the rest of the mechanism exploits.
"""

from __future__ import annotations

import numpy as np

from ..analysis.intervals import INTERVAL_BUCKETS_MS, interval_distribution
from ..traces.generator import generate_trace
from ..traces.workloads import REPRESENTATIVE_WORKLOADS, WORKLOADS
from .common import ExperimentResult, percent


def run(quick: bool = True, seed: int = 1) -> ExperimentResult:
    """Bucket write intervals for the three plotted workloads."""
    result = ExperimentResult(
        experiment_id="fig07",
        title="Distribution of write intervals (three workloads)",
        paper_claim=(
            ">95% of writes occur within 1 ms; on average <0.43% of write "
            "intervals exceed 1024 ms"
        ),
    )
    duration = 60_000.0 if quick else None
    sub_1ms = []
    over_1024 = []
    for name in REPRESENTATIVE_WORKLOADS:
        trace = generate_trace(WORKLOADS[name], seed=seed,
                               duration_ms=duration)
        dist = interval_distribution(trace)
        intervals = trace.all_intervals()
        frac_short = float(np.mean(intervals < 1.0))
        frac_long = float(np.mean(intervals >= 1024.0))
        sub_1ms.append(frac_short)
        over_1024.append(frac_long)
        row = {"workload": name, "<1ms": percent(frac_short, 1)}
        labels = ["1-8ms", "8-64ms", "64-512ms", "512ms-4s", "4-32s", ">32s"]
        # dist.counts[0] is the <1ms bucket; the rest follow the edges.
        for label, count in zip(labels, dist.counts[1:]):
            row[label] = percent(count / max(dist.n_intervals, 1), 3)
        row[">=1024ms"] = percent(frac_long, 3)
        result.add_row(**row)
    result.notes = (
        f"measured: {percent(min(sub_1ms))}-{percent(max(sub_1ms))} of "
        f"writes within 1 ms; {percent(min(over_1024), 2)}-"
        f"{percent(max(over_1024), 2)} of intervals >= 1024 ms"
    )
    return result
