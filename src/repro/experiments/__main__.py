"""Entry point: ``python -m repro.experiments all``."""

import sys

from .runner import main

sys.exit(main())
