"""Run any or all paper experiments and print their tables.

Usage::

    python -m repro.experiments all          # every figure/table, quick
    python -m repro.experiments fig14 fig17  # a subset
    python -m repro.experiments all --full   # paper-scale settings
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional

from . import (
    fig03, fig04, fig06, fig07, fig08, fig09, fig11, fig12,
    fig14, fig15, fig16, fig17, fig18, fig19, table3,
)
from .common import ExperimentResult

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "fig03": fig03.run,
    "fig04": fig04.run,
    "fig06": fig06.run,
    "fig07": fig07.run,
    "fig08": fig08.run,
    "fig09": fig09.run,
    "fig11": fig11.run,
    "fig12": fig12.run,
    "fig14": fig14.run,
    "fig15": fig15.run,
    "fig16": fig16.run,
    "fig17": fig17.run,
    "fig18": fig18.run,
    "fig19": fig19.run,
    "table3": table3.run,
}


def run_experiments(
    names: List[str], quick: bool = True, seed: int = 1
) -> List[ExperimentResult]:
    """Run the named experiments (or all of them) and return results."""
    if names == ["all"]:
        names = list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        raise KeyError(
            f"unknown experiments {unknown}; available: {list(EXPERIMENTS)}"
        )
    return [EXPERIMENTS[name](quick=quick, seed=seed) for name in names]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the MEMCON paper's tables and figures.",
    )
    parser.add_argument(
        "experiments", nargs="+",
        help="experiment ids (fig03 ... table3) or 'all'",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="paper-scale settings (slower) instead of quick mode",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--out", metavar="FILE", default=None,
        help="also write each result table to FILE (markdown code blocks); "
        "the file is truncated at the start of the run",
    )
    args = parser.parse_args(argv)

    if args.out:
        # Truncate once so each invocation produces a fresh report, then
        # append per experiment so partial output survives a crash.
        with open(args.out, "w"):
            pass
    for name in (
        list(EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    ):
        started = time.time()
        result = run_experiments([name], quick=not args.full, seed=args.seed)[0]
        text = result.to_text()
        print(text)
        print(f"[{name} finished in {time.time() - started:.1f}s]")
        print()
        if args.out:
            with open(args.out, "a") as handle:
                handle.write(f"```\n{text}\n```\n\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
