"""Run any or all paper experiments and print their tables.

Usage::

    python -m repro.experiments all          # every figure/table, quick
    python -m repro.experiments fig14 fig17  # a subset
    python -m repro.experiments all --full   # paper-scale settings
    python -m repro.experiments fig03 --trace t.jsonl --metrics m.json
    python -m repro.experiments all --jobs 4 # sharded across processes
    python -m repro.experiments all --jobs 4 --resume   # pick up a kill

Result tables go to stdout; progress goes through ``logging`` (stderr),
tuned with ``--verbose``/``--quiet``. ``--trace`` records the run's
structured JSONL event stream (see :mod:`repro.obs.trace`), ``--metrics``
dumps the final metrics-registry snapshot as JSON, and every run that
produces a file also writes a run manifest — config, seed, git revision,
per-experiment timings, span tree, metric snapshot — next to it
(``--manifest`` overrides the location). ``python -m repro.obs.report``
renders the trace and manifest back into summary tables.

Whenever events flow (``--trace`` or ``--live``), the stream is teed
through an in-process :class:`repro.obs.AggregatingSink`, whose windowed
rollups (HI/LO-REF population, test outcomes, PRIL hit rate, controller
latency percentiles, energy) are stored in the manifest under
``"timeseries"``. ``--live`` adds a periodic stderr status line driven
by the same aggregator; ``--window-ms`` sets the rollup window.
``python -m repro.obs.compare OLD NEW`` diffs two manifests.

``--jobs N`` executes each experiment's deterministic work units
(:mod:`repro.parallel`) across N processes. Completed units are
journalled to a checkpoint file as they finish (``--checkpoint``
overrides the location), and ``--resume`` skips any journalled unit
whose fingerprint still matches — a killed sweep restarts without
re-executing finished work. Result tables are byte-identical to the
serial run for every N; worker trace shards and metrics snapshots are
merged back into the single ``--trace``/``--metrics`` files after the
run, and the manifest records the worker topology under ``"workers"``.

``--forensics`` additionally records the decision-provenance ledger
(:mod:`repro.obs.forensics`): PRIL LO-REF grants/revocations with their
write-interval evidence, the MEMCON test lifecycle, TRR neighbour
refreshes, disturbance dose crossings and fault-predicate evaluations.
The ledger is extracted to ``<trace stem>.forensics.jsonl`` after the
run (``--forensics-out`` overrides), its census lands in the manifest
under ``"forensics"``, and ``python -m repro.obs.why --row R`` answers
per-row causal queries against it.
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from .. import kernels, obs
from ..parallel import (
    CheckpointJournal,
    ParallelExecutor,
    WorkerObsConfig,
    decompose,
    discover_metric_shards,
    discover_trace_shards,
    merge_metric_snapshots,
    merge_payloads,
    merge_run_traces,
    trace_shard_path,
)
from . import (
    fig03, fig04, fig06, fig07, fig08, fig09, fig11, fig12,
    fig14, fig15, fig16, fig17, fig18, fig19, hammer01, hammer02, table3,
)
from .common import ExperimentResult

logger = logging.getLogger(__name__)

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "fig03": fig03.run,
    "fig04": fig04.run,
    "fig06": fig06.run,
    "fig07": fig07.run,
    "fig08": fig08.run,
    "fig09": fig09.run,
    "fig11": fig11.run,
    "fig12": fig12.run,
    "fig14": fig14.run,
    "fig15": fig15.run,
    "fig16": fig16.run,
    "fig17": fig17.run,
    "fig18": fig18.run,
    "fig19": fig19.run,
    "table3": table3.run,
    # The read-disturbance channel studies sit after the paper's own
    # figures so an `all` run prints the reproduction tables first.
    "hammer01": hammer01.run,
    "hammer02": hammer02.run,
}


def run_experiments(
    names: List[str], quick: bool = True, seed: int = 1
) -> List[ExperimentResult]:
    """Run the named experiments (or all of them) and return results."""
    if names == ["all"]:
        names = list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        raise KeyError(
            f"unknown experiments {unknown}; available: {list(EXPERIMENTS)}"
        )
    return [EXPERIMENTS[name](quick=quick, seed=seed) for name in names]


def _configure_logging(verbose: bool, quiet: bool) -> None:
    """Route progress messages to stderr at the requested level."""
    if verbose:
        level = logging.DEBUG
    elif quiet:
        level = logging.WARNING
    else:
        level = logging.INFO
    root = logging.getLogger("repro")
    if not root.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
        root.addHandler(handler)
        root.propagate = False
    root.setLevel(level)


def _ensure_parent(path: str) -> None:
    """Create a file's parent directories so outputs can nest anywhere."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)


def _default_manifest_path(args: argparse.Namespace) -> Optional[str]:
    """Where the manifest lands when ``--manifest`` is not given."""
    if args.manifest:
        return args.manifest
    for anchor in (args.out, args.metrics, args.trace):
        if anchor:
            return os.path.splitext(anchor)[0] + ".manifest.json"
    return None


def _default_checkpoint_path(args: argparse.Namespace) -> str:
    """Where the unit journal lands when ``--checkpoint`` is not given."""
    if args.checkpoint:
        return args.checkpoint
    for anchor in (args.out, args.metrics, args.trace, args.manifest):
        if anchor:
            return os.path.splitext(anchor)[0] + ".checkpoint.jsonl"
    return "results.checkpoint.jsonl"


def _remove_quietly(path: str) -> None:
    try:
        os.remove(path)
    except OSError:
        pass


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the MEMCON paper's tables and figures.",
    )
    parser.add_argument(
        "experiments", nargs="+",
        help="experiment ids (fig03 ... table3) or 'all'",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="paper-scale settings (slower) instead of quick mode",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--out", metavar="FILE", default=None,
        help="also write each result table to FILE (markdown code blocks); "
        "the file is truncated at the start of the run",
    )
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="write the structured JSONL event trace of the run to FILE",
    )
    parser.add_argument(
        "--metrics", metavar="FILE", default=None,
        help="enable the metrics registry and write its final snapshot "
        "to FILE as JSON",
    )
    parser.add_argument(
        "--manifest", metavar="FILE", default=None,
        help="write the run manifest to FILE (default: next to --out, "
        "--metrics or --trace, whichever is given first)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="execute each experiment's work units across N processes "
        "(default 1: serial); result tables are byte-identical for any N",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="skip work units already in the checkpoint journal (their "
        "fingerprints must match the current seed/scale)",
    )
    parser.add_argument(
        "--checkpoint", metavar="FILE", default=None,
        help="checkpoint journal location (default: next to the first "
        "output file, else results.checkpoint.jsonl)",
    )
    parser.add_argument(
        "--unit-timeout", type=float, default=None, metavar="S",
        help="per-unit wall-clock budget in seconds; overrunning units "
        "are terminated and retried (default: no timeout)",
    )
    parser.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="crash/timeout retries per unit before degrading it to "
        "serial execution in the parent (default %(default)s)",
    )
    parser.add_argument(
        "--live", action="store_true",
        help="periodic stderr status line (events/s, LO-REF rows, "
        "outstanding tests, ETA) driven by the in-process aggregator; "
        "with --jobs N also a per-worker health row fed by the "
        "cross-process telemetry bus (stalled-worker detection)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="sample the span stack on a wall-clock timer and record "
        "collapsed stacks under the manifest's \"profile\" key",
    )
    parser.add_argument(
        "--profile-mem", action="store_true",
        help="like --profile, plus tracemalloc peak-heap attribution "
        "per sampled span stack (higher overhead)",
    )
    parser.add_argument(
        "--profile-interval-ms", type=float, default=5.0, metavar="MS",
        help="profiler sampling interval (default %(default)s)",
    )
    parser.add_argument(
        "--profile-out", metavar="FILE", default=None,
        help="also write the samples as collapsed-stack lines "
        "(flamegraph.pl input) to FILE",
    )
    parser.add_argument(
        "--window-ms", type=float, default=1024.0,
        help="aggregation window for the manifest's time-series rollups "
        "(default %(default)s, the MEMCON quantum)",
    )
    parser.add_argument(
        "--forensics", action="store_true",
        help="record the decision-provenance ledger (PRIL grants/"
        "revocations, MEMCON test evidence, TRR refreshes, dose "
        "crossings, predicate evaluations) and extract it next to the "
        "trace; implies --trace (a default path is derived when absent)",
    )
    parser.add_argument(
        "--forensics-out", metavar="FILE", default=None,
        help="ledger location (default: <trace stem>.forensics.jsonl)",
    )
    parser.add_argument(
        "--backend", choices=list(kernels.BACKENDS), default=None,
        metavar="NAME",
        help="hot-kernel backend: auto (numba when usable, else python), "
        "numba, python, or pyfunc (interpreted kernel paths, for "
        "equivalence testing); default: auto / $REPRO_KERNELS",
    )
    verbosity = parser.add_mutually_exclusive_group()
    verbosity.add_argument(
        "-v", "--verbose", action="store_true",
        help="debug-level progress output",
    )
    verbosity.add_argument(
        "-q", "--quiet", action="store_true",
        help="warnings only (result tables still print)",
    )
    args = parser.parse_args(argv)
    _configure_logging(args.verbose, args.quiet)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    names = (
        list(EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    )
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        raise KeyError(
            f"unknown experiments {unknown}; available: {list(EXPERIMENTS)}"
        )

    if args.forensics and not args.trace:
        # The ledger rides the event trace, so forensics implies one.
        for anchor in (args.out, args.metrics, args.manifest):
            if anchor:
                args.trace = os.path.splitext(anchor)[0] + ".trace.jsonl"
                break
        else:
            args.trace = "results.trace.jsonl"
        logger.info("--forensics: tracing to %s", args.trace)

    if args.backend:
        # Workers inherit the environment under both fork and spawn, so
        # sharded runs resolve the same backend as the parent.
        os.environ["REPRO_KERNELS"] = args.backend
    backend = kernels.set_backend(args.backend)
    # JIT compilation happens here, before any timed window, and is
    # reported as its own metric (kernels.warmup_s) rather than riding
    # the first experiment's span.
    warmup_s = kernels.warmup()
    if warmup_s:
        logger.info("kernels: %s backend, warm-up %.2fs", backend, warmup_s)

    parallel = args.jobs > 1
    journaling = parallel or args.resume or bool(args.checkpoint)

    if args.out:
        _ensure_parent(args.out)
        # Truncate once so each invocation produces a fresh report, then
        # append per experiment so partial output survives a crash.
        with open(args.out, "w"):
            pass

    profiling = args.profile or args.profile_mem or bool(args.profile_out)
    manifest = obs.RunManifest.start(
        names, seed=args.seed, quick=not args.full,
        config={"out": args.out, "trace": args.trace, "metrics": args.metrics,
                "live": args.live, "window_ms": args.window_ms,
                "jobs": args.jobs, "resume": args.resume,
                "profile": profiling, "profile_mem": args.profile_mem,
                "forensics": args.forensics,
                "kernels": kernels.backend_info()},
    )
    manifest.trace_path = args.trace

    previous_registry = None
    if args.metrics:
        previous_registry = obs.set_registry(obs.MetricsRegistry(enabled=True))
    # Sink stack: JSONL file, in-process aggregator, live reporter — all
    # fed from the same emit() calls through one tee. A sharded run's
    # parent writes a lifecycle-only shard; worker shards are spliced
    # into it after the run to produce the final --trace file.
    trace_target = (
        trace_shard_path(args.trace, "parent")
        if (parallel and args.trace) else args.trace
    )
    jsonl_sink = obs.JsonlTraceSink(trace_target) if trace_target else None
    aggregator = (
        obs.AggregatingSink(window_ms=args.window_ms)
        if (args.trace or args.live) else None
    )
    live = obs.LiveReporter(aggregator) if args.live else None
    sinks = [s for s in (jsonl_sink, aggregator, live) if s is not None]
    if len(sinks) > 1:
        sink = obs.TeeSink(*sinks)
    elif sinks:
        sink = sinks[0]
    else:
        sink = None
    previous_sink = obs.set_sink(sink) if sink is not None else None
    previous_forensics = (
        obs.set_forensics(True) if args.forensics else None
    )

    executor: Optional[ParallelExecutor] = None
    journal: Optional[CheckpointJournal] = None
    done: Dict[str, Dict[str, Any]] = {}
    if journaling:
        checkpoint_path = _default_checkpoint_path(args)
        _ensure_parent(checkpoint_path)
        journal = CheckpointJournal(checkpoint_path)
        if args.resume:
            done = journal.load()
            logger.info(
                "resume: %d journalled units in %s", len(done), checkpoint_path
            )
        executor = ParallelExecutor(
            args.jobs,
            quick=not args.full,
            seed=args.seed,
            obs_cfg=WorkerObsConfig(
                trace_base=args.trace if parallel else None,
                metrics_base=args.metrics if parallel else None,
                forensics=args.forensics,
            ),
            unit_timeout_s=args.unit_timeout,
            max_retries=args.retries,
        )
        if parallel and args.live:
            # Cross-process telemetry: workers heartbeat over a queue
            # created on the pool's own start method; the supervision
            # loop drains it into the live aggregator + worker table.
            import multiprocessing as _mp

            bus = obs.TelemetryBus(
                ctx=_mp.get_context(executor.start_method)
            )
            executor.attach_bus(
                bus,
                sink=aggregator,
                on_tick=live.tick if live is not None else None,
            )
            if live is not None:
                live.bus = bus

    profiler = (
        obs.SampledProfiler(
            interval_s=max(args.profile_interval_ms, 0.1) / 1000.0,
            mem=args.profile_mem,
        )
        if profiling else None
    )

    #: (experiment, seq) -> (shard label, attempt) for the trace merge.
    accepted: Dict[Tuple[str, int], Tuple[str, int]] = {}
    totals: Dict[str, int] = {}
    run_started = time.perf_counter()
    try:
        obs.emit("run_started", experiments=names, seed=args.seed,
                 quick=not args.full)
        with obs.collect_spans("run") as collector:
            if profiler is not None:
                # Start inside the span collector so samples attribute
                # to named spans rather than "(no-collector)".
                profiler.start()
            for name in names:
                started = time.perf_counter()
                logger.info("running %s (quick=%s, seed=%d, jobs=%d)",
                            name, not args.full, args.seed, args.jobs)
                obs.emit("experiment_started", experiment=name)
                with obs.span(name):
                    if executor is None:
                        result = run_experiments(
                            [name], quick=not args.full, seed=args.seed
                        )[0]
                    else:
                        units = decompose(
                            name, quick=not args.full, seed=args.seed
                        )
                        payloads, stats = executor.run_units(
                            units, journal=journal, done=done,
                        )
                        result = merge_payloads(
                            name, payloads,
                            quick=not args.full, seed=args.seed,
                        )
                        for unit in units:
                            if unit.key in stats.accepted_shards:
                                accepted[(unit.experiment, unit.seq)] = (
                                    stats.accepted_shards[unit.key],
                                    stats.accepted_attempts[unit.key],
                                )
                        for key, value in stats.as_dict().items():
                            totals[key] = totals.get(key, 0) + value
                        if stats.skipped:
                            logger.info(
                                "%s: %d/%d units from checkpoint",
                                name, stats.skipped, len(units),
                            )
                wall_s = time.perf_counter() - started
                obs.emit("experiment_finished", experiment=name,
                         wall_s=wall_s)
                if aggregator is not None:
                    # Fold the buffered stream between experiments so the
                    # record buffer never spans more than one experiment.
                    aggregator.drain()
                manifest.add_timing(name, wall_s, jobs=args.jobs)
                logger.info("%s finished in %.1fs", name, wall_s)
                text = result.to_text()
                print(text)
                print()
                if args.out:
                    with open(args.out, "a") as handle:
                        handle.write(f"```\n{text}\n```\n\n")
        manifest.wall_s = time.perf_counter() - run_started
        obs.emit("run_finished", wall_s=manifest.wall_s)
        manifest.spans = collector.to_dict()
        manifest.metrics = obs.get_registry().snapshot()
        if aggregator is not None and not parallel:
            manifest.timeseries = aggregator.to_dict()
    finally:
        if profiler is not None:
            profiler.stop()
        if previous_forensics is not None:
            obs.set_forensics(previous_forensics)
        if sink is not None:
            obs.set_sink(previous_sink)
            sink.close()
        if previous_registry is not None:
            obs.set_registry(previous_registry)
        if journal is not None:
            journal.close()
        if executor is not None:
            # Workers flush their trace shards and metrics snapshots
            # through atexit finalisers as the pool drains.
            executor.shutdown()

    if executor is not None:
        manifest.workers = executor.topology()
        manifest.workers["stats"] = totals
        if executor.bus is not None:
            executor.bus.close()

    if profiler is not None:
        manifest.profile = profiler.to_dict()
        logger.info(
            "profiler: %d samples, %.0f%% attributed to named spans",
            profiler.sample_count, 100 * profiler.attributed_fraction,
        )
        if args.profile_out:
            profiler.write_collapsed(args.profile_out)
            logger.info("collapsed stacks written to %s", args.profile_out)

    if parallel and args.trace:
        parent_shard = trace_shard_path(args.trace, "parent")
        worker_shards = discover_trace_shards(args.trace)
        records = merge_run_traces(
            parent_shard, worker_shards, args.trace, accepted
        )
        logger.info(
            "merged %d worker trace shards into %s (%d records)",
            len(worker_shards), args.trace, records,
        )
        for shard in worker_shards:
            _remove_quietly(shard)
        _remove_quietly(parent_shard)
        # The aggregator only saw the parent's lifecycle shard during a
        # sharded run; recompute the rollups from the merged stream,
        # which equals the serial stream record for record.
        manifest.timeseries = obs.aggregate_trace(
            obs.read_trace(args.trace, validate=False),
            window_ms=args.window_ms,
        )

    if args.forensics and args.trace:
        # Extract the ledger from the (merged) trace: for sharded runs
        # this happens after the splice, so serial and --jobs N ledgers
        # are byte-identical whenever the streams are.
        ledger_path = (
            args.forensics_out
            or os.path.splitext(args.trace)[0] + ".forensics.jsonl"
        )
        _ensure_parent(ledger_path)
        manifest.forensics = obs.extract_ledger(args.trace, ledger_path)
        logger.info(
            "forensic ledger: %d records (%d rows) written to %s",
            manifest.forensics["records"], manifest.forensics["rows"],
            ledger_path,
        )

    if parallel and args.metrics:
        metric_shards = discover_metric_shards(args.metrics)
        manifest.metrics = merge_metric_snapshots(
            manifest.metrics, metric_shards
        )
        for shard in metric_shards:
            _remove_quietly(shard)

    if args.metrics:
        _ensure_parent(args.metrics)
        with open(args.metrics, "w", encoding="utf-8") as handle:
            json.dump(manifest.metrics, handle, indent=2)
            handle.write("\n")
        logger.info("metrics snapshot written to %s", args.metrics)
    manifest_path = _default_manifest_path(args)
    if manifest_path:
        manifest.write(manifest_path)
        logger.info("run manifest written to %s", manifest_path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
