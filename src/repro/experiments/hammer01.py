"""Hammer study 1: does write-triggered content testing catch hammer flips?

MEMCON's detection is *write-triggered*: a page is tested when its
content changes, because retention failures are data-dependent. Read
disturbance (RowHammer/RowPress) breaks that assumption — flips are
triggered by the *neighbour's* access pattern, not the victim's writes,
so a victim row can flip long after its last test with unchanged content.

This experiment drives the cycle simulator per benchmark with
activation tracking on, feeds the controller's real ACT stream (counts
plus open-row on-time) through :class:`~repro.dram.disturb.DisturbMap`,
and asks two questions of every hammer-flipped row:

* would the plain write-triggered content test (the fig04 predicate at
  the 328 ms testing interval) have flagged the row anyway, and
* does the *composed* predicate — the same test with the disturbance
  pressure folded in via ``disturb_stress`` — flag it?

The gap between the two columns is the motivation for composing the
channels: content testing alone sees only the retention-vulnerable
subset of hammer victims, while the composed predicate recovers most of
the rest. Flip counts derive exclusively from the scheduler's ACT
stream; nothing is injected.

Parallel decomposition: one unit per benchmark; each unit is a whole
simulation plus its disturbance evaluation, so the merged table is
bit-identical to the serial one by construction.
"""

from __future__ import annotations

import zlib
from functools import lru_cache
from typing import Any, Dict, List, Tuple

import numpy as np

from .. import obs
from ..dram.disturb import DisturbMap, DisturbModelConfig
from ..dram.faults import FaultMap
from ..dram.scramble import VendorMapping, make_vendor_mapping
from ..mc.controller import RefreshSettings, TestTrafficSettings
from ..parallel.units import WorkUnit, unit_context
from ..sim.system import SystemConfig, SystemSimulator
from ..traces.phases import generate_content_trace
from ..traces.spec import get_benchmark
from .common import ExperimentResult, percent

#: MEMCON's testing interval (the LO-REF retention target, fig04/fig05).
TEST_INTERVAL_MS = 328.0
#: Victim refresh interval while hammering (LO-REF operation).
REFRESH_INTERVAL_MS = 64.0

#: High-memory-intensity benchmarks: enough ACT pressure per window for
#: the scaled hammer thresholds to matter.
QUICK_BENCHMARKS = ("mcf", "omnetpp", "xalancbmk", "libquantum", "lbm",
                    "soplex")
FULL_BENCHMARKS = QUICK_BENCHMARKS + ("GemsFDTD", "astar", "gcc", "bzip2",
                                      "tpcc", "tpch")

#: Scaled-down hammer population (see disturb module docs): microsecond
#: windows accumulate tens of weighted activations, so HC_first sits at
#: single digits and the vulnerable-cell rate is amplified to keep the
#: per-row population non-trivial at quick row counts.
DISTURB_CONFIG = DisturbModelConfig(
    hammer_vulnerable_rate=1.0e-4,
    hc_first=6.0,
    content_coupling=1.5,
)

ROW_BYTES = 8192


def _benchmarks(quick: bool) -> Tuple[str, ...]:
    return QUICK_BENCHMARKS if quick else FULL_BENCHMARKS


def _rows_per_bank(quick: bool) -> int:
    return 128 if quick else 512


def _window_ns(quick: bool) -> float:
    return 150_000.0 if quick else 1_000_000.0


@lru_cache(maxsize=4)
def _setup(quick: bool, seed: int) -> Tuple[VendorMapping, FaultMap, DisturbMap]:
    rows_per_bank = _rows_per_bank(quick)
    total_rows = 8 * rows_per_bank
    mapping = make_vendor_mapping(
        columns=ROW_BYTES * 8, seed=seed,
        spare_columns=(ROW_BYTES * 8) // 256, faulty_fraction=0.002,
    )
    fault_map = FaultMap(
        total_rows=total_rows,
        bits_per_row=mapping.physical_columns,
        seed=seed,
    )
    disturb_map = DisturbMap(
        total_rows=total_rows,
        bits_per_row=mapping.physical_columns,
        config=DISTURB_CONFIG,
        seed=seed,
    )
    return mapping, fault_map, disturb_map


def units(quick: bool = True, seed: int = 1) -> List[WorkUnit]:
    """One unit per benchmark simulation."""
    return [
        WorkUnit("hammer01", f"bench-{name}", {"benchmark": name}, seq=i)
        for i, name in enumerate(_benchmarks(quick))
    ]


def _silicon_images(
    benchmark_name: str, mapping: VendorMapping, n_image_rows: int, seed: int
) -> np.ndarray:
    """``(n_image_rows, physical_columns)`` silicon-order content bits."""
    profile = get_benchmark(benchmark_name).content
    trace = generate_content_trace(
        profile, n_rows=n_image_rows, row_bytes=ROW_BYTES,
        n_phases=1, seed=seed,
    )
    image = trace[0].image
    return np.stack([
        mapping.to_silicon(np.unpackbits(
            np.frombuffer(image[i], dtype=np.uint8), bitorder="little",
        ))
        for i in range(n_image_rows)
    ])


def run_unit(unit: WorkUnit, quick: bool = True, seed: int = 1) -> Dict[str, Any]:
    name = unit.params["benchmark"]
    mapping, fault_map, disturb_map = _setup(quick, seed)
    rows_per_bank = _rows_per_bank(quick)
    window_ns = _window_ns(quick)

    config = SystemConfig(
        banks=8,
        rows_per_bank=rows_per_bank,
        refresh=RefreshSettings(base_interval_ms=REFRESH_INTERVAL_MS),
        test_traffic=TestTrafficSettings(concurrent_tests=256),
        track_activations=True,
    )
    simulator = SystemSimulator(
        [get_benchmark(name)], config, seed=seed + 101 * unit.seq,
    )
    simulator.run(window_ns)

    snapshot = simulator.activation_snapshot(window_ns)
    aggressors, weights = disturb_map.weighted_activations(snapshot)
    victims, pressure = disturb_map.victim_pressure(
        aggressors, weights, rows_per_bank=rows_per_bank,
    )

    n_image_rows = 32
    silicon = _silicon_images(name, mapping, n_image_rows, seed)
    victim_content = silicon[victims % n_image_rows]

    flip_rows, flip_cols = disturb_map.flips(
        victims, pressure, REFRESH_INTERVAL_MS, content_bits=victim_content,
    )
    flipped = disturb_map.rows_flip(
        victims, pressure, REFRESH_INTERVAL_MS, content_bits=victim_content,
    )

    # Write-triggered content test, with and without the disturbance term.
    stress = disturb_map.aligned_stress(victims, victims, pressure)
    content_only = fault_map.rows_fail(
        victims, victim_content, TEST_INTERVAL_MS,
    )
    composed = fault_map.rows_fail(
        victims, victim_content, TEST_INTERVAL_MS,
        disturb_stress=stress,
    )

    rows_flipped = int(flipped.sum())
    caught_content = int((flipped & content_only).sum())
    caught_composed = int((flipped & composed).sum())
    max_pressure = float(pressure.max()) if len(pressure) else 0.0
    if obs.trace_active():
        obs.emit(
            "disturb_rollup",
            t_ms=window_ns * 1e-6,
            flips=len(flip_rows),
            rows_flipped=rows_flipped,
            max_pressure=max_pressure,
            benchmark=name,
        )
        if obs.trace_active() and obs.forensics_active():
            _emit_row_forensics(
                unit, name, victims, pressure, stress, victim_content,
                flipped, content_only, composed, fault_map, n_image_rows,
                quick, seed, window_ns,
            )
    return {
        "benchmark": name,
        "activations": int(round(float(weights.sum()))),
        "victims": len(victims),
        "flips": len(flip_rows),
        "rows_flipped": rows_flipped,
        "caught_content": caught_content,
        "caught_composed": caught_composed,
        "max_pressure": max_pressure,
    }


def _emit_row_forensics(
    unit: WorkUnit,
    benchmark: str,
    victims: np.ndarray,
    pressure: np.ndarray,
    stress: np.ndarray,
    victim_content: np.ndarray,
    flipped: np.ndarray,
    content_only: np.ndarray,
    composed: np.ndarray,
    fault_map: FaultMap,
    n_image_rows: int,
    quick: bool,
    seed: int,
    window_ns: float,
) -> None:
    """One ``forensic_row`` attribution record per flagged victim row.

    ``content_only`` already *is* the disturbance-off counterfactual and
    ``composed`` the factual predicate, so the verdict only needs one
    extra evaluation — the inverted-content run — over the flagged
    subset. Each record carries the full reconstruction coordinates
    (seed, quick, benchmark, content row, stress, intervals), enough for
    ``repro.obs.why`` to replay the row offline without a simulator.
    """
    interesting = flipped | content_only | composed
    idx = np.flatnonzero(interesting)
    if not len(idx):
        return
    subset = victim_content[idx]
    if subset.dtype == np.bool_:
        alt = ~subset
    else:
        alt = (1 - subset).astype(subset.dtype)
    alt_fails = fault_map.rows_fail(
        victims[idx], alt, TEST_INTERVAL_MS, disturb_stress=stress[idx],
    )
    t_ms = window_ns * 1e-6
    dtype_tag = victim_content.dtype.char.encode()
    for j, i in enumerate(idx):
        verdict = obs.classify_verdict(
            bool(composed[i]),
            bool(content_only[i]),
            bool(alt_fails[j]),
            flipped=bool(flipped[i]),
        )
        crc = zlib.crc32(dtype_tag)
        crc = zlib.crc32(
            np.ascontiguousarray(victim_content[i]).tobytes(), crc
        )
        obs.emit(
            "forensic_row",
            t_ms=t_ms,
            row=int(victims[i]),
            verdict=verdict,
            benchmark=benchmark,
            flipped=bool(flipped[i]),
            content_only=bool(content_only[i]),
            composed=bool(composed[i]),
            alt_content_fails=bool(alt_fails[j]),
            stress=float(stress[i]),
            pressure=float(pressure[i]),
            interval_ms=REFRESH_INTERVAL_MS,
            test_interval_ms=TEST_INTERVAL_MS,
            content_row=int(victims[i] % n_image_rows),
            image_rows=n_image_rows,
            content_crc=int(crc),
            quick=bool(quick),
            seed=int(seed),
            **unit_context(unit),
        )


def merge_units(
    payloads: List[Dict[str, Any]], quick: bool = True, seed: int = 1
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="hammer01",
        title="Hammer flips vs write-triggered content testing",
        paper_claim=(
            "write-triggered testing assumes failures follow content "
            "changes; access-triggered (RowHammer/RowPress) flips largely "
            "escape it until the disturbance term joins the predicate"
        ),
    )
    total_flipped = sum(p["rows_flipped"] for p in payloads)
    total_content = sum(p["caught_content"] for p in payloads)
    total_composed = sum(p["caught_composed"] for p in payloads)
    for payload in payloads:
        flipped = payload["rows_flipped"]
        result.add_row(
            benchmark=payload["benchmark"],
            weighted_acts=payload["activations"],
            victim_rows=payload["victims"],
            cell_flips=payload["flips"],
            rows_flipped=flipped,
            content_test=percent(
                payload["caught_content"] / flipped if flipped else 0.0, 1
            ),
            composed_test=percent(
                payload["caught_composed"] / flipped if flipped else 0.0, 1
            ),
        )
    result.notes = (
        f"{_window_ns(quick) / 1e3:.0f} us windows, "
        f"{_rows_per_bank(quick)} rows/bank, LO-REF "
        f"{REFRESH_INTERVAL_MS:.0f} ms victims; of {total_flipped} hammer-"
        f"flipped rows the content-only test flags {total_content}, the "
        f"composed predicate {total_composed}; the residual (rows with no "
        "retention-vulnerable cell to lower) needs access-based mitigation "
        "(hammer02); flips sourced from the controller's real ACT stream "
        "(counts + open-row on-time)"
    )
    return result


def run(quick: bool = True, seed: int = 1) -> ExperimentResult:
    """Per-benchmark hammer flips and the caught-by-testing fractions.

    The serial path runs the same units the pool would, in ``seq``
    order — bit-identity with ``--jobs N`` is structural.
    """
    payloads = [
        run_unit(unit, quick=quick, seed=seed)
        for unit in units(quick=quick, seed=seed)
    ]
    return merge_units(payloads, quick=quick, seed=seed)
