"""Per-figure/table experiment modules reproducing the paper's evaluation.

Each module exposes ``run(quick=True, seed=1) -> ExperimentResult``; the
mapping from module to paper figure/table is in DESIGN.md's experiment
index. Run them from the command line with ``python -m repro.experiments``.
"""

from . import (
    fig03,
    fig04,
    fig06,
    fig07,
    fig08,
    fig09,
    fig11,
    fig12,
    fig14,
    fig15,
    fig16,
    fig17,
    fig18,
    fig19,
    hammer01,
    hammer02,
    table3,
)
from .common import ExperimentResult, percent

__all__ = [
    "ExperimentResult",
    "fig03",
    "fig04",
    "fig06",
    "fig07",
    "fig08",
    "fig09",
    "fig11",
    "fig12",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "hammer01",
    "hammer02",
    "percent",
    "table3",
]
