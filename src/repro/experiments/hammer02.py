"""Hammer study 2: refresh rate x TRR threshold across Table 1 workloads.

The other half of the disturbance story: given hammer pressure from real
workload ACT streams, how far do the two mitigation knobs the controller
owns actually go?

* **Victim refresh rate** — HI-REF (16 ms) vs LO-REF (64 ms): refreshing
  victims more often raises the tolerated dose per window, the mirror
  image of the retention model's interval scaling. MEMCON's whole point
  is running at LO-REF, so the LO column shows what its savings expose.
* **Target-row-refresh** — the counter-based mitigation in
  :class:`~repro.mc.rowrefresh.TargetRowRefresh`: every activation
  consults the per-row counter, and crossing the threshold refreshes the
  neighbours and resets the row's counter. A low threshold clamps
  pressure hard but spends bank time on neighbour refreshes; the row
  table reports that cost as TRR refresh count and mean IPC.

Each unit is one (refresh interval, TRR setting) cell evaluated over the
paper's Table 1 application profiles (via
:func:`repro.traces.workloads.as_benchmark`); flips use worst-case
charge (every hammer-vulnerable cell charged), isolating the mitigation
effect from content. Flip counts derive from the scheduler's real ACT
stream; nothing is injected.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from .. import obs
from ..dram.disturb import DisturbMap, DisturbModelConfig
from ..mc.controller import RefreshSettings, TestTrafficSettings
from ..mc.rowrefresh import TrrSettings
from ..parallel.units import WorkUnit, unit_context
from ..sim.system import SystemConfig, SystemSimulator
from ..traces.workloads import WORKLOADS, as_benchmark
from .common import ExperimentResult, plain

#: (label, victim refresh interval ms) — HI-REF vs LO-REF operation.
REFRESH_POINTS = (("HI-16ms", 16.0), ("LO-64ms", 64.0))
#: (label, TrrSettings or None) — no mitigation, a loose and a tight
#: counter threshold.
TRR_POINTS: Tuple[Tuple[str, Optional[TrrSettings]], ...] = (
    ("off", None),
    ("thr12", TrrSettings(threshold=12)),
    ("thr4", TrrSettings(threshold=4)),
)

#: Same scaled hammer population discipline as hammer01; interval
#: sensitivity 0.5 keeps HI-REF flips non-zero at quick scale so the
#: table shows a gradient rather than a cliff.
DISTURB_CONFIG = DisturbModelConfig(
    hammer_vulnerable_rate=1.0e-4,
    hc_first=6.0,
    interval_sensitivity=0.5,
)

ROWS_PER_BANK = 128


def _workload_names(quick: bool) -> List[str]:
    names = list(WORKLOADS)
    return names[::2] if quick else names


def _window_ns(quick: bool) -> float:
    return 100_000.0 if quick else 500_000.0


@lru_cache(maxsize=2)
def _disturb_map(seed: int) -> DisturbMap:
    return DisturbMap(
        total_rows=8 * ROWS_PER_BANK,
        bits_per_row=8192 * 8,
        config=DISTURB_CONFIG,
        seed=seed,
    )


def units(quick: bool = True, seed: int = 1) -> List[WorkUnit]:
    """One unit per (refresh interval, TRR threshold) grid cell."""
    out: List[WorkUnit] = []
    for ref_label, _ in REFRESH_POINTS:
        for trr_label, _ in TRR_POINTS:
            out.append(WorkUnit(
                "hammer02", f"{ref_label}-trr-{trr_label}",
                {"refresh": ref_label, "trr": trr_label}, seq=len(out),
            ))
    return out


def run_unit(unit: WorkUnit, quick: bool = True, seed: int = 1) -> Dict[str, Any]:
    interval_ms = dict(REFRESH_POINTS)[unit.params["refresh"]]
    trr = dict(TRR_POINTS)[unit.params["trr"]]
    disturb_map = _disturb_map(seed)
    window_ns = _window_ns(quick)

    flips = 0
    rows_flipped = 0
    trr_refreshes = 0
    trr_triggers = 0
    max_pressure = 0.0
    ipcs: List[float] = []
    for i, name in enumerate(_workload_names(quick)):
        config = SystemConfig(
            banks=8,
            rows_per_bank=ROWS_PER_BANK,
            refresh=RefreshSettings(base_interval_ms=interval_ms),
            test_traffic=TestTrafficSettings(concurrent_tests=256),
            track_activations=True,
            trr=trr,
        )
        simulator = SystemSimulator(
            [as_benchmark(WORKLOADS[name])], config, seed=seed + 101 * i,
        )
        result = simulator.run(window_ns)
        ipcs.append(result.mean_ipc)
        for controller in simulator.controllers:
            if controller.trr is not None:
                trr_refreshes += controller.trr.refreshes_issued
                trr_triggers += controller.trr.triggers

        snapshot = simulator.activation_snapshot(window_ns)
        aggressors, weights = disturb_map.weighted_activations(snapshot)
        victims, pressure = disturb_map.victim_pressure(
            aggressors, weights, rows_per_bank=ROWS_PER_BANK,
        )
        # Worst-case charge: isolate the mitigation effect from content.
        flip_rows, _cols = disturb_map.flips(victims, pressure, interval_ms)
        flips += len(flip_rows)
        rows_flipped += int(
            disturb_map.rows_flip(victims, pressure, interval_ms).sum()
        )
        if len(pressure):
            max_pressure = max(max_pressure, float(pressure.max()))
    if obs.trace_active():
        obs.emit(
            "disturb_rollup",
            t_ms=window_ns * 1e-6,
            flips=flips,
            rows_flipped=rows_flipped,
            max_pressure=max_pressure,
            refresh=unit.params["refresh"],
            trr=unit.params["trr"],
        )
        if obs.trace_active() and obs.forensics_active():
            # Grid-cell provenance: which mitigation knobs were active
            # when the dose crossings and TRR refreshes above happened.
            obs.emit(
                "mitigation_cell",
                t_ms=window_ns * 1e-6,
                refresh=unit.params["refresh"],
                trr=unit.params["trr"],
                interval_ms=interval_ms,
                flips=flips,
                rows_flipped=rows_flipped,
                trr_triggers=trr_triggers,
                trr_refreshes=trr_refreshes,
                max_pressure=max_pressure,
                **unit_context(unit),
            )
    return {"row": plain({
        "refresh": unit.params["refresh"],
        "trr": unit.params["trr"],
        "cell_flips": flips,
        "rows_flipped": rows_flipped,
        "trr_triggers": trr_triggers,
        "trr_refreshes": trr_refreshes,
        "max_pressure": round(max_pressure, 3),
        "mean_ipc": float(np.mean(ipcs)),
    })}


def merge_units(
    payloads: List[Dict[str, Any]], quick: bool = True, seed: int = 1
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="hammer02",
        title="Hammer mitigation: refresh rate x TRR threshold",
        paper_claim=(
            "faster victim refresh raises the tolerated dose; counter-"
            "based TRR clamps residual pressure at a small refresh and "
            "IPC cost - together they cover what content testing misses"
        ),
    )
    for payload in payloads:
        result.add_row(**payload["row"])
    result.notes = (
        f"{len(_workload_names(quick))} Table 1 application profiles per "
        f"cell, {_window_ns(quick) / 1e3:.0f} us windows, "
        f"{ROWS_PER_BANK} rows/bank; worst-case charge (content-"
        "independent); TRR resets a row's counter after refreshing its "
        "neighbours, so its flip columns shrink with the threshold"
    )
    return result


def run(quick: bool = True, seed: int = 1) -> ExperimentResult:
    """Flip counts and mitigation cost per (refresh, TRR) grid cell.

    The serial path runs the same units the pool would, in ``seq``
    order — bit-identity with ``--jobs N`` is structural.
    """
    payloads = [
        run_unit(unit, quick=quick, seed=seed)
        for unit in units(quick=quick, seed=seed)
    ]
    return merge_units(payloads, quick=quick, seed=seed)
