"""Figure 14: MEMCON's reduction in refresh operations.

With PRIL at quantum (CIL) 512/1024/2048 ms, HI-REF 16 ms and LO-REF
64 ms, MEMCON removes 64.7-74.5% of refresh operations — close to the 75%
upper bound of refreshing everything at 64 ms — and the result is nearly
flat in the quantum because execution time is dominated by intervals far
longer than any of the three quanta.
"""

from __future__ import annotations

import numpy as np

from ..core.memcon import MemconConfig, simulate_refresh_reduction
from ..traces.generator import generate_trace
from ..traces.workloads import WORKLOADS
from .common import ExperimentResult, percent

QUANTA_MS = (512.0, 1024.0, 2048.0)

#: Fraction of tested pages whose content trips the fault model, from the
#: Figure 4 measurement (program content fails 0.4-4.7% of rows).
FAILING_PAGE_FRACTION = 0.02


def run(quick: bool = True, seed: int = 1) -> ExperimentResult:
    """Per-workload refresh reduction at the three quanta."""
    result = ExperimentResult(
        experiment_id="fig14",
        title="Reduction in refresh count with MEMCON",
        paper_claim=(
            "64.7-74.5% refresh reduction (upper bound 75%), insensitive "
            "to CIL in 512-2048 ms"
        ),
    )
    duration = 60_000.0 if quick else None
    reductions = {q: [] for q in QUANTA_MS}
    for name, profile in WORKLOADS.items():
        trace = generate_trace(profile, seed=seed, duration_ms=duration)
        row = {"workload": name}
        for quantum in QUANTA_MS:
            report = simulate_refresh_reduction(
                trace,
                MemconConfig(quantum_ms=quantum),
                failing_page_fraction=FAILING_PAGE_FRACTION,
                seed=seed,
            )
            row[f"cil_{int(quantum)}ms"] = percent(report.refresh_reduction)
            reductions[quantum].append(report.refresh_reduction)
        row["upper_bound"] = percent(0.75)
        result.add_row(**row)
    means = {q: float(np.mean(v)) for q, v in reductions.items()}
    all_vals = [v for vals in reductions.values() for v in vals]
    result.notes = (
        f"reduction spans {percent(min(all_vals))}-{percent(max(all_vals))}; "
        f"means per CIL: "
        + ", ".join(f"{int(q)}ms={percent(m)}" for q, m in means.items())
    )
    return result
