"""Figure 14: MEMCON's reduction in refresh operations.

With PRIL at quantum (CIL) 512/1024/2048 ms, HI-REF 16 ms and LO-REF
64 ms, MEMCON removes 64.7-74.5% of refresh operations — close to the 75%
upper bound of refreshing everything at 64 ms — and the result is nearly
flat in the quantum because execution time is dominated by intervals far
longer than any of the three quanta.
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from ..core.memcon import MemconConfig, simulate_refresh_reduction
from ..parallel.units import WorkUnit
from ..traces.generator import generate_trace
from ..traces.workloads import WORKLOADS
from .common import ExperimentResult, percent, plain

QUANTA_MS = (512.0, 1024.0, 2048.0)

#: Fraction of tested pages whose content trips the fault model, from the
#: Figure 4 measurement (program content fails 0.4-4.7% of rows).
FAILING_PAGE_FRACTION = 0.02


def units(quick: bool = True, seed: int = 1) -> List[WorkUnit]:
    """One unit per application trace (all three quanta inside)."""
    return [
        WorkUnit("fig14", name, {"workload": name}, seq=i)
        for i, name in enumerate(WORKLOADS)
    ]


def run_unit(unit: WorkUnit, quick: bool = True, seed: int = 1) -> Dict[str, Any]:
    name = unit.params["workload"]
    duration = 60_000.0 if quick else None
    trace = generate_trace(WORKLOADS[name], seed=seed, duration_ms=duration)
    row: Dict[str, Any] = {"workload": name}
    reductions: List[float] = []  # aligned with QUANTA_MS
    for quantum in QUANTA_MS:
        report = simulate_refresh_reduction(
            trace,
            MemconConfig(quantum_ms=quantum),
            failing_page_fraction=FAILING_PAGE_FRACTION,
            seed=seed,
        )
        row[f"cil_{int(quantum)}ms"] = percent(report.refresh_reduction)
        reductions.append(report.refresh_reduction)
    row["upper_bound"] = percent(0.75)
    return plain({"row": row, "reductions": reductions})


def merge_units(
    payloads: List[Dict[str, Any]], quick: bool = True, seed: int = 1
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig14",
        title="Reduction in refresh count with MEMCON",
        paper_claim=(
            "64.7-74.5% refresh reduction (upper bound 75%), insensitive "
            "to CIL in 512-2048 ms"
        ),
    )
    reductions: Dict[float, List[float]] = {q: [] for q in QUANTA_MS}
    for payload in payloads:
        for quantum, value in zip(QUANTA_MS, payload["reductions"]):
            reductions[quantum].append(value)
        result.add_row(**payload["row"])
    means = {q: float(np.mean(v)) for q, v in reductions.items()}
    all_vals = [v for vals in reductions.values() for v in vals]
    result.notes = (
        f"reduction spans {percent(min(all_vals))}-{percent(max(all_vals))}; "
        f"means per CIL: "
        + ", ".join(f"{int(q)}ms={percent(m)}" for q, m in means.items())
    )
    return result


def run(quick: bool = True, seed: int = 1) -> ExperimentResult:
    """Per-workload refresh reduction at the three quanta."""
    payloads = [
        run_unit(unit, quick=quick, seed=seed)
        for unit in units(quick=quick, seed=seed)
    ]
    return merge_units(payloads, quick=quick, seed=seed)
