"""Figure 17: PRIL's coverage of execution time at the LO-REF state.

Across the twelve applications, on average ~95% of total execution time is
spent with rows operating at LO-REF — the prediction mechanism finds
almost all of the available idle time.
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from ..core.memcon import MemconConfig, simulate_refresh_reduction
from ..parallel.units import WorkUnit
from ..traces.generator import generate_trace
from ..traces.workloads import WORKLOADS
from .common import ExperimentResult, percent, plain
from .fig14 import FAILING_PAGE_FRACTION, QUANTA_MS


def units(quick: bool = True, seed: int = 1) -> List[WorkUnit]:
    """One unit per application trace (all three quanta inside)."""
    return [
        WorkUnit("fig17", name, {"workload": name}, seq=i)
        for i, name in enumerate(WORKLOADS)
    ]


def run_unit(unit: WorkUnit, quick: bool = True, seed: int = 1) -> Dict[str, Any]:
    name = unit.params["workload"]
    duration = 60_000.0 if quick else None
    trace = generate_trace(WORKLOADS[name], seed=seed, duration_ms=duration)
    row: Dict[str, Any] = {"workload": name}
    coverage = None
    for quantum in QUANTA_MS:
        report = simulate_refresh_reduction(
            trace,
            MemconConfig(quantum_ms=quantum),
            failing_page_fraction=FAILING_PAGE_FRACTION,
            seed=seed,
        )
        row[f"cil_{int(quantum)}ms"] = percent(report.lo_ref_time_fraction)
        if quantum == 1024.0:
            coverage = report.lo_ref_time_fraction
    return plain({"row": row, "coverage": coverage})


def merge_units(
    payloads: List[Dict[str, Any]], quick: bool = True, seed: int = 1
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig17",
        title="Execution-time coverage of PRIL (time at LO-REF)",
        paper_claim="on average 95% of execution time is spent at LO-REF",
    )
    coverages = [payload["coverage"] for payload in payloads]
    for payload in payloads:
        result.add_row(**payload["row"])
    result.notes = (
        f"mean LO-REF coverage at CIL 1024 ms: "
        f"{percent(float(np.mean(coverages)))}"
    )
    return result


def run(quick: bool = True, seed: int = 1) -> ExperimentResult:
    """LO-REF time fraction per workload and quantum."""
    payloads = [
        run_unit(unit, quick=quick, seed=seed)
        for unit in units(quick=quick, seed=seed)
    ]
    return merge_units(payloads, quick=quick, seed=seed)
