"""Figure 17: PRIL's coverage of execution time at the LO-REF state.

Across the twelve applications, on average ~95% of total execution time is
spent with rows operating at LO-REF — the prediction mechanism finds
almost all of the available idle time.
"""

from __future__ import annotations

import numpy as np

from ..core.memcon import MemconConfig, simulate_refresh_reduction
from ..traces.generator import generate_trace
from ..traces.workloads import WORKLOADS
from .common import ExperimentResult, percent
from .fig14 import FAILING_PAGE_FRACTION, QUANTA_MS


def run(quick: bool = True, seed: int = 1) -> ExperimentResult:
    """LO-REF time fraction per workload and quantum."""
    result = ExperimentResult(
        experiment_id="fig17",
        title="Execution-time coverage of PRIL (time at LO-REF)",
        paper_claim="on average 95% of execution time is spent at LO-REF",
    )
    duration = 60_000.0 if quick else None
    coverages = []
    for name, profile in WORKLOADS.items():
        trace = generate_trace(profile, seed=seed, duration_ms=duration)
        row = {"workload": name}
        for quantum in QUANTA_MS:
            report = simulate_refresh_reduction(
                trace,
                MemconConfig(quantum_ms=quantum),
                failing_page_fraction=FAILING_PAGE_FRACTION,
                seed=seed,
            )
            row[f"cil_{int(quantum)}ms"] = percent(report.lo_ref_time_fraction)
            if quantum == 1024.0:
                coverages.append(report.lo_ref_time_fraction)
        result.add_row(**row)
    result.notes = (
        f"mean LO-REF coverage at CIL 1024 ms: "
        f"{percent(float(np.mean(coverages)))}"
    )
    return result
