"""MEMCON: content-based detection and mitigation of data-dependent DRAM
failures — a full reproduction of Khan et al., MICRO 2017.

Public API highlights
---------------------
* :mod:`repro.dram` — cell-level DRAM model with data-dependent faults.
* :mod:`repro.testinfra` — SoftMC-style retention tester, HMTT-style tracer.
* :mod:`repro.traces` — write-trace generation for the paper's workloads.
* :mod:`repro.analysis` — Pareto fitting and write-interval statistics.
* :mod:`repro.core` — cost model, PRIL predictor, MEMCON controller.
* :mod:`repro.mc` / :mod:`repro.sim` — cycle-level performance simulator.
* :mod:`repro.experiments` — one module per paper figure/table.
* :mod:`repro.obs` — metrics registry, span timing, JSONL event traces
  and run manifests across the whole pipeline.
"""

__version__ = "1.0.0"
