"""Fleet ingest protocol: JSON message shapes and strict validation.

Everything that crosses the fleet service's HTTP boundary is validated
here, in one place, so the server handlers stay thin and a malformed
client sees a precise 400 instead of a stack trace. The protocol is
deliberately minimal JSON:

* **tenant registration** — ``{"tenant_id": "web", "workload":
  "Netflix", "rollup": true, ...}`` (:func:`parse_tenant`)
* **host registration** — ``{"host_id": "web-000", "tenant": "web",
  "seed": 7, ...}`` (:func:`parse_host`)
* **trace streaming** — NDJSON, one record per line:
  ``{"page": 17, "t_ms": [1.5, 80.25, ...]}`` (:func:`parse_trace_line`
  over :func:`iter_ndjson`). Records for the same page accumulate;
  ordering across lines is irrelevant because the registry sorts at
  seal time.

``PROTOCOL_VERSION`` is echoed by the status endpoint so clients can
detect drift.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Tuple

from .registry import FleetError, HostSpec, TenantProfile

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "encode_tenant",
    "iter_ndjson",
    "parse_host",
    "parse_tenant",
    "parse_trace_line",
    "trace_lines",
]

PROTOCOL_VERSION = 1


class ProtocolError(ValueError):
    """A message that does not conform to the fleet protocol."""


def _require_mapping(obj: Any, what: str) -> Mapping:
    if not isinstance(obj, Mapping):
        raise ProtocolError(
            f"{what}: expected a JSON object, got {type(obj).__name__}")
    return obj


def _get_str(obj: Mapping, key: str, what: str, required: bool = False):
    value = obj.get(key)
    if value is None:
        if required:
            raise ProtocolError(f"{what}: missing required field {key!r}")
        return None
    if not isinstance(value, str) or not value:
        raise ProtocolError(f"{what}: field {key!r} must be a non-empty string")
    return value


def _get_number(obj: Mapping, key: str, what: str):
    value = obj.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"{what}: field {key!r} must be a number")
    return value


def _get_int(obj: Mapping, key: str, what: str):
    value = obj.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"{what}: field {key!r} must be an integer")
    return value


def _get_bool(obj: Mapping, key: str, what: str):
    value = obj.get(key)
    if value is None:
        return None
    if not isinstance(value, bool):
        raise ProtocolError(f"{what}: field {key!r} must be a boolean")
    return value


_TENANT_FIELDS = frozenset(
    ("tenant_id", "workload", "duration_ms", "quantum_ms", "seed_base",
     "rollup", "fault_screen", "description")
)
_HOST_FIELDS = frozenset(
    ("host_id", "tenant", "seed", "workload", "duration_ms", "total_pages",
     "quantum_ms", "failing_page_fraction", "rollup")
)


def _reject_unknown(obj: Mapping, allowed: frozenset, what: str) -> None:
    unknown = sorted(set(obj) - allowed)
    if unknown:
        raise ProtocolError(f"{what}: unknown fields {unknown}")


def parse_tenant(obj: Any) -> TenantProfile:
    """Validate a tenant-registration message into a profile."""
    obj = _require_mapping(obj, "tenant")
    _reject_unknown(obj, _TENANT_FIELDS, "tenant")
    fault_screen = obj.get("fault_screen")
    if fault_screen is not None and not isinstance(fault_screen, Mapping):
        raise ProtocolError("tenant: field 'fault_screen' must be an object")
    try:
        return TenantProfile(
            tenant_id=_get_str(obj, "tenant_id", "tenant", required=True),
            workload=_get_str(obj, "workload", "tenant"),
            duration_ms=_get_number(obj, "duration_ms", "tenant"),
            quantum_ms=_get_number(obj, "quantum_ms", "tenant"),
            seed_base=_get_int(obj, "seed_base", "tenant") or 0,
            rollup=bool(_get_bool(obj, "rollup", "tenant")),
            fault_screen=dict(fault_screen) if fault_screen else None,
            description=_get_str(obj, "description", "tenant") or "",
        )
    except FleetError as exc:
        raise ProtocolError(f"tenant: {exc}") from None


def parse_host(obj: Any) -> HostSpec:
    """Validate a host-registration message into a spec."""
    obj = _require_mapping(obj, "host")
    _reject_unknown(obj, _HOST_FIELDS, "host")
    try:
        return HostSpec(
            host_id=_get_str(obj, "host_id", "host", required=True),
            tenant=_get_str(obj, "tenant", "host", required=True),
            seed=_get_int(obj, "seed", "host"),
            workload=_get_str(obj, "workload", "host"),
            duration_ms=_get_number(obj, "duration_ms", "host"),
            total_pages=_get_int(obj, "total_pages", "host"),
            quantum_ms=_get_number(obj, "quantum_ms", "host"),
            failing_page_fraction=_get_number(
                obj, "failing_page_fraction", "host"),
            rollup=_get_bool(obj, "rollup", "host"),
        )
    except FleetError as exc:
        raise ProtocolError(f"host: {exc}") from None


def parse_trace_line(obj: Any) -> Tuple[int, List[float]]:
    """Validate one NDJSON trace record into ``(page, times_ms)``."""
    obj = _require_mapping(obj, "trace record")
    page = _get_int(obj, "page", "trace record")
    if page is None:
        raise ProtocolError("trace record: missing required field 'page'")
    if page < 0:
        raise ProtocolError(f"trace record: negative page {page}")
    times = obj.get("t_ms")
    if not isinstance(times, list) or not times:
        raise ProtocolError(
            "trace record: field 't_ms' must be a non-empty array")
    out: List[float] = []
    for value in times:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ProtocolError(
                "trace record: 't_ms' entries must be numbers")
        if value < 0:
            raise ProtocolError(
                f"trace record: negative timestamp {value}")
        out.append(float(value))
    return page, out


def iter_ndjson(text: str) -> Iterator[Any]:
    """Yield parsed objects from NDJSON text; blank lines are skipped."""
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            yield json.loads(line)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"line {number}: invalid JSON") from exc


def trace_lines(writes: Mapping[int, Iterable[float]]) -> str:
    """Encode a writes mapping as the NDJSON stream a client POSTs."""
    lines = [
        json.dumps(
            {"page": int(page), "t_ms": [float(t) for t in times]},
            separators=(",", ":"),
        )
        for page, times in sorted(writes.items())
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def encode_tenant(profile: TenantProfile) -> Dict[str, Any]:
    """Tenant profile as a registration message (client-side helper)."""
    message = {
        key: value for key, value in profile.to_dict().items()
        if value not in (None, "", False, 0)
    }
    message["tenant_id"] = profile.tenant_id
    return message
