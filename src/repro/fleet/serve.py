"""``python -m repro.fleet.serve`` — run the fleet service.

Starts the asyncio HTTP endpoint in the foreground and blocks until a
client POSTs ``/v1/shutdown`` (or SIGINT). On exit the service drains
the scheduler, then optionally writes the run manifest — the same
schema the experiment runner emits, with the fleet rollup under the
``"fleet"`` key — so a fleet run plugs straight into ``repro.obs.compare``
and ``repro.obs.dashboard``.

Example::

    python -m repro.fleet.serve --port 8787 --jobs 4 \\
        --checkpoint fleet.ckpt --resume --manifest fleet-manifest.json
"""

from __future__ import annotations

import argparse
import asyncio
import logging
import os
import sys
from typing import List, Optional

from .. import kernels, obs
from ..traces.generator import set_trace_cache_limit
from .server import FleetHTTPServer, FleetService

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet.serve",
        description="Long-lived fleet service simulating MEMCON hosts.",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: %(default)s)")
    parser.add_argument("--port", type=int, default=8787,
                        help="bind port, 0 for ephemeral (default: %(default)s)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="simulation worker processes (default: %(default)s)")
    parser.add_argument("--checkpoint", default=None, metavar="PATH",
                        help="checkpoint journal for crash-resume")
    parser.add_argument("--resume", action="store_true",
                        help="skip units already in the checkpoint journal")
    parser.add_argument("--batch-max", type=int, default=32,
                        help="max hosts folded into one executor call "
                             "(default: %(default)s)")
    parser.add_argument("--unit-timeout", type=float, default=None,
                        metavar="S", help="per-unit timeout in seconds")
    parser.add_argument("--trace-cache", type=int, default=None,
                        metavar="N", help="synthetic-trace LRU cache size")
    parser.add_argument("--manifest", default=None, metavar="PATH",
                        help="write the run manifest here on shutdown")
    parser.add_argument("--backend", choices=list(kernels.BACKENDS),
                        default=None, metavar="NAME",
                        help="hot-kernel backend for the service and its "
                             "workers (default: auto / $REPRO_KERNELS)")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="log at INFO instead of WARNING")
    return parser


async def _serve(service: FleetService, host: str, port: int) -> None:
    server = FleetHTTPServer(service, host=host, port=port)
    await server.start()
    print(f"fleet service on http://{server.host}:{server.port}",
          file=sys.stderr, flush=True)
    await server.serve_until_shutdown()


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    logging.basicConfig(
        level=logging.INFO if args.verbose else logging.WARNING,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    registry = obs.MetricsRegistry(enabled=True)
    obs.set_registry(registry)
    if args.backend:
        # Propagates to simulation workers through the environment.
        os.environ["REPRO_KERNELS"] = args.backend
        kernels.set_backend(args.backend)
    if args.trace_cache is not None:
        set_trace_cache_limit(args.trace_cache)
    service = FleetService(
        jobs=args.jobs,
        checkpoint=args.checkpoint,
        resume=args.resume,
        batch_max=args.batch_max,
        unit_timeout_s=args.unit_timeout,
    )
    try:
        asyncio.run(_serve(service, args.host, args.port))
    except KeyboardInterrupt:
        print("fleet service interrupted; draining", file=sys.stderr)
    finally:
        service.close(wait=True)
        if args.manifest:
            manifest = obs.RunManifest.from_dict(service.manifest())
            manifest.write(args.manifest)
            print(f"manifest written to {args.manifest}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
