"""Scheduler bridge: fleet jobs onto one persistent ParallelExecutor.

The fleet service is long-lived, so it cannot afford the runner's
pattern of one executor per invocation. This module owns a single
:class:`~repro.parallel.executor.ParallelExecutor` (and one checkpoint
journal) for the service's lifetime and feeds it from a dispatch thread:

* **host jobs** — sealed host params become ``fleet_host`` work units.
  Consecutive host jobs are batched (up to ``batch_max``) into one
  ``run_units`` call, which amortises pool chunking across hosts while
  ``on_result`` streams each host's payload back the moment it is
  accepted. Host units pin the executor-level ``(quick, seed)`` pair to
  :data:`~repro.fleet.hostsim.HOST_QUICK`/:data:`HOST_SEED` constants,
  so their checkpoint fingerprints depend only on the host params.
* **experiment jobs** — a named paper experiment (``fig04`` ...) runs
  for a tenant under its *own* ``(quick, seed)`` via the executor's
  per-call overrides; the merged table is byte-identical to
  ``python -m repro.experiments`` at any job count.

Crash-resume uses the journal's ``(key, fingerprint)`` view: a service
killed mid-fleet restarts with ``resume=True`` and skips every unit
whose fingerprint matches, exactly like the runner's ``--resume`` but
across heterogeneous jobs sharing one journal.

Callbacks (``on_host_result``, ``on_host_error``, ``on_job_done``) fire
on the dispatch thread; the registry and aggregator they feed are
thread-safe by design.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

from .. import kernels
from ..parallel.checkpoint import CheckpointJournal
from ..parallel.executor import ParallelExecutor
from ..parallel.units import WorkUnit, decompose, merge_payloads, unit_fingerprint
from . import hostsim

__all__ = ["FleetScheduler", "SchedulerStats"]

logger = logging.getLogger(__name__)

_SENTINEL = object()


class SchedulerStats:
    """Counters the status endpoint reports."""

    def __init__(self) -> None:
        self.batches = 0
        self.hosts_done = 0
        self.hosts_failed = 0
        self.jobs_done = 0
        self.units_executed = 0
        self.units_skipped = 0

    def to_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


class FleetScheduler:
    """Dispatch thread feeding fleet work to a persistent executor."""

    def __init__(
        self,
        jobs: int = 1,
        checkpoint: Optional[str] = None,
        resume: bool = False,
        batch_max: int = 32,
        unit_timeout_s: Optional[float] = None,
        max_retries: int = 2,
        on_host_result: Optional[
            Callable[[str, Dict[str, Any], float], None]] = None,
        on_host_error: Optional[Callable[[str, str], None]] = None,
        on_job_done: Optional[
            Callable[[str, Any, float], None]] = None,
    ) -> None:
        if batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        # Pay any kernels JIT cost before the dispatch loop starts so the
        # first host batch's wall time is not charged for compilation
        # (workers warm up in their own initializer).
        kernels.warmup()
        self.batch_max = batch_max
        self.on_host_result = on_host_result
        self.on_host_error = on_host_error
        self.on_job_done = on_job_done
        self.stats = SchedulerStats()
        self._executor = ParallelExecutor(
            jobs,
            quick=hostsim.HOST_QUICK,
            seed=hostsim.HOST_SEED,
            unit_timeout_s=unit_timeout_s,
            max_retries=max_retries,
        )
        self._journal: Optional[CheckpointJournal] = None
        self._by_fp: Dict[Tuple[str, str], Dict[str, Any]] = {}
        if checkpoint:
            self._journal = CheckpointJournal(checkpoint)
            if resume:
                self._by_fp = self._journal.load_by_fingerprint()
                logger.info(
                    "fleet resume: %d journalled units in %s",
                    len(self._by_fp), checkpoint,
                )
        self._cond = threading.Condition()
        self._queue: "deque[Any]" = deque()
        self._pending = 0  # queued + in-flight items
        self._closed = False
        self._thread = threading.Thread(
            target=self._loop, name="fleet-scheduler", daemon=True
        )
        self._thread.start()

    # -- submission ----------------------------------------------------
    def submit_host(self, params: Dict[str, Any]) -> None:
        """Queue one sealed host for simulation."""
        self._submit(("host", dict(params)))

    def submit_experiment(
        self, job_id: str, name: str, quick: bool = True, seed: int = 1
    ) -> None:
        """Queue a named paper experiment under its own quick/seed."""
        self._submit(("experiment", job_id, name, quick, seed))

    def _submit(self, item: Tuple) -> None:
        with self._cond:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            self._queue.append(item)
            self._pending += 1
            self._cond.notify_all()

    # -- introspection -------------------------------------------------
    def backlog(self) -> int:
        """Jobs accepted but not yet finished (queued + in flight)."""
        with self._cond:
            return self._pending

    def join(self, timeout: Optional[float] = None) -> bool:
        """Block until every submitted job finished; False on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self._pending:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._cond.wait(remaining)
            return True

    # -- dispatch loop -------------------------------------------------
    def _loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if not self._queue:
                    return  # closed and drained
                item = self._queue.popleft()
                batch = [item]
                if item[0] == "host":
                    # Batch only *consecutive* host jobs: experiments
                    # keep their submission order relative to hosts.
                    while (
                        len(batch) < self.batch_max
                        and self._queue
                        and self._queue[0][0] == "host"
                    ):
                        batch.append(self._queue.popleft())
            try:
                if item[0] == "host":
                    self._run_host_batch([entry[1] for entry in batch])
                else:
                    self._run_experiment(*item[1:])
            except Exception:
                logger.exception("fleet batch failed")
            finally:
                with self._cond:
                    self._pending -= len(batch)
                    self._cond.notify_all()

    def _done_map(
        self, units: List[WorkUnit], quick: bool, seed: int
    ) -> Dict[str, Dict[str, Any]]:
        """Journal entries matching these units' exact fingerprints."""
        done: Dict[str, Dict[str, Any]] = {}
        for unit in units:
            entry = self._by_fp.get(
                (unit.key, unit_fingerprint(unit, quick, seed)))
            if entry is not None:
                done[unit.key] = entry
        return done

    def _run_host_batch(self, param_sets: List[Dict[str, Any]]) -> None:
        units = [
            hostsim.host_unit(params, seq=i)
            for i, params in enumerate(param_sets)
        ]
        started = time.perf_counter()
        accepted: List[Tuple[WorkUnit, Dict[str, Any]]] = []

        def on_result(unit: WorkUnit, payload: Any) -> None:
            accepted.append((unit, payload))

        try:
            _, stats = self._executor.run_units(
                units,
                journal=self._journal,
                done=self._done_map(units, hostsim.HOST_QUICK,
                                    hostsim.HOST_SEED),
                on_result=on_result,
                quick=hostsim.HOST_QUICK,
                seed=hostsim.HOST_SEED,
            )
        except Exception as exc:
            # A deterministic failure poisons the whole batch; report
            # every host that did not stream a result before the raise.
            delivered = {unit.unit_id for unit, _ in accepted}
            self._deliver_hosts(accepted, started, len(param_sets))
            for params in param_sets:
                if params["host"] not in delivered:
                    self.stats.hosts_failed += 1
                    if self.on_host_error is not None:
                        self.on_host_error(params["host"], repr(exc))
            return
        self.stats.batches += 1
        self.stats.units_executed += stats.executed
        self.stats.units_skipped += stats.skipped
        self._deliver_hosts(accepted, started, len(param_sets))

    def _deliver_hosts(
        self,
        accepted: List[Tuple[WorkUnit, Dict[str, Any]]],
        started: float,
        batch_size: int,
    ) -> None:
        # One run_units call covers the batch, so the per-host wall time
        # reported to the aggregator is the batch mean — a scheduling
        # statistic, not part of any deterministic artifact.
        wall_each = (time.perf_counter() - started) / max(batch_size, 1)
        for unit, payload in accepted:
            fingerprint = unit_fingerprint(
                unit, hostsim.HOST_QUICK, hostsim.HOST_SEED)
            self._by_fp[(unit.key, fingerprint)] = {
                "fp": fingerprint, "payload": payload,
            }
            self.stats.hosts_done += 1
            if self.on_host_result is not None:
                self.on_host_result(unit.unit_id, payload, wall_each)

    def _run_experiment(
        self, job_id: str, name: str, quick: bool, seed: int
    ) -> None:
        started = time.perf_counter()
        try:
            units = decompose(name, quick=quick, seed=seed)
            payloads, stats = self._executor.run_units(
                units,
                journal=self._journal,
                done=self._done_map(units, quick, seed),
                quick=quick,
                seed=seed,
            )
            result = merge_payloads(name, payloads, quick=quick, seed=seed)
        except Exception as exc:
            if self.on_job_done is not None:
                self.on_job_done(job_id, exc, time.perf_counter() - started)
            return
        for unit, payload in zip(units, payloads):
            fingerprint = unit_fingerprint(unit, quick, seed)
            self._by_fp[(unit.key, fingerprint)] = {
                "fp": fingerprint, "payload": payload,
            }
        self.stats.batches += 1
        self.stats.jobs_done += 1
        self.stats.units_executed += stats.executed
        self.stats.units_skipped += stats.skipped
        if self.on_job_done is not None:
            self.on_job_done(job_id, result, time.perf_counter() - started)

    # -- shutdown ------------------------------------------------------
    def close(self, wait: bool = True) -> None:
        """Drain (optionally), stop the thread, release the executor."""
        if wait:
            self.join()
        with self._cond:
            if self._closed:
                return
            self._closed = True
            if not wait:
                self._pending -= len(self._queue)
                self._queue.clear()
            self._cond.notify_all()
        self._thread.join()
        self._executor.shutdown()
        if self._journal is not None:
            self._journal.close()

    def __enter__(self) -> "FleetScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close(wait=exc == (None, None, None))
