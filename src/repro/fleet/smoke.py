"""End-to-end fleet smoke: a small datacenter through the full stack.

``python -m repro.fleet.smoke --hosts 8 --out fleet-smoke/`` boots the
service on an ephemeral port, registers two tenant profiles, streams
half the hosts' write traces over NDJSON (the other half run tenant
workloads server-side), waits for the status endpoint to report the
fleet done, and then **proves the determinism contract**: every table
served by the fleet must be byte-identical to re-simulating the host's
sealed params standalone via :func:`repro.fleet.hostsim.run_host`.

Artifacts written to ``--out``: ``manifest.json`` (run manifest with the
``"fleet"`` section), ``dashboard.html`` (must contain the fleet
section), ``tables/<host>.txt``. Exit status is non-zero on any check
failure — this is the CI ``fleet-smoke`` job.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .. import obs
from ..obs.dashboard import render_dashboard
from ..traces.generator import generate_trace
from ..traces.workloads import WORKLOADS
from . import hostsim
from .client import FleetClient
from .server import FleetService, run_service_in_thread

__all__ = ["main"]

#: Streamed-tenant fault screen: small budget so the smoke also
#: exercises the row-block LRU under ingest (see dram/faults.py).
_BATCH_SCREEN = {
    "max_resident_rows": 128,
    "chunk_rows": 64,
    "bits_per_row": 512,
    "vulnerable_cell_rate": 5.0e-4,
}


class SmokeFailure(RuntimeError):
    pass


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise SmokeFailure(message)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet.smoke",
        description="End-to-end fleet service smoke test.",
    )
    parser.add_argument("--hosts", type=int, default=8)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--out", default="fleet-smoke")
    parser.add_argument("--duration-ms", type=float, default=8192.0)
    args = parser.parse_args(argv)
    _check(args.hosts >= 2, "--hosts must be >= 2 (need both tenants)")

    os.makedirs(args.out, exist_ok=True)
    obs.set_registry(obs.MetricsRegistry(enabled=True))
    service = FleetService(
        jobs=args.jobs,
        checkpoint=os.path.join(args.out, "fleet.ckpt"),
    )
    server, thread = run_service_in_thread(service)
    client = FleetClient(port=server.port)
    try:
        # -- register two tenant profiles ------------------------------
        client.register_tenant({
            "tenant_id": "web",
            "workload": "Netflix",
            "duration_ms": args.duration_ms,
            "seed_base": 11,
            "rollup": True,
            "description": "server-side workload hosts with rollups",
        })
        client.register_tenant({
            "tenant_id": "batch",
            "duration_ms": args.duration_ms,
            "seed_base": 23,
            "fault_screen": dict(_BATCH_SCREEN),
            "description": "streamed-trace hosts with a fault screen",
        })

        # -- register hosts; stream traces for the batch tenant --------
        web_hosts = [f"web-{i:03d}" for i in range((args.hosts + 1) // 2)]
        batch_hosts = [f"batch-{i:03d}" for i in range(args.hosts // 2)]
        for host_id in web_hosts:
            client.register_host({"host_id": host_id, "tenant": "web"})
        streamed = 0
        for i, host_id in enumerate(batch_hosts):
            trace = generate_trace(
                WORKLOADS["SystemMgt"], seed=100 + i,
                duration_ms=args.duration_ms,
            )
            client.register_host({
                "host_id": host_id,
                "tenant": "batch",
                "total_pages": trace.total_pages,
            })
            streamed += client.stream_trace(host_id, trace.writes)
        print(f"registered {args.hosts} hosts "
              f"({len(batch_hosts)} streamed, {streamed} trace records)")

        for host_id in web_hosts + batch_hosts:
            client.seal(host_id)

        # -- wait on the status endpoint -------------------------------
        status = client.wait_all_done(timeout_s=600.0)
        counts = status["hosts"]
        _check(counts["done"] == args.hosts,
               f"expected {args.hosts} hosts done, got {counts}")
        _check(counts["failed"] == 0, f"hosts failed: {counts}")
        _check(status["fleet"]["ingest"]["records"] == streamed,
               "ingest accounting does not match streamed records")
        print(f"fleet done: {counts}")

        # -- determinism: fleet tables == standalone runner ------------
        tables_dir = os.path.join(args.out, "tables")
        os.makedirs(tables_dir, exist_ok=True)
        for host_id in web_hosts + batch_hosts:
            detail = client.host_detail(host_id)
            served = client.host_table(host_id)
            standalone = hostsim.host_table(
                hostsim.run_host(detail["params"]))
            _check(served == standalone,
                   f"host {host_id}: fleet table differs from "
                   "standalone runner")
            with open(os.path.join(tables_dir, f"{host_id}.txt"),
                      "w", encoding="utf-8") as handle:
                handle.write(served)
        print(f"{args.hosts} host tables byte-identical to the "
              "standalone runner")

        # -- artifacts: manifest + dashboard ---------------------------
        manifest = client.manifest()
        _check(manifest.get("fleet", {}).get("hosts", {}).get("done")
               == args.hosts, "manifest fleet section lost hosts")
        manifest_path = os.path.join(args.out, "manifest.json")
        with open(manifest_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2)
            handle.write("\n")
        html = render_dashboard(manifest)
        _check("<h2>Fleet</h2>" in html,
               "dashboard did not render the fleet section")
        with open(os.path.join(args.out, "dashboard.html"),
                  "w", encoding="utf-8") as handle:
            handle.write(html)
        print(f"artifacts in {args.out}/: manifest.json, dashboard.html, "
              f"tables/ ({args.hosts} files)")
    except SmokeFailure as exc:
        print(f"FLEET SMOKE FAILED: {exc}", file=sys.stderr)
        return 1
    finally:
        try:
            client.shutdown()
        except Exception:
            pass
        thread.join(timeout=30)
        service.close(wait=True)
    print("fleet smoke OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
