"""Fleet host/tenant registry: who exists, what they streamed, how far.

The registry is the service's single source of truth for identity and
lifecycle. Tenants are registered first and carry the defaults (workload,
window, MEMCON quantum, fault-screen budget, rollup flag) their hosts
inherit; hosts override per field. A host accumulates streamed write
records while ``registered``, is snapshotted into an immutable params
dict at :meth:`HostRegistry.seal` time (the exact dict the work unit
carries — determinism flows from here), and finishes ``done`` or
``failed`` when the scheduler reports back.

All mutation goes through one re-entrant lock: the asyncio server and
the scheduler's dispatch thread touch the registry concurrently, and a
consistent snapshot matters more than lock granularity at fleet sizes
of thousands of hosts.
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..traces.workloads import WORKLOADS

__all__ = [
    "HOST_STATUSES",
    "FleetError",
    "HostSpec",
    "HostState",
    "HostRegistry",
    "TenantProfile",
]

HOST_STATUSES = ("registered", "sealed", "done", "failed")


class FleetError(ValueError):
    """Invalid registration, ingest, or lifecycle transition."""


@dataclass
class TenantProfile:
    """Per-tenant defaults inherited by every host of the tenant."""

    tenant_id: str
    workload: Optional[str] = None
    duration_ms: Optional[float] = None
    quantum_ms: Optional[float] = None
    seed_base: int = 0
    rollup: bool = False
    fault_screen: Optional[Dict[str, Any]] = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.tenant_id:
            raise FleetError("tenant_id must be non-empty")
        if self.workload is not None and self.workload not in WORKLOADS:
            raise FleetError(
                f"unknown workload {self.workload!r}; "
                f"available: {sorted(WORKLOADS)}"
            )
        if self.duration_ms is not None and self.duration_ms <= 0:
            raise FleetError("duration_ms must be positive")
        if self.quantum_ms is not None and self.quantum_ms <= 0:
            raise FleetError("quantum_ms must be positive")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tenant_id": self.tenant_id,
            "workload": self.workload,
            "duration_ms": self.duration_ms,
            "quantum_ms": self.quantum_ms,
            "seed_base": self.seed_base,
            "rollup": self.rollup,
            "fault_screen": self.fault_screen,
            "description": self.description,
        }


@dataclass
class HostSpec:
    """One host registration; ``None`` fields inherit tenant defaults."""

    host_id: str
    tenant: str
    seed: Optional[int] = None
    workload: Optional[str] = None
    duration_ms: Optional[float] = None
    total_pages: Optional[int] = None
    quantum_ms: Optional[float] = None
    failing_page_fraction: Optional[float] = None
    rollup: Optional[bool] = None

    def __post_init__(self) -> None:
        if not self.host_id:
            raise FleetError("host_id must be non-empty")
        if not self.tenant:
            raise FleetError("tenant must be non-empty")
        if self.workload is not None and self.workload not in WORKLOADS:
            raise FleetError(
                f"unknown workload {self.workload!r}; "
                f"available: {sorted(WORKLOADS)}"
            )
        if self.duration_ms is not None and self.duration_ms <= 0:
            raise FleetError("duration_ms must be positive")
        if self.total_pages is not None and self.total_pages <= 0:
            raise FleetError("total_pages must be positive")


def host_seed(spec: HostSpec, tenant: TenantProfile) -> int:
    """Deterministic per-host seed: explicit, else derived from identity.

    The derivation hashes the host id (CRC32) into the tenant's seed
    base, so re-registering the same host under the same tenant always
    simulates the same chip — re-runs are reproducible with no
    coordination beyond the names.
    """
    if spec.seed is not None:
        return int(spec.seed)
    return int(tenant.seed_base) ^ zlib.crc32(spec.host_id.encode("utf-8"))


@dataclass
class HostState:
    """Lifecycle record of one host inside a running service."""

    spec: HostSpec
    status: str = "registered"
    #: Streamed writes accumulated before seal: page -> [t_ms, ...].
    writes: Dict[int, List[float]] = field(default_factory=dict)
    ingest_records: int = 0
    #: Frozen unit params (set at seal; identical to the WorkUnit's).
    params: Optional[Dict[str, Any]] = None
    payload: Optional[Dict[str, Any]] = None
    table: Optional[str] = None
    wall_s: Optional[float] = None
    error: Optional[str] = None

    def summary(self) -> Dict[str, Any]:
        entry: Dict[str, Any] = {
            "host": self.spec.host_id,
            "tenant": self.spec.tenant,
            "status": self.status,
            "ingest_records": self.ingest_records,
            "streamed_pages": len(self.writes),
        }
        if self.error is not None:
            entry["error"] = self.error
        if self.payload is not None:
            report = self.payload["report"]
            entry["refresh_reduction"] = report["refresh_reduction"]
            entry["lo_ref_time_fraction"] = report["lo_ref_time_fraction"]
            entry["tests_total"] = report["tests_total"]
        if self.wall_s is not None:
            entry["wall_s"] = self.wall_s
        return entry


class HostRegistry:
    """Thread-safe tenant/host store backing the fleet service."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._tenants: Dict[str, TenantProfile] = {}
        self._hosts: Dict[str, HostState] = {}

    # -- registration --------------------------------------------------
    def add_tenant(self, profile: TenantProfile) -> None:
        with self._lock:
            if profile.tenant_id in self._tenants:
                raise FleetError(
                    f"tenant {profile.tenant_id!r} already registered")
            self._tenants[profile.tenant_id] = profile

    def add_host(self, spec: HostSpec) -> HostState:
        with self._lock:
            if spec.tenant not in self._tenants:
                raise FleetError(f"unknown tenant {spec.tenant!r}")
            if spec.host_id in self._hosts:
                raise FleetError(f"host {spec.host_id!r} already registered")
            state = HostState(spec=spec)
            self._hosts[spec.host_id] = state
            return state

    def tenant(self, tenant_id: str) -> TenantProfile:
        with self._lock:
            try:
                return self._tenants[tenant_id]
            except KeyError:
                raise FleetError(f"unknown tenant {tenant_id!r}") from None

    def _host(self, host_id: str) -> HostState:
        try:
            return self._hosts[host_id]
        except KeyError:
            raise FleetError(f"unknown host {host_id!r}") from None

    # -- ingest --------------------------------------------------------
    def append_writes(
        self, host_id: str, page: int, times: List[float]
    ) -> int:
        """Accumulate one streamed trace record; returns records so far."""
        with self._lock:
            state = self._host(host_id)
            if state.status != "registered":
                raise FleetError(
                    f"host {host_id!r} is {state.status}; "
                    "trace ingest is only valid before seal"
                )
            state.writes.setdefault(int(page), []).extend(
                float(t) for t in times
            )
            state.ingest_records += 1
            return state.ingest_records

    # -- lifecycle -----------------------------------------------------
    def seal(self, host_id: str) -> Dict[str, Any]:
        """Freeze a host's simulation params and mark it sealed.

        Returns the params dict the scheduler turns into a work unit.
        Streamed hosts must declare ``total_pages`` and ``duration_ms``
        (directly or via the tenant); workload hosts fall back to the
        profile's own footprint and window.
        """
        with self._lock:
            state = self._host(host_id)
            if state.status != "registered":
                raise FleetError(
                    f"host {host_id!r} is {state.status}; cannot seal")
            spec = state.spec
            tenant = self.tenant(spec.tenant)
            params: Dict[str, Any] = {
                "host": spec.host_id,
                "tenant": spec.tenant,
                "seed": host_seed(spec, tenant),
            }
            duration = (
                spec.duration_ms if spec.duration_ms is not None
                else tenant.duration_ms
            )
            if duration is not None:
                params["duration_ms"] = float(duration)
            quantum = (
                spec.quantum_ms if spec.quantum_ms is not None
                else tenant.quantum_ms
            )
            if quantum is not None:
                params["quantum_ms"] = float(quantum)
            if state.writes:
                if duration is None:
                    raise FleetError(
                        f"host {host_id!r} streamed a trace but has no "
                        "duration_ms (set it on the host or tenant)"
                    )
                if spec.total_pages is None:
                    raise FleetError(
                        f"host {host_id!r} streamed a trace but has no "
                        "total_pages"
                    )
                params["writes"] = {
                    str(page): sorted(times)
                    for page, times in sorted(state.writes.items())
                }
                params["total_pages"] = int(spec.total_pages)
            else:
                workload = spec.workload or tenant.workload
                if workload is None:
                    raise FleetError(
                        f"host {host_id!r} has neither streamed writes "
                        "nor a workload (set one on the host or tenant)"
                    )
                params["workload"] = workload
            if spec.failing_page_fraction is not None:
                params["failing_page_fraction"] = float(
                    spec.failing_page_fraction)
            elif tenant.fault_screen is not None:
                params["fault_screen"] = dict(tenant.fault_screen)
            rollup = spec.rollup if spec.rollup is not None else tenant.rollup
            if rollup:
                params["rollup"] = True
            state.params = params
            state.status = "sealed"
            return dict(params)

    def complete(
        self, host_id: str, payload: Dict[str, Any], table: str,
        wall_s: Optional[float] = None,
    ) -> None:
        with self._lock:
            state = self._host(host_id)
            state.payload = payload
            state.table = table
            state.wall_s = wall_s
            state.status = "done"

    def fail(self, host_id: str, error: str) -> None:
        with self._lock:
            state = self._host(host_id)
            state.error = error
            state.status = "failed"

    # -- views ---------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        with self._lock:
            counts = {status: 0 for status in HOST_STATUSES}
            for state in self._hosts.values():
                counts[state.status] += 1
            counts["total"] = len(self._hosts)
            counts["tenants"] = len(self._tenants)
            return counts

    def all_done(self) -> bool:
        """Every registered host reached a terminal state (none pending)."""
        with self._lock:
            return bool(self._hosts) and all(
                state.status in ("done", "failed")
                for state in self._hosts.values()
            )

    def tenants(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [
                profile.to_dict()
                for _, profile in sorted(self._tenants.items())
            ]

    def hosts(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [
                state.summary() for _, state in sorted(self._hosts.items())
            ]

    def host_detail(self, host_id: str) -> Dict[str, Any]:
        with self._lock:
            state = self._host(host_id)
            entry = state.summary()
            if state.params is not None:
                entry["params"] = dict(state.params)
            if state.payload is not None:
                entry["payload"] = state.payload
            return entry

    def host_table(self, host_id: str) -> str:
        with self._lock:
            state = self._host(host_id)
            if state.table is None:
                raise FleetError(
                    f"host {host_id!r} has no table yet "
                    f"(status: {state.status})"
                )
            return state.table
