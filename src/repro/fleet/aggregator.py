"""Fleet-wide and per-tenant rollups over streamed host results.

The aggregator is the read side of the fleet service: every host payload
the scheduler delivers is folded immediately (no replay over stored
results), so the status endpoint answers in O(tenants) regardless of
fleet size. Folded state:

* **per tenant** — hosts done/failed, LO-REF coverage statistics
  (mean/min/max plus exact p50/p95 over the retained sample), test
  outcome totals, PRIL hit rate, test bandwidth (tests per simulated
  second), and the fold of any per-host windowed rollups
  (:mod:`repro.obs.analytics` condensed form).
* **fleet-wide** — host counts, a fixed-bin coverage distribution,
  scheduling-latency tail percentiles across hosts (p50/p95/p99),
  ingest totals and backlog peak, and the resident-rows / trace-cache
  accounting sampled from the metrics registry.

:meth:`FleetAggregator.to_dict` is the manifest's ``"fleet"`` section;
``repro.obs.compare`` extracts its numerics and ``repro.obs.dashboard``
renders it.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Mapping, Optional

__all__ = ["COVERAGE_BIN_EDGES", "FleetAggregator"]

#: Fixed LO-REF coverage histogram edges (fractions of simulated time).
COVERAGE_BIN_EDGES = tuple(i / 10.0 for i in range(11))


def _percentile(values: List[float], q: float) -> Optional[float]:
    """Exact q-quantile by rank (nearest-rank method); None when empty."""
    if not values:
        return None
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(q * len(ordered) + 0.5) - 1))
    return ordered[rank]


class _TenantFold:
    def __init__(self) -> None:
        self.hosts_done = 0
        self.hosts_failed = 0
        self.coverage: List[float] = []
        self.reductions: List[float] = []
        self.tests = {
            "total": 0, "failed": 0, "correct": 0,
            "mispredicted": 0, "aborted": 0,
        }
        self.window_s = 0.0
        self.rollup_events = 0
        self.rollup_windows = 0
        self.pril_started = 0
        self.pril_resolved = 0

    def fold(self, payload: Mapping[str, Any]) -> None:
        report = payload["report"]
        self.hosts_done += 1
        self.coverage.append(float(report["lo_ref_time_fraction"]))
        self.reductions.append(float(report["refresh_reduction"]))
        self.tests["total"] += report["tests_total"]
        self.tests["failed"] += report["tests_failed"]
        self.tests["correct"] += report["tests_correct"]
        self.tests["mispredicted"] += report["tests_mispredicted"]
        self.tests["aborted"] += report["tests_aborted"]
        self.window_s += float(report["window_ms"]) * 1e-3
        rollup = payload.get("rollup")
        if rollup:
            self.rollup_events += rollup["events_total"]
            self.rollup_windows += len(rollup["windows"])
            self.pril_started += rollup["pril"]["started"]
            self.pril_resolved += rollup["pril"]["resolved"]

    def to_dict(self) -> Dict[str, Any]:
        total = self.tests["total"]
        entry: Dict[str, Any] = {
            "hosts_done": self.hosts_done,
            "hosts_failed": self.hosts_failed,
            "coverage": {
                "mean": (
                    sum(self.coverage) / len(self.coverage)
                    if self.coverage else None
                ),
                "min": min(self.coverage) if self.coverage else None,
                "max": max(self.coverage) if self.coverage else None,
                "p50": _percentile(self.coverage, 0.50),
                "p95": _percentile(self.coverage, 0.95),
            },
            "refresh_reduction_mean": (
                sum(self.reductions) / len(self.reductions)
                if self.reductions else None
            ),
            "tests": dict(self.tests),
            "pril_hit_rate": (
                self.tests["correct"] / total if total else None
            ),
            "test_bandwidth_per_s": (
                total / self.window_s if self.window_s else None
            ),
        }
        if self.rollup_windows:
            entry["rollup"] = {
                "windows": self.rollup_windows,
                "events_total": self.rollup_events,
                "pril_hit_rate": (
                    self.pril_resolved / self.pril_started
                    if self.pril_started else None
                ),
            }
        return entry


class FleetAggregator:
    """Streaming fold of host results into the manifest's fleet section."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tenants: Dict[str, _TenantFold] = {}
        self._wall: List[float] = []
        self._coverage_bins = [0] * (len(COVERAGE_BIN_EDGES) - 1)
        self._ingest_records = 0
        self._backlog_peak = 0
        self._resident_peak = 0
        self._rows_evicted = 0.0
        self._cache_hits = 0.0
        self._cache_misses = 0.0

    # -- folds ---------------------------------------------------------
    def _tenant(self, tenant_id: str) -> _TenantFold:
        fold = self._tenants.get(tenant_id)
        if fold is None:
            fold = self._tenants[tenant_id] = _TenantFold()
        return fold

    def host_done(
        self, payload: Mapping[str, Any], wall_s: Optional[float] = None
    ) -> None:
        with self._lock:
            self._tenant(str(payload["tenant"])).fold(payload)
            coverage = float(payload["report"]["lo_ref_time_fraction"])
            bin_index = min(
                len(self._coverage_bins) - 1,
                int(coverage * (len(COVERAGE_BIN_EDGES) - 1)),
            )
            self._coverage_bins[bin_index] += 1
            if wall_s is not None:
                self._wall.append(float(wall_s))
            screen = payload.get("screen")
            if screen:
                self._resident_peak = max(
                    self._resident_peak, int(screen["resident_rows_peak"])
                )

    def host_failed(self, tenant_id: str) -> None:
        with self._lock:
            self._tenant(tenant_id).hosts_failed += 1

    def note_ingest(self, records: int, backlog: int) -> None:
        with self._lock:
            self._ingest_records += records
            if backlog > self._backlog_peak:
                self._backlog_peak = backlog

    def note_metrics(self, snapshot: Mapping[str, Any]) -> None:
        """Sample registry-derived accounting (resident rows, caches)."""
        counters = snapshot.get("counters") or {}
        gauges = snapshot.get("gauges") or {}
        with self._lock:
            resident = gauges.get("dram.resident_rows")
            if resident is not None:
                self._resident_peak = max(
                    self._resident_peak, int(resident))
            self._rows_evicted = counters.get(
                "dram.rows_evicted", self._rows_evicted)
            self._cache_hits = counters.get(
                "traces.cache_hits", self._cache_hits)
            self._cache_misses = counters.get(
                "traces.cache_misses", self._cache_misses)

    # -- rollup --------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            tenants = {
                tenant_id: fold.to_dict()
                for tenant_id, fold in sorted(self._tenants.items())
            }
            hosts_done = sum(f.hosts_done for f in self._tenants.values())
            hosts_failed = sum(
                f.hosts_failed for f in self._tenants.values())
            tests_total = sum(
                f.tests["total"] for f in self._tenants.values())
            tests_correct = sum(
                f.tests["correct"] for f in self._tenants.values())
            window_s = sum(f.window_s for f in self._tenants.values())
            coverage_all = [
                value for f in self._tenants.values() for value in f.coverage
            ]
            return {
                "hosts": {
                    "done": hosts_done,
                    "failed": hosts_failed,
                },
                "tenants": tenants,
                "coverage": {
                    "mean": (
                        sum(coverage_all) / len(coverage_all)
                        if coverage_all else None
                    ),
                    "bin_edges": list(COVERAGE_BIN_EDGES),
                    "bin_counts": list(self._coverage_bins),
                },
                "wall": {
                    "hosts_timed": len(self._wall),
                    "p50_s": _percentile(self._wall, 0.50),
                    "p95_s": _percentile(self._wall, 0.95),
                    "p99_s": _percentile(self._wall, 0.99),
                    "max_s": max(self._wall) if self._wall else None,
                },
                "tests": {
                    "total": tests_total,
                    "bandwidth_per_s": (
                        tests_total / window_s if window_s else None
                    ),
                },
                "pril_hit_rate": (
                    tests_correct / tests_total if tests_total else None
                ),
                "ingest": {
                    "records": self._ingest_records,
                    "backlog_peak": self._backlog_peak,
                },
                "resident_rows": {
                    "peak": self._resident_peak,
                    "evicted": self._rows_evicted,
                },
                "trace_cache": {
                    "hits": self._cache_hits,
                    "misses": self._cache_misses,
                },
            }
