"""`repro.fleet` — an asyncio fleet service simulating MEMCON hosts.

The paper evaluates MEMCON one memory system at a time; this package
scales that to a simulated datacenter. A long-lived service
(``python -m repro.fleet.serve``) accepts tenant/host registrations and
NDJSON write-trace streams over HTTP, schedules each sealed host as a
deterministic work unit on the shared :mod:`repro.parallel` executor,
and serves live per-tenant and fleet-wide rollups while the fleet runs.

Pieces, ingest to egress:

* :mod:`.protocol` — JSON/NDJSON message shapes and strict validation.
* :mod:`.registry` — thread-safe tenant/host lifecycle store; sealing
  freezes the exact params dict a work unit carries.
* :mod:`.hostsim` — one host as a ``fleet_host`` work unit: optional
  fault-map screen, MEMCON simulation, canonical result table.
* :mod:`.scheduler` — dispatch thread batching hosts onto one
  persistent executor, with checkpoint-journal crash-resume.
* :mod:`.aggregator` — streaming fold of host payloads into the
  manifest's ``"fleet"`` section.
* :mod:`.server` / :mod:`.serve` — the asyncio HTTP endpoint and CLI.
* :mod:`.client` — synchronous stdlib client (smoke/CI/tests driver).

Determinism contract: a host simulated through the fleet produces a
byte-identical table to :func:`repro.fleet.hostsim.run_host` given the
same sealed params — scheduling order, batching, and job count never
leak into results.
"""

from .aggregator import COVERAGE_BIN_EDGES, FleetAggregator
from .client import FleetClient, FleetClientError
from .hostsim import host_table, run_host
from .protocol import PROTOCOL_VERSION, ProtocolError
from .registry import (
    HOST_STATUSES,
    FleetError,
    HostRegistry,
    HostSpec,
    HostState,
    TenantProfile,
)
from .scheduler import FleetScheduler, SchedulerStats
from .server import FleetHTTPServer, FleetService, run_service_in_thread

__all__ = [
    "COVERAGE_BIN_EDGES",
    "FleetAggregator",
    "FleetClient",
    "FleetClientError",
    "host_table",
    "run_host",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "HOST_STATUSES",
    "FleetError",
    "HostRegistry",
    "HostSpec",
    "HostState",
    "TenantProfile",
    "FleetScheduler",
    "SchedulerStats",
    "FleetHTTPServer",
    "FleetService",
    "run_service_in_thread",
]
