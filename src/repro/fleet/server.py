"""Asyncio fleet service: HTTP/JSON ingest and live status endpoints.

The server is a minimal hand-rolled HTTP/1.1 implementation over
``asyncio.start_server`` — the container has no third-party HTTP stack,
and the protocol surface (request line, headers, Content-Length body,
``Connection: close``) is small enough that owning it keeps the service
dependency-free. Handlers parse/validate through :mod:`.protocol`,
mutate the thread-safe :class:`~repro.fleet.registry.HostRegistry`, and
enqueue work on the :class:`~repro.fleet.scheduler.FleetScheduler`; the
scheduler's dispatch thread reports results straight back into the
registry and :class:`~repro.fleet.aggregator.FleetAggregator`, so the
event loop never blocks on simulation.

Routes (all JSON unless noted)::

    GET  /healthz                 liveness probe
    GET  /v1/status               fleet rollups + queue + cache info
    GET  /v1/manifest             full run-manifest document
    GET  /v1/tenants              registered tenant profiles
    POST /v1/tenants              register a tenant
    GET  /v1/hosts                host summaries
    POST /v1/hosts                register a host
    POST /v1/hosts/{id}/trace     NDJSON write-trace ingest (appends)
    POST /v1/hosts/{id}/seal      freeze params + enqueue simulation
    GET  /v1/hosts/{id}           host detail (params, payload)
    GET  /v1/hosts/{id}/table     canonical text table (text/plain)
    POST /v1/jobs                 run a named paper experiment
    POST /v1/shutdown             drain and stop the service

:class:`FleetService` composes registry + scheduler + aggregator +
server and owns the callback wiring; it is what ``python -m
repro.fleet.serve``, the smoke driver, and the tests all run.
"""

from __future__ import annotations

import asyncio
import json
import logging
import threading
from typing import Any, Dict, Optional, Tuple

from .. import obs
from ..traces.generator import trace_cache_info
from . import hostsim, protocol
from .aggregator import FleetAggregator
from .registry import FleetError, HostRegistry
from .scheduler import FleetScheduler

__all__ = ["FleetHTTPServer", "FleetService", "run_service_in_thread"]

logger = logging.getLogger(__name__)

_MAX_REQUEST_BYTES = 64 * 1024 * 1024
_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    500: "Internal Server Error",
}


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class FleetService:
    """Registry + scheduler + aggregator wired into one lifecycle."""

    def __init__(
        self,
        jobs: int = 1,
        checkpoint: Optional[str] = None,
        resume: bool = False,
        batch_max: int = 32,
        unit_timeout_s: Optional[float] = None,
        max_retries: int = 2,
    ) -> None:
        self.registry = HostRegistry()
        self.aggregator = FleetAggregator()
        self.scheduler = FleetScheduler(
            jobs=jobs,
            checkpoint=checkpoint,
            resume=resume,
            batch_max=batch_max,
            unit_timeout_s=unit_timeout_s,
            max_retries=max_retries,
            on_host_result=self._host_result,
            on_host_error=self._host_error,
            on_job_done=self._job_done,
        )
        self.jobs: Dict[str, Dict[str, Any]] = {}
        self._jobs_lock = threading.Lock()
        self._config = {
            "jobs": jobs, "checkpoint": checkpoint, "resume": resume,
            "batch_max": batch_max,
        }

    # -- scheduler callbacks (dispatch thread) -------------------------
    def _host_result(
        self, host_id: str, payload: Dict[str, Any], wall_s: float
    ) -> None:
        table = hostsim.host_table(payload)
        self.registry.complete(host_id, payload, table, wall_s)
        self.aggregator.host_done(payload, wall_s)
        self.aggregator.note_metrics(obs.get_registry().snapshot())
        registry = obs.get_registry()
        registry.counter("fleet.hosts_done").inc()
        registry.gauge("fleet.ingest_backlog").set(self.scheduler.backlog())

    def _host_error(self, host_id: str, error: str) -> None:
        try:
            tenant = self.registry.host_detail(host_id)["tenant"]
        except FleetError:
            tenant = "?"
        self.registry.fail(host_id, error)
        self.aggregator.host_failed(tenant)
        obs.get_registry().counter("fleet.hosts_failed").inc()

    def _job_done(self, job_id: str, result: Any, wall_s: float) -> None:
        with self._jobs_lock:
            job = self.jobs.get(job_id)
            if job is None:
                return
            if isinstance(result, Exception):
                job["status"] = "failed"
                job["error"] = repr(result)
            else:
                job["status"] = "done"
                job["table"] = result.to_text()
            job["wall_s"] = wall_s

    # -- views ---------------------------------------------------------
    def status(self) -> Dict[str, Any]:
        return {
            "protocol": protocol.PROTOCOL_VERSION,
            "hosts": self.registry.counts(),
            "all_done": self.registry.all_done(),
            "queue": {
                "backlog": self.scheduler.backlog(),
                **self.scheduler.stats.to_dict(),
            },
            "trace_cache": trace_cache_info(),
            "fleet": self.aggregator.to_dict(),
        }

    def manifest(self) -> Dict[str, Any]:
        """A run-manifest document with the fleet section attached."""
        manifest = obs.RunManifest.start(
            ["fleet"], seed=0, quick=True, config=dict(self._config),
        )
        manifest.metrics = obs.get_registry().snapshot()
        manifest.fleet = self.aggregator.to_dict()
        return manifest.to_dict()

    def close(self, wait: bool = True) -> None:
        self.scheduler.close(wait=wait)


class FleetHTTPServer:
    """The HTTP face of a :class:`FleetService`."""

    def __init__(
        self,
        service: FleetService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port  # replaced by the bound port after start()
        self._server: Optional[asyncio.AbstractServer] = None
        self.shutdown_event: Optional[asyncio.Event] = None

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        self.shutdown_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        logger.info("fleet service listening on %s:%d", self.host, self.port)

    async def serve_until_shutdown(self) -> None:
        assert self._server is not None and self.shutdown_event is not None
        async with self._server:
            await self.shutdown_event.wait()

    # -- one connection ------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, body, content_type = await self._respond(reader)
        except Exception:
            logger.exception("fleet request handler crashed")
            status, body, content_type = (
                500, json.dumps({"error": "internal error"}), "application/json")
        payload = body.encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}; charset=utf-8\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n\r\n"
        )
        try:
            writer.write(head.encode("ascii") + payload)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _respond(
        self, reader: asyncio.StreamReader
    ) -> Tuple[int, str, str]:
        try:
            method, path, body = await self._read_request(reader)
        except _HttpError as exc:
            return (
                exc.status,
                json.dumps({"error": exc.message}),
                "application/json",
            )
        try:
            result = self._route(method, path, body)
        except _HttpError as exc:
            return (
                exc.status,
                json.dumps({"error": exc.message}),
                "application/json",
            )
        except (protocol.ProtocolError, FleetError) as exc:
            return 400, json.dumps({"error": str(exc)}), "application/json"
        if isinstance(result, str):
            return 200, result, "text/plain"
        return 200, json.dumps(result, indent=2), "application/json"

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, str]:
        request_line = await reader.readline()
        if not request_line:
            raise _HttpError(400, "empty request")
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise _HttpError(400, "malformed request line")
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise _HttpError(400, "bad Content-Length") from None
        if content_length > _MAX_REQUEST_BYTES:
            raise _HttpError(413, "request body too large")
        body = b""
        if content_length:
            body = await reader.readexactly(content_length)
        return method, path, body.decode("utf-8")

    # -- routing -------------------------------------------------------
    def _json_body(self, body: str) -> Any:
        try:
            return json.loads(body)
        except json.JSONDecodeError:
            raise _HttpError(400, "request body is not valid JSON") from None

    def _route(self, method: str, path: str, body: str):
        service = self.service
        if path == "/healthz" and method == "GET":
            return {"ok": True}
        if path == "/v1/status" and method == "GET":
            return service.status()
        if path == "/v1/manifest" and method == "GET":
            return service.manifest()
        if path == "/v1/tenants":
            if method == "GET":
                return {"tenants": service.registry.tenants()}
            if method == "POST":
                profile = protocol.parse_tenant(self._json_body(body))
                service.registry.add_tenant(profile)
                return {"registered": profile.tenant_id}
            raise _HttpError(405, f"{method} not allowed on {path}")
        if path == "/v1/hosts":
            if method == "GET":
                return {"hosts": service.registry.hosts()}
            if method == "POST":
                spec = protocol.parse_host(self._json_body(body))
                service.registry.add_host(spec)
                return {"registered": spec.host_id}
            raise _HttpError(405, f"{method} not allowed on {path}")
        if path == "/v1/jobs" and method == "POST":
            return self._submit_job(self._json_body(body))
        if path == "/v1/shutdown" and method == "POST":
            assert self.shutdown_event is not None
            self.shutdown_event.set()
            return {"shutting_down": True}
        if path.startswith("/v1/hosts/"):
            return self._route_host(method, path[len("/v1/hosts/"):], body)
        if path.startswith("/v1/jobs/") and method == "GET":
            job_id = path[len("/v1/jobs/"):]
            with service._jobs_lock:
                job = service.jobs.get(job_id)
                if job is None:
                    raise _HttpError(404, f"unknown job {job_id!r}")
                return dict(job)
        raise _HttpError(404, f"no route for {method} {path}")

    def _route_host(self, method: str, rest: str, body: str):
        service = self.service
        host_id, _, action = rest.partition("/")
        if not host_id:
            raise _HttpError(404, "missing host id")
        try:
            if not action:
                if method != "GET":
                    raise _HttpError(405, "host detail is GET-only")
                return service.registry.host_detail(host_id)
            if action == "table":
                if method != "GET":
                    raise _HttpError(405, "host table is GET-only")
                return service.registry.host_table(host_id)
            if action == "trace":
                if method != "POST":
                    raise _HttpError(405, "trace ingest is POST-only")
                return self._ingest_trace(host_id, body)
            if action == "seal":
                if method != "POST":
                    raise _HttpError(405, "seal is POST-only")
                params = service.registry.seal(host_id)
                service.scheduler.submit_host(params)
                backlog = service.scheduler.backlog()
                obs.get_registry().gauge("fleet.ingest_backlog").set(backlog)
                return {"sealed": host_id, "backlog": backlog}
        except FleetError as exc:
            unknown = str(exc).startswith("unknown host")
            raise _HttpError(404 if unknown else 400, str(exc)) from None
        raise _HttpError(404, f"no host action {action!r}")

    def _ingest_trace(self, host_id: str, body: str) -> Dict[str, Any]:
        service = self.service
        records = 0
        for obj in protocol.iter_ndjson(body):
            page, times = protocol.parse_trace_line(obj)
            service.registry.append_writes(host_id, page, times)
            records += 1
        obs.get_registry().counter("fleet.ingest_records").inc(records)
        service.aggregator.note_ingest(
            records, service.scheduler.backlog())
        return {"host": host_id, "records": records}

    def _submit_job(self, obj: Any) -> Dict[str, Any]:
        service = self.service
        if not isinstance(obj, dict):
            raise _HttpError(400, "job request must be a JSON object")
        name = obj.get("experiment")
        if not isinstance(name, str) or not name:
            raise _HttpError(400, "job request needs an 'experiment' name")
        quick = obj.get("quick", True)
        seed = obj.get("seed", 1)
        if not isinstance(quick, bool) or isinstance(seed, bool) \
                or not isinstance(seed, int):
            raise _HttpError(400, "'quick' must be a bool, 'seed' an int")
        with service._jobs_lock:
            job_id = f"job-{len(service.jobs):04d}-{name}"
            service.jobs[job_id] = {
                "job_id": job_id, "experiment": name,
                "quick": quick, "seed": seed, "status": "queued",
            }
        try:
            service.scheduler.submit_experiment(
                job_id, name, quick=quick, seed=seed)
        except KeyError as exc:
            with service._jobs_lock:
                del service.jobs[job_id]
            raise _HttpError(400, f"unknown experiment: {exc}") from None
        return {"job_id": job_id}


# ----------------------------------------------------------------------
async def _run_async(
    service: FleetService,
    server: FleetHTTPServer,
    started: Optional[threading.Event] = None,
) -> None:
    await server.start()
    if started is not None:
        started.set()
    await server.serve_until_shutdown()


def run_service_in_thread(
    service: FleetService, host: str = "127.0.0.1", port: int = 0
) -> Tuple[FleetHTTPServer, threading.Thread]:
    """Run the HTTP server on a background event-loop thread.

    Used by the smoke driver and tests: the caller keeps the main thread
    for a synchronous client. Returns after the port is bound; join the
    thread after POSTing ``/v1/shutdown``.
    """
    server = FleetHTTPServer(service, host=host, port=port)
    started = threading.Event()
    thread = threading.Thread(
        target=lambda: asyncio.run(_run_async(service, server, started)),
        name="fleet-server",
        daemon=True,
    )
    thread.start()
    if not started.wait(timeout=30):
        raise RuntimeError("fleet server failed to start within 30s")
    return server, thread
