"""Synchronous fleet client over stdlib ``http.client``.

The client is the other half of the protocol module: it encodes the
messages :mod:`.protocol` validates, against a running fleet service.
It is what the smoke driver, the CI job, and the determinism tests use
to drive a service — and the reference for anyone scripting a fleet
from outside this repo.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Iterable, List, Mapping, Optional

from . import protocol
from .registry import TenantProfile

__all__ = ["FleetClient", "FleetClientError"]


class FleetClientError(RuntimeError):
    """A non-2xx response from the fleet service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class FleetClient:
    """Talks to one fleet service; one connection per request."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8787,
        timeout_s: float = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    # -- transport -----------------------------------------------------
    def _request(
        self, method: str, path: str, body: Optional[str] = None,
        content_type: str = "application/json",
    ) -> str:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s)
        try:
            headers = {"Connection": "close"}
            if body is not None:
                headers["Content-Type"] = content_type
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            text = response.read().decode("utf-8")
            if response.status >= 400:
                try:
                    message = json.loads(text).get("error", text)
                except (json.JSONDecodeError, AttributeError):
                    message = text
                raise FleetClientError(response.status, message)
            return text
        finally:
            conn.close()

    def _json(self, method: str, path: str, obj: Any = None) -> Any:
        body = None if obj is None else json.dumps(obj)
        return json.loads(self._request(method, path, body))

    # -- registration --------------------------------------------------
    def register_tenant(
        self, profile: "TenantProfile | Mapping[str, Any]"
    ) -> Dict[str, Any]:
        if isinstance(profile, TenantProfile):
            profile = protocol.encode_tenant(profile)
        return self._json("POST", "/v1/tenants", dict(profile))

    def register_host(self, spec: Mapping[str, Any]) -> Dict[str, Any]:
        return self._json("POST", "/v1/hosts", dict(spec))

    # -- trace streaming -----------------------------------------------
    def stream_trace(
        self,
        host_id: str,
        writes: Mapping[int, Iterable[float]],
        chunk_records: int = 512,
    ) -> int:
        """POST a writes mapping as NDJSON, chunked; returns records sent."""
        pages = sorted(writes.items())
        sent = 0
        for start in range(0, len(pages), chunk_records):
            chunk = dict(pages[start:start + chunk_records])
            self._request(
                "POST",
                f"/v1/hosts/{host_id}/trace",
                protocol.trace_lines(chunk),
                content_type="application/x-ndjson",
            )
            sent += len(chunk)
        return sent

    def seal(self, host_id: str) -> Dict[str, Any]:
        return self._json("POST", f"/v1/hosts/{host_id}/seal")

    # -- status / results ----------------------------------------------
    def status(self) -> Dict[str, Any]:
        return self._json("GET", "/v1/status")

    def manifest(self) -> Dict[str, Any]:
        return self._json("GET", "/v1/manifest")

    def tenants(self) -> List[Dict[str, Any]]:
        return self._json("GET", "/v1/tenants")["tenants"]

    def hosts(self) -> List[Dict[str, Any]]:
        return self._json("GET", "/v1/hosts")["hosts"]

    def host_detail(self, host_id: str) -> Dict[str, Any]:
        return self._json("GET", f"/v1/hosts/{host_id}")

    def host_table(self, host_id: str) -> str:
        return self._request("GET", f"/v1/hosts/{host_id}/table")

    def submit_job(
        self, experiment: str, quick: bool = True, seed: int = 1
    ) -> str:
        return self._json(
            "POST", "/v1/jobs",
            {"experiment": experiment, "quick": quick, "seed": seed},
        )["job_id"]

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._json("GET", f"/v1/jobs/{job_id}")

    def shutdown(self) -> None:
        self._json("POST", "/v1/shutdown")

    # -- polling -------------------------------------------------------
    def wait_all_done(
        self, timeout_s: float = 300.0, poll_s: float = 0.2
    ) -> Dict[str, Any]:
        """Poll the status endpoint until every host is terminal."""
        deadline = time.monotonic() + timeout_s
        while True:
            status = self.status()
            if status["all_done"]:
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"fleet not done after {timeout_s}s: {status['hosts']}")
            time.sleep(poll_s)

    def wait_job(
        self, job_id: str, timeout_s: float = 300.0, poll_s: float = 0.2
    ) -> Dict[str, Any]:
        """Poll one experiment job until it leaves the queue."""
        deadline = time.monotonic() + timeout_s
        while True:
            job = self.job(job_id)
            if job["status"] in ("done", "failed"):
                return job
            if time.monotonic() >= deadline:
                raise TimeoutError(f"job {job_id} not done after {timeout_s}s")
            time.sleep(poll_s)
