"""One simulated MEMCON host as a deterministic work unit.

The fleet service treats every host as a self-contained unit of the
``fleet_host`` pseudo-experiment: the unit's params carry *everything*
the simulation needs (trace source, seeds, MEMCON knobs, fault-screen
budget), so the executor-level ``quick``/``seed`` arguments are fixed
constants and a host produces the same payload whether it runs inline,
in a pool worker, through the fleet scheduler, or via :func:`run_host`
standalone — the byte-identity property the fleet tests pin down.

A host simulation has three deterministic stages:

1. **Trace** — either the host's streamed writes (ingested over the
   fleet protocol) or a synthetic trace generated from a named workload
   profile with the host's seed.
2. **Fault screen** (optional) — a :class:`~repro.dram.faults.FaultMap`
   built with the host's chip seed is scanned chunk-by-chunk under a
   ``max_resident_rows`` budget; the ALL-FAIL row fraction becomes the
   host's ``failing_page_fraction``, tying the MEMCON test-failure rate
   to the content-dependent failure model instead of a hand-set number.
3. **MEMCON** — :func:`~repro.core.memcon.simulate_refresh_reduction`
   over the trace. With ``rollup`` enabled the simulation additionally
   runs under an :class:`~repro.obs.AggregatingSink`, attaching windowed
   LO-REF/test/PRIL rollups to the payload for the tenant aggregator.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from .. import obs
from ..core.memcon import MemconConfig, simulate_refresh_reduction
from ..dram.faults import FaultMap, FaultModelConfig
from ..experiments.common import ExperimentResult, percent, plain
from ..parallel.units import WorkUnit, register_experiment
from ..traces.events import WriteTrace
from ..traces.generator import generate_trace
from ..traces.workloads import WORKLOADS

__all__ = [
    "EXPERIMENT",
    "HOST_QUICK",
    "HOST_SEED",
    "host_table",
    "host_unit",
    "merge_units",
    "run_host",
    "run_unit",
    "units",
]

EXPERIMENT = "fleet_host"

#: Host units are pure functions of their params, so the executor-level
#: (quick, seed) pair is pinned to constants: checkpoint fingerprints
#: then depend only on the host params, and a resumed fleet service can
#: match journal entries regardless of which run wrote them.
HOST_QUICK = True
HOST_SEED = 0

#: Fault-screen defaults; ``fault_screen`` params override per key.
SCREEN_DEFAULTS: Dict[str, Any] = {
    "vulnerable_cell_rate": 2.0e-4,
    "bits_per_row": 1024,
    "interval_ms": 328.0,
    "chunk_rows": 256,
    "max_resident_rows": None,
}

register_experiment(EXPERIMENT, "repro.fleet.hostsim")


def host_unit(params: Dict[str, Any], seq: int = 0) -> WorkUnit:
    """Wrap validated host params into a schedulable work unit."""
    missing = [key for key in ("host", "tenant") if not params.get(key)]
    if missing:
        raise ValueError(f"host params missing {missing}")
    if not params.get("workload") and not params.get("writes"):
        raise ValueError(
            f"host {params['host']!r} has neither a workload nor "
            "streamed writes"
        )
    return WorkUnit(
        EXPERIMENT, str(params["host"]), dict(params), seq=seq,
        module="repro.fleet.hostsim",
    )


def units(quick: bool = True, seed: int = 1) -> List[WorkUnit]:
    """Hosts are registered dynamically; there is no static decomposition."""
    return []


# ----------------------------------------------------------------------
# Stage 1: the write trace
# ----------------------------------------------------------------------
def _trace_of(params: Dict[str, Any]) -> WriteTrace:
    writes = params.get("writes")
    if writes is not None:
        return WriteTrace(
            duration_ms=float(params["duration_ms"]),
            writes={
                int(page): np.sort(np.asarray(times, dtype=np.float64))
                for page, times in writes.items()
            },
            total_pages=int(params["total_pages"]),
            name=str(params["host"]),
        )
    name = params["workload"]
    profile = WORKLOADS[name]
    return generate_trace(
        profile,
        seed=int(params["seed"]),
        duration_ms=params.get("duration_ms"),
    )


# ----------------------------------------------------------------------
# Stage 2: content-dependent fault screen under a residency budget
# ----------------------------------------------------------------------
def _screen_failing_fraction(
    params: Dict[str, Any], total_pages: int
) -> Dict[str, Any]:
    """ALL-FAIL row fraction of the host's chip, chunked under budget."""
    screen = dict(SCREEN_DEFAULTS)
    screen.update(params.get("fault_screen") or {})
    fault_map = FaultMap(
        total_rows=total_pages,
        bits_per_row=int(screen["bits_per_row"]),
        config=FaultModelConfig(
            vulnerable_cell_rate=float(screen["vulnerable_cell_rate"]),
        ),
        seed=int(params["seed"]),
        max_resident_rows=screen["max_resident_rows"],
    )
    chunk = max(1, int(screen["chunk_rows"]))
    interval_ms = float(screen["interval_ms"])
    failing = 0
    resident_peak = 0
    for start in range(0, total_pages, chunk):
        rows = np.arange(start, min(start + chunk, total_pages))
        failing += int(fault_map.rows_can_ever_fail(rows, interval_ms).sum())
        resident_peak = max(resident_peak, fault_map.resident_rows())
    fault_map.release()
    return {
        "failing_page_fraction": failing / total_pages,
        "failing_pages": failing,
        "resident_rows_peak": resident_peak,
    }


# ----------------------------------------------------------------------
# Stage 3: MEMCON (optionally under a windowed rollup sink)
# ----------------------------------------------------------------------
def _memcon_config(params: Dict[str, Any]) -> MemconConfig:
    kwargs: Dict[str, Any] = {}
    for key in ("quantum_ms", "hi_ref_interval_ms", "lo_ref_interval_ms"):
        if params.get(key) is not None:
            kwargs[key] = float(params[key])
    return MemconConfig(**kwargs)


def _condense_rollup(rollup: Dict[str, Any]) -> Dict[str, Any]:
    """The windowed slice of an aggregator rollup a tenant view needs."""
    windows = []
    for window in rollup.get("windows", []):
        entry = {
            "index": window["index"],
            "t_ms": window["t_ms"],
            "tests": dict(window["tests"]),
        }
        ref = window.get("ref")
        if ref is not None:
            entry["lo_fraction"] = ref["lo_fraction"]
        windows.append(entry)
    pril = rollup.get("pril", [])
    started = sum(q["started"] for q in pril)
    resolved = sum(q["resolved"] for q in pril)
    return {
        "window_ms": rollup["window_ms"],
        "events_total": rollup["events_total"],
        "windows": windows,
        "pril": {
            "quanta": len(pril),
            "started": started,
            "resolved": resolved,
            "hit_rate": resolved / started if started else None,
        },
    }


def run_unit(
    unit: WorkUnit, quick: bool = HOST_QUICK, seed: int = HOST_SEED
) -> Dict[str, Any]:
    """Simulate one host; ``quick``/``seed`` are ignored by design."""
    params = unit.params
    trace = _trace_of(params)
    payload: Dict[str, Any] = {
        "host": str(params["host"]),
        "tenant": str(params["tenant"]),
        "seed": int(params["seed"]),
        "workload": trace.name,
    }
    failing_fraction = float(params.get("failing_page_fraction") or 0.0)
    if params.get("fault_screen") is not None:
        screen = _screen_failing_fraction(params, trace.total_pages)
        failing_fraction = screen["failing_page_fraction"]
        payload["screen"] = screen
    config = _memcon_config(params)
    rollup_sink: Optional[obs.AggregatingSink] = None
    previous_sink = None
    if params.get("rollup"):
        rollup_sink = obs.AggregatingSink(
            window_ms=float(params.get("rollup_window_ms")
                            or config.quantum_ms),
            total_pages=trace.total_pages,
        )
        previous_sink = obs.set_sink(
            obs.TeeSink(obs.get_sink(), rollup_sink)
            if obs.trace_active() else rollup_sink
        )
    try:
        report = simulate_refresh_reduction(
            trace, config,
            failing_page_fraction=failing_fraction,
            seed=int(params["seed"]),
        )
    finally:
        if rollup_sink is not None:
            obs.set_sink(previous_sink)
    payload["report"] = plain({
        "window_ms": report.window_ms,
        "total_pages": report.total_pages,
        "refresh_count": report.refresh_count,
        "baseline_refresh_count": report.baseline_refresh_count,
        "refresh_reduction": report.refresh_reduction,
        "lo_ref_time_fraction": report.lo_ref_time_fraction,
        "tests_total": report.tests_total,
        "tests_failed": report.tests_failed,
        "tests_correct": report.tests_correct,
        "tests_mispredicted": report.tests_mispredicted,
        "tests_aborted": report.tests_aborted,
    })
    payload["failing_page_fraction"] = float(failing_fraction)
    if rollup_sink is not None:
        payload["rollup"] = plain(_condense_rollup(rollup_sink.to_dict()))
    return payload


# ----------------------------------------------------------------------
# Tables: the per-host artifact the byte-identity gate compares
# ----------------------------------------------------------------------
def _host_row(payload: Dict[str, Any]) -> Dict[str, Any]:
    report = payload["report"]
    tests = report["tests_total"]
    correct = report["tests_correct"]
    return {
        "host": payload["host"],
        "tenant": payload["tenant"],
        "workload": payload["workload"],
        "pages": report["total_pages"],
        "window_ms": report["window_ms"],
        "reduction": percent(report["refresh_reduction"]),
        "lo_ref": percent(report["lo_ref_time_fraction"]),
        "tests": tests,
        "failed": report["tests_failed"],
        "pril_hit": percent(correct / tests) if tests else "-",
    }


def host_table(payload: Dict[str, Any]) -> str:
    """Render one host's result as the canonical text table."""
    result = ExperimentResult(
        experiment_id=f"{EXPERIMENT}:{payload['host']}",
        title="MEMCON host simulation",
        paper_claim=(
            "64.7-74.5% refresh reduction at the Figure 14 operating point"
        ),
    )
    result.add_row(**_host_row(payload))
    return result.to_text()


def merge_units(
    payloads: List[Dict[str, Any]],
    quick: bool = HOST_QUICK,
    seed: int = HOST_SEED,
) -> ExperimentResult:
    """Fold a batch of host payloads into one fleet table."""
    result = ExperimentResult(
        experiment_id=EXPERIMENT,
        title="MEMCON fleet hosts",
        paper_claim=(
            "64.7-74.5% refresh reduction at the Figure 14 operating point"
        ),
    )
    reductions = []
    for payload in payloads:
        result.add_row(**_host_row(payload))
        reductions.append(payload["report"]["refresh_reduction"])
    if reductions:
        result.notes = (
            f"{len(reductions)} hosts; reduction spans "
            f"{percent(min(reductions))}-{percent(max(reductions))}"
        )
    return result


def run_host(params: Dict[str, Any]) -> Dict[str, Any]:
    """Standalone comparator: simulate one host outside the fleet.

    This is byte-for-byte the computation the fleet schedules — the
    determinism tests compare :func:`host_table` of this payload against
    the table the service serves for the same params.
    """
    return run_unit(host_unit(params), quick=HOST_QUICK, seed=HOST_SEED)
