"""Synthetic write-trace generation (the HMTT substitution).

Each written page alternates between *write episodes* (a geometric number
of writes with sub-millisecond spacing — the >95% of writes that land
within 1 ms of the previous one) and *idle gaps* drawn from a Pareto
distribution. The Pareto scale ``xm`` is sampled log-uniformly per page, so
hot pages (small ``xm``) write often while cold pages idle for seconds;
a log-uniform mixture of same-index Pareto tails pools into a clean power
law on log-log axes, matching the straight-line fits of the paper's
Figure 8 while keeping per-page write counts realistic.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Dict, Optional

import numpy as np

from .. import obs
from .content import name_seed
from .events import WriteTrace
from .workloads import WorkloadProfile


def pareto_gaps(
    rng: np.random.Generator, n: int, xm_ms: float, alpha: float
) -> np.ndarray:
    """``n`` Pareto(xm, alpha) idle gaps, in milliseconds."""
    # Inverse-CDF sampling: P(X > x) = (xm / x) ** alpha for x >= xm.
    return xm_ms * rng.random(n) ** (-1.0 / alpha)


def generate_page_writes(
    rng: np.random.Generator,
    duration_ms: float,
    xm_ms: float,
    pareto_alpha: float,
    burst_extra_mean: float,
    burst_spacing_ms: float,
    start_ms: Optional[float] = None,
) -> np.ndarray:
    """Write timestamps for a single page over [0, duration_ms).

    The page starts at a random offset, then alternates a write episode of
    ``1 + Poisson(burst_extra_mean)`` writes with a Pareto(xm, alpha) idle
    gap until the window ends.

    The episode loop is written to preserve the original RNG stream and
    float rounding bit for bit while avoiding per-write Python work: a
    burst's timestamps come from one sequential ``cumsum`` over
    ``[t, spacings]`` (identical rounding to repeated ``t += spacing``)
    and ``Poisson(0)`` draws are skipped because they consume no RNG
    bits. The Pareto gap stays an array-shaped draw: numpy's array power
    rounds differently from scalar ``**``, so a scalar draw would change
    the trace.
    """
    if duration_ms <= 0:
        raise ValueError("duration_ms must be positive")
    if xm_ms <= 0 or pareto_alpha <= 0:
        raise ValueError("Pareto parameters must be positive")
    if burst_extra_mean < 0:
        raise ValueError("burst_extra_mean must be non-negative")
    chunks = []
    t = rng.uniform(0.0, min(xm_ms, duration_ms)) if start_ms is None else start_ms
    while t < duration_ms:
        burst_len = (
            1 + rng.poisson(burst_extra_mean) if burst_extra_mean else 1
        )
        acc = np.empty(burst_len + 1, dtype=np.float64)
        acc[0] = t
        acc[1:] = rng.exponential(burst_spacing_ms, size=burst_len)
        acc = acc.cumsum()  # acc[i] = t after i spacings
        emitted = int(np.searchsorted(acc[:burst_len], duration_ms, "left"))
        if emitted:
            chunks.append(acc[:emitted])
        t = acc[emitted] + float(pareto_gaps(rng, 1, xm_ms, pareto_alpha)[0])
    if not chunks:
        return np.asarray([], dtype=np.float64)
    return np.concatenate(chunks)


#: Deterministic traces keyed by (profile type + fields, seed, window).
#: Every figure experiment regenerates the same dozen traces from the
#: same inputs; caching makes the repeats free. Consumers treat returned
#: traces as immutable (nothing in the repo mutates a WriteTrace).
#: The cache is a true LRU (hits refresh recency) with a configurable
#: limit — fleet runs cycle through many per-tenant profiles, so the
#: resident set must be boundable (and growable) per deployment.
_TRACE_CACHE: "OrderedDict[tuple, WriteTrace]" = OrderedDict()
_TRACE_CACHE_LIMIT = 32


def set_trace_cache_limit(limit: int) -> int:
    """Set the trace-cache capacity; returns the previous limit.

    ``0`` disables caching entirely (and clears the cache); shrinking
    below the current population evicts least-recently-used traces.
    """
    global _TRACE_CACHE_LIMIT
    if limit < 0:
        raise ValueError("trace cache limit must be >= 0")
    previous = _TRACE_CACHE_LIMIT
    _TRACE_CACHE_LIMIT = limit
    while len(_TRACE_CACHE) > limit:
        _TRACE_CACHE.popitem(last=False)
    return previous


def trace_cache_info() -> Dict[str, int]:
    """Current size/limit of the trace cache (for status endpoints)."""
    return {"size": len(_TRACE_CACHE), "limit": _TRACE_CACHE_LIMIT}


def clear_trace_cache() -> None:
    _TRACE_CACHE.clear()


def _cache_key(
    profile: WorkloadProfile, seed: int, window: float
) -> Optional[tuple]:
    """Defensive cache key: type + every field + normalized seed/window.

    Including the concrete type guards against two profile classes whose
    fields happen to collide; subclasses and non-dataclass stand-ins
    (whose extra state ``astuple`` would miss) and unhashable field
    values opt out of caching instead of aliasing someone else's trace.
    """
    if type(profile) is not WorkloadProfile:
        return None
    try:
        key = (
            type(profile).__qualname__,
            dataclasses.astuple(profile),
            int(seed),
            float(window),
        )
        hash(key)
    except (TypeError, ValueError):
        return None
    return key


def generate_trace(
    profile: WorkloadProfile,
    seed: int = 0,
    duration_ms: Optional[float] = None,
) -> WriteTrace:
    """Generate the full write trace for one workload profile.

    Results are cached: generation is a pure function of the profile,
    the seed and the window, and the cache key covers all three.
    """
    window = duration_ms if duration_ms is not None else profile.duration_ms
    registry = obs.get_registry()
    key = _cache_key(profile, seed, window) if _TRACE_CACHE_LIMIT else None
    cached = _TRACE_CACHE.get(key) if key is not None else None
    if cached is not None:
        _TRACE_CACHE.move_to_end(key)
        registry.counter("traces.cache_hits").inc()
        return cached
    registry.counter("traces.cache_misses").inc()
    rng = np.random.default_rng((seed << 16) ^ name_seed(profile.name))

    n_written = int(round(profile.n_pages * profile.written_page_fraction))
    n_streaming = int(round(n_written * profile.streaming_page_fraction))
    writes: Dict[int, np.ndarray] = {}
    for page in range(n_written):
        if page < n_streaming:
            # Streaming pages: dense bursts, short idle gaps. These hold
            # almost all the writes (the >95%-within-1-ms mass).
            lo, hi = profile.stream_xm_lo_ms, profile.stream_xm_hi_ms
            burst_extra = profile.burst_length_mean
        else:
            # Regular pages: isolated writebacks separated by long gaps —
            # the single-write-per-quantum episodes PRIL can track.
            lo, hi = profile.regular_xm_lo_ms, profile.regular_xm_hi_ms
            burst_extra = 0.0
        xm = float(np.exp(rng.uniform(np.log(lo), np.log(hi))))
        times = generate_page_writes(
            rng,
            duration_ms=window,
            xm_ms=xm,
            pareto_alpha=profile.pareto_alpha,
            burst_extra_mean=burst_extra,
            burst_spacing_ms=profile.burst_spacing_ms,
        )
        if len(times):
            writes[page] = times
    trace = WriteTrace(
        duration_ms=window,
        writes=writes,
        total_pages=profile.n_pages,
        name=profile.name,
    )
    if key is not None:
        while len(_TRACE_CACHE) >= _TRACE_CACHE_LIMIT:
            _TRACE_CACHE.popitem(last=False)
        _TRACE_CACHE[key] = trace
        registry.gauge("traces.cache_size").set(len(_TRACE_CACHE))
    return trace
