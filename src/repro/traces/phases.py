"""Phase-resolved program content (the paper's checkpointed images).

The paper's Figure 4 methodology generates a memory-content trace for
each benchmark "at every 100 million instructions" and averages failing
rows over the checkpoints: program content drifts as dirty cache blocks
write back, so failure exposure is a moving target. This module models
that drift: a :class:`ContentTrace` is a sequence of snapshots where each
phase rewrites a fraction of the previous image's rows (fresh draws from
the benchmark's mixture) and leaves the rest untouched.

Downstream consumers — the SoftMC tester, the Figure 4 experiment — can
iterate phases exactly the way the paper iterates checkpoints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

import numpy as np

from .content import ContentProfile, name_seed


@dataclass(frozen=True)
class ContentSnapshot:
    """One checkpointed memory image."""

    instructions: int               # cumulative instruction count
    image: Dict[int, bytes]         # row index -> row bytes
    rows_changed: int               # rows rewritten since the last phase


class ContentTrace:
    """A sequence of drifting content snapshots for one benchmark."""

    def __init__(self, snapshots: List[ContentSnapshot]) -> None:
        if not snapshots:
            raise ValueError("need at least one snapshot")
        sizes = {len(s.image) for s in snapshots}
        if len(sizes) != 1:
            raise ValueError("snapshots must cover the same rows")
        self._snapshots = list(snapshots)

    def __len__(self) -> int:
        return len(self._snapshots)

    def __iter__(self) -> Iterator[ContentSnapshot]:
        return iter(self._snapshots)

    def __getitem__(self, index: int) -> ContentSnapshot:
        return self._snapshots[index]

    @property
    def n_rows(self) -> int:
        return len(self._snapshots[0].image)

    def churn_fractions(self) -> List[float]:
        """Per-phase fraction of rows rewritten (first phase is 1.0)."""
        return [s.rows_changed / self.n_rows for s in self._snapshots]


def generate_content_trace(
    profile: ContentProfile,
    n_rows: int,
    row_bytes: int,
    n_phases: int = 5,
    churn_fraction: float = 0.2,
    instructions_per_phase: int = 100_000_000,
    seed: int = 0,
) -> ContentTrace:
    """Generate a drifting content trace.

    The first phase is a full image; each later phase rewrites
    ``churn_fraction`` of the rows with fresh draws from the profile's
    mixture (a writeback-sized slice of the working set), keeping the
    rest byte-identical — so consecutive checkpoints are correlated the
    way real program memory is.
    """
    if n_phases <= 0:
        raise ValueError("n_phases must be positive")
    if not 0.0 <= churn_fraction <= 1.0:
        raise ValueError("churn_fraction must be in [0, 1]")
    if instructions_per_phase <= 0:
        raise ValueError("instructions_per_phase must be positive")
    rng = np.random.default_rng((seed << 12) ^ name_seed(profile.name))

    image = profile.generate_image(n_rows, row_bytes, seed=seed)
    snapshots = [ContentSnapshot(
        instructions=instructions_per_phase,
        image=dict(image),
        rows_changed=n_rows,
    )]
    n_churn = int(round(n_rows * churn_fraction))
    for phase in range(1, n_phases):
        if n_churn:
            rewritten = rng.choice(n_rows, size=n_churn, replace=False)
            fresh = profile.generate_image(
                n_churn, row_bytes, seed=seed + 7919 * phase,
            )
            for slot, row in enumerate(sorted(int(r) for r in rewritten)):
                image[row] = fresh[slot]
        snapshots.append(ContentSnapshot(
            instructions=(phase + 1) * instructions_per_phase,
            image=dict(image),
            rows_changed=n_churn,
        ))
    return ContentTrace(snapshots)
