"""The twelve long-running application profiles (paper Table 1).

Each profile carries the characteristics the paper publishes (runtime,
memory footprint, thread count, application type) plus the generator
parameters that reproduce the write-interval statistics the paper measures
for that application (Figures 7-9, 11-12).

The write population is bimodal, which is what cache-filtered DRAM write
traffic looks like:

* a small set of **streaming pages** (frame/IO buffers) absorbs almost all
  writes in dense sub-millisecond bursts separated by short Pareto gaps —
  these supply the paper's ">95% of writes arrive within 1 ms" mass;
* the bulk of written pages are **regular pages** receiving isolated
  writebacks separated by seconds-to-minutes Pareto gaps — these hold the
  long write intervals whose time dominates execution (Figure 9) and which
  PRIL predicts.

The paper's traces are proprietary Intel captures; these profiles are the
synthetic substitution documented in DESIGN.md. Footprints are expressed
in *pages*, scaled down from the real GB-scale footprints so a full trace
fits comfortably in a Python process; every downstream statistic the paper
uses is a per-page/per-interval property, unaffected by page-count scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .content import ContentProfile
from .spec import BenchmarkProfile


@dataclass(frozen=True)
class WorkloadProfile:
    """One long-running application: published facts + generator knobs."""

    name: str
    app_type: str
    runtime_s: float       # Table 1 "Time (s)"
    mem_gb: float          # Table 1 "Mem (GB)"
    threads: int           # Table 1 "Threads"

    # ----- generator knobs (calibrated, see module docstring) -----
    #: Number of pages in the (scaled) footprint.
    n_pages: int = 2048
    #: Fraction of pages that receive writes at all.
    written_page_fraction: float = 0.40
    #: Fraction of written pages that are streaming (burst) pages.
    streaming_page_fraction: float = 0.12
    #: Pareto tail index of idle gaps (smaller = heavier tail).
    pareto_alpha: float = 0.70
    #: Streaming pages draw their Pareto idle scale xm log-uniformly from
    #: this range (short gaps between bursts), in ms.
    stream_xm_lo_ms: float = 2.0
    stream_xm_hi_ms: float = 64.0
    #: Regular pages draw xm log-uniformly from this range (seconds to
    #: a minute of idleness between isolated writebacks), in ms.
    regular_xm_lo_ms: float = 512.0
    regular_xm_hi_ms: float = 65536.0
    #: Mean extra writes per streaming burst (episode = 1 + Poisson(mean));
    #: regular pages always write exactly once per episode.
    burst_length_mean: float = 25.0
    #: Mean intra-burst write spacing, ms (exponential).
    burst_spacing_ms: float = 0.08

    def __post_init__(self) -> None:
        if self.runtime_s <= 0 or self.mem_gb <= 0 or self.threads <= 0:
            raise ValueError("published workload facts must be positive")
        if self.n_pages <= 0:
            raise ValueError("n_pages must be positive")
        for frac in ("written_page_fraction", "streaming_page_fraction"):
            if not 0.0 <= getattr(self, frac) <= 1.0:
                raise ValueError(f"{frac} must be in [0, 1]")
        if self.pareto_alpha <= 0:
            raise ValueError("pareto_alpha must be positive")
        if not 0 < self.stream_xm_lo_ms <= self.stream_xm_hi_ms:
            raise ValueError("need 0 < stream_xm_lo_ms <= stream_xm_hi_ms")
        if not 0 < self.regular_xm_lo_ms <= self.regular_xm_hi_ms:
            raise ValueError("need 0 < regular_xm_lo_ms <= regular_xm_hi_ms")
        if self.burst_length_mean < 0:
            raise ValueError("burst_length_mean must be non-negative")
        if self.burst_spacing_ms <= 0:
            raise ValueError("burst_spacing_ms must be positive")

    @property
    def duration_ms(self) -> float:
        """Capture window length. Long runs are capped at two minutes of
        trace; the interval statistics are stationary past that point."""
        return min(self.runtime_s, 120.0) * 1000.0


#: Table 1 of the paper, with per-application generator calibration.
WORKLOADS: Dict[str, WorkloadProfile] = {
    profile.name: profile
    for profile in (
        WorkloadProfile("ACBrotherHood", "Game", 209.1, 2.8, 8,
                        pareto_alpha=0.66, streaming_page_fraction=0.18,
                        burst_length_mean=30.0),
        WorkloadProfile("AdobePhotoshop", "Photo editing", 149.2, 3.0, 4,
                        pareto_alpha=0.74),
        WorkloadProfile("AllSysMark", "Media creation", 2064.0, 3.4, 4,
                        pareto_alpha=0.78, written_page_fraction=0.45),
        WorkloadProfile("AVCHD", "Video playback", 217.3, 5.2, 2,
                        pareto_alpha=0.62, burst_length_mean=35.0,
                        streaming_page_fraction=0.10),
        WorkloadProfile("BlurMotion", "Image processing", 93.4, 0.2, 2,
                        pareto_alpha=0.72, n_pages=1024,
                        written_page_fraction=0.45),
        WorkloadProfile("FinalCutPro", "Video editing", 76.9, 3.0, 2,
                        pareto_alpha=0.75, regular_xm_lo_ms=256.0),
        WorkloadProfile("FinalMaster", "Movie display", 248.1, 2.0, 2,
                        pareto_alpha=0.68, written_page_fraction=0.30,
                        streaming_page_fraction=0.08),
        WorkloadProfile("AdobePremiere", "Video editing", 298.8, 5.0, 2,
                        pareto_alpha=0.72, written_page_fraction=0.35),
        WorkloadProfile("MotionPlayBack", "Video processing", 233.9, 5.6, 2,
                        pareto_alpha=0.64, burst_length_mean=40.0),
        WorkloadProfile("Netflix", "Video streaming", 229.4, 4.6, 2,
                        pareto_alpha=0.58, written_page_fraction=0.30,
                        streaming_page_fraction=0.08,
                        burst_length_mean=35.0),
        WorkloadProfile("SystemMgt", "Win 7 managing", 466.2, 7.6, 2,
                        pareto_alpha=0.80, written_page_fraction=0.35,
                        regular_xm_lo_ms=256.0),
        WorkloadProfile("VideoEncode", "Video encoding", 299.1, 7.3, 4,
                        pareto_alpha=0.76, written_page_fraction=0.45,
                        streaming_page_fraction=0.15),
    )
}

#: The three workloads the paper plots individually (Figures 7 and 8).
REPRESENTATIVE_WORKLOADS: Tuple[str, str, str] = (
    "ACBrotherHood", "Netflix", "SystemMgt",
)


def as_benchmark(profile: WorkloadProfile) -> BenchmarkProfile:
    """Express a Table 1 workload as a simulator benchmark profile.

    The write-trace generator knobs describe the workload's memory
    behaviour at page granularity; driving the cycle simulator needs the
    request-stream view (:class:`~repro.traces.spec.BenchmarkProfile`).
    The mapping is a deterministic pure function of the published facts
    and generator calibration, so experiments over the twelve workloads
    stay reproducible:

    * memory intensity grows with footprint and thread count (more
      concurrent working set -> more LLC misses),
    * row-buffer locality grows with the streaming-page share (bursts to
      a buffer page are dense and sequential) and burst length,
    * the write share follows the written-page fraction, and
    * the content mixture leans float-dense for streaming-heavy media
      applications and zero/pointer-heavy for sparse writers — the same
      correspondence the SPEC content profiles encode.
    """
    streaming = profile.streaming_page_fraction
    written = profile.written_page_fraction
    mpki = min(3.0 + 2.8 * profile.mem_gb + 1.1 * profile.threads, 40.0)
    row_hit_rate = min(
        0.40 + 1.6 * streaming + 0.004 * profile.burst_length_mean, 0.90
    )
    write_fraction = min(0.15 + 0.55 * written, 0.60)
    mixture = {
        "floatdata": 0.20 + 1.8 * streaming,
        "intdata": 0.25 * written + 0.10,
        "pointer": 0.12,
        "zero": max(0.45 - written, 0.10),
    }
    total = sum(mixture.values())
    mixture = {kind: share / total for kind, share in mixture.items()}
    return BenchmarkProfile(
        name=profile.name,
        suite="table1",
        content=ContentProfile(name=profile.name, mixture=mixture),
        mpki=mpki,
        row_hit_rate=row_hit_rate,
        write_fraction=write_fraction,
    )


def workload_names() -> List[str]:
    """All twelve application names, in the paper's Table 1 order."""
    return list(WORKLOADS)


def get_workload(name: str) -> WorkloadProfile:
    """Look up a workload profile by its Table 1 name."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; expected one of {workload_names()}"
        ) from None
