"""Trace (de)serialisation.

Write traces are stored as ``.npz`` archives: one array per written page
plus a small metadata record. The format round-trips everything in a
:class:`~repro.traces.events.WriteTrace`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

from .events import WriteTrace

_META_KEY = "__meta__"


def save_trace(trace: WriteTrace, path: Union[str, Path]) -> None:
    """Persist a write trace to an ``.npz`` archive."""
    path = Path(path)
    meta = {
        "duration_ms": trace.duration_ms,
        "total_pages": trace.total_pages,
        "name": trace.name,
    }
    arrays: Dict[str, np.ndarray] = {
        f"page_{page}": times for page, times in trace.writes.items()
    }
    arrays[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)


def load_trace(path: Union[str, Path]) -> WriteTrace:
    """Load a write trace previously written by :func:`save_trace`."""
    path = Path(path)
    with np.load(path) as archive:
        if _META_KEY not in archive:
            raise ValueError(f"{path} is not a saved write trace")
        meta = json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
        writes: Dict[int, np.ndarray] = {}
        for key in archive.files:
            if key == _META_KEY:
                continue
            if not key.startswith("page_"):
                raise ValueError(f"unexpected array {key!r} in {path}")
            writes[int(key[len("page_"):])] = archive[key]
    return WriteTrace(
        duration_ms=float(meta["duration_ms"]),
        writes=writes,
        total_pages=int(meta["total_pages"]),
        name=str(meta["name"]),
    )
