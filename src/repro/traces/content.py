"""Program memory-content generators for retention testing (Figure 4).

The paper dumps the live memory image of each SPEC CPU2006 benchmark into
the test DIMM and measures which rows fail with *that* content. What
matters to the fault model is the bit-level statistics of each row — density
of set bits and their arrangement — because those determine how often a
vulnerable cell is charged with aggressing neighbours.

Real program memory is a mixture of a few characteristic row types; each
generator here produces one type, and a :class:`ContentProfile` mixes them
in per-benchmark proportions:

* ``zero``     — untouched/zeroed pages (near-zero bit density),
* ``text``     — ASCII-like bytes (high bits clear, density ~0.35),
* ``code``     — machine-code-like (structured opcodes, density ~0.4),
* ``intdata``  — small integers in 32/64-bit slots (low bytes dense),
* ``floatdata``— doubles with random mantissas (density ~0.45),
* ``pointer``  — pointer-heavy heap (shared high bytes, random lows),
* ``random``   — high-entropy data (compressed/encrypted; density 0.5).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Tuple

import numpy as np

RowGenerator = Callable[[np.random.Generator, int], np.ndarray]


def name_seed(name: str) -> int:
    """Deterministic 32-bit seed derived from a profile name.

    ``hash(str)`` is salted per interpreter process (PYTHONHASHSEED), so
    seeding from it made every generated image and trace differ between
    runs of the nominally same seed.
    """
    return zlib.crc32(name.encode("utf-8"))


def _zero_row(rng: np.random.Generator, n_bytes: int) -> np.ndarray:
    row = np.zeros(n_bytes, dtype=np.uint8)
    # A sprinkle of metadata words so the page is not literally blank.
    n_words = max(1, n_bytes // 512)
    idx = rng.integers(0, n_bytes, size=n_words)
    row[idx] = rng.integers(1, 256, size=n_words)
    return row


def _text_row(rng: np.random.Generator, n_bytes: int) -> np.ndarray:
    # Printable ASCII: byte values 32..126, high bit always clear.
    return rng.integers(32, 127, size=n_bytes).astype(np.uint8)


def _code_row(rng: np.random.Generator, n_bytes: int) -> np.ndarray:
    # Opcode-like structure: a small dictionary of frequent byte values
    # plus random immediates.
    opcodes = np.array([0x48, 0x89, 0x8B, 0xE8, 0x0F, 0xC3, 0x55, 0x5D],
                       dtype=np.uint8)
    row = opcodes[rng.integers(0, len(opcodes), size=n_bytes)]
    immediates = rng.random(n_bytes) < 0.3
    row[immediates] = rng.integers(0, 256, size=int(immediates.sum()))
    return row


def _int_row(rng: np.random.Generator, n_bytes: int) -> np.ndarray:
    # Little-endian 32-bit ints, mostly small: low bytes dense, high sparse.
    n_words = n_bytes // 4
    values = rng.geometric(1e-4, size=n_words).astype(np.uint32)
    return values.view(np.uint8)[:n_bytes].copy()


def _float_row(rng: np.random.Generator, n_bytes: int) -> np.ndarray:
    n_doubles = n_bytes // 8
    values = rng.normal(0.0, 1e3, size=n_doubles)
    return values.view(np.uint8)[:n_bytes].copy()


def _pointer_row(rng: np.random.Generator, n_bytes: int) -> np.ndarray:
    # 64-bit pointers into a common heap region: fixed high bytes,
    # random low bytes.
    n_ptrs = n_bytes // 8
    base = np.uint64(0x00007F3A00000000)
    offsets = rng.integers(0, 1 << 30, size=n_ptrs, dtype=np.uint64)
    return (base + offsets).view(np.uint8)[:n_bytes].copy()


def _random_row(rng: np.random.Generator, n_bytes: int) -> np.ndarray:
    return rng.integers(0, 256, size=n_bytes, dtype=np.uint8)


ROW_GENERATORS: Dict[str, RowGenerator] = {
    "zero": _zero_row,
    "text": _text_row,
    "code": _code_row,
    "intdata": _int_row,
    "floatdata": _float_row,
    "pointer": _pointer_row,
    "random": _random_row,
}


@dataclass(frozen=True)
class ContentProfile:
    """A benchmark's memory image as a mixture of row types.

    ``mixture`` maps row-type names to weights; weights are normalised.
    """

    name: str
    mixture: Mapping[str, float]

    def __post_init__(self) -> None:
        if not self.mixture:
            raise ValueError("mixture must not be empty")
        unknown = set(self.mixture) - set(ROW_GENERATORS)
        if unknown:
            raise ValueError(f"unknown row types: {sorted(unknown)}")
        if any(w < 0 for w in self.mixture.values()):
            raise ValueError("mixture weights must be non-negative")
        if sum(self.mixture.values()) <= 0:
            raise ValueError("mixture weights must sum to a positive value")

    def generate_image(
        self,
        n_rows: int,
        row_bytes: int,
        seed: int = 0,
    ) -> Dict[int, bytes]:
        """Generate ``n_rows`` rows of content, keyed by row index."""
        if n_rows <= 0 or row_bytes <= 0:
            raise ValueError("n_rows and row_bytes must be positive")
        rng = np.random.default_rng((seed << 8) ^ name_seed(self.name))
        names = list(self.mixture)
        weights = np.array([self.mixture[n] for n in names], dtype=np.float64)
        weights = weights / weights.sum()
        choices = rng.choice(len(names), size=n_rows, p=weights)
        image: Dict[int, bytes] = {}
        for row in range(n_rows):
            generator = ROW_GENERATORS[names[choices[row]]]
            image[row] = generator(rng, row_bytes).tobytes()
        return image


def bit_density(image: Dict[int, bytes]) -> float:
    """Mean fraction of set bits across an image (calibration aid)."""
    if not image:
        raise ValueError("image must not be empty")
    total_bits = 0
    set_bits = 0
    for data in image.values():
        arr = np.frombuffer(data, dtype=np.uint8)
        set_bits += int(np.unpackbits(arr).sum())
        total_bits += len(arr) * 8
    return set_bits / total_bits
