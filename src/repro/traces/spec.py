"""SPEC CPU2006 / TPC benchmark registry.

Two independent roles, matching the paper's two uses of these workloads:

* **Content profiles** (Figure 4): what a benchmark's memory image looks
  like bit-wise, as a mixture of the row types in
  :mod:`repro.traces.content`. Benchmarks with mostly zeroed/sparse images
  (e.g. perlbench) trigger few data-dependent failures; dense float/random
  images (e.g. lbm, GemsFDTD) trigger the most.

* **Performance profiles** (Figures 15-16, Table 3): how memory-intensive
  the benchmark is when driving the cycle simulator — misses per
  kilo-instruction, row-buffer locality, read/write mix. Values follow the
  well-known characterisation of SPEC CPU2006 memory behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .content import ContentProfile


@dataclass(frozen=True)
class BenchmarkProfile:
    """One benchmark: content statistics plus memory intensity."""

    name: str
    suite: str                # "spec" or "tpc"
    content: ContentProfile
    mpki: float               # last-level-cache misses per kilo-instruction
    row_hit_rate: float       # row-buffer locality of its DRAM stream
    write_fraction: float     # fraction of DRAM requests that are writes

    def __post_init__(self) -> None:
        if self.mpki < 0:
            raise ValueError("mpki must be non-negative")
        if not 0.0 <= self.row_hit_rate <= 1.0:
            raise ValueError("row_hit_rate must be in [0, 1]")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")


def _bench(
    name: str,
    mixture: Dict[str, float],
    mpki: float,
    row_hit_rate: float = 0.6,
    write_fraction: float = 0.3,
    suite: str = "spec",
) -> BenchmarkProfile:
    return BenchmarkProfile(
        name=name,
        suite=suite,
        content=ContentProfile(name=name, mixture=mixture),
        mpki=mpki,
        row_hit_rate=row_hit_rate,
        write_fraction=write_fraction,
    )


#: The 20 SPEC CPU2006 benchmarks of the paper's Figure 4, in plot order,
#: plus TPC-C/TPC-H server workloads used in the performance studies.
BENCHMARKS: Dict[str, BenchmarkProfile] = {
    bench.name: bench
    for bench in (
        _bench("perlbench", {"zero": 0.90, "text": 0.06, "intdata": 0.04},
               mpki=1.1, row_hit_rate=0.75),
        _bench("bzip2", {"zero": 0.30, "random": 0.40, "intdata": 0.25,
                         "text": 0.05}, mpki=3.9, row_hit_rate=0.55),
        _bench("mcf", {"pointer": 0.55, "intdata": 0.35, "zero": 0.10},
               mpki=67.8, row_hit_rate=0.35, write_fraction=0.25),
        _bench("gcc", {"text": 0.25, "pointer": 0.30, "code": 0.25,
                       "zero": 0.20}, mpki=8.2, row_hit_rate=0.5),
        _bench("zeusmp", {"floatdata": 0.65, "zero": 0.25, "intdata": 0.10},
               mpki=9.5, row_hit_rate=0.7),
        _bench("cactusADM", {"floatdata": 0.70, "zero": 0.20,
                             "intdata": 0.10}, mpki=7.9, row_hit_rate=0.7),
        _bench("gobmk", {"zero": 0.72, "intdata": 0.18, "pointer": 0.10},
               mpki=1.5, row_hit_rate=0.65),
        _bench("namd", {"floatdata": 0.60, "zero": 0.30, "intdata": 0.10},
               mpki=1.2, row_hit_rate=0.75),
        _bench("soplex", {"floatdata": 0.55, "pointer": 0.20, "zero": 0.15,
                          "intdata": 0.10}, mpki=32.5, row_hit_rate=0.55),
        _bench("dealII", {"floatdata": 0.45, "pointer": 0.30, "zero": 0.20,
                          "intdata": 0.05}, mpki=2.1, row_hit_rate=0.7),
        _bench("calculix", {"floatdata": 0.30, "zero": 0.60,
                            "intdata": 0.10}, mpki=1.4, row_hit_rate=0.75),
        _bench("hmmer", {"intdata": 0.55, "zero": 0.30, "text": 0.15},
               mpki=2.6, row_hit_rate=0.8),
        _bench("libquantum", {"floatdata": 0.75, "zero": 0.15,
                              "intdata": 0.10}, mpki=25.4, row_hit_rate=0.9,
               write_fraction=0.25),
        _bench("GemsFDTD", {"floatdata": 0.85, "code": 0.05,
                            "intdata": 0.10}, mpki=22.1, row_hit_rate=0.65),
        _bench("h264ref", {"intdata": 0.40, "random": 0.30, "zero": 0.20,
                           "text": 0.10}, mpki=2.3, row_hit_rate=0.7),
        _bench("tonto", {"floatdata": 0.55, "zero": 0.35, "intdata": 0.10},
               mpki=1.0, row_hit_rate=0.75),
        _bench("omnetpp", {"pointer": 0.60, "intdata": 0.20, "zero": 0.15,
                           "text": 0.05}, mpki=21.5, row_hit_rate=0.3,
               write_fraction=0.35),
        _bench("lbm", {"floatdata": 0.85, "code": 0.10, "intdata": 0.05},
               mpki=31.9, row_hit_rate=0.85, write_fraction=0.45),
        _bench("xalancbmk", {"pointer": 0.45, "text": 0.35, "zero": 0.15,
                             "intdata": 0.05}, mpki=23.9, row_hit_rate=0.4),
        _bench("astar", {"pointer": 0.45, "intdata": 0.35, "zero": 0.20},
               mpki=9.1, row_hit_rate=0.45),
        # Server workloads (paper §5 uses TPC-C and TPC-H for the
        # multiprogrammed performance studies).
        _bench("tpcc", {"intdata": 0.35, "text": 0.30, "pointer": 0.25,
                        "zero": 0.10}, mpki=18.7, row_hit_rate=0.4,
               write_fraction=0.4, suite="tpc"),
        _bench("tpch", {"intdata": 0.40, "text": 0.25, "pointer": 0.20,
                        "floatdata": 0.15}, mpki=14.2, row_hit_rate=0.5,
               write_fraction=0.3, suite="tpc"),
    )
}

#: Figure 4 plots exactly these 20 SPEC benchmarks, in this order.
FIGURE4_BENCHMARKS: Tuple[str, ...] = (
    "perlbench", "bzip2", "mcf", "gcc", "zeusmp", "cactusADM", "gobmk",
    "namd", "soplex", "dealII", "calculix", "hmmer", "libquantum",
    "GemsFDTD", "h264ref", "tonto", "omnetpp", "lbm", "xalancbmk", "astar",
)


def benchmark_names(suite: str = "") -> List[str]:
    """Benchmark names, optionally filtered by suite ("spec" / "tpc")."""
    return [
        name for name, bench in BENCHMARKS.items()
        if not suite or bench.suite == suite
    ]


def get_benchmark(name: str) -> BenchmarkProfile:
    """Look up a benchmark by name."""
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; expected one of {list(BENCHMARKS)}"
        ) from None
