"""Write-trace containers.

A :class:`WriteTrace` is the product of the (simulated) HMTT bus tracer:
for every page, the timestamps (in milliseconds) of the write requests that
reached DRAM, over a fixed capture window. Reads are not recorded — they do
not change memory content, so MEMCON never reacts to them (paper §3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

import numpy as np


@dataclass
class WriteTrace:
    """Per-page write timestamps over a capture window.

    Parameters
    ----------
    duration_ms:
        Length of the capture window; all timestamps lie in [0, duration).
    writes:
        Mapping from page id to a sorted float array of write times (ms).
        Pages with no writes may be present with an empty array or simply
        absent; ``total_pages`` covers both.
    total_pages:
        Total footprint in pages, including pages never written (those are
        the read-only pages MEMCON moves to LO-REF after a single test).
    name:
        Workload name, for reporting.
    """

    duration_ms: float
    writes: Dict[int, np.ndarray]
    total_pages: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.duration_ms <= 0:
            raise ValueError("duration_ms must be positive")
        if self.total_pages <= 0:
            raise ValueError("total_pages must be positive")
        for page, times in self.writes.items():
            arr = np.asarray(times, dtype=np.float64)
            if arr.ndim != 1:
                raise ValueError(f"page {page}: timestamps must be 1-D")
            if len(arr) and (arr[0] < 0 or arr[-1] >= self.duration_ms):
                raise ValueError(f"page {page}: timestamps outside window")
            if np.any(np.diff(arr) < 0):
                raise ValueError(f"page {page}: timestamps not sorted")
            self.writes[page] = arr
        if len(self.writes) > self.total_pages:
            raise ValueError("more written pages than total_pages")

    # ------------------------------------------------------------------
    @property
    def written_pages(self) -> List[int]:
        """Pages with at least one write, sorted."""
        return sorted(p for p, t in self.writes.items() if len(t))

    @property
    def n_writes(self) -> int:
        return sum(len(t) for t in self.writes.values())

    @property
    def read_only_pages(self) -> int:
        """Number of pages in the footprint that never receive a write."""
        return self.total_pages - len(self.written_pages)

    # ------------------------------------------------------------------
    def page_intervals(
        self, page: int, include_trailing: bool = False
    ) -> np.ndarray:
        """Write intervals of one page (gaps between consecutive writes).

        With ``include_trailing`` the right-censored gap from the last write
        to the end of the capture window is appended — needed when
        accounting for *time* spent in intervals, since the trailing idle
        period is real LO-REF opportunity.
        """
        times = self.writes.get(page)
        if times is None or len(times) == 0:
            return np.empty(0, dtype=np.float64)
        intervals = np.diff(times)
        if include_trailing:
            trailing = self.duration_ms - times[-1]
            intervals = np.append(intervals, trailing)
        return intervals

    def all_intervals(self, include_trailing: bool = False) -> np.ndarray:
        """Write intervals pooled over every written page."""
        parts = [
            self.page_intervals(page, include_trailing)
            for page in self.writes
        ]
        parts = [p for p in parts if len(p)]
        if not parts:
            return np.empty(0, dtype=np.float64)
        return np.concatenate(parts)

    # ------------------------------------------------------------------
    def scaled_intervals(self, factor: float) -> "WriteTrace":
        """A trace with every write interval multiplied by ``factor``.

        Used for the paper's cache-size sensitivity study (Figure 19, where
        intervals are halved). Each page's first write time is kept; later
        writes are re-spaced, and writes pushed past the window are dropped.
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        scaled: Dict[int, np.ndarray] = {}
        for page, times in self.writes.items():
            if len(times) == 0:
                scaled[page] = times.copy()
                continue
            new_times = times[0] + np.concatenate(
                ([0.0], np.cumsum(np.diff(times) * factor))
            )
            scaled[page] = new_times[new_times < self.duration_ms]
        return WriteTrace(
            duration_ms=self.duration_ms,
            writes=scaled,
            total_pages=self.total_pages,
            name=f"{self.name}(x{factor:g})" if self.name else "",
        )

    def merged_events(self) -> Iterator[Tuple[float, int]]:
        """All (time, page) write events in global time order."""
        pairs: List[Tuple[float, int]] = []
        for page, times in self.writes.items():
            pairs.extend((float(t), page) for t in times)
        return iter(sorted(pairs))
