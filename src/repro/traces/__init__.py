"""Workload traces: write-interval generation, content images, registries."""

from .content import ContentProfile, ROW_GENERATORS, bit_density
from .events import WriteTrace
from .generator import generate_page_writes, generate_trace, pareto_gaps
from .io import load_trace, save_trace
from .phases import ContentSnapshot, ContentTrace, generate_content_trace
from .spec import (
    BENCHMARKS,
    BenchmarkProfile,
    FIGURE4_BENCHMARKS,
    benchmark_names,
    get_benchmark,
)
from .workloads import (
    REPRESENTATIVE_WORKLOADS,
    WORKLOADS,
    WorkloadProfile,
    get_workload,
    workload_names,
)

__all__ = [
    "BENCHMARKS",
    "BenchmarkProfile",
    "ContentProfile",
    "ContentSnapshot",
    "ContentTrace",
    "generate_content_trace",
    "FIGURE4_BENCHMARKS",
    "REPRESENTATIVE_WORKLOADS",
    "ROW_GENERATORS",
    "WORKLOADS",
    "WorkloadProfile",
    "WriteTrace",
    "benchmark_names",
    "bit_density",
    "generate_page_writes",
    "generate_trace",
    "get_benchmark",
    "get_workload",
    "load_trace",
    "pareto_gaps",
    "save_trace",
    "workload_names",
]
