"""Workload traces: write-interval generation, content images, registries."""

from .content import ContentProfile, ROW_GENERATORS, bit_density
from .events import WriteTrace
from .generator import (
    clear_trace_cache,
    generate_page_writes,
    generate_trace,
    pareto_gaps,
    set_trace_cache_limit,
    trace_cache_info,
)
from .io import load_trace, save_trace
from .phases import ContentSnapshot, ContentTrace, generate_content_trace
from .spec import (
    BENCHMARKS,
    BenchmarkProfile,
    FIGURE4_BENCHMARKS,
    benchmark_names,
    get_benchmark,
)
from .workloads import (
    REPRESENTATIVE_WORKLOADS,
    WORKLOADS,
    WorkloadProfile,
    get_workload,
    workload_names,
)

__all__ = [
    "BENCHMARKS",
    "BenchmarkProfile",
    "ContentProfile",
    "ContentSnapshot",
    "ContentTrace",
    "generate_content_trace",
    "FIGURE4_BENCHMARKS",
    "REPRESENTATIVE_WORKLOADS",
    "ROW_GENERATORS",
    "WORKLOADS",
    "WorkloadProfile",
    "WriteTrace",
    "benchmark_names",
    "bit_density",
    "clear_trace_cache",
    "generate_page_writes",
    "generate_trace",
    "set_trace_cache_limit",
    "trace_cache_info",
    "get_benchmark",
    "get_workload",
    "load_trace",
    "pareto_gaps",
    "save_trace",
    "workload_names",
]
