"""Cross-run regression gate: diff two manifests or two BENCH files.

Usage::

    python -m repro.obs.compare OLD.manifest.json NEW.manifest.json
    python -m repro.obs.compare BENCH_before.json BENCH_obs.json --threshold 0.30
    python -m repro.obs.compare OLD NEW --strict            # also fail on vanished metrics
    python -m repro.obs.compare OLD NEW --warn-only         # report, always exit 0 (CI runners)

Both inputs may be run manifests (written by the experiment runner) or
``BENCH_*.json`` perf-trajectory files (written by the benchmark
suite's ``record_bench`` fixture); the format is auto-detected per
file. Every numeric metric is extracted, classified by *direction*
(whether an increase is good, bad, or merely informational — inferred
from the metric name), and compared under a per-metric noise
threshold:

* explicit ``--metric-threshold NAME=FRACTION`` overrides win,
* wall-clock metrics (names ending in ``_s``) default to at least
  ``WALL_CLOCK_THRESHOLD`` (30%) because timings are noisy,
* everything else uses ``--threshold`` (default 10%).

Exit status: 0 when no tracked metric regressed beyond its threshold
(or ``--warn-only``), 1 on regression (or, with ``--strict``, when a
previously tracked metric disappeared), 2 on unreadable inputs.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional

from .manifest import MANIFEST_SCHEMA_VERSION

__all__ = [
    "DEFAULT_THRESHOLD",
    "WALL_CLOCK_THRESHOLD",
    "ComparisonResult",
    "MetricDelta",
    "classify_direction",
    "compare_files",
    "compare_metrics",
    "extract_metrics",
    "main",
]

DEFAULT_THRESHOLD = 0.10
#: Noise floor for wall-clock metrics (CI runners vary wildly).
WALL_CLOCK_THRESHOLD = 0.30

#: Name fragments implying "bigger is better" (checked first).
#: ("attributed" is the profiler's span-attribution fraction — it must
#: win over the generic "fraction" lower-is-better token below.)
_HIGHER_TOKENS = ("speedup", "reduction", "hit_rate", "coverage", "ipc",
                  "attributed", "hosts_done", "bandwidth")
#: Name fragments / suffixes implying "smaller is better".
#: ("flip"/"pressure" cover the read-disturbance metrics: more hammer
#: flips or victim pressure is a reliability regression; "rss" covers
#: the bus/profiler memory high-water marks; "backlog"/"resident" cover
#: the fleet service's ingest queue and row-residency budgets.)
#: ("warmup" covers the kernels backend's one-time JIT cost —
#: kernels.warmup_s — so a compile-time swing is never read as a
#: simulation regression.)
_LOWER_TOKENS = ("overhead", "latency", "fraction", "flip", "pressure",
                 "rss", "backlog", "resident", "hosts_failed", "warmup")
_LOWER_SUFFIXES = ("_s", "_ns", "_ms")
#: Fragments whose metrics are as noisy as wall clock (allocator and
#: page-cache behavior swing RSS across runs the same way CI runners
#: swing timings; JIT warm-up swings with compiler cache state).
_NOISY_TOKENS = ("rss", "warmup")


def classify_direction(name: str) -> Optional[str]:
    """``'higher'`` / ``'lower'`` = which way is *better*; None = info only."""
    base = name.rsplit(".", 1)[-1].lower()
    for token in _HIGHER_TOKENS:
        if token in base:
            return "higher"
    for token in _LOWER_TOKENS:
        if token in base:
            return "lower"
    if base.endswith(_LOWER_SUFFIXES):
        return "lower"
    return None


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _is_manifest(data: Mapping) -> bool:
    return (
        isinstance(data, Mapping)
        and data.get("schema") == MANIFEST_SCHEMA_VERSION
        and "experiments" in data
    )


def _warn(warnings: Optional[List[str]], message: str) -> None:
    if warnings is not None:
        warnings.append(message)


def _mapping_of(
    container: Mapping, key: str, warnings: Optional[List[str]]
) -> Mapping:
    """Tolerantly read a sub-mapping: absent or malformed -> no data.

    A manifest produced by an older run (or hand-edited) may miss whole
    sections or hold junk in them; the gate must degrade to "nothing to
    compare there", not crash, so the *other* sections still gate.
    """
    value = container.get(key)
    if value is None:
        return {}
    if not isinstance(value, Mapping):
        _warn(warnings, f"section {key!r}: expected a mapping, got "
                        f"{type(value).__name__}; treating as no data")
        return {}
    return value


def _list_of(
    container: Mapping, key: str, warnings: Optional[List[str]]
) -> List[Mapping]:
    """Tolerantly read a list-of-mappings section (see _mapping_of)."""
    value = container.get(key)
    if value is None:
        return []
    if isinstance(value, (str, bytes)) or not isinstance(value, Iterable):
        _warn(warnings, f"section {key!r}: expected a list, got "
                        f"{type(value).__name__}; treating as no data")
        return []
    out: List[Mapping] = []
    for i, entry in enumerate(value):
        if isinstance(entry, Mapping):
            out.append(entry)
        else:
            _warn(warnings, f"section {key!r}[{i}]: expected a mapping, "
                            f"got {type(entry).__name__}; skipping")
    return out


def extract_metrics(
    data: Mapping, warnings: Optional[List[str]] = None
) -> Dict[str, float]:
    """Flatten a manifest or BENCH-style file into ``name -> value``.

    Missing or malformed manifest sections contribute no metrics; when
    ``warnings`` is given, malformed ones append a note to it instead
    of raising.
    """
    if _is_manifest(data):
        return _metrics_of_manifest(data, warnings)
    return _metrics_of_bench(data)


def _metrics_of_manifest(
    data: Mapping, warnings: Optional[List[str]] = None
) -> Dict[str, float]:
    metrics: Dict[str, float] = {}
    if _is_number(data.get("wall_s")):
        metrics["wall_s"] = float(data["wall_s"])
    for timing in _list_of(data, "timings", warnings):
        if _is_number(timing.get("wall_s")) and timing.get("name"):
            metrics[f"timing.{timing['name']}_s"] = float(timing["wall_s"])
    snapshot = _mapping_of(data, "metrics", warnings)
    for name, value in _mapping_of(snapshot, "counters", warnings).items():
        if _is_number(value):
            metrics[f"counter.{name}"] = float(value)
    for name, value in _mapping_of(snapshot, "gauges", warnings).items():
        if _is_number(value):
            metrics[f"gauge.{name}"] = float(value)
    profile = _mapping_of(data, "profile", warnings)
    for field_name in ("sample_count", "attributed_fraction",
                       "rss_peak_bytes", "wall_s"):
        if _is_number(profile.get(field_name)):
            metrics[f"profile.{field_name}"] = float(profile[field_name])
    timeseries = _mapping_of(data, "timeseries", warnings)
    if _is_number(timeseries.get("events_total")):
        metrics["timeseries.events_total"] = float(
            timeseries["events_total"]
        )
    forensics = _mapping_of(data, "forensics", warnings)
    for field_name in ("records", "rows"):
        if _is_number(forensics.get(field_name)):
            metrics[f"forensics.{field_name}"] = float(forensics[field_name])
    _fleet_metrics(data, metrics, warnings)
    workers = _mapping_of(data, "workers", warnings)
    telemetry = _mapping_of(workers, "telemetry", warnings)
    rss_peaks = [
        worker["rss_peak_bytes"]
        for worker in _list_of(telemetry, "workers", warnings)
        if _is_number(worker.get("rss_peak_bytes"))
    ]
    if rss_peaks:
        metrics["workers.rss_peak_bytes"] = float(max(rss_peaks))
    return metrics


def _fleet_metrics(
    data: Mapping,
    metrics: Dict[str, float],
    warnings: Optional[List[str]],
) -> None:
    """Flatten the fleet service's manifest section (fleet/aggregator.py).

    Manifests written before the fleet service existed simply have no
    ``"fleet"`` key; every read here is warn-only so old-vs-new
    comparisons keep gating the sections both sides share.
    """
    fleet = _mapping_of(data, "fleet", warnings)
    if not fleet:
        return
    hosts = _mapping_of(fleet, "hosts", warnings)
    if _is_number(hosts.get("done")):
        metrics["fleet.hosts_done"] = float(hosts["done"])
    if _is_number(hosts.get("failed")):
        metrics["fleet.hosts_failed"] = float(hosts["failed"])
    coverage = _mapping_of(fleet, "coverage", warnings)
    if _is_number(coverage.get("mean")):
        metrics["fleet.coverage_mean"] = float(coverage["mean"])
    if _is_number(fleet.get("pril_hit_rate")):
        metrics["fleet.pril_hit_rate"] = float(fleet["pril_hit_rate"])
    tests = _mapping_of(fleet, "tests", warnings)
    if _is_number(tests.get("bandwidth_per_s")):
        metrics["fleet.test_bandwidth_per_s"] = float(
            tests["bandwidth_per_s"])
    wall = _mapping_of(fleet, "wall", warnings)
    for field_name in ("p50_s", "p95_s", "p99_s"):
        if _is_number(wall.get(field_name)):
            metrics[f"fleet.wall_{field_name}"] = float(wall[field_name])
    ingest = _mapping_of(fleet, "ingest", warnings)
    if _is_number(ingest.get("records")):
        metrics["fleet.ingest_records"] = float(ingest["records"])
    if _is_number(ingest.get("backlog_peak")):
        metrics["fleet.ingest_backlog_peak"] = float(ingest["backlog_peak"])
    resident = _mapping_of(fleet, "resident_rows", warnings)
    if _is_number(resident.get("peak")):
        metrics["fleet.resident_rows_peak"] = float(resident["peak"])
    for tenant_id, fold in sorted(
        _mapping_of(fleet, "tenants", warnings).items()
    ):
        if not isinstance(fold, Mapping):
            _warn(warnings, f"fleet.tenants[{tenant_id!r}]: expected a "
                            f"mapping, got {type(fold).__name__}; skipping")
            continue
        t_coverage = _mapping_of(fold, "coverage", warnings)
        if _is_number(t_coverage.get("mean")):
            metrics[f"fleet.tenant.{tenant_id}.coverage_mean"] = float(
                t_coverage["mean"])
        if _is_number(fold.get("pril_hit_rate")):
            metrics[f"fleet.tenant.{tenant_id}.pril_hit_rate"] = float(
                fold["pril_hit_rate"])


def _metrics_of_bench(data: Mapping) -> Dict[str, float]:
    metrics: Dict[str, float] = {}
    for entry_name, entry in data.items():
        if not isinstance(entry, Mapping):
            continue
        for field_name, value in entry.items():
            if field_name in ("recorded_at", "history"):
                continue
            if _is_number(value):
                metrics[f"{entry_name}.{field_name}"] = float(value)
    return metrics


@dataclass
class MetricDelta:
    """One metric's movement between two runs."""

    name: str
    old: Optional[float]
    new: Optional[float]
    direction: Optional[str]
    threshold: float
    rel_change: Optional[float]  # (new - old) / |old|; None when undefined
    verdict: str  # ok | regression | improvement | info | missing | added


@dataclass
class ComparisonResult:
    """All deltas plus the gate verdict."""

    deltas: List[MetricDelta] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.verdict == "regression"]

    @property
    def missing(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.verdict == "missing"]

    def ok(self, strict: bool = False) -> bool:
        if self.regressions:
            return False
        if strict and self.missing:
            return False
        return True


def _resolve_threshold(
    name: str, threshold: float, overrides: Optional[Mapping[str, float]]
) -> float:
    if overrides and name in overrides:
        return overrides[name]
    base = name.rsplit(".", 1)[-1].lower()
    if base.endswith("_s"):
        return max(threshold, WALL_CLOCK_THRESHOLD)
    if any(token in base for token in _NOISY_TOKENS):
        return max(threshold, WALL_CLOCK_THRESHOLD)
    return threshold


def compare_metrics(
    old: Mapping[str, float],
    new: Mapping[str, float],
    threshold: float = DEFAULT_THRESHOLD,
    overrides: Optional[Mapping[str, float]] = None,
) -> ComparisonResult:
    """Compare two flat metric maps under per-metric noise thresholds."""
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    result = ComparisonResult()
    for name in sorted(set(old) | set(new)):
        direction = classify_direction(name)
        limit = _resolve_threshold(name, threshold, overrides)
        if name not in new:
            result.deltas.append(MetricDelta(
                name, old[name], None, direction, limit, None, "missing"))
            continue
        if name not in old:
            result.deltas.append(MetricDelta(
                name, None, new[name], direction, limit, None, "added"))
            continue
        old_value, new_value = old[name], new[name]
        if old_value == new_value:
            rel = 0.0
        elif old_value == 0.0:
            rel = math.inf if new_value > 0 else -math.inf
        else:
            rel = (new_value - old_value) / abs(old_value)
        if direction is None:
            verdict = "info"
        else:
            worse = rel > limit if direction == "lower" else rel < -limit
            better = rel < -limit if direction == "lower" else rel > limit
            verdict = (
                "regression" if worse else "improvement" if better else "ok"
            )
        result.deltas.append(MetricDelta(
            name, old_value, new_value, direction, limit, rel, verdict))
    return result


def _load_metrics_file(path: str, warnings: List[str]) -> Mapping:
    """Load a metrics JSON file; kernels bench files may be absent."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except FileNotFoundError:
        if "kernels" in os.path.basename(path).lower():
            warnings.append(
                "missing file treated as no-data (kernels benchmarks "
                "record entries only under the numba backend)"
            )
            return {}
        raise


def compare_files(
    old_path: str,
    new_path: str,
    threshold: float = DEFAULT_THRESHOLD,
    overrides: Optional[Mapping[str, float]] = None,
    warnings: Optional[List[str]] = None,
) -> ComparisonResult:
    """Load, auto-detect, flatten and compare two metric files.

    A *missing* kernels benchmark file (basename contains "kernels",
    e.g. BENCH_kernels.json) is treated as warn-only no-data — the file
    only accumulates entries where the numba backend runs, so its
    absence on a python-backend machine is expected, not a regression.
    """
    old_warnings: List[str] = []
    new_warnings: List[str] = []
    old_data = _load_metrics_file(old_path, old_warnings)
    new_data = _load_metrics_file(new_path, new_warnings)
    result = compare_metrics(
        extract_metrics(old_data, old_warnings),
        extract_metrics(new_data, new_warnings),
        threshold=threshold, overrides=overrides,
    )
    if warnings is not None:
        warnings.extend(f"{old_path}: {w}" for w in old_warnings)
        warnings.extend(f"{new_path}: {w}" for w in new_warnings)
    return result


# ----------------------------------------------------------------------
def _format_value(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def _format_change(rel: Optional[float]) -> str:
    if rel is None:
        return "-"
    if math.isinf(rel):
        return "+inf%" if rel > 0 else "-inf%"
    return f"{rel:+.1%}"


def render_comparison(result: ComparisonResult, verbose: bool = False) -> str:
    """Human-readable diff; quiet metrics are elided unless ``verbose``."""
    interesting = {"regression", "improvement", "missing", "added"}
    lines: List[str] = []
    shown = 0
    for delta in result.deltas:
        if not verbose and delta.verdict not in interesting:
            continue
        shown += 1
        lines.append(
            f"{delta.verdict.upper():<11} {delta.name}: "
            f"{_format_value(delta.old)} -> {_format_value(delta.new)} "
            f"({_format_change(delta.rel_change)}, "
            f"threshold {delta.threshold:.0%}"
            + (f", {delta.direction} is better)" if delta.direction else ")")
        )
    counted = len(result.deltas)
    regressions = len(result.regressions)
    summary = (
        f"{counted} metrics compared, {regressions} regression(s), "
        f"{len(result.missing)} missing"
    )
    if not shown:
        lines.append("(no metric moved beyond its threshold)")
    lines.append(summary)
    return "\n".join(lines)


def _parse_override(spec: str) -> tuple:
    name, _, value = spec.partition("=")
    if not name or not value:
        raise argparse.ArgumentTypeError(
            f"expected NAME=FRACTION, got {spec!r}")
    try:
        fraction = float(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"threshold in {spec!r} is not a number") from exc
    if fraction < 0:
        raise argparse.ArgumentTypeError("threshold must be non-negative")
    return name, fraction


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.compare",
        description="Diff two run manifests or BENCH_*.json files and "
        "gate on perf regressions.",
    )
    parser.add_argument("old", help="baseline manifest or BENCH json")
    parser.add_argument("new", help="candidate manifest or BENCH json")
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="global relative noise threshold (default %(default)s)",
    )
    parser.add_argument(
        "--metric-threshold", action="append", type=_parse_override,
        default=[], metavar="NAME=FRACTION",
        help="per-metric threshold override (repeatable)",
    )
    parser.add_argument(
        "--warn-only", action="store_true",
        help="report regressions but always exit 0 (noisy CI runners)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="also fail when a previously tracked metric disappeared",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="print every compared metric, not just the movers",
    )
    args = parser.parse_args(argv)

    warnings: List[str] = []
    try:
        result = compare_files(
            args.old, args.new,
            threshold=args.threshold,
            overrides=dict(args.metric_threshold),
            warnings=warnings,
        )
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    for warning in warnings:
        print(f"warning: {warning}", file=sys.stderr)
    print(render_comparison(result, verbose=args.verbose))
    if result.ok(strict=args.strict):
        return 0
    if args.warn_only:
        print("warning: regression detected (exit suppressed by --warn-only)",
              file=sys.stderr)
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
