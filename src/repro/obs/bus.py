"""Cross-process telemetry bus: live worker health for sharded runs.

A sharded run (:mod:`repro.parallel`) is observable only *after* the
fact — worker trace shards and metric snapshots are merged once the pool
drains. This module makes the run itself a measured object while it is
still running:

* :class:`BusPublisher` lives in the worker process. It is built from a
  plain ``multiprocessing.Queue`` handed through the pool initializer and
  publishes small dict messages — per-unit heartbeats (unit id,
  experiment, progress, RSS) and periodic counter deltas — with
  ``put_nowait``: the bus **never blocks or fails a worker**; on a full
  queue the message is dropped and counted.
* :class:`TelemetryBus` lives in the parent. :meth:`TelemetryBus.drain`
  pumps the queue without blocking and folds heartbeats into a
  fleet-style :class:`WorkerTable` — one row per worker with state
  (``running``/``idle``/``stalled``/``lost``), current unit, units done,
  RSS peak and a bounded per-unit timeline for the dashboard. Drained
  messages can additionally be forwarded to a sink (the live
  :class:`~repro.obs.analytics.AggregatingSink`), so the live view has
  data even though worker trace events go to per-worker shard files.
* **Stall detection**: :meth:`WorkerTable.scan` marks a worker
  ``stalled`` when its open unit has gone ``stall_after_s`` without a
  heartbeat; the next heartbeat recovers it. A worker that dies is
  marked ``lost`` by the executor's crash handling.

Messages carry the *worker's* wall clock (``t``) for the dashboard
timeline and are stamped with the *parent's* monotonic clock on arrival
for stall detection, so clock skew between processes never produces
phantom stalls.

The bus is telemetry only: nothing it carries feeds result tables, the
merged trace, or the recomputed time-series rollups, so result
byte-identity across ``--jobs N`` is untouched.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional

__all__ = [
    "BusPublisher",
    "TelemetryBus",
    "WorkerTable",
    "rss_bytes",
]

#: Per-worker timeline entries kept for the dashboard (oldest dropped).
TIMELINE_LIMIT = 512
#: Parent-side lifecycle events kept (retry/timeout/degrade/worker_lost).
EVENT_LIMIT = 256


def rss_bytes() -> Optional[int]:
    """Current resident-set size of this process, best effort.

    Reads ``/proc/self/statm`` where available (Linux), falls back to
    ``resource.getrusage`` peak RSS, and returns ``None`` on platforms
    offering neither — telemetry must never raise.
    """
    try:
        with open("/proc/self/statm", "rb") as handle:
            pages = int(handle.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports KiB, macOS bytes; either way it is a usable scale.
        return peak * 1024 if peak < 1 << 34 else peak
    except Exception:
        return None


class BusPublisher:
    """Worker-side handle: fire-and-forget telemetry onto the queue.

    Holds only the queue and the worker's label, so it is cheap to build
    inside the pool initializer. ``heartbeat`` also computes the counter
    delta of the worker's metrics registry since the previous heartbeat
    (the "periodic metric deltas" of the bus contract) when given a
    snapshot function.
    """

    def __init__(
        self,
        bus_queue,
        label: str,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.queue = bus_queue
        self.label = label
        self.pid = os.getpid()
        self._clock = clock
        self.published = 0
        self.dropped = 0
        self._units_done = 0
        self._last_counters: Dict[str, float] = {}

    def _publish(self, message: Dict[str, Any]) -> None:
        try:
            self.queue.put_nowait(message)
            self.published += 1
        except (queue_module.Full, ValueError, OSError):
            # Full queue, or a queue torn down mid-shutdown: drop. The
            # bus is telemetry; losing a message must never hurt a unit.
            self.dropped += 1

    def heartbeat(
        self,
        phase: str,
        experiment: Optional[str] = None,
        unit: Optional[str] = None,
        seq: Optional[int] = None,
        wall_s: Optional[float] = None,
        counters: Optional[Mapping[str, float]] = None,
    ) -> None:
        """Publish one unit-lifecycle heartbeat (``start`` / ``finish``).

        ``counters`` is an absolute counter snapshot; the delta against
        the previous heartbeat rides on the message so the parent sees
        per-worker progress without waiting for the end-of-run merge.
        """
        if phase == "finish":
            self._units_done += 1
        message: Dict[str, Any] = {
            "kind": "heartbeat",
            "worker": self.label,
            "pid": self.pid,
            "phase": phase,
            "experiment": experiment,
            "unit": unit,
            "seq": seq,
            "units_done": self._units_done,
            "rss_bytes": rss_bytes(),
            "t": self._clock(),
        }
        if wall_s is not None:
            message["wall_s"] = wall_s
        if counters is not None:
            delta = {
                name: value - self._last_counters.get(name, 0)
                for name, value in counters.items()
                if value != self._last_counters.get(name, 0)
            }
            self._last_counters = dict(counters)
            if delta:
                message["metrics"] = delta
        self._publish(message)


@dataclass
class WorkerRow:
    """One worker's live state in the fleet table."""

    label: str
    pid: Optional[int] = None
    state: str = "idle"  # idle | running | stalled | lost
    experiment: Optional[str] = None
    unit: Optional[str] = None
    seq: Optional[int] = None
    units_done: int = 0
    heartbeats: int = 0
    stalls: int = 0
    recoveries: int = 0
    rss_bytes: Optional[int] = None
    rss_peak_bytes: int = 0
    first_t: Optional[float] = None
    last_t: Optional[float] = None
    #: Parent-monotonic arrival time of the latest heartbeat.
    last_seen: Optional[float] = None
    #: Closed per-unit intervals (worker wall clock) for the dashboard.
    timeline: List[Dict[str, Any]] = field(default_factory=list)
    #: The open interval of the in-flight unit, if any.
    open_interval: Optional[Dict[str, Any]] = None
    counters: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        timeline = list(self.timeline)
        if self.open_interval is not None:
            timeline.append(dict(self.open_interval))
        return {
            "label": self.label,
            "pid": self.pid,
            "state": self.state,
            "experiment": self.experiment,
            "unit": self.unit,
            "units_done": self.units_done,
            "heartbeats": self.heartbeats,
            "stalls": self.stalls,
            "recoveries": self.recoveries,
            "rss_peak_bytes": self.rss_peak_bytes,
            "first_t": self.first_t,
            "last_t": self.last_t,
            "timeline": timeline,
            "counters": dict(self.counters),
        }


class WorkerTable:
    """Fleet-style table of worker health, fed by drained bus messages.

    The table is parent-side state only; it never blocks on the queue.
    ``now`` arguments are parent-monotonic seconds (injectable for
    tests).
    """

    def __init__(
        self,
        stall_after_s: float = 10.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if stall_after_s <= 0:
            raise ValueError("stall_after_s must be positive")
        self.stall_after_s = stall_after_s
        self._clock = clock
        self.workers: Dict[str, WorkerRow] = {}
        self.messages = 0

    def row(self, label: str) -> WorkerRow:
        entry = self.workers.get(label)
        if entry is None:
            entry = self.workers[label] = WorkerRow(label=label)
        return entry

    # -- ingestion -----------------------------------------------------
    def observe(
        self, message: Mapping[str, Any], now: Optional[float] = None
    ) -> WorkerRow:
        """Fold one heartbeat into the table; returns the updated row."""
        now = self._clock() if now is None else now
        self.messages += 1
        row = self.row(str(message.get("worker", "?")))
        row.pid = message.get("pid", row.pid)
        row.heartbeats += 1
        row.last_seen = now
        t = message.get("t")
        if t is not None:
            if row.first_t is None:
                row.first_t = t
            row.last_t = t
        rss = message.get("rss_bytes")
        if rss is not None:
            row.rss_bytes = rss
            if rss > row.rss_peak_bytes:
                row.rss_peak_bytes = rss
        if row.state == "stalled":
            row.recoveries += 1
        phase = message.get("phase")
        if phase == "start":
            row.state = "running"
            row.experiment = message.get("experiment")
            row.unit = message.get("unit")
            row.seq = message.get("seq")
            row.open_interval = {
                "experiment": row.experiment,
                "unit": row.unit,
                "seq": row.seq,
                "t_start": t,
                "t_end": None,
            }
        elif phase == "finish":
            row.state = "idle"
            row.units_done = message.get("units_done", row.units_done + 1)
            interval = row.open_interval or {
                "experiment": message.get("experiment"),
                "unit": message.get("unit"),
                "seq": message.get("seq"),
                "t_start": t,
                "t_end": None,
            }
            interval["t_end"] = t
            if message.get("wall_s") is not None:
                interval["wall_s"] = message["wall_s"]
            row.timeline.append(interval)
            del row.timeline[:-TIMELINE_LIMIT]
            row.open_interval = None
        else:  # a bare liveness ping keeps whatever state the row had
            if row.state == "stalled":
                row.state = "running" if row.open_interval else "idle"
        for name, delta in (message.get("metrics") or {}).items():
            row.counters[name] = row.counters.get(name, 0) + delta
        return row

    # -- health --------------------------------------------------------
    def scan(self, now: Optional[float] = None) -> List[str]:
        """Mark workers whose open unit outlived the heartbeat budget.

        Returns the labels that *newly* became stalled on this scan.
        """
        now = self._clock() if now is None else now
        newly = []
        for row in self.workers.values():
            if (
                row.state == "running"
                and row.last_seen is not None
                and now - row.last_seen > self.stall_after_s
            ):
                row.state = "stalled"
                row.stalls += 1
                newly.append(row.label)
        return newly

    def mark_lost(self, pid: Optional[int] = None,
                  label: Optional[str] = None) -> List[WorkerRow]:
        """Mark matching workers lost (dead process); returns the rows."""
        rows = []
        for row in self.workers.values():
            if row.state == "lost":
                continue
            if (label is not None and row.label == label) or (
                pid is not None and row.pid == pid
            ):
                row.state = "lost"
                rows.append(row)
        return rows

    def in_flight(self) -> List[WorkerRow]:
        """Rows whose last heartbeat opened a unit that never finished."""
        return [
            row for row in self.workers.values()
            if row.open_interval is not None
        ]

    @property
    def units_done(self) -> int:
        return sum(row.units_done for row in self.workers.values())

    # -- views ---------------------------------------------------------
    def render_rows(self, now: Optional[float] = None) -> List[str]:
        """One compact status string per worker, for the live reporter."""
        now = self._clock() if now is None else now
        lines = []
        for label in sorted(self.workers):
            row = self.workers[label]
            if row.state == "running" and row.unit is not None:
                doing = f"{row.experiment}/{row.unit}"
            elif row.state == "stalled" and row.unit is not None:
                doing = f"STALLED {row.experiment}/{row.unit}"
            else:
                doing = row.state
            rss = (
                f"{row.rss_peak_bytes / (1 << 20):.0f}MB"
                if row.rss_peak_bytes else "-"
            )
            age = (
                f"{max(0.0, now - row.last_seen):.0f}s"
                if row.last_seen is not None else "-"
            )
            lines.append(
                f"  {label}: {doing} | units {row.units_done} | "
                f"rss {rss} | hb {age} ago"
            )
        return lines

    def to_dict(self) -> Dict[str, Any]:
        return {
            "stall_after_s": self.stall_after_s,
            "messages": self.messages,
            "workers": [
                self.workers[label].to_dict()
                for label in sorted(self.workers)
            ],
        }


class TelemetryBus:
    """Parent-side bus: the queue, the worker table, lifecycle events.

    Build it with the same multiprocessing context as the pool that will
    inherit ``bus.queue`` (the executor's start method), hand
    ``bus.queue`` to the worker initializer, and call :meth:`drain` from
    the supervision loop and the live reporter tick.
    """

    def __init__(
        self,
        ctx=None,
        stall_after_s: float = 10.0,
        maxsize: int = 4096,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        context = ctx if ctx is not None else multiprocessing
        self.queue = context.Queue(maxsize)
        self.table = WorkerTable(stall_after_s=stall_after_s, clock=clock)
        self._clock = clock
        self.events: List[Dict[str, Any]] = []
        self.drained = 0
        self._closed = False

    def publisher(self, label: str) -> BusPublisher:
        """A worker-side handle (also usable in-process, e.g. tests)."""
        return BusPublisher(self.queue, label)

    def drain(self, sink=None, scan: bool = True) -> int:
        """Pump every queued message into the table, without blocking.

        ``sink`` (anything with ``emit``) additionally receives each
        drained message — the live aggregator rides here. Returns the
        number of messages drained. ``scan=False`` skips the stall scan
        (tests driving the clock by hand).
        """
        drained = 0
        now = self._clock()
        while True:
            try:
                message = self.queue.get_nowait()
            except (queue_module.Empty, ValueError, OSError):
                break
            drained += 1
            if message.get("kind") == "heartbeat":
                self.table.observe(message, now=now)
            else:
                self._record(message)
            if sink is not None:
                sink.emit(message)
        self.drained += drained
        if scan:
            self.table.scan(now=now)
        return drained

    def record_event(self, kind: str, **fields: Any) -> Dict[str, Any]:
        """Parent-side lifecycle event (retry/timeout/degrade/worker_lost)."""
        event = {"kind": kind, "t": time.time()}
        event.update(fields)
        self._record(event)
        return event

    def _record(self, event: Dict[str, Any]) -> None:
        self.events.append(event)
        del self.events[:-EVENT_LIMIT]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe view for the run manifest (``workers.telemetry``)."""
        data = self.table.to_dict()
        data["events"] = [dict(event) for event in self.events]
        data["drained"] = self.drained
        return data

    def close(self) -> None:
        """Release the queue; drain first so late messages are kept."""
        if self._closed:
            return
        self._closed = True
        try:
            self.drain(scan=False)
        except Exception:
            pass
        try:
            self.queue.close()
            self.queue.join_thread()
        except (OSError, ValueError):
            pass
