"""Span timing: a hierarchical wall-clock profile of a run.

A *span* is a named wall-clock interval; spans opened while another span
is active nest under it, so a run builds a tree — experiment → phases →
inner loops — that answers "where did the time go" without a profiler.
Collection is explicit: spans are no-ops (a single module-level ``None``
check) until a :class:`SpanCollector` is installed, either with
:func:`collect_spans` (context manager) or :func:`set_collector`.

Repeated same-named spans under one parent merge into a single node with
a hit count, keeping trees from per-row instrumentation bounded.
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional

__all__ = [
    "SpanCollector",
    "SpanNode",
    "collect_spans",
    "get_collector",
    "set_collector",
    "span",
    "timed",
]


class SpanNode:
    """One node of the span tree: aggregated time of a named interval."""

    __slots__ = ("name", "elapsed_s", "count", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.elapsed_s = 0.0
        self.count = 0
        self.children: Dict[str, "SpanNode"] = {}

    def child(self, name: str) -> "SpanNode":
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = SpanNode(name)
        return node

    def to_dict(self) -> dict:
        """JSON-safe view, children ordered by descending elapsed time."""
        return {
            "name": self.name,
            "elapsed_s": self.elapsed_s,
            "count": self.count,
            "children": [
                child.to_dict()
                for child in sorted(
                    self.children.values(),
                    key=lambda n: n.elapsed_s,
                    reverse=True,
                )
            ],
        }


class SpanCollector:
    """Accumulates spans into a tree rooted at a synthetic ``run`` node."""

    def __init__(self, root_name: str = "run") -> None:
        self.root = SpanNode(root_name)
        self._stack: List[SpanNode] = [self.root]
        self._started_s = time.perf_counter()

    @property
    def depth(self) -> int:
        """Nesting depth of the currently open span (0 = at the root)."""
        return len(self._stack) - 1

    def open(self, name: str) -> SpanNode:
        node = self._stack[-1].child(name)
        self._stack.append(node)
        return node

    def close(self, node: SpanNode, elapsed_s: float) -> None:
        if self._stack[-1] is not node:
            raise RuntimeError(
                f"span {node.name!r} closed out of order "
                f"(top is {self._stack[-1].name!r})"
            )
        self._stack.pop()
        node.elapsed_s += elapsed_s
        node.count += 1

    def to_dict(self) -> dict:
        """The whole tree; the root's elapsed is the collector's lifetime."""
        self.root.elapsed_s = time.perf_counter() - self._started_s
        self.root.count = max(self.root.count, 1)
        return self.root.to_dict()


_collector: Optional[SpanCollector] = None


def get_collector() -> Optional[SpanCollector]:
    return _collector


def set_collector(
    collector: Optional[SpanCollector],
) -> Optional[SpanCollector]:
    """Install (or clear, with ``None``) the active collector."""
    global _collector
    previous = _collector
    _collector = collector
    return previous


@contextmanager
def collect_spans(root_name: str = "run") -> Iterator[SpanCollector]:
    """Collect spans for the duration of the ``with`` block."""
    collector = SpanCollector(root_name)
    previous = set_collector(collector)
    try:
        yield collector
    finally:
        set_collector(previous)


@contextmanager
def span(name: str) -> Iterator[None]:
    """Time a block as a span under the currently open one (no-op when
    no collector is installed)."""
    collector = _collector
    if collector is None:
        yield
        return
    node = collector.open(name)
    start = time.perf_counter()
    try:
        yield
    finally:
        collector.close(node, time.perf_counter() - start)


def timed(name: Optional[str] = None) -> Callable:
    """Decorator form of :func:`span`; defaults to the function's name."""

    def decorate(fn: Callable) -> Callable:
        label = name if name is not None else fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with span(label):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
