"""Opt-in sampled profiling keyed to the span stack.

The span tree (:mod:`repro.obs.spans`) answers "how long did each named
phase take" but not "which phase is the run in *right now*" or "where do
the samples land" — and cProfile's per-call tracing costs far too much
for a budget-gated pipeline. This module adds a wall-clock *sampler*: a
daemon thread wakes every ``interval_s`` and records the names on the
active :class:`~repro.obs.spans.SpanCollector` stack as one collapsed
stack line (``run;fig15;sim.run``). The hot path pays nothing — spans
are untouched; the sampler reads the collector's stack from outside.

The output is the flamegraph collapsed-stack format (``stack count``
per line, :meth:`SampledProfiler.write_collapsed`) plus a JSON-safe
summary for the run manifest (``"profile"`` key): sample counts, the
fraction of samples attributed to named spans (below the synthetic
root), peak RSS, and — with ``mem=True`` — ``tracemalloc`` peak heap
per collapsed stack.

Reading a list attribute while the owning thread appends/pops is safe
under the GIL; a sample taken mid-transition merely lands one frame
early or late, which is the usual statistical-profiler contract.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Optional

from .bus import rss_bytes
from .spans import get_collector

__all__ = ["SampledProfiler"]


class SampledProfiler:
    """Thread-based statistical profiler over the span stack.

    Use as a context manager around the instrumented region (the runner
    wraps its whole main loop)::

        with SampledProfiler(interval_s=0.005) as prof:
            ...
        manifest.profile = prof.to_dict()

    ``mem=True`` additionally starts :mod:`tracemalloc` and attributes
    the traced-heap peak observed in each sampling interval to the
    collapsed stack current at sample time (peak is reset per tick), so
    allocation spikes land on the span that caused them.
    """

    def __init__(self, interval_s: float = 0.005, mem: bool = False) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.interval_s = interval_s
        self.mem = mem
        self.stacks: Dict[str, int] = {}
        #: Per-stack max of interval heap peaks (bytes), mem mode only.
        self.mem_peaks: Dict[str, int] = {}
        self.sample_count = 0
        self.attributed = 0
        self.rss_peak_bytes = 0
        self.tracemalloc_peak_bytes = 0
        self.wall_s = 0.0
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._started_s: Optional[float] = None
        self._mem_was_tracing = False

    # -- sampling core (also driven directly by tests) -----------------
    def sample_once(self) -> str:
        """Take one sample; returns the collapsed stack it landed on."""
        collector = get_collector()
        if collector is None:
            stack = "(no-collector)"
        else:
            # Snapshot the list object first: the worker thread may pop
            # concurrently, and iterating a live list risks skew.
            frames = tuple(collector._stack)
            stack = ";".join(node.name for node in frames)
            if len(frames) > 1:
                self.attributed += 1
        self.sample_count += 1
        self.stacks[stack] = self.stacks.get(stack, 0) + 1
        rss = rss_bytes()
        if rss is not None and rss > self.rss_peak_bytes:
            self.rss_peak_bytes = rss
        if self.mem:
            self._sample_mem(stack)
        return stack

    def _sample_mem(self, stack: str) -> None:
        import tracemalloc

        if not tracemalloc.is_tracing():
            return
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
        if peak > self.tracemalloc_peak_bytes:
            self.tracemalloc_peak_bytes = peak
        if peak > self.mem_peaks.get(stack, 0):
            self.mem_peaks[stack] = peak

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.sample_once()
            except Exception:
                # A sampler crash must never take the run down; stop
                # sampling and leave what was collected.
                break

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "SampledProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        if self.mem:
            import tracemalloc

            self._mem_was_tracing = tracemalloc.is_tracing()
            if not self._mem_was_tracing:
                tracemalloc.start()
        self._started_s = time.perf_counter()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="obs-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=max(1.0, 10 * self.interval_s))
        self._thread = None
        if self._started_s is not None:
            self.wall_s += time.perf_counter() - self._started_s
            self._started_s = None
        if self.mem and not self._mem_was_tracing:
            import tracemalloc

            if tracemalloc.is_tracing():
                tracemalloc.stop()

    def __enter__(self) -> "SampledProfiler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- output --------------------------------------------------------
    @property
    def attributed_fraction(self) -> float:
        """Fraction of samples that landed inside a named span."""
        if not self.sample_count:
            return 0.0
        return self.attributed / self.sample_count

    def to_dict(self) -> Dict[str, Any]:
        """Manifest payload (``"profile"`` key), JSON-safe."""
        data: Dict[str, Any] = {
            "interval_s": self.interval_s,
            "wall_s": self.wall_s,
            "sample_count": self.sample_count,
            "attributed_fraction": round(self.attributed_fraction, 4),
            "rss_peak_bytes": self.rss_peak_bytes,
            "stacks": dict(
                sorted(
                    self.stacks.items(), key=lambda kv: kv[1], reverse=True
                )
            ),
        }
        if self.mem:
            data["mem"] = {
                "tracemalloc_peak_bytes": self.tracemalloc_peak_bytes,
                "stack_peaks": dict(
                    sorted(
                        self.mem_peaks.items(),
                        key=lambda kv: kv[1],
                        reverse=True,
                    )
                ),
            }
        return data

    def write_collapsed(self, path: str) -> None:
        """Write ``stack count`` lines (flamegraph.pl / inferno input)."""
        import os

        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            for stack, count in sorted(self.stacks.items()):
                handle.write(f"{stack} {count}\n")
