"""``python -m repro.obs.why --row R`` — why did this row fail (or not)?

Answers come in two parts, both computed from a forensic ledger (see
:mod:`repro.obs.forensics`) recorded by a ``--forensics`` run:

* the **causal chain** — every ledger record naming the row, in
  simulated-time order: PRIL grants/revocations, MEMCON test lifecycle,
  refresh-ledger transitions, TRR neighbour refreshes, dose crossings
  and predicate evaluations;
* the **counterfactual table** — when the ledger holds a
  ``forensic_row`` attribution record, its reconstruction coordinates
  (seed, quick flag, benchmark, content row, stress, intervals) are
  enough to rebuild the pure batch predicates offline and re-evaluate
  the row under toggled factors: disturbance off, nominal refresh,
  inverted content. The verdict mapping is shared with the inline
  attribution (:func:`repro.obs.forensics.classify_verdict`), so the
  replay either confirms the ledger or exposes a real discrepancy.

Replay needs no simulation: the fault and disturbance populations are
counter-based streams keyed by seed, so rebuilding a :class:`FaultMap`
and one benchmark's silicon image is milliseconds of work.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from . import forensics
from .manifest import load_manifest
from .trace import _record_time, read_trace

__all__ = [
    "causal_chain",
    "counterfactuals",
    "main",
    "render_chain",
    "render_counterfactuals",
    "replay_row",
]

#: Scenario key -> human label, in display order.
SCENARIOS = (
    ("factual", "factual (content + dose)"),
    ("no_disturb", "disturbance off"),
    ("nominal_refresh", "nominal refresh"),
    ("alt_content", "inverted content"),
)


def counterfactuals(
    fault_map,
    row: int,
    content_bits,
    test_interval_ms: float,
    stress: float,
    nominal_interval_ms: float = 64.0,
) -> Dict[str, bool]:
    """Evaluate one row's fault predicate under toggled factors.

    Each scenario is a direct :meth:`FaultMap.failing_mask` call — the
    same pure predicate the experiments batch over — with exactly one
    factor changed from the factual configuration:

    * ``factual``         — recorded content, recorded disturbance
                            stress, the tested refresh interval;
    * ``no_disturb``      — stress zeroed (was the dose necessary?);
    * ``nominal_refresh`` — interval back at nominal (was the relaxed
                            interval necessary?);
    * ``alt_content``     — every data bit inverted (was this content
                            necessary?).
    """
    content = np.asarray(content_bits)
    if content.dtype == np.bool_:
        alt = ~content
    else:
        alt = (1 - content).astype(content.dtype)

    def fails(bits, interval_ms: float, disturb_stress: float) -> bool:
        mask = fault_map.failing_mask(
            row, bits, interval_ms, disturb_stress=disturb_stress
        )
        return bool(np.asarray(mask).any())

    return {
        "factual": fails(content, test_interval_ms, stress),
        "no_disturb": fails(content, test_interval_ms, 0.0),
        "nominal_refresh": fails(content, nominal_interval_ms, stress),
        "alt_content": fails(alt, test_interval_ms, stress),
    }


def replay_row(record: Mapping) -> Dict[str, Any]:
    """Rebuild predicates from a ``forensic_row`` record and re-evaluate.

    Returns ``{"scenarios": {...}, "verdict": str, "ledger_verdict":
    str, "agrees": bool}``. Raises ``KeyError``/``ValueError`` when the
    record lacks reconstruction coordinates (older or hand-built
    ledgers) — callers should degrade to chain-only output.
    """
    from ..parallel.units import experiment_module

    module = experiment_module(str(record["experiment"]))
    quick = bool(record.get("quick", True))
    seed = int(record.get("seed", 1))
    mapping, fault_map, _disturb_map = module._setup(quick, seed)
    silicon = module._silicon_images(
        str(record["benchmark"]), mapping, int(record["image_rows"]), seed
    )
    content = silicon[int(record["content_row"])]
    scenarios = counterfactuals(
        fault_map,
        int(record["row"]),
        content,
        float(record["test_interval_ms"]),
        float(record.get("stress", 0.0)),
        nominal_interval_ms=float(record.get("interval_ms", 64.0)),
    )
    verdict = forensics.classify_verdict(
        scenarios["factual"],
        scenarios["no_disturb"],
        scenarios["alt_content"],
        flipped=bool(record.get("flipped", False)),
    )
    ledger_verdict = str(record.get("verdict", "?"))
    return {
        "scenarios": scenarios,
        "verdict": verdict,
        "ledger_verdict": ledger_verdict,
        "agrees": verdict == ledger_verdict,
    }


def causal_chain(records: Iterable[Mapping], row: int) -> List[dict]:
    """All ledger records naming ``row``, in stream (time) order.

    Aggregate records (``dose_crossing``, ``predicate_eval``) name rows
    through their bounded ``rows_sample`` / ``rows_failed_sample``
    lists, so a row past the sample cap may miss those entries — the
    per-row kinds are never sampled.
    """
    chain: List[dict] = []
    for record in records:
        subject = record.get("row", record.get("page"))
        if subject == row:
            chain.append(dict(record))
            continue
        if row in (record.get("rows_sample") or ()) or row in (
            record.get("rows_failed_sample") or ()
        ):
            chain.append(dict(record))
    return chain


def _describe(record: Mapping) -> str:
    kind = record.get("kind")
    if kind == "pril_grant":
        parts = [f"PRIL granted LO-REF (quantum {record.get('quantum')}"]
        if "write_ms" in record:
            parts.append(f", single write at {record['write_ms']:.1f} ms")
        if "next_write_ms" in record:
            parts.append(f", next write {record['next_write_ms']:.1f} ms")
        return "".join(parts) + ")"
    if kind == "pril_revoke":
        return f"PRIL dropped the LO-REF candidate ({record.get('reason')})"
    if kind == "test_started":
        return "MEMCON retention test started"
    if kind == "test_aborted":
        return "MEMCON test aborted (page written mid-test)"
    if kind == "test_passed":
        return "MEMCON test passed -> LO-REF"
    if kind == "test_failed":
        return "MEMCON test failed -> stays HI-REF"
    if kind == "ref_transition":
        return f"refresh ledger: {record.get('from')} -> {record.get('to')}"
    if kind == "trr_refresh":
        return (
            f"TRR fired: refreshed {record.get('neighbors')} neighbours "
            f"(bank {record.get('bank')})"
        )
    if kind == "dose_crossing":
        return (
            f"disturbance dose over threshold for {record.get('rows_over')} "
            f"rows (max pressure {record.get('max_pressure'):.2f}, "
            f"interval {record.get('interval_ms')} ms)"
        )
    if kind == "predicate_eval":
        crc = record.get("content_crc")
        crc_text = f", content crc {crc:08x}" if isinstance(crc, int) else ""
        return (
            f"fault predicate over {record.get('rows')} rows -> "
            f"{record.get('failed')} failing "
            f"(interval {record.get('interval_ms')} ms{crc_text})"
        )
    if kind == "forensic_row":
        return (
            f"attributed: {record.get('verdict')} "
            f"(flipped={record.get('flipped')}, "
            f"composed={record.get('composed')}, "
            f"content_only={record.get('content_only')})"
        )
    if kind == "mitigation_cell":
        return (
            f"mitigation cell {record.get('refresh')}/{record.get('trr')}: "
            f"{record.get('flips')} flips over "
            f"{record.get('rows_flipped')} rows"
        )
    return str(dict(record))


def render_chain(chain: Sequence[Mapping], row: int) -> str:
    lines = [f"causal chain for row {row} ({len(chain)} records):"]
    for record in chain:
        t = _record_time(record)
        stamp = f"{t:>12.3f} ms" if t is not None else " " * 15
        lines.append(f"  {stamp}  {_describe(record)}")
    return "\n".join(lines)


def render_counterfactuals(record: Mapping, replay: Mapping) -> str:
    scenarios = replay["scenarios"]
    lines = [
        (
            f"counterfactual replay ({record.get('experiment')} / "
            f"{record.get('benchmark')}, seed {record.get('seed')}, "
            f"{'quick' if record.get('quick', True) else 'full'}):"
        ),
        f"  {'scenario':<28} fails",
    ]
    for key, label in SCENARIOS:
        extra = ""
        if key == "factual":
            extra = f" @{record.get('test_interval_ms')} ms"
        elif key == "nominal_refresh":
            extra = f" ({record.get('interval_ms')} ms)"
        name = f"{label}{extra}"
        lines.append(
            f"  {name:<28} {'yes' if scenarios[key] else 'no'}"
        )
    agreement = (
        "ledger agrees"
        if replay["agrees"]
        else f"ledger says {replay['ledger_verdict']!r} — MISMATCH"
    )
    lines.append(f"verdict: {replay['verdict']} ({agreement})")
    return "\n".join(lines)


def _resolve_sources(
    manifest_path: Optional[str], trace_paths: Optional[Sequence[str]]
) -> List[str]:
    if trace_paths:
        return list(trace_paths)
    if manifest_path:
        manifest = load_manifest(manifest_path)
        info = manifest.get("forensics") or {}
        ledger = info.get("ledger_path")
        if ledger:
            return [ledger]
        trace = manifest.get("trace_path")
        if trace:
            return [trace]
    raise SystemExit(
        "no ledger to read: pass --trace FILE... or a --manifest whose "
        "run recorded one (--forensics)"
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.why",
        description=(
            "Print a row's causal decision chain and counterfactual "
            "replay verdict from a forensic ledger."
        ),
    )
    parser.add_argument("--row", type=int, required=True, help="row/page id")
    parser.add_argument(
        "--manifest", help="run manifest naming the ledger (or trace)"
    )
    parser.add_argument(
        "--trace",
        nargs="+",
        metavar="FILE",
        help="ledger or trace file(s); several shards are time-merged",
    )
    parser.add_argument(
        "--no-replay",
        action="store_true",
        help="print the chain only, skip predicate reconstruction",
    )
    args = parser.parse_args(argv)

    sources = _resolve_sources(args.manifest, args.trace)
    if len(sources) == 1:
        records = read_trace(
            sources[0], validate=False, tolerate_truncation=True
        )
    else:
        records = read_trace(merge=sources, validate=False)
    chain = causal_chain(records, args.row)
    if not chain:
        print(f"no ledger records for row {args.row}", file=sys.stderr)
        return 1
    print(render_chain(chain, args.row))

    attribution = next(
        (r for r in reversed(chain) if r.get("kind") == "forensic_row"), None
    )
    if attribution is None or args.no_replay:
        if not args.no_replay:
            print(
                "\nno attribution record for this row — counterfactual "
                "replay unavailable (row was never predicate-flagged)"
            )
        return 0
    try:
        replay = replay_row(attribution)
    except (KeyError, ValueError, ImportError) as exc:
        print(
            f"\ncounterfactual replay unavailable: {exc!r} "
            "(ledger record lacks reconstruction coordinates)"
        )
        return 0
    print()
    print(render_counterfactuals(attribution, replay))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
