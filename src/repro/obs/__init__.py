"""`repro.obs` — observability for the MEMCON pipeline.

Four cooperating pieces, all near-zero-overhead until switched on:

* **metrics registry** (:mod:`.registry`) — counters, gauges and
  fixed-bucket histograms, snapshot/reset-able; instruments no-op while
  the owning registry is disabled (the default).
* **span timing** (:mod:`.spans`) — ``with span("fill"):`` builds a
  hierarchical wall-clock profile once a collector is installed.
* **event trace** (:mod:`.trace`) — schema-versioned JSONL records of
  test lifecycles, refresh transitions, PRIL decisions and controller
  activity, written to a pluggable sink.
* **run manifest** (:mod:`.manifest`) — per-invocation JSON capturing
  config, seed, git revision, timings and the final metric snapshot.
* **streaming analytics** (:mod:`.analytics`) — ``TeeSink`` fans the
  event stream out to the JSONL file and an ``AggregatingSink`` whose
  windowed rollups (HI/LO-REF population, test outcomes, PRIL hit
  rate, controller latency percentiles, energy) land in the manifest.
* **live status** (:mod:`.live`) — a throttled stderr status line
  (events/s, LO-REF rows, outstanding tests, ETA) over the aggregator,
  plus per-worker health rows when a telemetry bus is attached.
* **telemetry bus** (:mod:`.bus`) — a multiprocessing-queue heartbeat
  channel from pool workers to the parent's fleet-style worker table
  (current unit, RSS, stalled-worker detection via missed heartbeats).
* **sampled profiler** (:mod:`.profile`) — opt-in wall-clock sampling
  of the span stack (collapsed-stack / flamegraph output) and optional
  tracemalloc peak-heap attribution, recorded under the manifest's
  ``"profile"`` key.
* **dashboard** (:mod:`.dashboard`) — ``python -m repro.obs.dashboard
  MANIFEST [TRACE...]`` renders one self-contained static HTML file
  (inline SVG, no JS) with timeseries, flame view, worker timeline and
  BENCH trajectories.
* **regression gate** (:mod:`.compare`) — ``python -m repro.obs.compare
  OLD NEW`` diffs two manifests or ``BENCH_*.json`` files under
  per-metric noise thresholds and exits non-zero on regression.
* **failure forensics** (:mod:`.forensics`, :mod:`.why`) — opt-in
  (``--forensics``) decision-provenance ledger of every causal decision
  touching a row (PRIL grants/revocations, MEMCON tests, TRR refreshes,
  dose crossings, predicate evaluations); ``python -m repro.obs.why
  --row R`` prints a row's causal chain plus a counterfactual replay
  verdict (content-dependent / disturb-driven / composed / memcon-miss).

``python -m repro.obs.report TRACE [--manifest FILE] [--timeseries]``
renders a trace, manifest and rollups into human-readable tables.
"""

from .analytics import (
    AggregatingSink,
    TeeSink,
    aggregate_trace,
)
from .bus import (
    BusPublisher,
    TelemetryBus,
    WorkerTable,
)
from .compare import (
    ComparisonResult,
    MetricDelta,
    compare_files,
    compare_metrics,
)
from .forensics import (
    FORENSIC_KINDS,
    LEDGER_KINDS,
    VERDICTS,
    classify_verdict,
    extract_ledger,
    forensics_active,
    ledger_census,
    set_forensics,
)
from .live import LiveReporter
from .manifest import (
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    git_revision,
    load_manifest,
)
from .profile import SampledProfiler
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from .spans import (
    SpanCollector,
    SpanNode,
    collect_spans,
    get_collector,
    set_collector,
    span,
    timed,
)
from .trace import (
    EVENT_KINDS,
    SCHEMA_VERSION,
    JsonlTraceSink,
    ListTraceSink,
    TraceSchemaError,
    emit,
    get_sink,
    read_trace,
    set_sink,
    trace_active,
    validate_record,
)

__all__ = [
    "AggregatingSink",
    "TeeSink",
    "aggregate_trace",
    "BusPublisher",
    "TelemetryBus",
    "WorkerTable",
    "SampledProfiler",
    "ComparisonResult",
    "MetricDelta",
    "compare_files",
    "compare_metrics",
    "FORENSIC_KINDS",
    "LEDGER_KINDS",
    "VERDICTS",
    "classify_verdict",
    "extract_ledger",
    "forensics_active",
    "ledger_census",
    "set_forensics",
    "LiveReporter",
    "MANIFEST_SCHEMA_VERSION",
    "RunManifest",
    "git_revision",
    "load_manifest",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "SpanCollector",
    "SpanNode",
    "collect_spans",
    "get_collector",
    "set_collector",
    "span",
    "timed",
    "EVENT_KINDS",
    "SCHEMA_VERSION",
    "JsonlTraceSink",
    "ListTraceSink",
    "TraceSchemaError",
    "emit",
    "get_sink",
    "read_trace",
    "set_sink",
    "trace_active",
    "validate_record",
]
