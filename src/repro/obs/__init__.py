"""`repro.obs` — observability for the MEMCON pipeline.

Four cooperating pieces, all near-zero-overhead until switched on:

* **metrics registry** (:mod:`.registry`) — counters, gauges and
  fixed-bucket histograms, snapshot/reset-able; instruments no-op while
  the owning registry is disabled (the default).
* **span timing** (:mod:`.spans`) — ``with span("fill"):`` builds a
  hierarchical wall-clock profile once a collector is installed.
* **event trace** (:mod:`.trace`) — schema-versioned JSONL records of
  test lifecycles, refresh transitions, PRIL decisions and controller
  activity, written to a pluggable sink.
* **run manifest** (:mod:`.manifest`) — per-invocation JSON capturing
  config, seed, git revision, timings and the final metric snapshot.

``python -m repro.obs.report TRACE [--manifest FILE]`` renders a trace
and manifest into human-readable summary tables.
"""

from .manifest import (
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    git_revision,
    load_manifest,
)
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from .spans import (
    SpanCollector,
    SpanNode,
    collect_spans,
    get_collector,
    set_collector,
    span,
    timed,
)
from .trace import (
    EVENT_KINDS,
    SCHEMA_VERSION,
    JsonlTraceSink,
    ListTraceSink,
    TraceSchemaError,
    emit,
    get_sink,
    read_trace,
    set_sink,
    trace_active,
    validate_record,
)

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "RunManifest",
    "git_revision",
    "load_manifest",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "SpanCollector",
    "SpanNode",
    "collect_spans",
    "get_collector",
    "set_collector",
    "span",
    "timed",
    "EVENT_KINDS",
    "SCHEMA_VERSION",
    "JsonlTraceSink",
    "ListTraceSink",
    "TraceSchemaError",
    "emit",
    "get_sink",
    "read_trace",
    "set_sink",
    "trace_active",
    "validate_record",
]
