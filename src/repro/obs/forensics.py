"""Decision-provenance ledger for per-row failure forensics.

Aggregate observability (rollups, gantts, flamegraphs) answers *how
much*; this layer answers *why this row*. When the forensics gate is on,
instrumented decision points — PRIL LO-REF grants and revocations, the
MEMCON test lifecycle, TRR neighbour refreshes, disturbance dose
crossings, and every batch fault-predicate evaluation — emit compact
records into the normal event trace (:mod:`repro.obs.trace`). Because
they ride the same stream, sharded runs reconstruct the exact per-row
history through the existing unit-block splice
(:mod:`repro.parallel.merge`): a serial ledger and a ``--jobs N`` ledger
are byte-identical.

The gate mirrors the sink pattern: one module-global bool, checked
before any payload is assembled, so disabled forensics cost one
attribute load per *decision* (not per access) on already-instrumented
paths and nothing anywhere else.

:func:`extract_ledger` filters a (merged) trace down to the append-only
forensic ledger file and returns a census — record counts by kind plus
a verdict histogram from ``forensic_row`` records — that the runner
folds into the manifest. :func:`classify_verdict` is the single source
of truth for mapping counterfactual outcomes to verdicts; both the
inline attribution in ``experiments/hammer01.py`` and the offline
replay in :mod:`repro.obs.why` use it, so the ledger and the CLI can
never disagree on the rules.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, Iterator, Mapping, Optional

from . import trace as _trace

__all__ = [
    "FORENSIC_KINDS",
    "LEDGER_KINDS",
    "VERDICTS",
    "classify_verdict",
    "extract_ledger",
    "forensics_active",
    "iter_ledger",
    "ledger_census",
    "record_row",
    "set_forensics",
]

#: Kinds that exist only for forensics (emitted behind the gate).
FORENSIC_KINDS = frozenset(
    {
        "pril_grant",
        "pril_revoke",
        "trr_refresh",
        "dose_crossing",
        "predicate_eval",
        "forensic_row",
        "mitigation_cell",
    }
)

#: Kinds copied into the ledger: the forensic kinds plus the causal
#: slice of the ordinary stream (test lifecycle and refresh-ledger
#: transitions name the page they concern, so the why-CLI can build a
#: chain even for rows that never reached a predicate evaluation).
LEDGER_KINDS = FORENSIC_KINDS | frozenset(
    {
        "test_started",
        "test_aborted",
        "test_passed",
        "test_failed",
        "ref_transition",
    }
)

#: The closed verdict vocabulary, in precedence order.
VERDICTS = (
    "content-dependent",
    "disturb-driven",
    "composed",
    "memcon-miss",
    "safe",
)

_enabled = False


def forensics_active() -> bool:
    """True when forensic records should be emitted (pre-check this)."""
    return _enabled


def set_forensics(enabled: bool) -> bool:
    """Toggle the process-wide forensics gate; returns the prior state."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


def record_row(row: int, verdict: str, **fields) -> None:
    """Emit one ``forensic_row`` attribution record (gate pre-checked).

    Callers should pass every coordinate needed to rebuild the
    predicate inputs offline (seed, quick flag, content row index,
    stress, intervals) so :mod:`repro.obs.why` can replay the row
    without re-running the simulation.
    """
    if verdict not in VERDICTS:
        raise ValueError(f"unknown verdict: {verdict!r}")
    _trace.emit("forensic_row", row=row, verdict=verdict, **fields)


def classify_verdict(
    factual: bool,
    no_disturb: bool,
    alt_content: bool,
    flipped: bool = False,
) -> str:
    """Map counterfactual outcomes to a verdict.

    ``factual``     — the composed predicate (content + disturbance
                      stress at the tested interval) flags the row.
    ``no_disturb``  — the same predicate with disturbance stress zeroed.
    ``alt_content`` — the composed predicate with the inverted content
                      pattern.
    ``flipped``     — the disturbance model alone flips a bit in the
                      row (used for the tested-then-flipped miss case).

    Precedence: a row that fails with no disturbance at all is
    *content-dependent* regardless of what disturbance adds. A row that
    fails under both content patterns needs no particular content, so
    it is *disturb-driven*. A factual failure that needs both its
    content and its dose is *composed*. A row the predicates clear but
    the disturbance model still flips is a *memcon-miss* — MEMCON
    tested it (or would have) and the test cannot see the access
    pattern. Anything else is *safe*.
    """
    if no_disturb:
        return "content-dependent"
    if factual and alt_content:
        return "disturb-driven"
    if factual:
        return "composed"
    if flipped:
        return "memcon-miss"
    return "safe"


def iter_ledger(records: Iterable[Mapping]) -> Iterator[Mapping]:
    """Filter a record stream down to ledger kinds, preserving order."""
    for record in records:
        if record.get("kind") in LEDGER_KINDS:
            yield record


def ledger_census(records: Iterable[Mapping]) -> Dict[str, Any]:
    """Summarise ledger records: counts by kind, verdicts, distinct rows."""
    kinds: Dict[str, int] = {}
    verdicts: Dict[str, int] = {}
    rows = set()
    total = 0
    for record in records:
        total += 1
        kind = record.get("kind", "?")
        kinds[kind] = kinds.get(kind, 0) + 1
        if kind == "forensic_row":
            verdict = record.get("verdict", "?")
            verdicts[verdict] = verdicts.get(verdict, 0) + 1
        subject = record.get("row", record.get("page"))
        if isinstance(subject, int) and not isinstance(subject, bool):
            rows.add(subject)
    return {
        "records": total,
        "kinds": dict(sorted(kinds.items())),
        "verdicts": dict(sorted(verdicts.items())),
        "rows": len(rows),
    }


def extract_ledger(
    source: Optional[str] = None,
    out_path: Optional[str] = None,
    *,
    records: Optional[Iterable[Mapping]] = None,
) -> Dict[str, Any]:
    """Write the forensic ledger extracted from a trace; return a census.

    ``source`` is a trace file path (read with truncation tolerance, so
    a killed run's surviving prefix still yields a ledger); pass
    ``records=...`` instead to filter an in-memory stream, e.g. the
    shard-merge generator from :func:`repro.parallel.merge.iter_merged_records`.
    The ledger is itself a valid JSONL trace (same envelope), so
    :func:`repro.obs.trace.read_trace` and the why-CLI read it directly.
    """
    if (source is None) == (records is None):
        raise ValueError("pass exactly one of source path or records=...")
    if records is None:
        records = _trace.read_trace(
            source, validate=False, tolerate_truncation=True
        )
    sink = open(out_path, "w", encoding="utf-8") if out_path else None

    def tee(stream: Iterable[Mapping]) -> Iterator[Mapping]:
        for record in stream:
            if sink is not None:
                sink.write(json.dumps(record, separators=(",", ":")))
                sink.write("\n")
            yield record

    try:
        census = ledger_census(tee(iter_ledger(records)))
    finally:
        if sink is not None:
            sink.close()
    if out_path:
        census["ledger_path"] = out_path
    return census
