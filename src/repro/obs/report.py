"""Render a JSONL trace and/or run manifest as human-readable tables.

Usage::

    python -m repro.obs.report t.jsonl                 # trace summary
    python -m repro.obs.report t.jsonl --manifest m.json
    python -m repro.obs.report --manifest m.json       # manifest only
    python -m repro.obs.report t.jsonl --timeseries    # windowed rollups

The trace summary counts events by kind and reconciles the MEMCON test
lifecycle (started = aborted + passed + failed); the manifest summary
prints provenance, per-experiment timings, the span tree and the final
counter snapshot. ``--timeseries`` renders the windowed rollups — the
manifest's stored ``timeseries`` when present, otherwise recomputed
from the trace file via :func:`repro.obs.analytics.aggregate_trace`.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .analytics import aggregate_trace
from .manifest import load_manifest
from .trace import read_trace

__all__ = [
    "main",
    "render_manifest",
    "render_timeseries",
    "render_trace_summary",
]


def _table(rows: Sequence[Sequence[Any]], header: Sequence[str]) -> str:
    rendered = [[str(v) for v in row] for row in rows]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rendered)) if rendered
        else len(header[i])
        for i in range(len(header))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(header, widths)),
    ]
    lines.append("-" * len(lines[0]))
    for row in rendered:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def render_trace_summary(records: Iterable[dict]) -> str:
    """Event counts by kind plus the MEMCON lifecycle reconciliation."""
    kinds: Dict[str, int] = {}
    total = 0
    for record in records:
        kinds[record["kind"]] = kinds.get(record["kind"], 0) + 1
        total += 1
    lines = [f"== trace summary: {total} events =="]
    lines.append(_table(
        sorted(kinds.items(), key=lambda kv: (-kv[1], kv[0])),
        header=("kind", "count"),
    ))
    started = kinds.get("test_started", 0)
    resolved = (
        kinds.get("test_aborted", 0)
        + kinds.get("test_passed", 0)
        + kinds.get("test_failed", 0)
    )
    if started or resolved:
        verdict = "OK" if started == resolved else "MISMATCH"
        lines.append(
            f"memcon lifecycle: {started} started = "
            f"{kinds.get('test_aborted', 0)} aborted + "
            f"{kinds.get('test_passed', 0)} passed + "
            f"{kinds.get('test_failed', 0)} failed -> {verdict}"
        )
    return "\n".join(lines)


def _render_span(node: Dict[str, Any], depth: int, out: List[Tuple]) -> None:
    out.append((
        "  " * depth + node["name"],
        f"{node['elapsed_s']:.3f}s",
        node["count"],
    ))
    for child in node.get("children", []):
        _render_span(child, depth + 1, out)


def render_manifest(manifest: Dict[str, Any]) -> str:
    """Provenance, timings, span tree and counters of one manifest."""
    lines = [
        f"== run manifest (schema {manifest.get('schema')}) ==",
        f"experiments: {', '.join(manifest.get('experiments', []))}",
        f"seed: {manifest.get('seed')}  quick: {manifest.get('quick')}",
        f"git: {manifest.get('git_rev') or 'unknown'}  "
        f"python: {manifest.get('python')}",
        f"wall: {manifest.get('wall_s', 0.0):.3f}s",
    ]
    timings = manifest.get("timings") or []
    if timings:
        lines.append("")
        lines.append(_table(
            [(t["name"], f"{t['wall_s']:.3f}s") for t in timings],
            header=("experiment", "wall"),
        ))
    spans = manifest.get("spans")
    if spans:
        rows: List[Tuple] = []
        _render_span(spans, 0, rows)
        lines.append("")
        lines.append(_table(rows, header=("span", "elapsed", "count")))
    metrics = manifest.get("metrics") or {}
    counters = metrics.get("counters") or {}
    if counters:
        lines.append("")
        lines.append(_table(
            sorted(counters.items()), header=("counter", "value")
        ))
    workers = manifest.get("workers")
    if workers:
        stats = workers.get("stats") or {}
        lines.append("")
        lines.append(
            f"workers: jobs {workers.get('jobs')} "
            f"({workers.get('start_method')}), "
            + ", ".join(f"{k} {v}" for k, v in sorted(stats.items()))
        )
        telemetry = (workers.get("telemetry") or {}).get("workers") or []
        if telemetry:
            lines.append(_table(
                [
                    (
                        w.get("label"), w.get("state"),
                        w.get("units_done"), w.get("heartbeats"),
                        w.get("stalls"),
                        f"{(w.get('rss_peak_bytes') or 0) / (1 << 20):.0f}MB",
                    )
                    for w in telemetry
                ],
                header=("worker", "state", "units", "heartbeats",
                        "stalls", "rss_peak"),
            ))
    forensics = manifest.get("forensics")
    if forensics:
        lines.append("")
        lines.append(
            f"forensics: {forensics.get('records', 0)} ledger records "
            f"across {forensics.get('rows', 0)} rows"
            + (
                f" ({forensics.get('ledger_path')})"
                if forensics.get("ledger_path") else ""
            )
        )
        verdicts = forensics.get("verdicts") or {}
        if verdicts:
            lines.append(_table(
                sorted(verdicts.items(), key=lambda kv: (-kv[1], kv[0])),
                header=("verdict", "rows"),
            ))
    profile = manifest.get("profile")
    if profile:
        lines.append("")
        lines.append(
            f"profile: {profile.get('sample_count', 0)} samples at "
            f"{profile.get('interval_s', 0.0) * 1000:g} ms, "
            f"{profile.get('attributed_fraction', 0.0):.1%} attributed, "
            f"rss peak "
            f"{(profile.get('rss_peak_bytes') or 0) / (1 << 20):.0f}MB"
        )
        stacks = sorted(
            (profile.get("stacks") or {}).items(),
            key=lambda kv: -kv[1],
        )[:10]
        if stacks:
            lines.append(_table(stacks, header=("stack", "samples")))
        mem = profile.get("mem")
        if mem:
            lines.append(
                f"tracemalloc peak: "
                f"{mem.get('tracemalloc_peak_bytes', 0) / (1 << 20):.1f}MB"
            )
    return "\n".join(lines)


def _fmt_fraction(value: Optional[float]) -> str:
    return f"{value:.1%}" if value is not None else "-"


def _fmt_opt(value: Optional[float], spec: str = ".0f") -> str:
    return format(value, spec) if value is not None else "-"


def render_timeseries(timeseries: Dict[str, Any]) -> str:
    """Windowed rollups: HI/LO-REF population, tests, MC, PRIL, energy."""
    window_ms = timeseries.get("window_ms", 0.0)
    lines = [
        f"== time series: {timeseries.get('events_total', 0)} events, "
        f"{window_ms:g} ms windows ==",
    ]
    windows = timeseries.get("windows") or []
    if windows:
        rows = []
        for w in windows:
            tests = w.get("tests") or {}
            ref = w.get("ref")
            mc = w.get("mc")
            rows.append((
                f"{w['t_ms']:g}",
                _fmt_fraction(ref and ref.get("lo_fraction")),
                _fmt_fraction(ref and ref.get("hi_fraction")),
                tests.get("started", 0),
                tests.get("passed", 0),
                tests.get("failed", 0),
                tests.get("aborted", 0),
                mc["requests"] if mc else "-",
                _fmt_opt(mc and mc.get("latency_p95_ns")),
                _fmt_opt(mc and mc.get("refresh_per_s"), ".1f"),
            ))
        lines.append(_table(rows, header=(
            "t_ms", "lo%", "hi%", "start", "pass", "fail", "abort",
            "mc_req", "p95_ns", "ref/s",
        )))
    pril = timeseries.get("pril") or []
    if pril:
        lines.append("")
        lines.append(_table(
            [
                (
                    q["quantum"], q["predicted"], q["buffer"], q["started"],
                    q["resolved"], q["aborted"],
                    _fmt_fraction(q.get("hit_rate")),
                )
                for q in pril
            ],
            header=("quantum", "predicted", "buffer", "started",
                    "resolved", "aborted", "hit_rate"),
        ))
    energy = timeseries.get("energy")
    if energy:
        totals = energy.get("totals") or {}
        lines.append("")
        lines.append(
            f"energy ({len(energy.get('rollups') or [])} rollups): "
            f"refresh {totals.get('refresh_pj', 0.0):.1f} pJ, "
            f"access {totals.get('access_pj', 0.0):.1f} pJ, "
            f"background {totals.get('background_pj', 0.0):.1f} pJ"
        )
    if not windows and not pril and not energy:
        lines.append("(no windowed events in this run)")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Summarise a repro.obs JSONL trace and/or run manifest.",
    )
    parser.add_argument("trace", nargs="*", default=[],
                        help="JSONL trace file written with --trace; give "
                        "several shard files to time-sort-merge them")
    parser.add_argument("--manifest", default=None,
                        help="run manifest JSON written next to the output")
    parser.add_argument("--no-validate", action="store_true",
                        help="skip per-record schema validation")
    parser.add_argument("--timeseries", action="store_true",
                        help="also render windowed rollups (from the "
                        "manifest when stored, else from the trace)")
    parser.add_argument("--window-ms", type=float, default=1024.0,
                        help="window width when recomputing rollups from "
                        "the trace (default %(default)s)")
    parser.add_argument("--tolerate-truncation", action="store_true",
                        help="skip a partial final trace line (killed run)")
    args = parser.parse_args(argv)
    if not args.trace and args.manifest is None:
        parser.error("give a trace file, --manifest, or both")
    sections: List[str] = []
    if args.trace:
        if len(args.trace) == 1:
            records = list(read_trace(
                args.trace[0],
                validate=not args.no_validate,
                tolerate_truncation=args.tolerate_truncation,
            ))
        else:
            records = list(read_trace(
                merge=args.trace, validate=not args.no_validate
            ))
        sections.append(render_trace_summary(records))
    manifest = load_manifest(args.manifest) if args.manifest else None
    if manifest is not None:
        sections.append(render_manifest(manifest))
    if args.timeseries:
        timeseries = (manifest or {}).get("timeseries")
        if timeseries is None:
            if not args.trace:
                parser.error(
                    "--timeseries needs a trace file or a manifest that "
                    "stored rollups"
                )
            timeseries = aggregate_trace(records, window_ms=args.window_ms)
        sections.append(render_timeseries(timeseries))
    print("\n\n".join(sections))
    return 0


if __name__ == "__main__":
    sys.exit(main())
