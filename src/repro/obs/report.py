"""Render a JSONL trace and/or run manifest as human-readable tables.

Usage::

    python -m repro.obs.report t.jsonl                 # trace summary
    python -m repro.obs.report t.jsonl --manifest m.json
    python -m repro.obs.report --manifest m.json       # manifest only

The trace summary counts events by kind and reconciles the MEMCON test
lifecycle (started = aborted + passed + failed); the manifest summary
prints provenance, per-experiment timings, the span tree and the final
counter snapshot.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .manifest import load_manifest
from .trace import read_trace

__all__ = ["main", "render_manifest", "render_trace_summary"]


def _table(rows: Sequence[Sequence[Any]], header: Sequence[str]) -> str:
    rendered = [[str(v) for v in row] for row in rows]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rendered)) if rendered
        else len(header[i])
        for i in range(len(header))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(header, widths)),
    ]
    lines.append("-" * len(lines[0]))
    for row in rendered:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def render_trace_summary(records: Iterable[dict]) -> str:
    """Event counts by kind plus the MEMCON lifecycle reconciliation."""
    kinds: Dict[str, int] = {}
    total = 0
    for record in records:
        kinds[record["kind"]] = kinds.get(record["kind"], 0) + 1
        total += 1
    lines = [f"== trace summary: {total} events =="]
    lines.append(_table(
        sorted(kinds.items(), key=lambda kv: (-kv[1], kv[0])),
        header=("kind", "count"),
    ))
    started = kinds.get("test_started", 0)
    resolved = (
        kinds.get("test_aborted", 0)
        + kinds.get("test_passed", 0)
        + kinds.get("test_failed", 0)
    )
    if started or resolved:
        verdict = "OK" if started == resolved else "MISMATCH"
        lines.append(
            f"memcon lifecycle: {started} started = "
            f"{kinds.get('test_aborted', 0)} aborted + "
            f"{kinds.get('test_passed', 0)} passed + "
            f"{kinds.get('test_failed', 0)} failed -> {verdict}"
        )
    return "\n".join(lines)


def _render_span(node: Dict[str, Any], depth: int, out: List[Tuple]) -> None:
    out.append((
        "  " * depth + node["name"],
        f"{node['elapsed_s']:.3f}s",
        node["count"],
    ))
    for child in node.get("children", []):
        _render_span(child, depth + 1, out)


def render_manifest(manifest: Dict[str, Any]) -> str:
    """Provenance, timings, span tree and counters of one manifest."""
    lines = [
        f"== run manifest (schema {manifest.get('schema')}) ==",
        f"experiments: {', '.join(manifest.get('experiments', []))}",
        f"seed: {manifest.get('seed')}  quick: {manifest.get('quick')}",
        f"git: {manifest.get('git_rev') or 'unknown'}  "
        f"python: {manifest.get('python')}",
        f"wall: {manifest.get('wall_s', 0.0):.3f}s",
    ]
    timings = manifest.get("timings") or []
    if timings:
        lines.append("")
        lines.append(_table(
            [(t["name"], f"{t['wall_s']:.3f}s") for t in timings],
            header=("experiment", "wall"),
        ))
    spans = manifest.get("spans")
    if spans:
        rows: List[Tuple] = []
        _render_span(spans, 0, rows)
        lines.append("")
        lines.append(_table(rows, header=("span", "elapsed", "count")))
    metrics = manifest.get("metrics") or {}
    counters = metrics.get("counters") or {}
    if counters:
        lines.append("")
        lines.append(_table(
            sorted(counters.items()), header=("counter", "value")
        ))
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Summarise a repro.obs JSONL trace and/or run manifest.",
    )
    parser.add_argument("trace", nargs="?", default=None,
                        help="JSONL trace file written with --trace")
    parser.add_argument("--manifest", default=None,
                        help="run manifest JSON written next to the output")
    parser.add_argument("--no-validate", action="store_true",
                        help="skip per-record schema validation")
    args = parser.parse_args(argv)
    if args.trace is None and args.manifest is None:
        parser.error("give a trace file, --manifest, or both")
    if args.trace is not None:
        records = read_trace(args.trace, validate=not args.no_validate)
        print(render_trace_summary(records))
    if args.manifest is not None:
        if args.trace is not None:
            print()
        print(render_manifest(load_manifest(args.manifest)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
