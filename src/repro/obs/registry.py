"""Process-local metrics registry: counters, gauges, fixed-bucket histograms.

The registry is the quantitative backbone of the observability layer:
instrumented code (the MEMCON controller, PRIL, the memory controller,
the SoftMC tester) fetches its instruments once at construction time and
bumps them on the hot path. Every instrument checks the owning registry's
``enabled`` flag before touching state, so a disabled registry — the
default for library use — costs one attribute load and a predictable
branch per call site.

A module-level default registry backs the zero-configuration path
(:func:`get_registry`); experiments that want isolated accounting build
their own :class:`MetricsRegistry` and install it with
:func:`set_registry` (or pass it around explicitly).
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
]

#: Default histogram bucket upper bounds (generic latency-ish scale).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1_000.0, 10_000.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value", "_registry")

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self.value = 0
        self._registry = registry

    def inc(self, n: int = 1) -> None:
        if self._registry.enabled:
            self.value += n

    def _reset(self) -> None:
        self.value = 0


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value", "_registry")

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self.value = 0.0
        self._registry = registry

    def set(self, value: float) -> None:
        if self._registry.enabled:
            self.value = value

    def add(self, delta: float) -> None:
        if self._registry.enabled:
            self.value += delta

    def _reset(self) -> None:
        self.value = 0.0


class Histogram:
    """Fixed-bucket histogram with sum/count for mean recovery.

    ``buckets`` are the inclusive upper bounds of the finite buckets; an
    implicit +inf bucket catches the overflow. Bounds are frozen at
    creation — no dynamic resizing on the hot path.
    """

    __slots__ = ("name", "bounds", "counts", "total", "sum", "_registry")

    def __init__(
        self,
        name: str,
        registry: "MetricsRegistry",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("bucket bounds must be strictly increasing")
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot is +inf
        self.total = 0
        self.sum = 0.0
        self._registry = registry

    def observe(self, value: float) -> None:
        if not self._registry.enabled:
            return
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += 1
        self.sum += value

    def observe_many(self, values: Sequence[float]) -> None:
        """Record a batch of observations in order.

        Equivalent to calling :meth:`observe` per value — in particular
        ``sum`` accumulates left-to-right, so a batched flush produces the
        same float as the per-observation path it replaces.
        """
        if not self._registry.enabled or not values:
            return
        counts = self.counts
        bounds = self.bounds
        bisect_left = bisect.bisect_left
        total = self.sum
        for value in values:
            counts[bisect_left(bounds, value)] += 1
            total += value
        self.total += len(values)
        self.sum = total

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def _reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0


class MetricsRegistry:
    """Named instruments plus snapshot/reset and an enable switch.

    Instruments are created lazily and cached by name; asking for an
    existing name with a different instrument type is an error (one name,
    one meaning). ``snapshot`` returns plain dicts safe to JSON-encode;
    ``reset`` zeroes values but keeps the instruments, so cached
    references held by instrumented objects stay live.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    # ------------------------------------------------------------------
    def _check_free(self, name: str, kind: str) -> None:
        for label, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if label != kind and name in table:
                raise ValueError(
                    f"metric {name!r} already registered as a {label}"
                )

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            self._check_free(name, "counter")
            instrument = self._counters[name] = Counter(name, self)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            self._check_free(name, "gauge")
            instrument = self._gauges[name] = Gauge(name, self)
        return instrument

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            self._check_free(name, "histogram")
            instrument = self._histograms[name] = Histogram(
                name, self, buckets if buckets is not None else DEFAULT_BUCKETS
            )
        elif buckets is not None and tuple(map(float, buckets)) != instrument.bounds:
            raise ValueError(
                f"histogram {name!r} already registered with other buckets"
            )
        return instrument

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-safe view of every instrument's current value."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "total": h.total,
                    "sum": h.sum,
                }
                for n, h in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        """Zero all values; instruments (and cached references) survive."""
        for table in (self._counters, self._gauges, self._histograms):
            for instrument in table.values():
                instrument._reset()

    # ------------------------------------------------------------------
    def merge(self, other) -> None:
        """Fold another registry (or a :meth:`snapshot` dict) into this one.

        Merge semantics follow each instrument's meaning across workers:
        counters and histograms are additive (counts, totals and sums
        add; bucket bounds must match), gauges are point-in-time values
        with no cross-worker order, so the merge keeps the maximum —
        the conventional high-water-mark reading. Values are written
        directly, bypassing the ``enabled`` flag: merging is bookkeeping,
        not hot-path instrumentation.
        """
        snapshot = other.snapshot() if isinstance(other, MetricsRegistry) else other
        if not isinstance(snapshot, dict):
            raise TypeError(f"cannot merge {type(other).__name__} into registry")
        for name, value in (snapshot.get("counters") or {}).items():
            self.counter(name).value += value
        for name, value in (snapshot.get("gauges") or {}).items():
            gauge = self.gauge(name)
            gauge.value = max(gauge.value, value)
        for name, data in (snapshot.get("histograms") or {}).items():
            bounds = tuple(float(b) for b in data.get("bounds", ()))
            histogram = self.histogram(name, bounds or None)
            if bounds and bounds != histogram.bounds:
                raise ValueError(
                    f"histogram {name!r}: shard bounds {bounds} do not match "
                    f"{histogram.bounds}"
                )
            counts = data.get("counts", [])
            if len(counts) != len(histogram.counts):
                raise ValueError(
                    f"histogram {name!r}: shard has {len(counts)} buckets, "
                    f"expected {len(histogram.counts)}"
                )
            for index, count in enumerate(counts):
                histogram.counts[index] += count
            histogram.total += data.get("total", 0)
            histogram.sum += data.get("sum", 0.0)


#: The process-local default registry. Disabled by default so plain
#: library use pays only the per-call-site flag check.
_default_registry = MetricsRegistry(enabled=False)


def get_registry() -> MetricsRegistry:
    """The currently installed process-local registry."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install a registry as the process default; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous
