"""Static HTML run dashboard: one self-contained file, no JavaScript.

``python -m repro.obs.dashboard MANIFEST [TRACE...]`` renders a run
manifest (plus, optionally, its JSONL trace files and ``BENCH_*.json``
perf trajectories) into a single HTML file with inline SVG charts:

* **run provenance** — experiments, seed, git revision, wall time;
* **rollup time series** — LO-REF / testing row coverage, test outcomes
  per window, controller latency percentiles, and (when the run tracked
  read disturbance) disturb pressure, all from the manifest's
  ``"timeseries"`` rollups (recomputed offline from the traces when the
  manifest lacks them);
* **flame view** — the sampled profiler's collapsed stacks
  (``"profile"``), falling back to the span tree, as a classic
  flamegraph layout;
* **worker timeline** — a gantt of per-unit intervals from the
  telemetry bus heartbeats (``workers.telemetry``), with stall/lost
  markers;
* **failure forensics** — the ledger census a ``--forensics`` run folds
  into the manifest: verdict histogram, record counts per ledger kind,
  and a pointer at the why-CLI;
* **BENCH trajectories** — sparkline small-multiples over the history
  lists in ``BENCH_*.json`` files passed via ``--bench``.

Everything is inline (styles, SVG) so CI can upload the file as an
artifact and it opens anywhere with zero network access. There is no
script tag: hover detail rides on native SVG ``<title>`` tooltips, and
every chart has a data-table fallback in a ``<details>`` block. Colors
are CSS custom properties with a ``prefers-color-scheme: dark``
override, so the one file serves both modes.
"""

from __future__ import annotations

import argparse
import html
import json
import os
import sys
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .analytics import aggregate_trace
from .manifest import load_manifest
from .trace import read_trace

__all__ = ["render_dashboard", "main"]


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _fmt(value: Any) -> str:
    """Compact human number for labels.

    Falls through to ``str`` for non-numbers, so any interpolation of
    its result into markup must go through :func:`_esc` — manifests are
    attacker-ish inputs (a unit named ``<b>x`` must render literally).
    """
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}".rstrip("0").rstrip(".")
        return f"{value:.3g}"
    return str(value)


def _cell(value: Any) -> str:
    """Escaped compact number: the only safe form inside markup."""
    return _esc(_fmt(value))


# ----------------------------------------------------------------------
# Palette: the validated reference palette (see DESIGN.md); light values
# with a dark override. Chart text always wears ink tokens, never a
# series color.
# ----------------------------------------------------------------------
_CSS = """
:root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --ink-1: #0b0b0b;
  --ink-2: #52514e;
  --muted: #898781;
  --grid: #e1e0d9;
  --baseline: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6;
  --series-2: #eb6834;
  --series-3: #1baf7a;
  --status-good: #0ca30c;
  --status-warning: #fab219;
  --status-critical: #d03b3b;
  --flame-0: #2a78d6;
  --flame-1: #5598e7;
  --flame-2: #86b6ef;
  --flame-3: #b7d3f6;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --ink-1: #ffffff;
    --ink-2: #c3c2b7;
    --muted: #898781;
    --grid: #2c2c2a;
    --baseline: #383835;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5;
    --series-2: #d95926;
    --series-3: #199e70;
    --flame-0: #184f95;
    --flame-1: #256abf;
    --flame-2: #3987e5;
    --flame-3: #6da7ec;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px;
  background: var(--page); color: var(--ink-1);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
main { max-width: 880px; margin: 0 auto; }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 0 0 8px; color: var(--ink-1); }
section {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px 16px 12px; margin: 16px 0;
}
.sub { color: var(--ink-2); margin: 0 0 16px; }
.prov { display: flex; flex-wrap: wrap; gap: 8px 24px; margin: 0; }
.prov div { min-width: 110px; }
.prov dt { color: var(--muted); font-size: 12px; }
.prov dd { margin: 0; font-variant-numeric: tabular-nums; }
.legend { display: flex; flex-wrap: wrap; gap: 4px 16px;
  color: var(--ink-2); font-size: 12px; margin: 4px 0 0; }
.legend span::before {
  content: ""; display: inline-block; width: 10px; height: 10px;
  border-radius: 2px; margin-right: 6px; background: var(--sw);
}
svg { display: block; width: 100%; height: auto; }
svg text { font: 11px system-ui, -apple-system, "Segoe UI", sans-serif;
  fill: var(--ink-2); }
svg text.muted { fill: var(--muted); }
svg text.num { font-variant-numeric: tabular-nums; }
svg text.onmark { fill: #ffffff; }
.empty { color: var(--muted); font-style: italic; }
details { margin-top: 8px; color: var(--ink-2); font-size: 12px; }
details table { border-collapse: collapse; margin-top: 6px; }
details th, details td {
  border: 1px solid var(--grid); padding: 2px 8px; text-align: right;
  font-variant-numeric: tabular-nums; }
details th:first-child, details td:first-child { text-align: left; }
"""


# ----------------------------------------------------------------------
# SVG primitives
# ----------------------------------------------------------------------
_W, _H = 760, 200
_ML, _MR, _MT, _MB = 52, 12, 8, 22


def _svg(body: str, width: int = _W, height: int = _H) -> str:
    return (
        f'<svg viewBox="0 0 {width} {height}" role="img" '
        f'preserveAspectRatio="xMidYMid meet">{body}</svg>'
    )


def _frame(width: int, height: int, y_ticks: Sequence[Tuple[float, str]],
           x_labels: Sequence[Tuple[float, str]]) -> str:
    """Gridlines, baseline and axis labels shared by the xy charts.

    ``y_ticks`` pairs a pixel y with its label; ``x_labels`` pairs a
    pixel x with its label.
    """
    parts: List[str] = []
    for y, label in y_ticks:
        parts.append(
            f'<line x1="{_ML}" y1="{y:.1f}" x2="{width - _MR}" '
            f'y2="{y:.1f}" stroke="var(--grid)" stroke-width="1"/>'
        )
        parts.append(
            f'<text class="num" x="{_ML - 6}" y="{y + 3.5:.1f}" '
            f'text-anchor="end">{_esc(label)}</text>'
        )
    base = height - _MB
    parts.append(
        f'<line x1="{_ML}" y1="{base}" x2="{width - _MR}" y2="{base}" '
        f'stroke="var(--baseline)" stroke-width="1"/>'
    )
    for x, label in x_labels:
        parts.append(
            f'<text class="muted num" x="{x:.1f}" y="{height - 6}" '
            f'text-anchor="middle">{_esc(label)}</text>'
        )
    return "".join(parts)


def _y_scale(vmax: float, height: int) -> Tuple[float, List[Tuple[float, str]]]:
    """Pixels-per-unit plus three round-ish gridline ticks."""
    vmax = vmax if vmax > 0 else 1.0
    plot_h = height - _MT - _MB
    ticks = []
    for frac in (0.0, 0.5, 1.0):
        value = vmax * frac
        y = height - _MB - plot_h * frac
        ticks.append((y, _fmt(value)))
    return plot_h / vmax, ticks


def _line_chart(
    series: Sequence[Dict[str, Any]],
    x_values: Sequence[float],
    x_unit: str = "",
    height: int = _H,
    y_max: Optional[float] = None,
) -> str:
    """Multi-series line chart. ``series[i]["points"]`` aligns with
    ``x_values``; ``None`` points break the line."""
    if not x_values:
        return ""
    x_lo, x_hi = min(x_values), max(x_values)
    span = (x_hi - x_lo) or 1.0
    plot_w = _W - _ML - _MR
    if y_max is None:
        y_max = max(
            (p for s in series for p in s["points"] if p is not None),
            default=1.0,
        )
    ppu, y_ticks = _y_scale(float(y_max), height)
    base = height - _MB
    x_labels = [
        (_ML, f"{_fmt(x_lo)}{x_unit}"),
        (_W - _MR, f"{_fmt(x_hi)}{x_unit}"),
    ]
    parts = [_frame(_W, height, y_ticks, x_labels)]
    for s in series:
        segments: List[List[str]] = [[]]
        for x, y in zip(x_values, s["points"]):
            if y is None:
                if segments[-1]:
                    segments.append([])
                continue
            px = _ML + (x - x_lo) / span * plot_w
            py = base - min(float(y), y_max) * ppu
            segments[-1].append(f"{px:.1f},{py:.1f}")
        for seg in segments:
            if len(seg) == 1:
                cx, cy = seg[0].split(",")
                parts.append(
                    f'<circle cx="{cx}" cy="{cy}" r="2.5" '
                    f'fill="var({s["color"]})"/>'
                )
            elif len(seg) > 1:
                parts.append(
                    f'<polyline points="{" ".join(seg)}" fill="none" '
                    f'stroke="var({s["color"]})" stroke-width="2" '
                    f'stroke-linejoin="round" stroke-linecap="round"/>'
                )
    return _svg("".join(parts), height=height)


def _stacked_bars(
    windows: Sequence[Mapping[str, Any]],
    segments: Sequence[Tuple[str, str]],
    values: Sequence[Dict[str, float]],
    x_unit: str = " ms",
    height: int = _H,
) -> str:
    """Stacked bars per window with 2px surface gaps between segments."""
    if not windows:
        return ""
    totals = [sum(v.values()) for v in values]
    y_max = max(totals) or 1.0
    ppu, y_ticks = _y_scale(float(y_max), height)
    base = height - _MB
    plot_w = _W - _ML - _MR
    n = len(windows)
    slot = plot_w / n
    bar_w = max(min(slot - 2.0, 40.0), 1.0)
    x_labels = [
        (_ML, f"{_fmt(windows[0].get('t_ms', 0))}{x_unit}"),
        (_W - _MR, f"{_fmt(windows[-1].get('t_ms', 0))}{x_unit}"),
    ]
    parts = [_frame(_W, height, y_ticks, x_labels)]
    for i, (window, value) in enumerate(zip(windows, values)):
        x = _ML + slot * i + (slot - bar_w) / 2
        y = base
        tip = ", ".join(
            f"{key} {int(value.get(key, 0))}" for key, _color in segments
        )
        bar = [f'<g><title>t={_cell(window.get("t_ms"))}{x_unit}: {_esc(tip)}</title>']
        for key, color in segments:
            v = float(value.get(key, 0))
            if v <= 0:
                continue
            h = v * ppu
            y -= h
            # 2px gap carved from the segment's top end.
            draw_h = max(h - 2.0, 0.75)
            bar.append(
                f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar_w:.1f}" '
                f'height="{draw_h:.1f}" rx="1" fill="var({color})"/>'
            )
        bar.append("</g>")
        parts.append("".join(bar))
    return _svg("".join(parts), height=height)


def _hbar_chart(items: Sequence[Tuple[str, float]], height_per: int = 22) -> str:
    """Horizontal bars (event-kind histogram fallback)."""
    if not items:
        return ""
    v_max = max(v for _n, v in items) or 1.0
    label_w, value_w = 180, 64
    plot_w = _W - label_w - value_w
    height = height_per * len(items) + 8
    parts = []
    for i, (name, value) in enumerate(items):
        y = 4 + i * height_per
        w = max(plot_w * float(value) / v_max, 1.5)
        parts.append(
            f'<text x="{label_w - 8}" y="{y + 14}" text-anchor="end">'
            f"{_esc(name)}</text>"
        )
        parts.append(
            f'<g><title>{_esc(name)}: {_cell(value)}</title>'
            f'<rect x="{label_w}" y="{y + 3}" width="{w:.1f}" height="14" '
            f'rx="4" fill="var(--series-1)"/></g>'
        )
        parts.append(
            f'<text class="num" x="{label_w + w + 6:.1f}" y="{y + 14}">'
            f"{_cell(value)}</text>"
        )
    return _svg("".join(parts), height=height)


# ----------------------------------------------------------------------
# Flame view
# ----------------------------------------------------------------------
class _Flame:
    __slots__ = ("name", "value", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.children: Dict[str, "_Flame"] = {}

    def child(self, name: str) -> "_Flame":
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = _Flame(name)
        return node


def _flame_from_stacks(stacks: Mapping[str, int]) -> Optional[_Flame]:
    root = _Flame("all")
    for stack, count in stacks.items():
        frames = [f for f in stack.split(";") if f]
        if not frames:
            continue
        root.value += count
        node = root
        for frame in frames:
            node = node.child(frame)
            node.value += count
    return root if root.value else None


def _flame_from_spans(span: Mapping[str, Any]) -> Optional[_Flame]:
    def build(data: Mapping[str, Any]) -> _Flame:
        node = _Flame(str(data.get("name", "?")))
        node.value = float(data.get("elapsed_s", 0.0))
        child_sum = 0.0
        for child_data in data.get("children") or []:
            child = build(child_data)
            node.children[child.name] = child
            child_sum += child.value
        node.value = max(node.value, child_sum)
        return node

    root = build(span)
    return root if root.value else None


def _render_flame(root: _Flame, unit: str, max_depth: int = 8) -> str:
    row_h = 22
    rows: List[str] = []
    total = root.value or 1.0
    depth_seen = [0]

    def render(node: _Flame, x0: float, depth: int) -> None:
        if depth > max_depth:
            return
        depth_seen[0] = max(depth_seen[0], depth)
        width = _W * node.value / total
        if width < 1.0:
            return
        y = depth * (row_h + 2)
        pct = 100.0 * node.value / total
        cls = f"--flame-{min(depth, 3)}"
        rows.append(
            f'<g><title>{_esc(node.name)}: {_cell(node.value)}{_esc(unit)} '
            f"({pct:.1f}%)</title>"
            f'<rect x="{x0:.1f}" y="{y}" width="{max(width - 1.5, 1.0):.1f}" '
            f'height="{row_h}" rx="2" fill="var({cls})"/></g>'
        )
        if width > 60:
            label = node.name if len(node.name) * 7 < width else (
                node.name[: max(int(width / 7) - 1, 1)] + "…"
            )
            text_cls = "onmark" if depth < 2 else ""
            rows.append(
                f'<text class="{text_cls}" x="{x0 + 6:.1f}" y="{y + 15}">'
                f"{_esc(label)}</text>"
            )
        x = x0
        for child in sorted(
            node.children.values(), key=lambda n: n.value, reverse=True
        ):
            render(child, x, depth + 1)
            x += _W * child.value / total

    render(root, 0.0, 0)
    height = (depth_seen[0] + 1) * (row_h + 2)
    return _svg("".join(rows), height=height)


# ----------------------------------------------------------------------
# Worker timeline (gantt)
# ----------------------------------------------------------------------
def _render_worker_timeline(telemetry: Mapping[str, Any]) -> str:
    workers = telemetry.get("workers") or []
    if not workers:
        return ""
    t_lo = t_hi = None
    for worker in workers:
        for interval in worker.get("timeline") or []:
            for key in ("t_start", "t_end"):
                t = interval.get(key)
                if t is None:
                    continue
                t_lo = t if t_lo is None else min(t_lo, t)
                t_hi = t if t_hi is None else max(t_hi, t)
    if t_lo is None or t_hi is None:
        return ""
    span = (t_hi - t_lo) or 1.0
    label_w = 150
    plot_w = _W - label_w - 12
    row_h, gap = 20, 6
    height = len(workers) * (row_h + gap) + 26
    parts: List[str] = []
    base_y = height - 18
    parts.append(
        f'<line x1="{label_w}" y1="{base_y}" x2="{_W - 12}" y2="{base_y}" '
        f'stroke="var(--baseline)" stroke-width="1"/>'
    )
    parts.append(
        f'<text class="muted num" x="{label_w}" y="{height - 4}">0s</text>'
    )
    parts.append(
        f'<text class="muted num" x="{_W - 12}" y="{height - 4}" '
        f'text-anchor="end">{_fmt(span)}s</text>'
    )
    for i, worker in enumerate(workers):
        y = i * (row_h + gap) + 2
        state = worker.get("state", "idle")
        label = str(worker.get("label", "?"))
        parts.append(
            f'<text x="{label_w - 8}" y="{y + 14}" text-anchor="end">'
            f"{_esc(label)}</text>"
        )
        for interval in worker.get("timeline") or []:
            t0 = interval.get("t_start")
            t1 = interval.get("t_end")
            if t0 is None:
                continue
            open_end = t1 is None
            t1 = t1 if t1 is not None else t_hi
            x = label_w + (t0 - t_lo) / span * plot_w
            w = max((t1 - t0) / span * plot_w - 1.5, 1.5)
            name = f"{interval.get('experiment')}/{interval.get('unit')}"
            wall = interval.get("wall_s")
            tip = f"{name} ({_fmt(wall)}s)" if wall is not None else name
            fill = "var(--status-warning)" if open_end else "var(--series-1)"
            parts.append(
                f"<g><title>{_esc(label)}: {_esc(tip)}</title>"
                f'<rect x="{x:.1f}" y="{y}" width="{w:.1f}" '
                f'height="{row_h}" rx="3" fill="{fill}"/></g>'
            )
        if state in ("stalled", "lost"):
            parts.append(
                f'<text x="{_W - 14}" y="{y + 14}" text-anchor="end" '
                f'style="fill: var(--status-critical); font-weight: 600">'
                f"⚠ {_esc(state)}</text>"
            )
    return _svg("".join(parts), height=height)


# ----------------------------------------------------------------------
# BENCH trajectories
# ----------------------------------------------------------------------
_BENCH_SKIP_FIELDS = {"jobs", "recorded_at", "history", "path"}


def _bench_trajectories(
    bench_files: Mapping[str, Mapping[str, Any]],
) -> List[Tuple[str, List[float]]]:
    """(label, values-oldest-first) per numeric field with history."""
    out: List[Tuple[str, List[float]]] = []
    for file_label, data in sorted(bench_files.items()):
        if not isinstance(data, Mapping):
            continue
        for bench_name, entry in sorted(data.items()):
            if not isinstance(entry, Mapping):
                continue
            rows = list(entry.get("history") or []) + [entry]
            for field in sorted(entry):
                if field in _BENCH_SKIP_FIELDS:
                    continue
                value = entry[field]
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    continue
                values = [
                    float(row[field])
                    for row in rows
                    if isinstance(row, Mapping)
                    and isinstance(row.get(field), (int, float))
                    and not isinstance(row.get(field), bool)
                ]
                if len(values) < 2:
                    continue
                out.append((f"{bench_name}.{field}", values))
    return out


def _sparkline(label: str, values: Sequence[float]) -> str:
    w, h = 240, 56
    pad = 6
    v_lo, v_hi = min(values), max(values)
    span = (v_hi - v_lo) or 1.0
    n = len(values)
    points = []
    for i, v in enumerate(values):
        x = pad + (w - 2 * pad) * (i / max(n - 1, 1))
        y = h - 16 - (h - 26) * ((v - v_lo) / span)
        points.append((x, y))
    path = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
    lx, ly = points[-1]
    tip = " → ".join(_fmt(v) for v in values)
    body = (
        f"<g><title>{_esc(label)}: {_esc(tip)}</title>"
        f'<polyline points="{path}" fill="none" stroke="var(--series-1)" '
        f'stroke-width="2" stroke-linejoin="round"/>'
        f'<circle cx="{lx:.1f}" cy="{ly:.1f}" r="3" '
        f'fill="var(--series-1)"/></g>'
        f'<text class="muted" x="{pad}" y="{h - 3}">{_esc(label)}</text>'
        f'<text class="num" x="{w - pad}" y="{h - 3}" text-anchor="end">'
        f"{_fmt(values[-1])}</text>"
    )
    return (
        f'<svg viewBox="0 0 {w} {h}" role="img" '
        f'style="width:{w}px">{body}</svg>'
    )


# ----------------------------------------------------------------------
# Sections
# ----------------------------------------------------------------------
def _legend(entries: Sequence[Tuple[str, str]]) -> str:
    spans = "".join(
        f'<span style="--sw: var({color})">{_esc(label)}</span>'
        for label, color in entries
    )
    return f'<p class="legend">{spans}</p>'


def _windows_table(windows: Sequence[Mapping[str, Any]], limit: int = 48) -> str:
    head = (
        "<tr><th>t_ms</th><th>lo frac</th><th>testing frac</th>"
        "<th>passed</th><th>failed</th><th>aborted</th>"
        "<th>p50 ns</th><th>p95 ns</th><th>p99 ns</th></tr>"
    )
    rows = []
    for window in windows[:limit]:
        ref = window.get("ref") or {}
        tests = window.get("tests") or {}
        mc = window.get("mc") or {}
        rows.append(
            "<tr>"
            f"<td>{_cell(window.get('t_ms'))}</td>"
            f"<td>{_cell(ref.get('lo_fraction'))}</td>"
            f"<td>{_cell(ref.get('testing_fraction'))}</td>"
            f"<td>{_cell(tests.get('passed'))}</td>"
            f"<td>{_cell(tests.get('failed'))}</td>"
            f"<td>{_cell(tests.get('aborted'))}</td>"
            f"<td>{_cell(mc.get('latency_p50_ns'))}</td>"
            f"<td>{_cell(mc.get('latency_p95_ns'))}</td>"
            f"<td>{_cell(mc.get('latency_p99_ns'))}</td>"
            "</tr>"
        )
    more = (
        f"<p>…{len(windows) - limit} more windows</p>"
        if len(windows) > limit else ""
    )
    return (
        "<details><summary>Data table</summary>"
        f"<table>{head}{''.join(rows)}</table>{more}</details>"
    )


def _section(title: str, *bodies: str, sub: str = "") -> str:
    body = "".join(b for b in bodies if b)
    if not body:
        body = '<p class="empty">no data in this run</p>'
    subline = f'<p class="sub">{_esc(sub)}</p>' if sub else ""
    return f"<section><h2>{_esc(title)}</h2>{subline}{body}</section>"


def _provenance_section(manifest: Mapping[str, Any]) -> str:
    git_rev = manifest.get("git_rev") or "-"
    fields = [
        ("experiments", ", ".join(manifest.get("experiments") or []) or "-"),
        ("seed", manifest.get("seed")),
        ("mode", "quick" if manifest.get("quick") else "full"),
        ("jobs", (manifest.get("config") or {}).get("jobs", 1)),
        ("wall", f"{_fmt(manifest.get('wall_s'))}s"),
        ("git", str(git_rev)[:12]),
        ("python", manifest.get("python") or "-"),
    ]
    items = "".join(
        f"<div><dt>{_esc(name)}</dt><dd>{_esc(value)}</dd></div>"
        for name, value in fields
    )
    return f'<section><h2>Run</h2><dl class="prov">{items}</dl></section>'


def _timeseries_sections(timeseries: Optional[Mapping[str, Any]]) -> str:
    if not timeseries:
        return _section(
            "Time series",
            sub="no rollups in the manifest (run with --trace or --live, "
            "or pass the trace files on the command line)",
        )
    windows = timeseries.get("windows") or []
    out: List[str] = []

    ref_windows = [w for w in windows if w.get("ref")]
    if ref_windows:
        x = [w["t_ms"] for w in ref_windows]
        chart = _line_chart(
            [
                {"color": "--series-1",
                 "points": [w["ref"]["lo_fraction"] for w in ref_windows]},
                {"color": "--series-3",
                 "points": [w["ref"]["testing_fraction"]
                            for w in ref_windows]},
            ],
            x, x_unit=" ms", y_max=None,
        )
        out.append(_section(
            "LO-REF coverage",
            chart,
            _legend([("LO-REF fraction", "--series-1"),
                     ("testing fraction", "--series-3")]),
            _windows_table(windows),
            sub=f"row-population fractions per "
            f"{_fmt(timeseries.get('window_ms'))} ms window",
        ))

    test_windows = [
        w for w in windows
        if any((w.get("tests") or {}).get(k) for k in
               ("passed", "failed", "aborted"))
    ]
    if test_windows:
        chart = _stacked_bars(
            test_windows,
            [("passed", "--status-good"), ("failed", "--status-critical"),
             ("aborted", "--status-warning")],
            [w["tests"] for w in test_windows],
        )
        out.append(_section(
            "Test outcomes",
            chart,
            _legend([("✓ passed", "--status-good"),
                     ("✗ failed", "--status-critical"),
                     ("◌ aborted", "--status-warning")]),
            sub="retention-test verdicts per window",
        ))

    mc_windows = [w for w in windows if w.get("mc")]
    if mc_windows:
        x = [w["t_ms"] for w in mc_windows]
        chart = _line_chart(
            [
                {"color": "--series-1",
                 "points": [w["mc"].get("latency_p50_ns")
                            for w in mc_windows]},
                {"color": "--series-3",
                 "points": [w["mc"].get("latency_p95_ns")
                            for w in mc_windows]},
                {"color": "--series-2",
                 "points": [w["mc"].get("latency_p99_ns")
                            for w in mc_windows]},
            ],
            x, x_unit=" ms",
        )
        out.append(_section(
            "Request latency percentiles",
            chart,
            _legend([("p50 ns", "--series-1"), ("p95 ns", "--series-3"),
                     ("p99 ns", "--series-2")]),
            sub="controller read-latency bucket quantiles per window",
        ))

    disturb_windows = [w for w in windows if w.get("disturb")]
    if disturb_windows:
        x = [w["t_ms"] for w in disturb_windows]
        chart = _line_chart(
            [
                {"color": "--series-2",
                 "points": [w["disturb"].get("max_pressure")
                            for w in disturb_windows]},
            ],
            x, x_unit=" ms",
        )
        out.append(_section(
            "Disturb pressure",
            chart,
            _legend([("max pressure (fraction of effective threshold)",
                      "--series-2")]),
            sub="read-disturbance dose high-water mark per window",
        ))

    if not out:
        # Lifecycle-only traces (pure fault-engine experiments) still
        # carry an event census worth a glance.
        kinds = sorted(
            (timeseries.get("kinds") or {}).items(),
            key=lambda kv: kv[1], reverse=True,
        )
        out.append(_section(
            "Event census",
            _hbar_chart(kinds[:12]),
            sub=f"{_fmt(timeseries.get('events_total'))} events, no "
            "windowed rollups in this trace",
        ))
    return "".join(out)


def _flame_section(manifest: Mapping[str, Any]) -> str:
    profile = manifest.get("profile")
    if profile and profile.get("stacks"):
        root = _flame_from_stacks(profile["stacks"])
        sub = (
            f"{_fmt(profile.get('sample_count'))} samples at "
            f"{_fmt((profile.get('interval_s') or 0) * 1000)} ms, "
            f"{_fmt(100 * (profile.get('attributed_fraction') or 0))}% "
            "inside named spans"
        )
        unit = " samples"
    elif manifest.get("spans"):
        root = _flame_from_spans(manifest["spans"])
        sub = "from span wall-clock totals (run --profile for samples)"
        unit = "s"
    else:
        root = None
        sub = ""
        unit = ""
    if root is None:
        return _section("Where the time went", sub="no span or profile data")
    return _section(
        "Where the time went", _render_flame(root, unit), sub=sub
    )


def _workers_section(manifest: Mapping[str, Any]) -> str:
    workers = manifest.get("workers")
    if not workers:
        return ""
    telemetry = workers.get("telemetry") or {}
    gantt = _render_worker_timeline(telemetry)
    stats = workers.get("stats") or {}
    bits = [
        f"jobs {workers.get('jobs')}",
        f"start method {workers.get('start_method')}",
    ]
    bits.extend(f"{key} {value}" for key, value in sorted(stats.items()))
    rows = telemetry.get("workers") or []
    table = ""
    if rows:
        head = (
            "<tr><th>worker</th><th>state</th><th>units</th>"
            "<th>heartbeats</th><th>stalls</th><th>rss peak</th></tr>"
        )
        body = "".join(
            "<tr>"
            f"<td>{_esc(r.get('label'))}</td>"
            f"<td>{_esc(r.get('state'))}</td>"
            f"<td>{_cell(r.get('units_done'))}</td>"
            f"<td>{_cell(r.get('heartbeats'))}</td>"
            f"<td>{_cell(r.get('stalls'))}</td>"
            f"<td>{_cell((r.get('rss_peak_bytes') or 0) / (1 << 20))} MB</td>"
            "</tr>"
            for r in rows
        )
        table = (
            "<details><summary>Worker table</summary>"
            f"<table>{head}{body}</table></details>"
        )
    return _section(
        "Worker timeline",
        gantt,
        table,
        sub=" · ".join(bits) + (
            "" if rows else
            " — no bus telemetry (run with --live to record heartbeats)"
        ),
    )


def _fleet_section(manifest: Mapping[str, Any]) -> str:
    fleet = manifest.get("fleet")
    if not isinstance(fleet, Mapping):
        return ""
    hosts = fleet.get("hosts") or {}
    coverage = fleet.get("coverage") or {}
    edges = coverage.get("bin_edges") or []
    counts = coverage.get("bin_counts") or []
    histogram = ""
    if len(edges) == len(counts) + 1 and any(counts):
        histogram = _hbar_chart([
            (f"{edges[i]:.1f}–{edges[i + 1]:.1f}", float(counts[i]))
            for i in range(len(counts))
        ])
    tenant_rows = []
    for tenant_id, fold in sorted((fleet.get("tenants") or {}).items()):
        if not isinstance(fold, Mapping):
            continue
        t_coverage = fold.get("coverage") or {}
        t_tests = fold.get("tests") or {}
        tenant_rows.append(
            "<tr>"
            f"<td>{_esc(tenant_id)}</td>"
            f"<td>{_cell(fold.get('hosts_done'))}</td>"
            f"<td>{_cell(fold.get('hosts_failed'))}</td>"
            f"<td>{_cell(t_coverage.get('mean'))}</td>"
            f"<td>{_cell(t_coverage.get('p95'))}</td>"
            f"<td>{_cell(fold.get('refresh_reduction_mean'))}</td>"
            f"<td>{_cell(t_tests.get('total'))}</td>"
            f"<td>{_cell(fold.get('pril_hit_rate'))}</td>"
            f"<td>{_cell(fold.get('test_bandwidth_per_s'))}</td>"
            "</tr>"
        )
    tenant_table = ""
    if tenant_rows:
        head = (
            "<tr><th>tenant</th><th>done</th><th>failed</th>"
            "<th>coverage μ</th><th>coverage p95</th><th>reduction μ</th>"
            "<th>tests</th><th>PRIL hit</th><th>tests/s</th></tr>"
        )
        tenant_table = f"<table>{head}{''.join(tenant_rows)}</table>"
    wall = fleet.get("wall") or {}
    ingest = fleet.get("ingest") or {}
    resident = fleet.get("resident_rows") or {}
    bits = [
        f"{_fmt(hosts.get('done'))} hosts done, "
        f"{_fmt(hosts.get('failed'))} failed",
        f"host wall p50/p95/p99: {_fmt(wall.get('p50_s'))}/"
        f"{_fmt(wall.get('p95_s'))}/{_fmt(wall.get('p99_s'))} s",
        f"ingest: {_fmt(ingest.get('records'))} records, backlog peak "
        f"{_fmt(ingest.get('backlog_peak'))}",
        f"resident rows peak {_fmt(resident.get('peak'))}",
    ]
    if histogram:
        histogram = (
            "<details open><summary>LO-REF coverage distribution "
            "(hosts per bin)</summary>" + histogram + "</details>"
        )
    return _section(
        "Fleet",
        tenant_table,
        histogram,
        sub=" · ".join(bits),
    )


def _forensics_section(manifest: Mapping[str, Any]) -> str:
    forensics = manifest.get("forensics")
    if not isinstance(forensics, Mapping):
        return ""
    verdicts = forensics.get("verdicts") or {}
    kinds = forensics.get("kinds") or {}
    verdict_chart = _hbar_chart(sorted(
        ((str(k), float(v)) for k, v in verdicts.items()),
        key=lambda kv: kv[1], reverse=True,
    )) if isinstance(verdicts, Mapping) else ""
    table = ""
    if isinstance(kinds, Mapping) and kinds:
        head = "<tr><th>ledger kind</th><th>records</th></tr>"
        body = "".join(
            f"<tr><td>{_esc(kind)}</td><td>{_cell(count)}</td></tr>"
            for kind, count in sorted(kinds.items())
        )
        table = (
            "<details><summary>Ledger kinds</summary>"
            f"<table>{head}{body}</table></details>"
        )
    bits = [
        f"{_fmt(forensics.get('records'))} ledger records across "
        f"{_fmt(forensics.get('rows'))} rows",
    ]
    ledger_path = forensics.get("ledger_path")
    if ledger_path:
        bits.append(f"ledger: {ledger_path}")
    bits.append(
        "ask `python -m repro.obs.why --row R` for a row's causal chain"
    )
    return _section(
        "Failure forensics",
        verdict_chart,
        table,
        sub=" · ".join(bits),
    )


def _bench_section(bench_files: Mapping[str, Mapping[str, Any]]) -> str:
    if not bench_files:
        return ""
    charts = [
        _sparkline(label, values)
        for label, values in _bench_trajectories(bench_files)
    ]
    return _section(
        "Benchmark trajectories",
        '<div style="display:flex;flex-wrap:wrap;gap:8px 24px">'
        + "".join(charts) + "</div>" if charts else "",
        sub="history of committed BENCH_*.json entries, oldest to newest",
    )


# ----------------------------------------------------------------------
def render_dashboard(
    manifest: Mapping[str, Any],
    timeseries: Optional[Mapping[str, Any]] = None,
    bench_files: Optional[Mapping[str, Mapping[str, Any]]] = None,
) -> str:
    """Render the full dashboard HTML for one run manifest."""
    timeseries = timeseries if timeseries is not None else manifest.get(
        "timeseries"
    )
    title = "MEMCON run · " + (
        ", ".join(manifest.get("experiments") or []) or "unknown"
    )
    sections = [
        _provenance_section(manifest),
        _timeseries_sections(timeseries),
        _flame_section(manifest),
        _workers_section(manifest),
        _fleet_section(manifest),
        _forensics_section(manifest),
        _bench_section(bench_files or {}),
    ]
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{_esc(title)}</title>\n"
        '<meta name="viewport" content="width=device-width, '
        'initial-scale=1">\n'
        f"<style>{_CSS}</style></head>\n"
        f"<body><main><h1>{_esc(title)}</h1>"
        f'<p class="sub">static run dashboard — hover any mark for '
        "detail</p>"
        + "".join(sections)
        + "</main></body></html>\n"
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.dashboard",
        description="Render a run manifest (and traces) into a static "
        "HTML dashboard.",
    )
    parser.add_argument("manifest", help="run manifest JSON path")
    parser.add_argument(
        "traces", nargs="*",
        help="JSONL trace files; when given, the time-series rollups are "
        "recomputed offline from them (several files merge by simulated "
        "time)",
    )
    parser.add_argument(
        "--out", metavar="FILE", default=None,
        help="output HTML path (default: next to the manifest)",
    )
    parser.add_argument(
        "--bench", metavar="FILE", action="append", default=[],
        help="BENCH_*.json trajectory file (repeatable)",
    )
    parser.add_argument(
        "--window-ms", type=float, default=1024.0,
        help="rollup window for offline trace aggregation "
        "(default %(default)s)",
    )
    args = parser.parse_args(argv)

    manifest = load_manifest(args.manifest)
    timeseries = None
    if args.traces:
        if len(args.traces) == 1:
            records: Iterable[dict] = read_trace(
                args.traces[0], validate=False, tolerate_truncation=True
            )
        else:
            records = read_trace(merge=list(args.traces), validate=False)
        timeseries = aggregate_trace(records, window_ms=args.window_ms)

    bench_files: Dict[str, Any] = {}
    for path in args.bench:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                bench_files[os.path.basename(path)] = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"warning: skipping {path}: {exc}", file=sys.stderr)

    html_text = render_dashboard(
        manifest, timeseries=timeseries, bench_files=bench_files
    )
    out = args.out or os.path.splitext(args.manifest)[0] + ".html"
    parent = os.path.dirname(out)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(out, "w", encoding="utf-8") as handle:
        handle.write(html_text)
    print(f"dashboard written to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
