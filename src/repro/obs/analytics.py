"""Streaming analytics over the event trace: fan-out sinks and rollups.

PR 2's trace made every pipeline event *recordable*; this module makes
the stream *consumable while it flows*. Two pieces:

* :class:`TeeSink` fans each emitted record out to several sinks, so a
  run can write the durable JSONL file **and** feed in-process analysis
  from the same ``obs.emit`` call — live analysis never re-reads the
  trace file.
* :class:`AggregatingSink` folds the stream into windowed time-series
  rollups: HI-REF vs LO-REF row population over simulated time, test
  pass/fail/abort counts per window, PRIL predicted-vs-actual hit rate
  per quantum, controller request counts / latency percentiles / refresh
  bandwidth per window, and energy rollups. The result
  (:meth:`AggregatingSink.to_dict`) is JSON-safe, lands in the run
  manifest under ``"timeseries"``, and renders via
  ``python -m repro.obs.report --timeseries``.

:func:`aggregate_trace` applies the *same* aggregation offline to an
iterable of records (e.g. ``read_trace(path)``); feeding the two paths
the same record sequence yields identical rollups, which the test suite
asserts as a property.

Windowing uses *simulated* time: events carrying ``t_ms`` fall into
window ``floor(t_ms / window_ms)``; controller events carrying ``t_ns``
are converted to milliseconds first, so both clock domains share one
window axis. The refresh-state population is sampled when the stream
first crosses a window boundary (events are processed in emission
order), and the in-progress window is sampled at :meth:`to_dict` time.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from .trace import TraceSchemaError

__all__ = [
    "LATENCY_BUCKET_BOUNDS_NS",
    "AggregatingSink",
    "TeeSink",
    "aggregate_trace",
]

#: Request-latency bucket upper bounds, matching the controller's
#: ``mc.read_latency_ns`` histogram so online and registry views agree.
LATENCY_BUCKET_BOUNDS_NS: Tuple[float, ...] = (
    25.0, 50.0, 100.0, 200.0, 400.0, 800.0, 1600.0,
)


class TeeSink:
    """Fans every record out to each of its child sinks, in order."""

    def __init__(self, *sinks) -> None:
        if not sinks:
            raise ValueError("TeeSink needs at least one child sink")
        self.sinks = list(sinks)

    def emit(self, record: Mapping) -> None:
        for sink in self.sinks:
            sink.emit(record)

    def close(self) -> None:
        """Close every child that knows how to close (first error wins)."""
        error: Optional[BaseException] = None
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is None:
                continue
            try:
                close()
            except BaseException as exc:  # keep closing the rest
                error = error or exc
        if error is not None:
            raise error


def _percentile_from_buckets(
    bounds: Tuple[float, ...], counts: List[int], total: int, q: float
) -> Optional[float]:
    """Upper bound of the bucket holding the q-quantile observation.

    Returns ``None`` with no observations or when the quantile falls in
    the overflow (+inf) bucket — the true value exceeds every bound.
    """
    if total <= 0:
        return None
    target = q * total
    cumulative = 0
    for bound, count in zip(bounds, counts):
        cumulative += count
        if cumulative >= target:
            return bound
    return None


class AggregatingSink:
    """Folds trace records into windowed time-series rollups in-process.

    Parameters
    ----------
    window_ms:
        Width of one aggregation window in simulated milliseconds (the
        MEMCON quantum, 1024 ms, is the natural choice).
    total_pages:
        Row population for HI/LO-REF fractions; when ``None`` the number
        of distinct pages seen in refresh/test events is used, which
        undercounts never-touched (always HI-REF) rows.

    This sink rides inside traced hot loops and is benchmarked to stay
    under 5% of a traced MEMCON run (``benchmarks/test_bench_obs.py``),
    so ingestion is two-phase: ``emit`` *is* the buffer's C-level
    ``list.append`` (an instance attribute rebound on every drain), and
    :meth:`drain` folds buffered records in emission order inside one
    tight loop with the aggregation state bound to locals. Every read
    (the live properties, :meth:`kinds`, :meth:`to_dict`) drains first,
    so results are always exact; only the *moment* the fold runs is
    deferred, never its order.

    Because ``emit`` performs no bookkeeping at all, buffered records
    stay referenced until the next read. Long-running producers should
    call :meth:`drain` at natural checkpoints (the experiment runner
    drains after each experiment; a live reporter drains every tick) to
    keep memory proportional to the interval between drains.
    """

    __slots__ = (
        "window_ms", "total_pages", "emit", "_events_total", "_buffer",
        "_kinds", "_tests", "_mc", "_ref_samples", "_max_window",
        "_page_state", "_pages_seen", "_n_lo", "_n_testing", "_pril",
        "_current_quantum", "_outstanding", "_energy", "_energy_totals",
        "_disturb", "_disturb_totals",
    )

    def __init__(
        self, window_ms: float = 1024.0, total_pages: Optional[int] = None
    ) -> None:
        if window_ms <= 0:
            raise ValueError("window_ms must be positive")
        if total_pages is not None and total_pages <= 0:
            raise ValueError("total_pages must be positive or None")
        self.window_ms = float(window_ms)
        self.total_pages = total_pages
        self._events_total = 0
        self._buffer: List[Mapping] = []
        # The whole ingestion fast path: emit IS the buffer's append.
        self.emit = self._buffer.append
        self._kinds: Dict[str, int] = defaultdict(int)
        # Per-window accumulators, keyed by integer window index.
        self._tests: Dict[int, Dict[str, int]] = {}
        self._mc: Dict[int, Dict[str, Any]] = {}
        #: Refresh-state population sampled when the stream crossed out
        #: of the window: window index -> (lo_rows, testing_rows, seen).
        self._ref_samples: Dict[int, Tuple[int, int, int]] = {}
        self._max_window: Optional[int] = None
        # Current refresh-state population, indexed by page number
        # (``None`` = never seen; pages start at HI-REF). A flat list
        # because page indexing is the hottest operation in the fold.
        self._page_state: List[Optional[str]] = []
        self._pages_seen = 0
        self._n_lo = 0
        self._n_testing = 0
        # PRIL quanta and the tests attributed to each prediction batch.
        self._pril: List[Dict[str, Any]] = []
        self._current_quantum: Optional[Dict[str, Any]] = None
        #: page -> pril-quantum entry (or None for non-PRIL tests, e.g.
        #: the read-only start-up sweep) for every unresolved test.
        self._outstanding: Dict[int, Optional[Dict[str, Any]]] = {}
        # Energy rollups arrive whole (one per simulated window).
        self._energy: List[Dict[str, float]] = []
        self._energy_totals = {
            "refresh_pj": 0.0, "access_pj": 0.0, "background_pj": 0.0,
        }
        # Read-disturbance rollups fold per window; totals ride alongside.
        self._disturb: Dict[int, Dict[str, float]] = {}
        self._disturb_totals = {
            "flips": 0, "rows_flipped": 0, "max_pressure": 0.0,
        }

    # -- live counters -------------------------------------------------
    @property
    def events_total(self) -> int:
        """Records consumed so far (buffered records included)."""
        return self._events_total + len(self._buffer)

    @property
    def rows_lo(self) -> int:
        """Rows currently at LO-REF."""
        self.drain()
        return self._n_lo

    @property
    def rows_testing(self) -> int:
        """Rows currently holding for a retention test."""
        self.drain()
        return self._n_testing

    @property
    def tests_outstanding(self) -> int:
        """Tests started but not yet passed/failed/aborted."""
        self.drain()
        return len(self._outstanding)

    @property
    def pages_seen(self) -> int:
        self.drain()
        return self._pages_seen

    def kinds(self) -> Dict[str, int]:
        self.drain()
        return dict(self._kinds)

    # -- ingestion -----------------------------------------------------
    #: test_* terminal kind -> (per-window counter, pril outcome field).
    _TEST_OUTCOMES = {
        "test_passed": ("passed", "resolved"),
        "test_failed": ("failed", "resolved"),
        "test_aborted": ("aborted", "aborted"),
    }

    def drain(self) -> None:
        """Fold every buffered record, in emission order.

        Reads call this implicitly; long-running producers may call it
        at checkpoints to release the buffered record references.
        """
        buffer = self._buffer
        if not buffer:
            return
        self._buffer = []
        self.emit = self._buffer.append
        self._events_total += len(buffer)
        # The fold is the hot path: bind all mutable state to locals and
        # dispatch on kind with a frequency-ordered if/elif chain.
        window_ms = self.window_ms
        kinds = self._kinds
        tests = self._tests
        tests_get = tests.get
        mc = self._mc
        mc_get = mc.get
        ref_samples = self._ref_samples
        page_state = self._page_state
        pages_seen = self._pages_seen
        outstanding = self._outstanding
        outstanding_pop = outstanding.pop
        test_outcomes_get = self._TEST_OUTCOMES.get
        pril_append = self._pril.append
        max_window = self._max_window
        n_lo = self._n_lo
        n_testing = self._n_testing
        current_quantum = self._current_quantum
        # Kind counts for the hot kinds accumulate in plain ints and merge
        # into the dict once per drain; only rare kinds touch it in-loop.
        n_ref = n_started = n_mc_req = n_mc_ref = 0
        # ref_transition only needs the window index when the stream
        # crosses a boundary, so the fast path is a single float compare
        # against the next boundary instead of a floordiv per record.
        if max_window is None:
            next_boundary = float("-inf")
        else:
            next_boundary = (max_window + 1) * window_ms
        for record in buffer:
            try:
                kind = record["kind"]
            except KeyError:
                continue
            if kind == "ref_transition":
                n_ref += 1
                t_ms = record["t_ms"]
                if t_ms >= next_boundary:
                    window = int(t_ms // window_ms)
                    if max_window is None:
                        max_window = window
                    elif window > max_window:
                        sample = (n_lo, n_testing, pages_seen)
                        for index in range(max_window, window):
                            ref_samples[index] = sample
                        max_window = window
                    next_boundary = (max_window + 1) * window_ms
                page = record["page"]
                state = record["to"]
                if page < 0:
                    raise TraceSchemaError(f"negative page: {page!r}")
                try:
                    previous = page_state[page]
                except IndexError:
                    page_state.extend(
                        [None] * (page + 1 - len(page_state)))
                    previous = None
                page_state[page] = state
                if previous is None:
                    pages_seen += 1
                    previous = "hi_ref"
                if previous == state:
                    continue
                if previous == "lo_ref":
                    n_lo -= 1
                elif previous == "testing":
                    n_testing -= 1
                if state == "lo_ref":
                    n_lo += 1
                elif state == "testing":
                    n_testing += 1
            elif kind == "test_started":
                n_started += 1
                window = int(record["t_ms"] // window_ms)
                if max_window is None:
                    max_window = window
                    next_boundary = (max_window + 1) * window_ms
                elif window > max_window:
                    sample = (n_lo, n_testing, pages_seen)
                    for index in range(max_window, window):
                        ref_samples[index] = sample
                    max_window = window
                    next_boundary = (max_window + 1) * window_ms
                page = record["page"]
                if page < 0:
                    raise TraceSchemaError(f"negative page: {page!r}")
                try:
                    if page_state[page] is None:
                        page_state[page] = "hi_ref"
                        pages_seen += 1
                except IndexError:
                    page_state.extend(
                        [None] * (page + 1 - len(page_state)))
                    page_state[page] = "hi_ref"
                    pages_seen += 1
                counts = tests_get(window)
                if counts is None:
                    counts = tests[window] = {
                        "started": 0, "passed": 0, "failed": 0, "aborted": 0,
                    }
                counts["started"] += 1
                outstanding[page] = current_quantum
                if current_quantum is not None:
                    current_quantum["started"] += 1
            else:
                pair = test_outcomes_get(kind)
                if pair is not None:
                    kinds[kind] += 1
                    window = int(record["t_ms"] // window_ms)
                    if max_window is None:
                        max_window = window
                        next_boundary = (max_window + 1) * window_ms
                    elif window > max_window:
                        sample = (n_lo, n_testing, pages_seen)
                        for index in range(max_window, window):
                            ref_samples[index] = sample
                        max_window = window
                        next_boundary = (max_window + 1) * window_ms
                    outcome, pril_field = pair
                    counts = tests_get(window)
                    if counts is None:
                        counts = tests[window] = {
                            "started": 0, "passed": 0,
                            "failed": 0, "aborted": 0,
                        }
                    counts[outcome] += 1
                    quantum = outstanding_pop(record["page"], None)
                    if quantum is not None:
                        quantum[pril_field] += 1
                elif kind == "mc_request":
                    n_mc_req += 1
                    window = int(record["t_ns"] * 1e-6 // window_ms)
                    if max_window is None:
                        max_window = window
                        next_boundary = (max_window + 1) * window_ms
                    elif window > max_window:
                        sample = (n_lo, n_testing, pages_seen)
                        for index in range(max_window, window):
                            ref_samples[index] = sample
                        max_window = window
                        next_boundary = (max_window + 1) * window_ms
                    entry = mc_get(window)
                    if entry is None:
                        entry = mc[window] = {
                            "requests": 0,
                            "refreshes": 0,
                            "latency_sum_ns": 0.0,
                            "latency_counts":
                                [0] * (len(LATENCY_BUCKET_BOUNDS_NS) + 1),
                        }
                    entry["requests"] += 1
                    latency = record["latency_ns"]
                    entry["latency_sum_ns"] += latency
                    index = 0
                    for bound in LATENCY_BUCKET_BOUNDS_NS:
                        if latency <= bound:
                            break
                        index += 1
                    entry["latency_counts"][index] += 1
                elif kind == "mc_refresh":
                    n_mc_ref += 1
                    window = int(record["t_ns"] * 1e-6 // window_ms)
                    if max_window is None:
                        max_window = window
                        next_boundary = (max_window + 1) * window_ms
                    elif window > max_window:
                        sample = (n_lo, n_testing, pages_seen)
                        for index in range(max_window, window):
                            ref_samples[index] = sample
                        max_window = window
                        next_boundary = (max_window + 1) * window_ms
                    entry = mc_get(window)
                    if entry is None:
                        entry = mc[window] = {
                            "requests": 0,
                            "refreshes": 0,
                            "latency_sum_ns": 0.0,
                            "latency_counts":
                                [0] * (len(LATENCY_BUCKET_BOUNDS_NS) + 1),
                        }
                    entry["refreshes"] += 1
                elif kind == "pril_quantum":
                    kinds[kind] += 1
                    current_quantum = {
                        "quantum": record["quantum"],
                        "predicted": record["predicted"],
                        "buffer": record["buffer"],
                        "started": 0,
                        "resolved": 0,
                        "aborted": 0,
                    }
                    pril_append(current_quantum)
                elif kind == "disturb_rollup":
                    kinds[kind] += 1
                    window = int(record["t_ms"] // window_ms)
                    if max_window is None:
                        max_window = window
                        next_boundary = (max_window + 1) * window_ms
                    elif window > max_window:
                        sample = (n_lo, n_testing, pages_seen)
                        for index in range(max_window, window):
                            ref_samples[index] = sample
                        max_window = window
                        next_boundary = (max_window + 1) * window_ms
                    entry = self._disturb.get(window)
                    if entry is None:
                        entry = self._disturb[window] = {
                            "flips": 0, "rows_flipped": 0,
                            "max_pressure": 0.0,
                        }
                    entry["flips"] += record["flips"]
                    entry["rows_flipped"] += record["rows_flipped"]
                    pressure = record["max_pressure"]
                    if pressure > entry["max_pressure"]:
                        entry["max_pressure"] = pressure
                    totals = self._disturb_totals
                    totals["flips"] += record["flips"]
                    totals["rows_flipped"] += record["rows_flipped"]
                    if pressure > totals["max_pressure"]:
                        totals["max_pressure"] = pressure
                elif kind == "energy_rollup":
                    kinds[kind] += 1
                    entry = {
                        "window_ns": record["window_ns"],
                        "refresh_pj": record["refresh_pj"],
                        "access_pj": record["access_pj"],
                        "background_pj": record["background_pj"],
                    }
                    if "channel" in record:
                        entry["channel"] = record["channel"]
                    self._energy.append(entry)
                    totals = self._energy_totals
                    for key in totals:
                        totals[key] += entry[key]
                else:
                    kinds[kind] += 1
        if n_ref:
            kinds["ref_transition"] += n_ref
        if n_started:
            kinds["test_started"] += n_started
        if n_mc_req:
            kinds["mc_request"] += n_mc_req
        if n_mc_ref:
            kinds["mc_refresh"] += n_mc_ref
        self._max_window = max_window
        self._pages_seen = pages_seen
        self._n_lo = n_lo
        self._n_testing = n_testing
        self._current_quantum = current_quantum

    # -- rollup --------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe time-series rollup of everything consumed so far.

        Idempotent: the in-progress window is sampled on the fly without
        mutating aggregation state, so calling this mid-run is safe.
        """
        self.drain()
        ref_samples = dict(self._ref_samples)
        if self._max_window is not None:
            ref_samples.setdefault(
                self._max_window,
                (self._n_lo, self._n_testing, self._pages_seen),
            )
        indices = sorted(
            set(self._tests) | set(self._mc) | set(ref_samples)
            | set(self._disturb)
        )
        disturb_seen = bool(self._disturb)
        windows = []
        for index in indices:
            entry: Dict[str, Any] = {
                "index": index,
                "t_ms": index * self.window_ms,
                "tests": dict(self._tests.get(index) or {
                    "started": 0, "passed": 0, "failed": 0, "aborted": 0,
                }),
            }
            sample = ref_samples.get(index)
            if sample is not None:
                lo, testing, seen = sample
                total = self.total_pages if self.total_pages else seen
                entry["ref"] = {
                    "lo_rows": lo,
                    "testing_rows": testing,
                    "total_rows": total,
                    "lo_fraction": lo / total if total else 0.0,
                    "testing_fraction": testing / total if total else 0.0,
                    "hi_fraction": (
                        (total - lo - testing) / total if total else 0.0
                    ),
                }
            else:
                entry["ref"] = None
            mc = self._mc.get(index)
            if mc is not None:
                requests = mc["requests"]
                counts = mc["latency_counts"]
                entry["mc"] = {
                    "requests": requests,
                    "refreshes": mc["refreshes"],
                    "refresh_per_s": mc["refreshes"] / (self.window_ms * 1e-3),
                    "latency_mean_ns": (
                        mc["latency_sum_ns"] / requests if requests else 0.0
                    ),
                    "latency_p50_ns": _percentile_from_buckets(
                        LATENCY_BUCKET_BOUNDS_NS, counts, requests, 0.50),
                    "latency_p95_ns": _percentile_from_buckets(
                        LATENCY_BUCKET_BOUNDS_NS, counts, requests, 0.95),
                    "latency_p99_ns": _percentile_from_buckets(
                        LATENCY_BUCKET_BOUNDS_NS, counts, requests, 0.99),
                }
            else:
                entry["mc"] = None
            if disturb_seen:
                # Key present only on runs that emitted disturbance
                # events, so rollups of untracked runs are unchanged.
                disturb = self._disturb.get(index)
                entry["disturb"] = dict(disturb) if disturb else None
            windows.append(entry)
        pril = []
        for quantum in self._pril:
            entry = dict(quantum)
            started = entry["started"]
            entry["hit_rate"] = (
                entry["resolved"] / started if started else None
            )
            pril.append(entry)
        return {
            "window_ms": self.window_ms,
            "events_total": self.events_total,
            "kinds": dict(sorted(self._kinds.items())),
            "windows": windows,
            "pril": pril,
            "energy": {
                "rollups": [dict(e) for e in self._energy],
                "totals": dict(self._energy_totals),
            } if self._energy else None,
            **(
                {"disturb": {"totals": dict(self._disturb_totals)}}
                if disturb_seen else {}
            ),
        }


def aggregate_trace(
    records: Iterable[Mapping],
    window_ms: float = 1024.0,
    total_pages: Optional[int] = None,
) -> Dict[str, Any]:
    """Offline aggregation: fold an iterable of records into rollups.

    Feeding this the records of a JSONL trace file produces exactly the
    rollups an in-process :class:`AggregatingSink` computed during the
    run (same record sequence, same arithmetic) — the property the test
    suite pins down.
    """
    sink = AggregatingSink(window_ms=window_ms, total_pages=total_pages)
    for record in records:
        sink.emit(record)
    return sink.to_dict()
