"""Live run status: a periodic stderr line driven by the aggregators.

:class:`LiveReporter` is a trace *sink*: placed after an
:class:`~repro.obs.analytics.AggregatingSink` in a
:class:`~repro.obs.analytics.TeeSink`, it sees every record the
aggregator just consumed and — at most once per ``interval_s`` of wall
time — prints a one-line status::

    [live] 48210 events (61233 ev/s) | lo-ref rows 623 | tests outstanding 4 | experiments 3/15 | eta 41s

It holds no aggregation state of its own beyond run progress (the
``run_started``/``experiment_finished`` markers for the ETA); row
populations and outstanding-test counts come straight from the shared
aggregator, so watching a run costs one clock read per event.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Mapping, Optional, TextIO

from .analytics import AggregatingSink

__all__ = ["LiveReporter"]


class LiveReporter:
    """Throttled status-line sink over a shared aggregator.

    Parameters
    ----------
    aggregator:
        The :class:`AggregatingSink` receiving the same record stream.
    stream:
        Where status lines go (default ``sys.stderr``).
    interval_s:
        Minimum wall-clock spacing between status lines.
    clock:
        Monotonic time source, injectable for tests.
    """

    def __init__(
        self,
        aggregator: AggregatingSink,
        stream: Optional[TextIO] = None,
        interval_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if interval_s < 0:
            raise ValueError("interval_s must be non-negative")
        self.aggregator = aggregator
        self.stream = stream if stream is not None else sys.stderr
        self.interval_s = interval_s
        self._clock = clock
        self._started = clock()
        self._last_report = self._started
        self._experiments_total: Optional[int] = None
        self._experiments_done = 0
        self.reports_written = 0

    def emit(self, record: Mapping) -> None:
        kind = record.get("kind")
        if kind == "run_started":
            experiments = record.get("experiments")
            self._experiments_total = (
                len(experiments) if experiments else None
            )
        elif kind == "experiment_finished":
            self._experiments_done += 1
        now = self._clock()
        if now - self._last_report >= self.interval_s:
            self._write_status(now)

    def close(self) -> None:
        """Write one final status line (totals for the whole run)."""
        self._write_status(self._clock())

    # ------------------------------------------------------------------
    def _write_status(self, now: float) -> None:
        aggregator = self.aggregator
        elapsed = max(now - self._started, 1e-9)
        rate = aggregator.events_total / elapsed
        parts = [
            f"{aggregator.events_total} events ({rate:.0f} ev/s)",
            f"lo-ref rows {aggregator.rows_lo}",
            f"tests outstanding {aggregator.tests_outstanding}",
        ]
        total = self._experiments_total
        done = self._experiments_done
        if total:
            parts.append(f"experiments {done}/{total}")
            if 0 < done < total:
                eta_s = elapsed / done * (total - done)
                parts.append(f"eta {eta_s:.0f}s")
        print("[live] " + " | ".join(parts), file=self.stream, flush=True)
        self._last_report = now
        self.reports_written += 1
