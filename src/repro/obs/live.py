"""Live run status: a periodic stderr line driven by the aggregators.

:class:`LiveReporter` is a trace *sink*: placed after an
:class:`~repro.obs.analytics.AggregatingSink` in a
:class:`~repro.obs.analytics.TeeSink`, it sees every record the
aggregator just consumed and — at most once per ``interval_s`` of wall
time — prints a one-line status::

    [live] 48210 events (61233 ev/s) | lo-ref rows 623 | tests outstanding 4 | experiments 3/15 | eta 41s

It holds no aggregation state of its own beyond run progress (the
``run_started``/``experiment_finished`` markers for the ETA); row
populations and outstanding-test counts come straight from the shared
aggregator, so watching a run costs one clock read per event.

With a :class:`~repro.obs.bus.TelemetryBus` attached (sharded runs),
each repaint additionally prints one row per pool worker — current
unit, units done, RSS peak, heartbeat age, and ``STALLED`` flags from
the bus's missed-heartbeat scan::

    [live] 1203 events (40 ev/s) | lo-ref rows 64 | ...
      worker-g1-4711: fig04/scan-3 | units 2 | rss 91MB | hb 0s ago

During a sharded run the parent sees no worker events between unit
completions, so the executor's supervision loop calls :meth:`tick`
on every bus drain — the repaint cadence is wall-clock driven, not
event driven. Lines are clipped to the terminal width, re-queried on
every repaint (so window resizes are picked up without any SIGWINCH
handler) and falling back to 80 columns when there is no terminal
(CI redirects, pipes).
"""

from __future__ import annotations

import os
import sys
import time
from typing import Callable, Mapping, Optional, TextIO

from .analytics import AggregatingSink

__all__ = ["LiveReporter"]

#: Width used when the output is not a terminal (CI logs, pipes).
FALLBACK_COLUMNS = 80


class LiveReporter:
    """Throttled status-line sink over a shared aggregator.

    Parameters
    ----------
    aggregator:
        The :class:`AggregatingSink` receiving the same record stream.
    stream:
        Where status lines go (default ``sys.stderr``).
    interval_s:
        Minimum wall-clock spacing between status lines.
    clock:
        Monotonic time source, injectable for tests.
    bus:
        Optional :class:`~repro.obs.bus.TelemetryBus`; when set, each
        repaint appends per-worker health rows from its worker table.
        Assignable after construction (the runner builds the reporter
        before the executor exists).
    """

    def __init__(
        self,
        aggregator: AggregatingSink,
        stream: Optional[TextIO] = None,
        interval_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        bus=None,
    ) -> None:
        if interval_s < 0:
            raise ValueError("interval_s must be non-negative")
        self.aggregator = aggregator
        self.stream = stream if stream is not None else sys.stderr
        self.interval_s = interval_s
        self.bus = bus
        self._clock = clock
        self._started = clock()
        self._last_report = self._started
        self._experiments_total: Optional[int] = None
        self._experiments_done = 0
        self.reports_written = 0

    def emit(self, record: Mapping) -> None:
        kind = record.get("kind")
        if kind == "run_started":
            experiments = record.get("experiments")
            # An empty experiment list is still a known total (0), so
            # the final line can say "experiments 0/0"; only a missing
            # field leaves the total unknown.
            self._experiments_total = (
                len(experiments) if experiments is not None else None
            )
        elif kind == "experiment_finished":
            self._experiments_done += 1
        now = self._clock()
        if now - self._last_report >= self.interval_s:
            self._write_status(now)

    def tick(self) -> None:
        """Repaint on wall-clock alone (no record needed).

        The executor's supervision loop calls this while units are in
        flight, so worker rows stay fresh even when the parent process
        sees no trace events for seconds at a time.
        """
        now = self._clock()
        if now - self._last_report >= self.interval_s:
            self._write_status(now)

    def close(self) -> None:
        """Write one final status line (totals for the whole run)."""
        self._write_status(self._clock())

    # ------------------------------------------------------------------
    def _columns(self) -> Optional[int]:
        """Clip width: the tty's, 80 if a tty won't say, None otherwise.

        A non-terminal stream (CI redirect, pipe, test buffer) gets no
        clipping at all — log files want the whole line.
        """
        try:
            if not self.stream.isatty():
                return None
        except (OSError, ValueError, AttributeError):
            return None
        try:
            # Queried on every repaint, so window resizes are picked up
            # without installing a SIGWINCH handler.
            return os.get_terminal_size(self.stream.fileno()).columns
        except (OSError, ValueError, AttributeError):
            return FALLBACK_COLUMNS

    def _write_status(self, now: float) -> None:
        aggregator = self.aggregator
        elapsed = max(now - self._started, 1e-9)
        rate = aggregator.events_total / elapsed
        parts = [
            f"{aggregator.events_total} events ({rate:.0f} ev/s)",
            f"lo-ref rows {aggregator.rows_lo}",
            f"tests outstanding {aggregator.tests_outstanding}",
        ]
        total = self._experiments_total
        done = self._experiments_done
        if total is not None:
            parts.append(f"experiments {done}/{total}")
            if 0 < done < total:
                eta_s = elapsed / done * (total - done)
                parts.append(f"eta {eta_s:.0f}s")
        lines = ["[live] " + " | ".join(parts)]
        if self.bus is not None:
            lines.extend(self.bus.table.render_rows(now=now))
        columns = self._columns()
        for line in lines:
            if columns is not None:
                line = line[:max(columns, 16)]
            print(line, file=self.stream, flush=True)
        self._last_report = now
        self.reports_written += 1
