"""Structured run manifests.

A manifest is the durable record of one experiment invocation: what ran
(experiment ids, quick/full, seed), against which code (git revision,
python version), how long each part took (the span tree), and what the
instruments counted (the final metrics snapshot). The runner writes it
as JSON next to the markdown output so a results file is never again an
orphan with no provenance.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "RunManifest",
    "git_revision",
    "load_manifest",
]

MANIFEST_SCHEMA_VERSION = 1


def git_revision(cwd: Optional[str] = None) -> Optional[str]:
    """The current git commit hash, or None outside a repo / without git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


@dataclass
class RunManifest:
    """Everything needed to interpret (and re-run) one invocation."""

    experiments: List[str]
    seed: int
    quick: bool
    config: Dict[str, Any] = field(default_factory=dict)
    git_rev: Optional[str] = None
    python: str = ""
    platform_tag: str = ""
    timings: List[Dict[str, Any]] = field(default_factory=list)
    spans: Optional[Dict[str, Any]] = None
    metrics: Optional[Dict[str, Any]] = None
    #: Windowed rollups from the in-process aggregator (analytics.py).
    timeseries: Optional[Dict[str, Any]] = None
    trace_path: Optional[str] = None
    #: Worker topology of a sharded run (parallel/executor.py): jobs,
    #: start method, shard labels, per-shard unit counts, executor stats,
    #: plus live bus telemetry under "telemetry" when --live rode along.
    workers: Optional[Dict[str, Any]] = None
    #: Sampled-profiler output (obs/profile.py): collapsed stacks,
    #: sample counts, attribution fraction, optional memory peaks.
    profile: Optional[Dict[str, Any]] = None
    #: Forensic ledger census (obs/forensics.py): record counts by kind,
    #: verdict histogram, distinct rows, and the ledger file path.
    forensics: Optional[Dict[str, Any]] = None
    #: Fleet-service rollup (fleet/aggregator.py): host counts, per-tenant
    #: coverage/test/PRIL folds, wall tail percentiles, ingest backlog,
    #: resident-rows and trace-cache accounting.
    fleet: Optional[Dict[str, Any]] = None
    wall_s: float = 0.0

    @classmethod
    def start(
        cls,
        experiments: List[str],
        seed: int,
        quick: bool,
        config: Optional[Mapping[str, Any]] = None,
    ) -> "RunManifest":
        """Create a manifest with the environment fields pre-filled."""
        return cls(
            experiments=list(experiments),
            seed=seed,
            quick=quick,
            config=dict(config or {}),
            git_rev=git_revision(),
            python=sys.version.split()[0],
            platform_tag=platform.platform(),
        )

    def add_timing(self, name: str, wall_s: float, **extra: Any) -> None:
        """Record one experiment's wall-clock time (and context)."""
        entry: Dict[str, Any] = {"name": name, "wall_s": wall_s}
        entry.update(extra)
        self.timings.append(entry)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": MANIFEST_SCHEMA_VERSION,
            "experiments": self.experiments,
            "seed": self.seed,
            "quick": self.quick,
            "config": self.config,
            "git_rev": self.git_rev,
            "python": self.python,
            "platform": self.platform_tag,
            "wall_s": self.wall_s,
            "timings": self.timings,
            "spans": self.spans,
            "metrics": self.metrics,
            "timeseries": self.timeseries,
            "trace_path": self.trace_path,
            "workers": self.workers,
            "profile": self.profile,
            "forensics": self.forensics,
            "fleet": self.fleet,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunManifest":
        """Rebuild a manifest from :meth:`to_dict` output (round-trip).

        Tolerates manifests written before a field existed (missing keys
        take the dataclass default) but rejects wrong schema versions.
        """
        if data.get("schema") != MANIFEST_SCHEMA_VERSION:
            raise ValueError(
                f"not a schema-{MANIFEST_SCHEMA_VERSION} manifest: "
                f"{data.get('schema')!r}"
            )
        return cls(
            experiments=list(data.get("experiments", [])),
            seed=data.get("seed", 0),
            quick=data.get("quick", True),
            config=dict(data.get("config") or {}),
            git_rev=data.get("git_rev"),
            python=data.get("python", ""),
            platform_tag=data.get("platform", ""),
            timings=list(data.get("timings") or []),
            spans=data.get("spans"),
            metrics=data.get("metrics"),
            timeseries=data.get("timeseries"),
            trace_path=data.get("trace_path"),
            workers=data.get("workers"),
            profile=data.get("profile"),
            forensics=data.get("forensics"),
            fleet=data.get("fleet"),
            wall_s=data.get("wall_s", 0.0),
        )

    def write(self, path: str) -> None:
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=False)
            handle.write("\n")


def load_manifest(path: str) -> Dict[str, Any]:
    """Load and version-check a manifest written by :meth:`RunManifest.write`."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or data.get("schema") != MANIFEST_SCHEMA_VERSION:
        raise ValueError(f"{path}: not a schema-{MANIFEST_SCHEMA_VERSION} manifest")
    return data
