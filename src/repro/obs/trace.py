"""Structured JSONL event trace with a pluggable sink.

Instrumented code calls :func:`emit` with an event *kind* plus the
kind's payload fields; when no sink is installed the call is one module
attribute load and a ``None`` check. Records are schema-versioned flat
JSON objects::

    {"v": 1, "kind": "test_started", "t_ms": 2048.0, "page": 17}

The kind registry (:data:`EVENT_KINDS`) names every event the pipeline
emits and the fields each one must carry, so traces can be validated
offline (:func:`validate_record`, :func:`read_trace`) and new events are
a one-line schema addition. Unknown extra fields are allowed — events
may carry context (workload name, channel id) beyond the schema floor.

Sinks are anything with ``emit(record: dict)``; :class:`JsonlTraceSink`
writes one compact JSON object per line, :class:`ListTraceSink` buffers
records in memory for tests and in-process consumers.
"""

from __future__ import annotations

import atexit
import heapq
import io
import json
import os
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Union

__all__ = [
    "EVENT_KINDS",
    "SCHEMA_VERSION",
    "JsonlTraceSink",
    "ListTraceSink",
    "TraceSchemaError",
    "emit",
    "get_sink",
    "read_trace",
    "set_sink",
    "trace_active",
    "validate_record",
]

#: Bump on any backwards-incompatible record-shape change.
SCHEMA_VERSION = 1

#: Every known event kind -> the fields a record of that kind must carry
#: (beyond the envelope ``v`` and ``kind``).
EVENT_KINDS: Dict[str, frozenset] = {
    # MEMCON test lifecycle (core/memcon.py)
    "test_started": frozenset({"t_ms", "page"}),
    "test_aborted": frozenset({"t_ms", "page"}),
    "test_passed": frozenset({"t_ms", "page"}),
    "test_failed": frozenset({"t_ms", "page"}),
    # Refresh-ledger state changes (core/memcon.py)
    "ref_transition": frozenset({"t_ms", "page", "from", "to"}),
    # PRIL quantum boundaries (core/pril.py)
    "pril_quantum": frozenset({"quantum", "predicted", "buffer"}),
    # Memory-controller events (mc/controller.py)
    "mc_refresh": frozenset({"t_ns", "channel"}),
    "mc_request": frozenset({"t_ns", "kind_served", "bank", "latency_ns"}),
    # SoftMC tester phases (testinfra/softmc.py)
    "softmc_phase": frozenset({"phase", "rows"}),
    # System simulator progress (sim/system.py)
    "sim_progress": frozenset({"t_ns", "core", "instructions"}),
    # Energy accounting per simulated window (sim/energy.py)
    "energy_rollup": frozenset(
        {"window_ns", "refresh_pj", "access_pj", "background_pj"}
    ),
    # Read-disturbance counters per simulated window (experiments/hammer*)
    "disturb_rollup": frozenset(
        {"t_ms", "flips", "rows_flipped", "max_pressure"}
    ),
    # Experiment runner lifecycle (experiments/runner.py)
    "run_started": frozenset({"experiments"}),
    "run_finished": frozenset({"wall_s"}),
    "experiment_started": frozenset({"experiment"}),
    "experiment_finished": frozenset({"experiment", "wall_s"}),
    # Work-unit brackets emitted by pool workers (parallel/executor.py);
    # consumed by the shard merge, absent from merged streams.
    "unit_started": frozenset({"experiment", "unit", "seq", "attempt"}),
    "unit_finished": frozenset(
        {"experiment", "unit", "seq", "attempt", "wall_s"}
    ),
    # A pool worker died; the parent records the last unit it was known
    # to be holding (fingerprint from the checkpoint journal) so resume
    # diagnostics can name the culprit (parallel/executor.py).
    "worker_lost": frozenset({"experiment", "unit", "fingerprint"}),
    # --- Forensic decision-provenance records (obs/forensics.py) ---
    # Only emitted while the forensics gate is enabled; they ride the
    # normal trace stream so the shard merge reconstructs per-row
    # history byte-identically for sharded runs.
    # PRIL granted a LO-REF window: the page had exactly one write in
    # its quantum, so MEMCON schedules a retention test (core/memcon.py).
    "pril_grant": frozenset({"page", "quantum"}),
    # PRIL dropped a LO-REF candidate before the grant could be used
    # (cross-quantum write, repeat write, buffer overflow) (core/pril.py).
    "pril_revoke": frozenset({"page", "reason"}),
    # TRR fired: the aggressor crossed its activation threshold and the
    # neighbourhood was refreshed out of turn (mc/controller.py).
    "trr_refresh": frozenset({"t_ns", "bank", "row", "neighbors"}),
    # A disturbance-dose evaluation found victims over threshold
    # (dram/disturb.py); ``rows_sample`` carries up to 64 affected rows.
    "dose_crossing": frozenset({"interval_ms", "rows_over", "max_pressure"}),
    # One batch evaluation of the content-dependent fault predicate,
    # with the CRC of the content snapshot it used (dram/faults.py).
    "predicate_eval": frozenset({"interval_ms", "rows", "failed"}),
    # Per-row failure attribution with the reconstruction coordinates
    # needed for counterfactual replay (experiments/hammer01.py).
    "forensic_row": frozenset({"row", "verdict"}),
    # Per-grid-cell mitigation outcome for the TRR sweep
    # (experiments/hammer02.py).
    "mitigation_cell": frozenset({"refresh", "trr", "flips", "rows_flipped"}),
}


class TraceSchemaError(ValueError):
    """A trace record does not match the event schema."""


class JsonlTraceSink:
    """Writes one compact JSON object per line to a file or stream.

    The sink flushes every ``flush_every`` records (default 1000, 0
    disables periodic flushing) so a killed run leaves at most that many
    records unwritten — paired with ``read_trace(...,
    tolerate_truncation=True)`` the surviving prefix stays analysable.

    ``close`` is idempotent, and ``atexit_close=True`` additionally
    registers it as an interpreter-exit finaliser — pool workers use
    this so their shards are flushed even when the process ends without
    an orderly shutdown path. A path ``target`` has its parent
    directories created on demand, so shards can land next to outputs
    in directories that do not exist yet.
    """

    def __init__(
        self,
        target: Union[str, io.TextIOBase],
        flush_every: int = 1000,
        atexit_close: bool = False,
    ) -> None:
        if flush_every < 0:
            raise ValueError("flush_every must be non-negative")
        if isinstance(target, str):
            parent = os.path.dirname(target)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self._file = open(target, "w", encoding="utf-8")
            self._owns_file = True
        else:
            self._file = target
            self._owns_file = False
        self.flush_every = flush_every
        self.records_emitted = 0
        self.closed = False
        self._atexit_registered = False
        if atexit_close:
            atexit.register(self.close)
            self._atexit_registered = True

    def emit(self, record: Mapping) -> None:
        if self.closed:
            raise ValueError("emit() on a closed JsonlTraceSink")
        self._file.write(json.dumps(record, separators=(",", ":")) + "\n")
        self.records_emitted += 1
        if self.flush_every and self.records_emitted % self.flush_every == 0:
            self._file.flush()

    def close(self) -> None:
        """Flush and release the target; safe to call any number of times."""
        if self.closed:
            return
        self.closed = True
        if self._atexit_registered:
            try:
                atexit.unregister(self.close)
            except Exception:
                pass  # interpreter teardown: the hook is firing right now
            self._atexit_registered = False
        if self._owns_file:
            self._file.close()
        else:
            self._file.flush()

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ListTraceSink:
    """Buffers records in memory (tests, in-process analysis)."""

    def __init__(self) -> None:
        self.records: List[dict] = []

    def emit(self, record: Mapping) -> None:
        self.records.append(dict(record))

    def kinds(self) -> Dict[str, int]:
        """Histogram of record kinds, a common assertion in tests."""
        counts: Dict[str, int] = {}
        for index, record in enumerate(self.records):
            kind = record.get("kind")
            if kind is None:
                raise TraceSchemaError(
                    f"buffered record {index} has no 'kind' field: {record!r}"
                )
            counts[kind] = counts.get(kind, 0) + 1
        return counts


_sink = None


def get_sink():
    return _sink


def set_sink(sink) -> object:
    """Install (or clear, with ``None``) the process trace sink."""
    global _sink
    previous = _sink
    _sink = sink
    return previous


def trace_active() -> bool:
    """True when events are being recorded (hot paths may pre-check)."""
    return _sink is not None


def emit(kind: str, **fields) -> None:
    """Emit one event to the installed sink (no-op without a sink)."""
    sink = _sink
    if sink is None:
        return
    record = {"v": SCHEMA_VERSION, "kind": kind}
    record.update(fields)
    sink.emit(record)


#: Fields that must hold a plain number (not bool) whenever present.
_NUMERIC_FIELDS = frozenset({"t_ms", "t_ns", "latency_ns", "wall_s"})


def validate_record(record: Mapping) -> None:
    """Raise :class:`TraceSchemaError` unless ``record`` is schema-valid."""
    if not isinstance(record, Mapping):
        raise TraceSchemaError(f"record is not an object: {record!r}")
    version = record.get("v")
    if version != SCHEMA_VERSION:
        raise TraceSchemaError(f"unsupported schema version: {version!r}")
    kind = record.get("kind")
    if kind not in EVENT_KINDS:
        raise TraceSchemaError(f"unknown event kind: {kind!r}")
    missing = EVENT_KINDS[kind] - set(record)
    if missing:
        raise TraceSchemaError(
            f"{kind} record missing fields {sorted(missing)}"
        )
    for name in _NUMERIC_FIELDS & set(record):
        value = record[name]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TraceSchemaError(
                f"{kind} field {name!r} must be numeric, got {value!r}"
            )


def read_trace(
    path: Optional[str] = None,
    validate: bool = True,
    tolerate_truncation: bool = False,
    merge: Optional[Sequence[str]] = None,
) -> Iterator[dict]:
    """Iterate the records of a JSONL trace file, validating by default.

    ``tolerate_truncation=True`` silently drops a partial *final* line —
    the signature a killed run leaves behind — so the surviving prefix
    is still analysable. Malformed lines with valid lines after them are
    corruption, not truncation, and raise either way.

    ``merge=[path, ...]`` reads several shard files instead of one,
    yielding their records as a single k-way time-sorted stream: each
    shard contributes in its own order, and shards interleave by
    simulated time (``t_ms``, or ``t_ns`` converted to ms). Records
    without a clock (lifecycle events) inherit their shard's last seen
    time, so they keep their shard-relative position. Ties break by
    shard order, then by position. Shards are read with truncation
    tolerance always on — a sharded trace usually needs merging
    precisely because the run was killed mid-write. For shards
    partitioned from one monotone timeline this reconstructs the exact
    global time order.
    """
    if merge is not None:
        if path is not None:
            raise ValueError("pass either path or merge=[...], not both")
        yield from _merge_traces(list(merge), validate)
        return
    if path is None:
        raise ValueError("read_trace needs a path or merge=[...]")
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if tolerate_truncation:
                    remainder = (rest.strip() for rest in handle)
                    if not any(remainder):
                        return  # partial final line: a truncated trace
                raise TraceSchemaError(
                    f"{path}:{line_no}: not valid JSON: {exc}"
                ) from exc
            if validate:
                try:
                    validate_record(record)
                except TraceSchemaError as exc:
                    raise TraceSchemaError(f"{path}:{line_no}: {exc}") from exc
            yield record


def _record_time(record: Mapping) -> Optional[float]:
    """The record's simulated-time clock in ms, if it carries one."""
    t_ms = record.get("t_ms")
    if isinstance(t_ms, (int, float)) and not isinstance(t_ms, bool):
        return float(t_ms)
    t_ns = record.get("t_ns")
    if isinstance(t_ns, (int, float)) and not isinstance(t_ns, bool):
        return float(t_ns) * 1e-6
    return None


def _merge_traces(paths: List[str], validate: bool) -> Iterator[dict]:
    """k-way merge of shard files by per-shard monotone virtual clock."""

    def shard_stream(shard_idx: int, path: str):
        clock = float("-inf")
        for position, record in enumerate(
            read_trace(path, validate=validate, tolerate_truncation=True)
        ):
            t = _record_time(record)
            if t is not None:
                # A shard's clock never runs backwards, even if a
                # record's does (per-workload timelines reset to 0).
                clock = max(clock, t)
            yield (clock, shard_idx, position), record

    streams = [shard_stream(i, path) for i, path in enumerate(paths)]
    for _key, record in heapq.merge(*streams, key=lambda item: item[0]):
        yield record
