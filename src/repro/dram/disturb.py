"""Read-disturbance (RowHammer / RowPress) failure model.

Complements the content-dependent model (:mod:`repro.dram.faults`) with
the *access*-triggered mechanism: activating a row couples charge out of
its physical neighbours, and a cell whose cumulative disturbance exceeds
its tolerance flips even though its retention behaviour is fine. Two
signals drive the model, both taken from the memory controller's real
command stream (:class:`repro.mc.bank.BankActivationLog`) rather than
synthetic injection:

* **activation count** — classic RowHammer: each ACT of an aggressor row
  disturbs its neighbours a little; flips appear once the count within a
  refresh window reaches the cell's hammer threshold (HC_first), and
* **open-interval duration** — RowPress: keeping the aggressor row open
  disturbs the neighbours *more per activation*, so on-time converts to
  extra effective activations at a ``rowpress_tau_ns`` exchange rate.

The vulnerable-cell population mirrors :class:`~repro.dram.faults.FaultMap`:
counter-based SplitMix64 sub-streams keyed by (chip seed, row, purpose),
so any batch of rows generates bit-identically regardless of batch
composition, and work units can shard over victims freely. The hammer
population draws from its *own* sub-stream tags — a cell being
hammer-vulnerable is independent of it being retention-vulnerable — but
row polarity (true-cell vs anti-cell) reuses the content model's
``_TAG_POLARITY`` stream, so a :class:`DisturbMap` and a ``FaultMap``
built from the same seed agree bitwise on which rows store charge as
logic 1. A flip needs a *charged* victim cell, exactly like retention.

Thresholds are expressed in *weighted activations per refresh interval*.
``hc_first`` is the median threshold at the nominal interval; real chips
sit at tens of thousands of activations over 64 ms, and this model runs
microsecond-scale simulated windows, so the default is scaled down the
same way :mod:`repro.traces.workloads` scales footprints — every
downstream comparison (HI vs LO refresh, TRR threshold sweeps, caught vs
missed fractions) is a ratio property unaffected by the scale. Refreshing
victims more often (a shorter interval) raises the effective threshold;
the scaling is the mirror image of the retention model's interval factor.

Composition with the content predicate goes through
:meth:`DisturbMap.stress_contribution`: per-victim pressure converts to
the content model's stress units and rides into
``FaultMap.failing_mask(..., disturb_stress=...)``, which reduces to the
pure content predicate at zero pressure.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from .. import kernels, obs
from ..kernels import faultpred
from .faults import (
    _EMPTY_COLUMNS,
    _EMPTY_THRESHOLDS,
    _GOLDEN,
    _MASK64,
    _TAG_POLARITY,
    _U64,
    RESIDENT_ROWS_GAUGE,
    _binomial_quantile,
    _draw_distinct_columns,
    _draw_lognormal_thresholds,
    _evict_lru_rows,
    _mix64,
    _note_residency,
    _unit,
)

#: Hammer-population sub-stream tags, disjoint from the content model's
#: so the two vulnerable populations of one chip seed never correlate.
_TAG_HAMMER_COUNT = _U64(0x3333333333333347)
_TAG_HAMMER_COLUMN = _U64(0x4444444444444461)
_TAG_HAMMER_U1 = _U64(0x55555555555555A3)
_TAG_HAMMER_U2 = _U64(0x66666666666666C1)


@dataclass(frozen=True)
class DisturbModelConfig:
    """Tunables of the read-disturbance population and dose response."""

    #: Probability that a cell is hammer-vulnerable at all.
    hammer_vulnerable_rate: float = 2.0e-6
    #: Median weighted-activation threshold (HC_first) at the nominal
    #: refresh interval. Scaled to simulation windows; see module docs.
    hc_first: float = 48.0
    #: Lognormal spread of per-cell hammer thresholds.
    threshold_sigma: float = 0.45
    #: Aggressor on-time equal to one extra activation (RowPress).
    rowpress_tau_ns: float = 1_000.0
    #: How many rows on each side of an aggressor feel pressure.
    blast_radius: int = 1
    #: Pressure retained per additional row of distance (distance-d
    #: neighbours receive ``far_neighbor_fraction ** (d - 1)``).
    far_neighbor_fraction: float = 0.35
    #: Refresh interval at which ``hc_first`` is calibrated, ms.
    nominal_interval_ms: float = 64.0
    #: Exponent of the effective-threshold scaling with the interval:
    #: threshold *= (nominal / interval) ** interval_sensitivity, so
    #: refreshing victims twice as often doubles the tolerated dose at
    #: sensitivity 1.0.
    interval_sensitivity: float = 1.0
    #: Fraction of rows using true-cell polarity. Keep equal to the
    #: content model's so same-seed maps agree on row polarity.
    true_cell_row_fraction: float = 0.5
    #: Stress-unit value of one HC_first of pressure when composing with
    #: the content predicate (FaultMap stress units; 2-aggressor nominal
    #: content stress is 1.0).
    content_coupling: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 <= self.hammer_vulnerable_rate <= 1.0:
            raise ValueError("hammer_vulnerable_rate must be a probability")
        if self.hc_first <= 0:
            raise ValueError("hc_first must be positive")
        if self.threshold_sigma < 0:
            raise ValueError("threshold_sigma must be non-negative")
        if self.rowpress_tau_ns <= 0:
            raise ValueError("rowpress_tau_ns must be positive")
        if self.blast_radius <= 0:
            raise ValueError("blast_radius must be positive")
        if not 0.0 <= self.far_neighbor_fraction <= 1.0:
            raise ValueError("far_neighbor_fraction must be in [0, 1]")
        if self.nominal_interval_ms <= 0:
            raise ValueError("nominal_interval_ms must be positive")
        if not 0.0 <= self.true_cell_row_fraction <= 1.0:
            raise ValueError("true_cell_row_fraction must be a probability")
        if self.content_coupling < 0:
            raise ValueError("content_coupling must be non-negative")


@dataclass(frozen=True)
class _HammerRow:
    """One row's hammer-vulnerable cells as aligned arrays."""

    columns: np.ndarray     # int64, sorted ascending
    thresholds: np.ndarray  # float64 multipliers of hc_first, aligned
    true_cell: bool


class DisturbMap:
    """The hammer-vulnerable cell population of one DRAM module.

    Same lazy, batch-vectorised generation discipline as
    :class:`~repro.dram.faults.FaultMap`; row indices are module-flat
    (``(channel * banks + bank) * rows_per_bank + row``), matching
    :meth:`repro.sim.system.SystemSimulator.activation_snapshot`.
    """

    def __init__(
        self,
        total_rows: int,
        bits_per_row: int,
        config: DisturbModelConfig = DisturbModelConfig(),
        seed: int = 0,
        max_resident_rows: Optional[int] = None,
    ) -> None:
        if total_rows <= 0 or bits_per_row <= 0:
            raise ValueError("rows and bits_per_row must be positive")
        if max_resident_rows is not None and max_resident_rows < 1:
            raise ValueError("max_resident_rows must be positive or None")
        self.total_rows = total_rows
        self.bits_per_row = bits_per_row
        self.config = config
        self.seed = seed
        self.max_resident_rows = max_resident_rows
        self._seed_base = _mix64(np.array(seed & _MASK64, dtype=_U64))
        self._populations: "OrderedDict[int, _HammerRow]" = OrderedDict()

    # ------------------------------------------------------------------
    # Population generation
    # ------------------------------------------------------------------
    def _row_base(self, rows: np.ndarray) -> np.ndarray:
        with np.errstate(over="ignore"):
            return _mix64(self._seed_base ^ (rows.astype(_U64) * _GOLDEN))

    def _ensure_rows(self, rows: np.ndarray) -> None:
        pops = self._populations
        unique = np.unique(rows)
        missing = [int(r) for r in unique if int(r) not in pops]
        evicted = 0
        if self.max_resident_rows is not None:
            if len(missing) < len(unique):
                for r in unique:
                    r = int(r)
                    if r in pops:
                        pops.move_to_end(r)
            evicted = _evict_lru_rows(
                pops, self.max_resident_rows, len(unique), len(missing)
            )
        if missing:
            self._generate_rows(np.asarray(missing, dtype=np.int64))
        _note_residency(len(missing), evicted)

    def resident_rows(self) -> int:
        """How many rows currently hold materialized population state."""
        return len(self._populations)

    def release(self) -> None:
        """Drop all resident row state and square up the process gauge.

        Mirrors :meth:`~repro.dram.faults.FaultMap.release`: populations
        regenerate bitwise-identically on the next touch, and releasing
        keeps the shared resident-rows gauge an account of live state.
        """
        resident = len(self._populations)
        self._populations.clear()
        if resident:
            obs.get_registry().gauge(RESIDENT_ROWS_GAUGE).add(-resident)

    def _generate_rows(self, rows: np.ndarray) -> None:
        """Generate populations for (unique, uncached) ``rows`` in one pass."""
        cfg = self.config
        base = self._row_base(rows)
        true_cell = (
            _unit(_mix64(base ^ _TAG_POLARITY)) < cfg.true_cell_row_fraction
        )
        counts = _binomial_quantile(
            _unit(_mix64(base ^ _TAG_HAMMER_COUNT)),
            self.bits_per_row,
            cfg.hammer_vulnerable_rate,
        )
        columns_by_row: Dict[int, np.ndarray] = {}
        thresholds_by_row: Dict[int, np.ndarray] = {}
        nz = np.flatnonzero(counts)
        if len(nz):
            nz_counts = counts[nz]
            total = int(nz_counts.sum())
            pair_pos = np.repeat(np.arange(len(nz)), nz_counts)
            starts = np.cumsum(nz_counts) - nz_counts
            j = np.arange(total, dtype=np.int64) - np.repeat(starts, nz_counts)
            pair_base = base[nz][pair_pos]
            cols = _draw_distinct_columns(
                pair_base, pair_pos, j, self.bits_per_row, _TAG_HAMMER_COLUMN
            )
            thresholds = _draw_lognormal_thresholds(
                pair_base, j, cfg.threshold_sigma,
                _TAG_HAMMER_U1, _TAG_HAMMER_U2,
            )
            order = np.lexsort((cols, pair_pos))
            cols, thresholds, pair_pos = (
                cols[order], thresholds[order], pair_pos[order]
            )
            bounds = np.cumsum(nz_counts)
            for i, row_pos in enumerate(nz):
                lo, hi = bounds[i] - nz_counts[i], bounds[i]
                columns_by_row[int(rows[row_pos])] = cols[lo:hi]
                thresholds_by_row[int(rows[row_pos])] = thresholds[lo:hi]
        for i, row in enumerate(rows):
            row = int(row)
            self._populations[row] = _HammerRow(
                columns=columns_by_row.get(row, _EMPTY_COLUMNS),
                thresholds=thresholds_by_row.get(row, _EMPTY_THRESHOLDS),
                true_cell=bool(true_cell[i]),
            )

    def row_population(self, row_index: int) -> _HammerRow:
        self._check_rows(np.asarray([row_index], dtype=np.int64))
        pop = self._populations.get(row_index)
        if pop is None:
            self._ensure_rows(np.array([row_index], dtype=np.int64))
            pop = self._populations[row_index]
        elif self.max_resident_rows is not None:
            self._populations.move_to_end(row_index)
        return pop

    def _check_rows(self, rows: np.ndarray) -> None:
        if len(rows) and (rows.min() < 0 or rows.max() >= self.total_rows):
            bad = rows[(rows < 0) | (rows >= self.total_rows)][0]
            raise ValueError(f"row index {int(bad)} out of range")

    def _gather(
        self, rows: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Concatenated (row_pos, columns, thresholds, true_cell)."""
        self._ensure_rows(rows)
        pops = [self._populations[int(r)] for r in rows]
        counts = np.fromiter((len(p.columns) for p in pops), np.int64, len(pops))
        row_pos = np.repeat(np.arange(len(pops)), counts)
        nonempty = [p for p in pops if len(p.columns)]
        if not nonempty:
            return (
                row_pos, _EMPTY_COLUMNS, _EMPTY_THRESHOLDS,
                np.empty(0, dtype=bool),
            )
        cols = np.concatenate([p.columns for p in nonempty])
        thresholds = np.concatenate([p.thresholds for p in nonempty])
        true_cell = np.repeat(
            np.fromiter((p.true_cell for p in pops), bool, len(pops)), counts
        )
        return row_pos, cols, thresholds, true_cell

    # ------------------------------------------------------------------
    # Pressure: ACT stream -> per-victim weighted dose
    # ------------------------------------------------------------------
    def weighted_activations(
        self, snapshot: Mapping[int, Tuple[int, float]]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """RowPress-weighted aggressor dose from an activation snapshot.

        ``snapshot`` maps flat row -> (ACT count, open-interval ns), the
        shape :meth:`SystemSimulator.activation_snapshot` returns. Weight
        = count + on_ns / rowpress_tau_ns. Rows come out sorted so the
        result is independent of dict iteration order.
        """
        if not snapshot:
            return (
                np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
            )
        rows = np.asarray(sorted(snapshot), dtype=np.int64)
        counts = np.asarray(
            [snapshot[int(r)][0] for r in rows], dtype=np.float64
        )
        on_ns = np.asarray(
            [snapshot[int(r)][1] for r in rows], dtype=np.float64
        )
        return rows, counts + on_ns / self.config.rowpress_tau_ns

    def victim_pressure(
        self,
        aggressor_rows: Union[Sequence[int], np.ndarray],
        weights: Union[Sequence[float], np.ndarray],
        rows_per_bank: Optional[int] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Fold aggressor doses onto their neighbours.

        Distance-d neighbours (d <= blast_radius) receive the aggressor's
        weight scaled by ``far_neighbor_fraction ** (d - 1)``. Pairs that
        would cross a bank edge (flat indices in different
        ``rows_per_bank`` blocks) are dropped when ``rows_per_bank`` is
        given — rows of different banks are not physical neighbours.
        Returns (victim rows sorted ascending, summed pressures).
        """
        aggressors = np.asarray(aggressor_rows, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.float64)
        if aggressors.shape != weights.shape:
            raise ValueError("aggressor_rows and weights must align")
        self._check_rows(aggressors)
        victim_parts = []
        weight_parts = []
        for distance in range(1, self.config.blast_radius + 1):
            scale = self.config.far_neighbor_fraction ** (distance - 1)
            for side in (-distance, distance):
                victims = aggressors + side
                keep = (victims >= 0) & (victims < self.total_rows)
                if rows_per_bank is not None:
                    keep &= (
                        victims // rows_per_bank
                        == aggressors // rows_per_bank
                    )
                victim_parts.append(victims[keep])
                weight_parts.append(weights[keep] * scale)
        if not victim_parts:
            return (
                np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
            )
        all_victims = np.concatenate(victim_parts)
        all_weights = np.concatenate(weight_parts)
        if not len(all_victims):
            return all_victims, all_weights
        unique, inverse = np.unique(all_victims, return_inverse=True)
        pressure = np.zeros(len(unique), dtype=np.float64)
        np.add.at(pressure, inverse, all_weights)
        return unique, pressure

    # ------------------------------------------------------------------
    # Dose response
    # ------------------------------------------------------------------
    def _interval_factor(self, refresh_interval_ms: float) -> float:
        """Effective-threshold multiplier for a victim refresh interval."""
        return math.exp(
            self.config.interval_sensitivity
            * math.log(
                self.config.nominal_interval_ms
                / max(refresh_interval_ms, 1e-9)
            )
        )

    def flips(
        self,
        victim_rows: Union[Sequence[int], np.ndarray],
        pressures: Union[Sequence[float], np.ndarray],
        refresh_interval_ms: float,
        content_bits: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(row, physical column) of every cell the given doses flip.

        A hammer-vulnerable cell flips iff its victim row's pressure
        reaches ``threshold * hc_first * interval_factor`` **and** the
        cell is charged. ``content_bits`` supplies the charge check —
        one silicon-order row shared by the batch, or a
        ``(len(victim_rows), width)`` matrix; ``None`` assumes the
        worst case (every vulnerable cell charged).
        """
        rows = np.asarray(victim_rows, dtype=np.int64)
        pressures = np.asarray(pressures, dtype=np.float64)
        if rows.shape != pressures.shape:
            raise ValueError("victim_rows and pressures must align")
        self._check_rows(rows)
        row_pos, cols, thresholds, true_cell = self._gather(rows)
        if len(cols) == 0:
            return rows[:0], cols
        if kernels.engaged():
            # Kernel port of the dose/charge compare below; the numpy
            # path stays as the equivalence oracle.
            hit = faultpred.disturb_hit(
                thresholds, row_pos, pressures,
                self.config.hc_first,
                self._interval_factor(refresh_interval_ms),
                cols, true_cell, content_bits,
            )
        else:
            effective = (
                thresholds
                * self.config.hc_first
                * self._interval_factor(refresh_interval_ms)
            )
            hit = pressures[row_pos] >= effective
            if content_bits is not None:
                bits = np.asarray(content_bits)
                width = bits.shape[-1]
                valid = cols < width
                safe = np.where(valid, cols, 0)
                if bits.ndim == 1:
                    value = bits[safe]
                else:
                    value = bits[row_pos, safe]
                charged = np.where(true_cell, value == 1, value == 0)
                hit &= valid & charged
        flip_rows = rows[row_pos[hit]]
        if obs.forensics_active() and obs.trace_active():
            over = np.unique(flip_rows)
            obs.emit(
                "dose_crossing",
                interval_ms=float(refresh_interval_ms),
                rows_over=int(len(over)),
                max_pressure=(
                    float(pressures.max()) if pressures.size else 0.0
                ),
                rows_sample=[int(r) for r in over[:64]],
            )
        return flip_rows, cols[hit]

    def rows_flip(
        self,
        victim_rows: Union[Sequence[int], np.ndarray],
        pressures: Union[Sequence[float], np.ndarray],
        refresh_interval_ms: float,
        content_bits: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Which victim rows lose at least one bit (aligned bool array)."""
        rows = np.asarray(victim_rows, dtype=np.int64)
        flip_rows, _ = self.flips(
            rows, pressures, refresh_interval_ms, content_bits
        )
        return np.isin(rows, flip_rows)

    def stress_contribution(
        self,
        pressures: Union[float, Sequence[float], np.ndarray],
    ) -> np.ndarray:
        """Convert victim pressure to content-model stress units.

        One HC_first of pressure is worth ``content_coupling`` stress
        units; feed the result to ``FaultMap`` evaluation via its
        ``disturb_stress`` parameter. Zero pressure contributes exactly
        0.0, so the composed predicate reduces to pure content.
        """
        pressures = np.asarray(pressures, dtype=np.float64)
        return self.config.content_coupling * pressures / self.config.hc_first

    def aligned_stress(
        self,
        rows: Union[Sequence[int], np.ndarray],
        victim_rows: np.ndarray,
        pressures: np.ndarray,
    ) -> np.ndarray:
        """Per-row ``disturb_stress`` for a batch evaluation over ``rows``.

        Scatters the (victim, pressure) pairs onto the batch order and
        converts to stress units; rows without pressure get 0.0.
        """
        rows = np.asarray(rows, dtype=np.int64)
        lookup = {int(v): float(p) for v, p in zip(victim_rows, pressures)}
        pressure = np.asarray(
            [lookup.get(int(r), 0.0) for r in rows], dtype=np.float64
        )
        return self.stress_contribution(pressure)
