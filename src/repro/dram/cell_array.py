"""Cell-level DRAM content model.

A :class:`CellArray` stores the logical (system-visible) content of every
row that has ever been written, and can produce the *silicon-order* bit
layout of a row by pushing the content through the chip's vendor mapping.
Combined with a :class:`~repro.dram.faults.FaultMap` it answers the question
at the centre of MEMCON: *given what is currently stored, which cells fail
at a given refresh interval?*

Rows never written are treated as holding all zeros (the post-power-up
convention used by the paper's FPGA test infrastructure).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from .faults import FaultMap, VulnerableCell
from .geometry import DramGeometry
from .scramble import VendorMapping, make_vendor_mapping


def bytes_to_bits(data: bytes) -> np.ndarray:
    """Unpack bytes into a bit array (LSB-first within each byte)."""
    return np.unpackbits(np.frombuffer(data, dtype=np.uint8), bitorder="little")


def bits_to_bytes(bits: np.ndarray) -> bytes:
    """Inverse of :func:`bytes_to_bits`."""
    if len(bits) % 8:
        raise ValueError("bit array length must be a multiple of 8")
    return np.packbits(bits.astype(np.uint8), bitorder="little").tobytes()


class CellArray:
    """System-visible DRAM content plus the hidden silicon layout.

    Parameters
    ----------
    geometry:
        Shape of the module.
    fault_map:
        Vulnerable-cell population. Built automatically when omitted.
    vendor_mapping:
        Scramble+remap path. Built automatically (seeded) when omitted.
    seed:
        Chip seed used for any auto-built components.
    """

    def __init__(
        self,
        geometry: DramGeometry,
        fault_map: Optional[FaultMap] = None,
        vendor_mapping: Optional[VendorMapping] = None,
        seed: int = 0,
    ) -> None:
        self.geometry = geometry
        self.seed = seed
        if vendor_mapping is None:
            spares = max(8, geometry.bits_per_row // 256)
            vendor_mapping = make_vendor_mapping(
                columns=geometry.bits_per_row,
                seed=seed,
                spare_columns=spares,
                faulty_fraction=0.002,
            )
        self.vendor_mapping = vendor_mapping
        if fault_map is None:
            fault_map = FaultMap(
                total_rows=geometry.total_rows,
                bits_per_row=vendor_mapping.physical_columns,
                seed=seed,
            )
        self.fault_map = fault_map
        self._rows: Dict[int, np.ndarray] = {}
        self._zero_row = np.zeros(geometry.bits_per_row, dtype=np.uint8)

    # ------------------------------------------------------------------
    # Content access (system order)
    # ------------------------------------------------------------------
    def write_row_bits(self, row_index: int, bits: np.ndarray) -> None:
        """Replace the full content of a row (system bit order)."""
        self._check_row(row_index)
        if len(bits) != self.geometry.bits_per_row:
            raise ValueError("bit array does not match row width")
        self._rows[row_index] = bits.astype(np.uint8, copy=True)

    def write_row_bytes(self, row_index: int, data: bytes) -> None:
        """Replace the full content of a row from raw bytes."""
        if len(data) != self.geometry.row_size_bytes:
            raise ValueError("data does not match row size")
        self.write_row_bits(row_index, bytes_to_bits(data))

    def write_block(self, row_index: int, block: int, data: bytes) -> None:
        """Write one cache block within a row."""
        self._check_row(row_index)
        block_bytes = self.geometry.block_size_bytes
        if not 0 <= block < self.geometry.blocks_per_row:
            raise ValueError(f"block {block} out of range")
        if len(data) != block_bytes:
            raise ValueError("data does not match block size")
        bits = self._rows.get(row_index)
        if bits is None:
            bits = self._zero_row.copy()
            self._rows[row_index] = bits
        start = block * block_bytes * 8
        bits[start: start + block_bytes * 8] = bytes_to_bits(data)

    def read_row_bits(self, row_index: int) -> np.ndarray:
        """Current content of a row in system bit order (copy)."""
        self._check_row(row_index)
        return self._rows.get(row_index, self._zero_row).copy()

    def read_row_bytes(self, row_index: int) -> bytes:
        return bits_to_bytes(self.read_row_bits(row_index))

    def written_rows(self) -> List[int]:
        """Flat indices of rows that hold explicit (non-default) content."""
        return sorted(self._rows)

    # ------------------------------------------------------------------
    # Silicon view and failure evaluation
    # ------------------------------------------------------------------
    def silicon_row(self, row_index: int) -> np.ndarray:
        """Row content in physical (scrambled + remapped) order."""
        return self.vendor_mapping.to_silicon(self.read_row_bits(row_index))

    def failing_cells(
        self, row_index: int, refresh_interval_ms: float
    ) -> List[VulnerableCell]:
        """Vulnerable cells that fail with the *current* content."""
        return self.fault_map.failing_cells(
            row_index, self.silicon_row(row_index), refresh_interval_ms
        )

    def failing_mask(self, row_index: int, refresh_interval_ms: float) -> np.ndarray:
        """Failure mask over the row's vulnerable cells, current content."""
        return self.fault_map.failing_mask(
            row_index, self.silicon_row(row_index), refresh_interval_ms
        )

    def row_fails(self, row_index: int, refresh_interval_ms: float) -> bool:
        """Does the row lose at least one bit at this refresh interval?"""
        return bool(self.failing_mask(row_index, refresh_interval_ms).any())

    def evaluate_rows(
        self,
        rows: Optional[Iterable[int]],
        refresh_interval_ms: float,
        chunk_rows: int = 1024,
    ) -> np.ndarray:
        """Which rows fail with their *current* content, batch-evaluated.

        ``rows=None`` evaluates the whole module. Never-written rows all
        share the default all-zeros image, so they are answered with one
        shared silicon row; written rows are pushed through the vendor
        mapping in chunks of ``chunk_rows`` to bound peak memory. Returns a
        boolean array aligned with ``rows``.
        """
        if rows is None:
            rows = np.arange(self.geometry.total_rows, dtype=np.int64)
        else:
            rows = np.asarray(list(rows) if not isinstance(rows, np.ndarray) else rows,
                              dtype=np.int64)
        out = np.zeros(len(rows), dtype=bool)
        if len(rows) == 0:
            return out
        written = np.fromiter(
            (int(r) in self._rows for r in rows), bool, len(rows)
        )
        unwritten_pos = np.flatnonzero(~written)
        if len(unwritten_pos):
            zero_silicon = self.vendor_mapping.to_silicon(self._zero_row)
            out[unwritten_pos] = self.fault_map.rows_fail(
                rows[unwritten_pos], zero_silicon, refresh_interval_ms
            )
        written_pos = np.flatnonzero(written)
        for start in range(0, len(written_pos), chunk_rows):
            pos = written_pos[start: start + chunk_rows]
            stacked = np.stack([self._rows[int(r)] for r in rows[pos]])
            silicon = self.vendor_mapping.to_silicon_batch(stacked)
            out[pos] = self.fault_map.rows_fail(
                rows[pos], silicon, refresh_interval_ms
            )
        return out

    def decay_row(self, row_index: int, refresh_interval_ms: float) -> np.ndarray:
        """Content after an idle retention window, in system bit order.

        Flips every failing cell's stored value and maps the silicon layout
        back to system order — what a read-back after the idle period sees.
        """
        physical = self.vendor_mapping.to_silicon(self.read_row_bits(row_index))
        flipped = self.fault_map.failing_columns(
            row_index, physical, refresh_interval_ms
        )
        physical[flipped] ^= 1
        return self.vendor_mapping.from_silicon(physical)

    def _check_row(self, row_index: int) -> None:
        if not 0 <= row_index < self.geometry.total_rows:
            raise ValueError(f"row index {row_index} out of range")
