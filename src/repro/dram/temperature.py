"""Temperature scaling of DRAM retention.

Charge leakage is thermally activated: retention time falls exponentially
as temperature rises, roughly halving every ~10C (the well-known
experimentally-validated model the paper cites when discussing
temperature guardbands, §3). The paper's own methodology uses this
scaling: its FPGA tests run a 4 s refresh interval at 45C, "which
corresponds to a refresh interval of 328 ms at 85C".

This module provides that conversion plus the guardband helper MEMCON
needs to test at one temperature while guaranteeing operation at another.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: The reference hot-operating temperature used in JEDEC extended range.
REFERENCE_TEMPERATURE_C = 85.0


@dataclass(frozen=True)
class RetentionTemperatureModel:
    """Exponential retention-vs-temperature model.

    ``doubling_celsius`` is the temperature drop that doubles retention
    time. The default (11.08C) is calibrated so that the paper's own
    conversion holds exactly: 4000 ms at 45C == 328 ms at 85C, i.e.
    doubling = 40 / log2(4000 / 328).
    """

    doubling_celsius: float = 40.0 / math.log2(4000.0 / 328.0)

    def __post_init__(self) -> None:
        if self.doubling_celsius <= 0:
            raise ValueError("doubling_celsius must be positive")

    # ------------------------------------------------------------------
    def scale_interval(
        self,
        interval_ms: float,
        from_celsius: float,
        to_celsius: float,
    ) -> float:
        """Convert a retention interval between operating temperatures.

        A window that is safe for ``interval_ms`` at ``from_celsius``
        stresses cells identically to the returned interval at
        ``to_celsius`` (hotter target -> shorter equivalent interval).
        """
        if interval_ms <= 0:
            raise ValueError("interval_ms must be positive")
        delta = from_celsius - to_celsius
        return interval_ms * 2.0 ** (delta / self.doubling_celsius)

    def equivalent_at_reference(
        self, interval_ms: float, at_celsius: float
    ) -> float:
        """The 85C-equivalent of an interval tested at ``at_celsius``."""
        return self.scale_interval(
            interval_ms, at_celsius, REFERENCE_TEMPERATURE_C
        )

    # ------------------------------------------------------------------
    def guardbanded_test_interval(
        self,
        target_interval_ms: float,
        target_celsius: float,
        test_celsius: float,
        guardband: float = 2.0,
    ) -> float:
        """Test interval that guarantees the target with thermal margin.

        MEMCON tests content at ``test_celsius``; the row must then be
        safe at ``target_interval_ms`` when the chip heats to
        ``target_celsius``. The returned test interval covers the target
        plus a multiplicative ``guardband`` (the paper's recommended
        protection against temperature variation).
        """
        if target_interval_ms <= 0:
            raise ValueError("target_interval_ms must be positive")
        if guardband < 1.0:
            raise ValueError("guardband must be at least 1.0")
        worst_case = self.scale_interval(
            target_interval_ms * guardband, target_celsius, test_celsius
        )
        return worst_case


#: Default model instance, calibrated to the paper's 45C/85C conversion.
DEFAULT_TEMPERATURE_MODEL = RetentionTemperatureModel()
