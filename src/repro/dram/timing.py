"""DDR3 timing parameters and derived per-operation latency costs.

The defaults reproduce the arithmetic in the MEMCON paper's Appendix:

* one full-row read into the memory controller costs
  ``tRCD + blocks_per_row * tCCD + tRP`` = 534 ns,
* Read&Compare (two row reads) costs 1068 ns,
* Copy&Compare (two reads plus one row write) costs 1602 ns,
* one row refresh costs ``tRAS + tRP`` = 39 ns.

JEDEC DDR3-1600 nominal values differ from these by a few nanoseconds; the
paper rounds, and this module matches the paper (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


#: DRAM cycle time for DDR3-1600 (800 MHz command clock), in nanoseconds.
DDR3_1600_CYCLE_NS = 1.25

#: Default retention (refresh) intervals used throughout the paper, in ms.
HI_REF_INTERVAL_MS = 16.0
LO_REF_INTERVAL_MS = 64.0
DEFAULT_REF_INTERVAL_MS = 64.0

#: Rows refreshed per auto-refresh window in a typical DDR3 device.
ROWS_PER_REFRESH_WINDOW = 8192


@dataclass(frozen=True)
class TimingParameters:
    """DRAM timing parameters, all in nanoseconds unless noted.

    The defaults match the MEMCON paper's Appendix arithmetic for
    DDR3-1600 (see module docstring).
    """

    tCK: float = DDR3_1600_CYCLE_NS
    tRCD: float = 11.0   # ACT -> column command
    tRP: float = 11.0    # PRE -> ACT
    tRAS: float = 28.0   # ACT -> PRE
    tCCD: float = 4.0    # column command -> column command
    tCAS: float = 13.75  # read latency (CL)
    tWR: float = 15.0    # write recovery
    tWTR: float = 7.5    # write -> read turnaround
    tRTP: float = 7.5    # read -> precharge
    tRRD: float = 6.0    # ACT -> ACT, different banks
    tFAW: float = 30.0   # four-activate window
    tRFC: float = 350.0  # refresh command duration (8 Gb chip)
    tREFI: float = 1950.0  # refresh command interval (16 ms aggressive mode)
    burst_cycles: int = 4  # BL8 on a x8 interface occupies 4 clocks

    blocks_per_row: int = 128  # 64 B cache blocks in an 8 KB row

    def __post_init__(self) -> None:
        for name in (
            "tCK", "tRCD", "tRP", "tRAS", "tCCD", "tCAS", "tWR", "tWTR",
            "tRTP", "tRRD", "tFAW", "tRFC", "tREFI",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.blocks_per_row <= 0:
            raise ValueError("blocks_per_row must be positive")

    # ------------------------------------------------------------------
    # Derived costs (paper Appendix)
    # ------------------------------------------------------------------
    @property
    def row_read_ns(self) -> float:
        """Latency to stream one full row into the memory controller."""
        return self.tRCD + self.blocks_per_row * self.tCCD + self.tRP

    @property
    def row_write_ns(self) -> float:
        """Latency to stream one full row from the controller into DRAM.

        The paper charges writes the same per-row cost as reads when
        deriving the Copy&Compare total (3x a row read).
        """
        return self.row_read_ns

    @property
    def read_and_compare_ns(self) -> float:
        """Cost of the Read&Compare test mode: two full row reads."""
        return 2.0 * self.row_read_ns

    @property
    def copy_and_compare_ns(self) -> float:
        """Cost of the Copy&Compare test mode: two reads plus one write."""
        return 2.0 * self.row_read_ns + self.row_write_ns

    @property
    def row_refresh_ns(self) -> float:
        """Cost of refreshing a single row (activate + precharge)."""
        return self.tRAS + self.tRP

    def cycles(self, ns: float) -> int:
        """Convert a latency in nanoseconds to (ceil) DRAM clock cycles."""
        cycles = int(ns / self.tCK)
        if cycles * self.tCK < ns:
            cycles += 1
        return cycles

    def with_density(self, density_gbit: int) -> "TimingParameters":
        """Return timings with ``tRFC`` scaled for the given chip density."""
        return replace(self, tRFC=trfc_for_density_ns(density_gbit))


#: tRFC (ns) per chip density, following the paper's Table 2 scaling.
TRFC_BY_DENSITY_NS = {8: 350.0, 16: 530.0, 32: 890.0, 64: 1600.0}


def trfc_for_density_ns(density_gbit: int) -> float:
    """Return the refresh command duration for a chip density in Gbit."""
    try:
        return TRFC_BY_DENSITY_NS[density_gbit]
    except KeyError:
        raise ValueError(
            f"unsupported chip density {density_gbit} Gb; "
            f"expected one of {sorted(TRFC_BY_DENSITY_NS)}"
        ) from None


def trefi_for_refresh_interval_ns(refresh_interval_ms: float) -> float:
    """Spacing of auto-refresh commands for a target retention interval.

    A device refreshes :data:`ROWS_PER_REFRESH_WINDOW` row groups per
    retention window, so e.g. a 16 ms window yields tREFI = 1.95 us and a
    64 ms window yields tREFI = 7.8 us (paper Table 2).
    """
    if refresh_interval_ms <= 0:
        raise ValueError("refresh_interval_ms must be positive")
    return refresh_interval_ms * 1e6 / ROWS_PER_REFRESH_WINDOW


DDR3_1600 = TimingParameters()
