"""Functional DRAM device: command interface over the cell array.

This is the *functional* half of the DRAM model — it executes ACT / RD /
WR / PRE / REF commands against a :class:`~repro.dram.cell_array.CellArray`
and tracks per-row refresh timestamps so that retention failures manifest
when a row is left unrefreshed longer than its assigned interval. Timing
legality (tRCD, tRP, ...) is enforced by the cycle-level memory controller
in :mod:`repro.mc`; the device itself is untimed, which keeps functional
testing (SoftMC-style) fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Tuple

import numpy as np

from .cell_array import CellArray
from .geometry import DramGeometry


class DeviceError(Exception):
    """Illegal command sequence (e.g. column access to a closed bank)."""


@dataclass
class _BankState:
    open_row: Optional[int] = None  # row (within bank), None when precharged


class DramDevice:
    """An untimed DRAM module with per-row retention behaviour.

    Time is supplied by the caller on every command (``now_ms``); the device
    applies charge decay lazily, when a row is next activated, based on how
    long the row went without an activate/refresh.
    """

    def __init__(
        self,
        geometry: DramGeometry,
        cell_array: Optional[CellArray] = None,
        seed: int = 0,
    ) -> None:
        self.geometry = geometry
        self.cells = cell_array if cell_array is not None else CellArray(geometry, seed=seed)
        if self.cells.geometry is not geometry and self.cells.geometry != geometry:
            raise ValueError("cell array geometry does not match device geometry")
        self._banks: Dict[Tuple[int, int, int], _BankState] = {}
        # Last time each flat row was charged (activated or refreshed).
        self._last_charge_ms: Dict[int, float] = {}
        self.activate_count = 0
        self.refresh_count = 0

    # ------------------------------------------------------------------
    def _bank(self, channel: int, rank: int, bank: int) -> _BankState:
        key = (channel, rank, bank)
        state = self._banks.get(key)
        if state is None:
            state = _BankState()
            self._banks[key] = state
        return state

    def _flat_row(self, channel: int, rank: int, bank: int, row: int) -> int:
        from .geometry import RowAddress

        return self.geometry.row_index(RowAddress(channel, rank, bank, row))

    def _apply_decay(self, flat_row: int, now_ms: float) -> None:
        """Materialise retention failures accumulated while the row sat idle."""
        last = self._last_charge_ms.get(flat_row, 0.0)
        idle_ms = now_ms - last
        if idle_ms <= 0:
            return
        decayed = self.cells.decay_row(flat_row, idle_ms)
        self.cells.write_row_bits(flat_row, decayed)

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------
    def activate(self, channel: int, rank: int, bank: int, row: int, now_ms: float) -> None:
        """Open a row: latch it into the sense amps, fully recharging it."""
        state = self._bank(channel, rank, bank)
        if state.open_row is not None:
            raise DeviceError(
                f"bank ({channel},{rank},{bank}) already has row "
                f"{state.open_row} open"
            )
        flat = self._flat_row(channel, rank, bank, row)
        self._apply_decay(flat, now_ms)
        self._last_charge_ms[flat] = now_ms
        state.open_row = row
        self.activate_count += 1

    def precharge(self, channel: int, rank: int, bank: int) -> None:
        """Close the open row of a bank."""
        state = self._bank(channel, rank, bank)
        if state.open_row is None:
            raise DeviceError(f"bank ({channel},{rank},{bank}) is already precharged")
        state.open_row = None

    def read_block(
        self, channel: int, rank: int, bank: int, block: int
    ) -> bytes:
        """Read one cache block from the open row."""
        state = self._bank(channel, rank, bank)
        if state.open_row is None:
            raise DeviceError("read from a precharged bank")
        flat = self._flat_row(channel, rank, bank, state.open_row)
        data = self.cells.read_row_bytes(flat)
        size = self.geometry.block_size_bytes
        if not 0 <= block < self.geometry.blocks_per_row:
            raise DeviceError(f"block {block} out of range")
        return data[block * size: (block + 1) * size]

    def write_block(
        self, channel: int, rank: int, bank: int, block: int, data: bytes
    ) -> None:
        """Write one cache block into the open row."""
        state = self._bank(channel, rank, bank)
        if state.open_row is None:
            raise DeviceError("write to a precharged bank")
        flat = self._flat_row(channel, rank, bank, state.open_row)
        self.cells.write_block(flat, block, data)

    def refresh_row(self, flat_row: int, now_ms: float) -> None:
        """Refresh one row (restores full charge; decay first materialises)."""
        self._apply_decay(flat_row, now_ms)
        self._last_charge_ms[flat_row] = now_ms
        self.refresh_count += 1

    # ------------------------------------------------------------------
    # Whole-row conveniences used by the test infrastructure
    # ------------------------------------------------------------------
    def read_row(self, flat_row: int, now_ms: float) -> bytes:
        """Activate-read-precharge a full row at the flat-row level."""
        self._apply_decay(flat_row, now_ms)
        self._last_charge_ms[flat_row] = now_ms
        self.activate_count += 1
        return self.cells.read_row_bytes(flat_row)

    def write_row(self, flat_row: int, data: bytes, now_ms: float) -> None:
        """Activate-write-precharge a full row at the flat-row level."""
        self.cells.write_row_bits(flat_row, bytes_to_row_width(data, self.geometry))
        self._last_charge_ms[flat_row] = now_ms
        self.activate_count += 1

    def last_charge_ms(self, flat_row: int) -> float:
        """When a row was last activated or refreshed (0.0 if never)."""
        return self._last_charge_ms.get(flat_row, 0.0)


def bytes_to_row_width(data: bytes, geometry: DramGeometry) -> np.ndarray:
    """Validate raw bytes against the row size and unpack to bits."""
    from .cell_array import bytes_to_bits

    if len(data) != geometry.row_size_bytes:
        raise ValueError(
            f"row data is {len(data)} bytes; expected {geometry.row_size_bytes}"
        )
    return bytes_to_bits(data)
