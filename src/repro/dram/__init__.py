"""DRAM substrate: geometry, timing, vendor mapping, faults, and device.

This package models everything below the memory controller:

* :mod:`~repro.dram.timing` — DDR3 timing parameters and derived costs,
* :mod:`~repro.dram.geometry` — module shape and system address codec,
* :mod:`~repro.dram.scramble` — vendor address scrambling / column remapping,
* :mod:`~repro.dram.faults` — data-dependent failure population,
* :mod:`~repro.dram.cell_array` — per-row content plus the silicon view,
* :mod:`~repro.dram.device` — functional command-level DRAM device.
"""

from .cell_array import CellArray, bits_to_bytes, bytes_to_bits
from .device import DeviceError, DramDevice
from .disturb import DisturbMap, DisturbModelConfig
from .faults import FaultMap, FaultModelConfig, VulnerableCell
from .geometry import PAPER_MODULE, TINY_MODULE, DramGeometry, RowAddress
from .scramble import (
    AddressScrambler,
    ColumnRemapper,
    VendorMapping,
    make_vendor_mapping,
)
from .temperature import (
    DEFAULT_TEMPERATURE_MODEL,
    REFERENCE_TEMPERATURE_C,
    RetentionTemperatureModel,
)
from .timing import (
    DDR3_1600,
    HI_REF_INTERVAL_MS,
    LO_REF_INTERVAL_MS,
    TimingParameters,
    trefi_for_refresh_interval_ns,
    trfc_for_density_ns,
)

__all__ = [
    "AddressScrambler",
    "CellArray",
    "ColumnRemapper",
    "DDR3_1600",
    "DEFAULT_TEMPERATURE_MODEL",
    "REFERENCE_TEMPERATURE_C",
    "RetentionTemperatureModel",
    "DeviceError",
    "DisturbMap",
    "DisturbModelConfig",
    "DramDevice",
    "DramGeometry",
    "FaultMap",
    "FaultModelConfig",
    "HI_REF_INTERVAL_MS",
    "LO_REF_INTERVAL_MS",
    "PAPER_MODULE",
    "RowAddress",
    "TINY_MODULE",
    "TimingParameters",
    "VendorMapping",
    "VulnerableCell",
    "bits_to_bytes",
    "bytes_to_bits",
    "make_vendor_mapping",
    "trefi_for_refresh_interval_ns",
    "trfc_for_density_ns",
]
