"""DRAM module geometry and the system-visible address codec.

A module is organised as channel -> rank -> bank -> row -> column, matching
the paper's Figure 1. The codec here maps flat *system* row/column addresses
to coordinates; the *physical* cell layout inside a chip additionally goes
through vendor scrambling and column remapping (see
:mod:`repro.dram.scramble`), which the system cannot observe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, NamedTuple


class RowAddress(NamedTuple):
    """System-visible coordinates of one DRAM row."""

    channel: int
    rank: int
    bank: int
    row: int


@dataclass(frozen=True)
class DramGeometry:
    """Shape of a DRAM module, with helpers to enumerate and index rows.

    The defaults describe the paper's 2 GB evaluation module: one channel,
    one rank of 8 chips, 8 banks, 32768 rows per bank, 8 KB rows.
    """

    channels: int = 1
    ranks: int = 1
    banks: int = 8
    rows_per_bank: int = 32768
    row_size_bytes: int = 8192
    block_size_bytes: int = 64

    def __post_init__(self) -> None:
        for name in ("channels", "ranks", "banks", "rows_per_bank",
                     "row_size_bytes", "block_size_bytes"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.row_size_bytes % self.block_size_bytes:
            raise ValueError("row size must be a multiple of the block size")

    # ------------------------------------------------------------------
    @property
    def total_rows(self) -> int:
        return self.channels * self.ranks * self.banks * self.rows_per_bank

    @property
    def blocks_per_row(self) -> int:
        return self.row_size_bytes // self.block_size_bytes

    @property
    def bits_per_row(self) -> int:
        return self.row_size_bytes * 8

    @property
    def capacity_bytes(self) -> int:
        return self.total_rows * self.row_size_bytes

    # ------------------------------------------------------------------
    def row_index(self, addr: RowAddress) -> int:
        """Flatten a row coordinate into a dense index in [0, total_rows)."""
        self._check(addr)
        index = addr.channel
        index = index * self.ranks + addr.rank
        index = index * self.banks + addr.bank
        index = index * self.rows_per_bank + addr.row
        return index

    def row_address(self, index: int) -> RowAddress:
        """Inverse of :meth:`row_index`."""
        if not 0 <= index < self.total_rows:
            raise ValueError(f"row index {index} out of range")
        index, row = divmod(index, self.rows_per_bank)
        index, bank = divmod(index, self.banks)
        channel, rank = divmod(index, self.ranks)
        return RowAddress(channel, rank, bank, row)

    def iter_rows(self) -> Iterator[RowAddress]:
        """Yield every row coordinate in flat-index order."""
        for index in range(self.total_rows):
            yield self.row_address(index)

    def byte_to_row(self, byte_address: int) -> int:
        """Map a flat byte address to its flat row index."""
        if not 0 <= byte_address < self.capacity_bytes:
            raise ValueError(f"byte address {byte_address:#x} out of range")
        return byte_address // self.row_size_bytes

    def _check(self, addr: RowAddress) -> None:
        if not 0 <= addr.channel < self.channels:
            raise ValueError(f"channel {addr.channel} out of range")
        if not 0 <= addr.rank < self.ranks:
            raise ValueError(f"rank {addr.rank} out of range")
        if not 0 <= addr.bank < self.banks:
            raise ValueError(f"bank {addr.bank} out of range")
        if not 0 <= addr.row < self.rows_per_bank:
            raise ValueError(f"row {addr.row} out of range")


#: The 2 GB module used in the paper's FPGA experiments (Appendix).
PAPER_MODULE = DramGeometry()

#: A small geometry for unit tests and quick examples.
TINY_MODULE = DramGeometry(
    channels=1, ranks=1, banks=2, rows_per_bank=64,
    row_size_bytes=512, block_size_bytes=64,
)
