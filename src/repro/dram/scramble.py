"""Vendor-internal address scrambling and column remapping.

Modern DRAM chips do two things that hide the physical cell layout from the
system (paper Figure 2):

* **Address scrambling** — logically adjacent system addresses do not map to
  physically adjacent cells; the mapping is vendor- and generation-specific
  and is never exposed.
* **Column remapping** — columns found faulty during manufacturing test are
  remapped onto redundant spare columns at the edge of the array, so the
  physical neighbours of a remapped column live in the spare region.

The classes here model both. The fault model uses the *physical* layout to
decide which cells interfere; the rest of the system only ever sees *system*
addresses, which is exactly the opacity MEMCON is designed to tolerate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np


def _feistel_permutation(size: int, seed: int) -> np.ndarray:
    """A deterministic pseudo-random permutation of ``range(size)``.

    Implemented by seeding numpy's Generator; good enough to model the
    arbitrary, undocumented scrambling a vendor applies.
    """
    rng = np.random.default_rng(seed)
    return rng.permutation(size)


@dataclass(frozen=True)
class AddressScrambler:
    """Bijective mapping between system and physical column indices.

    One instance models one chip generation's scrambling table; different
    seeds give the different mappings used by different vendors/generations.
    """

    columns: int
    seed: int = 0
    _system_to_physical: np.ndarray = field(init=False, repr=False)
    _physical_to_system: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.columns <= 0:
            raise ValueError("columns must be positive")
        fwd = _feistel_permutation(self.columns, self.seed)
        inv = np.empty_like(fwd)
        inv[fwd] = np.arange(self.columns)
        object.__setattr__(self, "_system_to_physical", fwd)
        object.__setattr__(self, "_physical_to_system", inv)

    def to_physical(self, system_column: int) -> int:
        return int(self._system_to_physical[system_column])

    def to_system(self, physical_column: int) -> int:
        return int(self._physical_to_system[physical_column])

    def system_to_physical_array(self) -> np.ndarray:
        """The forward permutation as an array (copy): system -> physical."""
        return self._system_to_physical.copy()

    def physical_to_system_array(self) -> np.ndarray:
        """The inverse permutation as an array (copy): physical -> system."""
        return self._physical_to_system.copy()

    def scramble_row(self, system_bits: np.ndarray) -> np.ndarray:
        """Rearrange a row of system-ordered bits into physical order."""
        if len(system_bits) != self.columns:
            raise ValueError("row length does not match column count")
        physical = np.empty_like(system_bits)
        physical[self._system_to_physical] = system_bits
        return physical

    def scramble_rows(self, system_bits: np.ndarray) -> np.ndarray:
        """Batch :meth:`scramble_row`: scramble a (rows, columns) matrix."""
        if system_bits.shape[-1] != self.columns:
            raise ValueError("row length does not match column count")
        physical = np.empty_like(system_bits)
        physical[..., self._system_to_physical] = system_bits
        return physical

    def unscramble_row(self, physical_bits: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`scramble_row`."""
        if len(physical_bits) != self.columns:
            raise ValueError("row length does not match column count")
        return physical_bits[self._system_to_physical]


@dataclass(frozen=True)
class ColumnRemapper:
    """Manufacturing-time remapping of faulty columns to spare columns.

    ``faulty_columns[i]`` is served by spare slot ``i``, which physically
    lives at index ``array_columns + i`` (the spares sit to the right of the
    main array, as in the paper's Figure 2b).
    """

    array_columns: int
    spare_columns: int
    faulty_columns: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.array_columns <= 0:
            raise ValueError("array_columns must be positive")
        if self.spare_columns < 0:
            raise ValueError("spare_columns must be non-negative")
        if len(self.faulty_columns) > self.spare_columns:
            raise ValueError("more faulty columns than spares")
        if len(set(self.faulty_columns)) != len(self.faulty_columns):
            raise ValueError("duplicate faulty column")
        for col in self.faulty_columns:
            if not 0 <= col < self.array_columns:
                raise ValueError(f"faulty column {col} out of range")

    @property
    def total_columns(self) -> int:
        """Main-array columns plus spares (the true physical width)."""
        return self.array_columns + self.spare_columns

    def physical_location(self, column: int) -> int:
        """Where a (scrambled) column index actually lives in silicon."""
        if not 0 <= column < self.array_columns:
            raise ValueError(f"column {column} out of range")
        try:
            slot = self.faulty_columns.index(column)
        except ValueError:
            return column
        return self.array_columns + slot

    def place_row(self, bits: np.ndarray) -> np.ndarray:
        """Spread a row of logical bits over the physical array + spares.

        Faulty main-array positions are left holding zeros; their data lives
        in the spare region instead.
        """
        if len(bits) != self.array_columns:
            raise ValueError("row length does not match array width")
        physical = np.zeros(self.total_columns, dtype=bits.dtype)
        physical[: self.array_columns] = bits
        for slot, col in enumerate(self.faulty_columns):
            physical[self.array_columns + slot] = bits[col]
            physical[col] = 0
        return physical

    def place_rows(self, bits: np.ndarray) -> np.ndarray:
        """Batch :meth:`place_row`: place a (rows, array_columns) matrix."""
        if bits.shape[-1] != self.array_columns:
            raise ValueError("row length does not match array width")
        physical = np.zeros(bits.shape[:-1] + (self.total_columns,), dtype=bits.dtype)
        physical[..., : self.array_columns] = bits
        if self.faulty_columns:
            faulty = np.asarray(self.faulty_columns, dtype=np.int64)
            spares = self.array_columns + np.arange(len(faulty))
            physical[..., spares] = bits[..., faulty]
            physical[..., faulty] = 0
        return physical

    def extract_row(self, physical: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`place_row`."""
        if len(physical) != self.total_columns:
            raise ValueError("row length does not match physical width")
        bits = physical[: self.array_columns].copy()
        for slot, col in enumerate(self.faulty_columns):
            bits[col] = physical[self.array_columns + slot]
        return bits


@dataclass(frozen=True)
class VendorMapping:
    """The full system-to-silicon path for one chip: scramble then remap."""

    scrambler: AddressScrambler
    remapper: ColumnRemapper

    def __post_init__(self) -> None:
        if self.scrambler.columns != self.remapper.array_columns:
            raise ValueError("scrambler and remapper widths disagree")

    @property
    def physical_columns(self) -> int:
        return self.remapper.total_columns

    def to_silicon(self, system_bits: np.ndarray) -> np.ndarray:
        """Lay a system-ordered row of bits out as it sits in silicon."""
        return self.remapper.place_row(self.scrambler.scramble_row(system_bits))

    def to_silicon_batch(self, system_bits: np.ndarray) -> np.ndarray:
        """Batch :meth:`to_silicon`: lay out a (rows, columns) matrix."""
        return self.remapper.place_rows(self.scrambler.scramble_rows(system_bits))

    def from_silicon(self, physical_bits: np.ndarray) -> np.ndarray:
        """Read a silicon layout back into system bit order."""
        return self.scrambler.unscramble_row(self.remapper.extract_row(physical_bits))

    def system_of_silicon(self) -> np.ndarray:
        """System bit index served by each silicon position, -1 if none.

        Faulty main-array positions hold no system data (their content
        lives in the spare region), so a flip there is invisible to any
        read-back — exactly the positions marked -1.
        """
        mapping = np.full(self.physical_columns, -1, dtype=np.int64)
        phys_to_sys = self.scrambler.physical_to_system_array()
        mapping[: self.remapper.array_columns] = phys_to_sys
        if self.remapper.faulty_columns:
            faulty = np.asarray(self.remapper.faulty_columns, dtype=np.int64)
            spares = self.remapper.array_columns + np.arange(len(faulty))
            mapping[spares] = phys_to_sys[faulty]
            mapping[faulty] = -1
        return mapping

    def silicon_index(self, system_column: int) -> int:
        """Physical location of a system column (scramble, then remap)."""
        return self.remapper.physical_location(
            self.scrambler.to_physical(system_column)
        )


def make_vendor_mapping(
    columns: int,
    seed: int = 0,
    spare_columns: int = 0,
    faulty_fraction: float = 0.0,
) -> VendorMapping:
    """Build a random but deterministic vendor mapping for a chip.

    ``faulty_fraction`` of the main-array columns (capped by the number of
    spares) are marked as manufacturing-remapped.
    """
    if not 0.0 <= faulty_fraction <= 1.0:
        raise ValueError("faulty_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed ^ 0x5EED)
    n_faulty = min(int(round(columns * faulty_fraction)), spare_columns)
    faulty = tuple(
        int(c) for c in sorted(rng.choice(columns, size=n_faulty, replace=False))
    )
    return VendorMapping(
        scrambler=AddressScrambler(columns=columns, seed=seed),
        remapper=ColumnRemapper(
            array_columns=columns,
            spare_columns=spare_columns,
            faulty_columns=faulty,
        ),
    )
