"""Data-dependent DRAM failure model.

Physical mechanism (paper §2): parasitic capacitance between adjacent
bitlines couples a cell to its physical left/right neighbours. Whether a
cell flips during a retention window depends on

* the cell's own weakness (per-cell retention threshold, sampled once per
  chip from a heavy-tailed distribution),
* the stored charge level, which decays with time since the last refresh —
  so failures grow (exponentially, per the paper) with the refresh interval,
* whether the cell is a *true-cell* (stores logic 1 as charge) or an
  *anti-cell* (stores logic 0 as charge) — only a charged cell can leak to
  the wrong value, so the failing *value* depends on cell polarity, and
* the neighbour content: a neighbour holding the opposite bitline voltage
  is an *aggressor* and adds coupling noise.

The model is deterministic given (chip seed, content, refresh interval):
a cell fails iff ``stress(content, interval) >= threshold(cell)``. That
determinism mirrors the repeatable, content-conditional failures the paper
measures (Figure 3), and makes the whole library unit-testable.

All neighbour relations are computed in *physical* column order (after
vendor scrambling and column remapping), which is precisely why the system
cannot enumerate these failures without knowing DRAM internals.

Population draws use a counter-based generator (SplitMix64 sub-streams
keyed by chip seed, row, and draw purpose) rather than a sequential RNG,
so that

* any batch of rows can be generated in one vectorised pass — generating
  row 1000 alone and generating rows 0..4095 together yield bit-identical
  populations, and
* row polarity, cell count, cell positions and cell thresholds live on
  *independent* sub-streams: none of them can correlate through a shared
  draw (the per-row-RNG design this replaced fed the polarity draw and the
  first cell draw from the same stream position).

Row populations are stored as structured ndarrays (sorted physical
columns + aligned thresholds), so failure evaluation for a whole row — or
a whole module — is a handful of array operations instead of a per-cell
Python loop. The object-returning methods (:meth:`FaultMap.cells_in_row`,
:meth:`FaultMap.failing_cells`) are thin wrappers over the arrays, and
:meth:`FaultMap.cell_fails` keeps the scalar per-cell evaluation as the
reference oracle the vectorised paths are property-tested against.
"""

from __future__ import annotations

import math
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .. import kernels, obs
from ..kernels import faultpred

#: Registry names for resident-row accounting, shared by FaultMap and
#: DisturbMap so the gauge reads total dense row state per process.
RESIDENT_ROWS_GAUGE = "dram.resident_rows"
ROWS_EVICTED_COUNTER = "dram.rows_evicted"


def _evict_lru_rows(
    populations: "OrderedDict[int, object]",
    budget: int,
    batch: int,
    incoming: int,
    shadow: Optional[Dict[int, object]] = None,
) -> int:
    """Evict least-recently-used rows so ``resident + incoming`` fits.

    ``batch`` is the size of the unique row batch about to be evaluated
    and ``incoming`` how many of those are not yet resident. The caller
    must have already touched (moved to the MRU end) every resident row
    of the batch; the effective target is ``max(budget, batch)``, so no
    row of the active batch is ever evicted mid-evaluation — eviction
    stops once only batch rows remain. ``shadow`` is an optional
    secondary per-row cache evicted in lockstep. Returns the eviction
    count; regeneration on a later touch is bitwise-identical because row
    populations are pure functions of (seed, row) counter streams.
    """
    target = max(budget, batch)
    evicted = 0
    while len(populations) + incoming > target and populations:
        row, _ = populations.popitem(last=False)
        if shadow is not None:
            shadow.pop(row, None)
        evicted += 1
    return evicted


def _note_residency(generated: int, evicted: int) -> None:
    """Fold a generation/eviction delta into the process metrics."""
    if not (generated or evicted):
        return
    registry = obs.get_registry()
    if evicted:
        registry.counter(ROWS_EVICTED_COUNTER).inc(evicted)
    registry.gauge(RESIDENT_ROWS_GAUGE).add(generated - evicted)

# ----------------------------------------------------------------------
# Counter-based RNG substrate (SplitMix64 sub-streams)
# ----------------------------------------------------------------------
_U64 = np.uint64
_MASK64 = (1 << 64) - 1
_GOLDEN = _U64(0x9E3779B97F4A7C15)
_MIX_A = _U64(0xBF58476D1CE4E5B9)
_MIX_B = _U64(0x94D049BB133111EB)
#: Dedicated sub-stream tags: one per kind of draw, so no two draws of a
#: row can share randomness (the polarity/cell-layout independence fix).
_TAG_POLARITY = _U64(0x7010101010101013)
_TAG_COUNT = _U64(0xC0C0C0C0C0C0C0C5)
_TAG_COLUMN = _U64(0x51515151515151B7)
_TAG_THRESH_U1 = _U64(0x1111111111111169)
_TAG_THRESH_U2 = _U64(0x2222222222222285)


def _mix64(x: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer: a bijective avalanche mix on uint64."""
    x = np.asarray(x, dtype=_U64)
    with np.errstate(over="ignore"):
        x = (x ^ (x >> _U64(30))) * _MIX_A
        x = (x ^ (x >> _U64(27))) * _MIX_B
        return x ^ (x >> _U64(31))


def _unit(h: np.ndarray) -> np.ndarray:
    """Map uint64 hashes to uniform doubles in [0, 1)."""
    return (np.asarray(h, dtype=_U64) >> _U64(11)) * (1.0 / (1 << 53))


def _draw_distinct_columns(
    pair_base: np.ndarray,
    pair_pos: np.ndarray,
    j: np.ndarray,
    bits_per_row: int,
    tag: np.uint64,
) -> np.ndarray:
    """Distinct column draws per row (rejection on intra-row collisions).

    A cell's draw is rejected iff it matches the column of a lower-``j``
    cell of the same row, and redrawn on the next counter value — a rule
    that depends only on the row's own draws, keeping the result
    independent of how rows are batched. Shared by the content-dependent
    population (:class:`FaultMap`) and the read-disturbance population
    (:class:`~repro.dram.disturb.DisturbMap`), each under its own ``tag``
    so the two populations of one chip seed never correlate.
    """
    attempts = np.zeros(len(j), dtype=np.int64)
    cols = np.empty(len(j), dtype=np.int64)
    pending = np.arange(len(j))
    while len(pending):
        with np.errstate(over="ignore"):
            h = _mix64(
                pair_base[pending]
                ^ tag
                ^ _mix64(
                    (j[pending].astype(_U64) << _U64(32))
                    + attempts[pending].astype(_U64)
                )
            )
        cols[pending] = (_unit(h) * bits_per_row).astype(np.int64)
        # A draw collides when an earlier-j cell of the same row holds
        # the same column; later-j duplicates redraw.
        order = np.lexsort((j, cols, pair_pos))
        sorted_pos = pair_pos[order]
        sorted_cols = cols[order]
        dup = np.zeros(len(j), dtype=bool)
        same = (sorted_pos[1:] == sorted_pos[:-1]) & (
            sorted_cols[1:] == sorted_cols[:-1]
        )
        dup[order[1:][same]] = True
        pending = np.flatnonzero(dup)
        attempts[pending] += 1
    return cols


def _draw_lognormal_thresholds(
    pair_base: np.ndarray,
    j: np.ndarray,
    sigma: float,
    tag_u1: np.uint64,
    tag_u2: np.uint64,
) -> np.ndarray:
    """Lognormal threshold per cell via Box-Muller on hashed uniforms."""
    with np.errstate(over="ignore"):
        key = _mix64(j.astype(_U64) << _U64(32))
        u1 = _unit(_mix64(pair_base ^ tag_u1 ^ key)) + 2.0 ** -53
        u2 = _unit(_mix64(pair_base ^ tag_u2 ^ key))
    z = np.sqrt(-2.0 * np.log(u1)) * np.cos(2.0 * math.pi * u2)
    return np.exp(sigma * z)


def _binomial_quantile(u: np.ndarray, n: int, p: float) -> np.ndarray:
    """Vectorised inverse-CDF of Binomial(n, p): smallest k with u < cdf(k).

    The pmf recurrence walks the CDF upward for all rows simultaneously;
    with the tiny per-cell rates this model uses, the walk terminates after
    a handful of steps. Iterations are capped at mean + 12 sigma (clamped
    to ``n``), which truncates only probability mass below ~1e-20 and keeps
    the result a pure function of ``u`` (batch-composition independent).
    """
    u = np.asarray(u, dtype=np.float64)
    k = np.zeros(u.shape, dtype=np.int64)
    if p <= 0.0 or n <= 0:
        return k
    if p >= 1.0:
        return np.full(u.shape, n, dtype=np.int64)
    pmf = np.full(u.shape, math.exp(n * math.log1p(-p)))
    cdf = pmf.copy()
    ratio = p / (1.0 - p)
    cap = min(n, int(n * p + 12.0 * math.sqrt(n * p * (1.0 - p)) + 32.0))
    for _ in range(cap):
        active = u >= cdf
        if not active.any():
            break
        ka = k[active]
        pmf[active] *= ratio * (n - ka) / (ka + 1.0)
        cdf[active] += pmf[active]
        k[active] += 1
    return k


@dataclass(frozen=True)
class FaultModelConfig:
    """Tunables for the data-dependent failure population.

    The defaults are calibrated so that on the paper's test conditions
    (retention interval equivalent to 328 ms at 85C) roughly 13.5% of 8 KB
    rows contain at least one cell that can fail under *some* content
    (ALL-FAIL in Figure 4), while typical program content triggers a few
    tenths of a percent to a few percent of rows.
    """

    #: Probability that a cell is data-dependent vulnerable at all.
    vulnerable_cell_rate: float = 4.4e-6
    #: Fraction of rows using true-cell polarity (the rest are anti-cells).
    #: Real chips mix both per subarray; we assign per physical row.
    true_cell_row_fraction: float = 0.5
    #: Stress from a single aggressor neighbour, as a fraction of the
    #: two-aggressor worst case (coupling saturates, so > 0.5).
    single_aggressor_fraction: float = 0.85
    #: Content-independent leakage stress (no aggressors). Kept far below
    #: the threshold distribution: always-failing weak cells are excluded
    #: from the data-dependent population, per the paper's footnote 1.
    baseline_stress: float = 0.02
    #: Retention interval at which a vulnerable cell with both neighbours
    #: aggressing is right at its median failure point, in milliseconds.
    nominal_interval_ms: float = 328.0
    #: Exponential growth rate of stress with the retention interval.
    interval_sensitivity: float = 1.35
    #: Spread (sigma of the lognormal) of per-cell thresholds.
    threshold_sigma: float = 0.6

    def __post_init__(self) -> None:
        if not 0.0 <= self.vulnerable_cell_rate <= 1.0:
            raise ValueError("vulnerable_cell_rate must be a probability")
        if not 0.0 <= self.true_cell_row_fraction <= 1.0:
            raise ValueError("true_cell_row_fraction must be a probability")
        if not 0.0 < self.single_aggressor_fraction <= 1.0:
            raise ValueError("single_aggressor_fraction must be in (0, 1]")
        if self.baseline_stress < 0:
            raise ValueError("baseline_stress must be non-negative")
        if self.nominal_interval_ms <= 0:
            raise ValueError("nominal_interval_ms must be positive")
        if self.threshold_sigma < 0:
            raise ValueError("threshold_sigma must be non-negative")


@dataclass(frozen=True)
class VulnerableCell:
    """One data-dependent vulnerable cell, in physical coordinates."""

    row_index: int        # flat row index within the module
    physical_column: int  # bit position in silicon order
    threshold: float      # stress units; lower = weaker
    true_cell: bool       # polarity: True -> charge encodes logic 1


@dataclass(frozen=True)
class RowPopulation:
    """One row's vulnerable cells as aligned arrays (columns sorted)."""

    columns: np.ndarray     # int64, sorted ascending
    thresholds: np.ndarray  # float64, aligned with columns
    true_cell: bool         # row polarity
    min_threshold: float    # inf when the row has no vulnerable cells

    def __len__(self) -> int:
        return len(self.columns)


_EMPTY_COLUMNS = np.empty(0, dtype=np.int64)
_EMPTY_THRESHOLDS = np.empty(0, dtype=np.float64)


class FaultMap:
    """The vulnerable-cell population of one DRAM module.

    Generated lazily — and, through the batch APIs, for arbitrarily many
    rows per vectorised pass — so module-scale populations (hundreds of
    thousands of rows) stay cheap.
    """

    def __init__(
        self,
        total_rows: int,
        bits_per_row: int,
        config: FaultModelConfig = FaultModelConfig(),
        seed: int = 0,
        max_resident_rows: Optional[int] = None,
    ) -> None:
        if total_rows <= 0 or bits_per_row <= 0:
            raise ValueError("rows and bits_per_row must be positive")
        if max_resident_rows is not None and max_resident_rows < 1:
            raise ValueError("max_resident_rows must be positive or None")
        self.total_rows = total_rows
        self.bits_per_row = bits_per_row
        self.config = config
        self.seed = seed
        self.max_resident_rows = max_resident_rows
        self._seed_base = _mix64(np.array(seed & _MASK64, dtype=_U64))
        self._populations: "OrderedDict[int, RowPopulation]" = OrderedDict()
        self._rows: Dict[int, Tuple[VulnerableCell, ...]] = {}

    # ------------------------------------------------------------------
    # Population generation (counter-based, batch-vectorised)
    # ------------------------------------------------------------------
    def _row_base(self, rows: np.ndarray) -> np.ndarray:
        with np.errstate(over="ignore"):
            return _mix64(self._seed_base ^ (rows.astype(_U64) * _GOLDEN))

    def rng_coordinates(
        self, row_start: int = 0, row_stop: Optional[int] = None
    ) -> Dict[str, object]:
        """JSON-safe RNG coordinates of a row range's sub-stream.

        Each row's population is drawn from a counter-based stream keyed
        only by ``(seed, row)``, so a range's coordinates pin down its
        content independent of batch composition. Work units carry these
        for provenance, and checkpoint fingerprints include them so a
        journal from a different seed or layout is never silently reused.
        """
        stop = self.total_rows if row_stop is None else row_stop
        if not 0 <= row_start <= stop <= self.total_rows:
            raise ValueError(
                f"bad row range [{row_start}, {stop}) for "
                f"{self.total_rows} rows"
            )
        edges = np.asarray(
            [row_start, max(row_start, stop - 1)], dtype=np.int64
        )
        base = self._row_base(edges)
        return {
            "seed": int(self.seed),
            "seed_base": format(int(self._seed_base), "016x"),
            "rows": [int(row_start), int(stop)],
            "base_first": format(int(base[0]), "016x"),
            "base_last": format(int(base[1]), "016x"),
        }

    def _ensure_rows(self, rows: np.ndarray) -> None:
        pops = self._populations
        unique = np.unique(rows)
        missing = [int(r) for r in unique if int(r) not in pops]
        evicted = 0
        if self.max_resident_rows is not None:
            if len(missing) < len(unique):
                for r in unique:
                    r = int(r)
                    if r in pops:
                        pops.move_to_end(r)
            evicted = _evict_lru_rows(
                pops, self.max_resident_rows, len(unique), len(missing),
                shadow=self._rows,
            )
        if missing:
            self._generate_rows(np.asarray(missing, dtype=np.int64))
        _note_residency(len(missing), evicted)

    def resident_rows(self) -> int:
        """How many rows currently hold materialized population state."""
        return len(self._populations)

    def release(self) -> None:
        """Drop all resident row state and square up the process gauge.

        Populations regenerate bitwise-identically on the next touch, so
        this only trades memory for recomputation. Short-lived maps (one
        fleet host screened per work unit) call this when done so the
        process-wide resident-rows gauge tracks *live* dense state, not
        every map ever constructed.
        """
        resident = len(self._populations)
        self._populations.clear()
        self._rows.clear()
        if resident:
            obs.get_registry().gauge(RESIDENT_ROWS_GAUGE).add(-resident)

    def _generate_rows(self, rows: np.ndarray) -> None:
        """Generate populations for (unique, uncached) ``rows`` in one pass."""
        cfg = self.config
        base = self._row_base(rows)
        true_cell = _unit(_mix64(base ^ _TAG_POLARITY)) < cfg.true_cell_row_fraction
        counts = _binomial_quantile(
            _unit(_mix64(base ^ _TAG_COUNT)),
            self.bits_per_row,
            cfg.vulnerable_cell_rate,
        )

        nz = np.flatnonzero(counts)
        columns_by_row: Dict[int, np.ndarray] = {}
        thresholds_by_row: Dict[int, np.ndarray] = {}
        if len(nz):
            nz_counts = counts[nz]
            total = int(nz_counts.sum())
            # (row, j) pair coordinates for every cell to draw.
            pair_pos = np.repeat(np.arange(len(nz)), nz_counts)
            starts = np.cumsum(nz_counts) - nz_counts
            j = np.arange(total, dtype=np.int64) - np.repeat(starts, nz_counts)
            pair_base = base[nz][pair_pos]
            cols = self._draw_columns(pair_base, pair_pos, j, nz_counts)
            thresholds = self._draw_thresholds(pair_base, j)
            # Sort each row's cells by physical column, thresholds aligned.
            order = np.lexsort((cols, pair_pos))
            cols, thresholds, pair_pos = cols[order], thresholds[order], pair_pos[order]
            bounds = np.cumsum(nz_counts)
            for i, row_pos in enumerate(nz):
                lo, hi = bounds[i] - nz_counts[i], bounds[i]
                columns_by_row[int(rows[row_pos])] = cols[lo:hi]
                thresholds_by_row[int(rows[row_pos])] = thresholds[lo:hi]

        for i, row in enumerate(rows):
            row = int(row)
            columns = columns_by_row.get(row, _EMPTY_COLUMNS)
            thresholds = thresholds_by_row.get(row, _EMPTY_THRESHOLDS)
            self._populations[row] = RowPopulation(
                columns=columns,
                thresholds=thresholds,
                true_cell=bool(true_cell[i]),
                min_threshold=float(thresholds.min()) if len(thresholds) else math.inf,
            )

    def _draw_columns(
        self,
        pair_base: np.ndarray,
        pair_pos: np.ndarray,
        j: np.ndarray,
        counts: np.ndarray,
    ) -> np.ndarray:
        """Distinct physical columns per row, on the content sub-stream."""
        return _draw_distinct_columns(
            pair_base, pair_pos, j, self.bits_per_row, _TAG_COLUMN
        )

    def _draw_thresholds(self, pair_base: np.ndarray, j: np.ndarray) -> np.ndarray:
        """Lognormal threshold per cell via Box-Muller on hashed uniforms."""
        return _draw_lognormal_thresholds(
            pair_base, j, self.config.threshold_sigma,
            _TAG_THRESH_U1, _TAG_THRESH_U2,
        )

    # ------------------------------------------------------------------
    # Population access
    # ------------------------------------------------------------------
    def row_population(self, row_index: int) -> RowPopulation:
        """The row's vulnerable cells as aligned arrays (the fast view)."""
        self._check_row(row_index)
        pop = self._populations.get(row_index)
        if pop is None:
            self._ensure_rows(np.array([row_index], dtype=np.int64))
            pop = self._populations[row_index]
        elif self.max_resident_rows is not None:
            self._populations.move_to_end(row_index)
        return pop

    def row_is_true_cell(self, row_index: int) -> bool:
        """Polarity of a physical row (true-cell vs anti-cell)."""
        return self.row_population(row_index).true_cell

    def cells_in_row(self, row_index: int) -> Tuple[VulnerableCell, ...]:
        """The vulnerable cells of one row, generated deterministically."""
        self._check_row(row_index)
        cached = self._rows.get(row_index)
        if cached is None:
            pop = self.row_population(row_index)
            cached = tuple(
                VulnerableCell(
                    row_index=row_index,
                    physical_column=int(col),
                    threshold=float(thr),
                    true_cell=pop.true_cell,
                )
                for col, thr in zip(pop.columns, pop.thresholds)
            )
            self._rows[row_index] = cached
        return cached

    def _check_row(self, row_index: int) -> None:
        if not 0 <= row_index < self.total_rows:
            raise ValueError(f"row index {row_index} out of range")

    # ------------------------------------------------------------------
    # Stress model
    # ------------------------------------------------------------------
    def stress(self, aggressors: int, refresh_interval_ms: float) -> float:
        """Coupling stress on a vulnerable cell with ``aggressors`` in {0,1,2}.

        Stress grows exponentially with the retention interval, normalised
        so that (2 aggressors, nominal interval) == 1.0 stress units.
        """
        if aggressors not in (0, 1, 2):
            raise ValueError("aggressors must be 0, 1, or 2")
        cfg = self.config
        interval_factor = math.exp(
            cfg.interval_sensitivity
            * math.log(max(refresh_interval_ms, 1e-9) / cfg.nominal_interval_ms)
        )
        coupling = (0.0, cfg.single_aggressor_fraction, 1.0)[aggressors]
        return (cfg.baseline_stress + coupling) * interval_factor

    def _stress_table(self, refresh_interval_ms: float) -> np.ndarray:
        """stress(k, interval) for k in {0, 1, 2}, for array lookups."""
        return np.array(
            [self.stress(k, refresh_interval_ms) for k in (0, 1, 2)]
        )

    # ------------------------------------------------------------------
    # Per-cell oracle (kept scalar on purpose: the reference semantics)
    # ------------------------------------------------------------------
    def cell_fails(
        self,
        cell: VulnerableCell,
        physical_row_bits: np.ndarray,
        refresh_interval_ms: float,
    ) -> bool:
        """Whether one vulnerable cell flips, given silicon-order content.

        Only a *charged* cell can lose data: a true-cell fails only while
        storing 1, an anti-cell only while storing 0. A physical neighbour
        is an aggressor when it holds the opposite stored value.
        """
        col = cell.physical_column
        if col >= len(physical_row_bits):
            return False  # cell sits past this row's physical width
        value = int(physical_row_bits[col])
        charged = value == 1 if cell.true_cell else value == 0
        if not charged:
            return False
        aggressors = 0
        if col > 0 and int(physical_row_bits[col - 1]) != value:
            aggressors += 1
        if col + 1 < len(physical_row_bits) and int(physical_row_bits[col + 1]) != value:
            aggressors += 1
        return self.stress(aggressors, refresh_interval_ms) >= cell.threshold

    # ------------------------------------------------------------------
    # Vectorised evaluation
    # ------------------------------------------------------------------
    def failing_mask(
        self,
        row_index: int,
        physical_row_bits: np.ndarray,
        refresh_interval_ms: float,
        disturb_stress: float = 0.0,
    ) -> np.ndarray:
        """Boolean mask over :meth:`cells_in_row` — True where the cell fails.

        One vectorised pass: gather each vulnerable cell's stored value and
        both neighbours, count aggressors by array comparison, and compare
        the stress table against the per-cell thresholds.

        ``disturb_stress`` composes the read-disturbance channel into the
        predicate: the row's activation-pressure stress (from
        :meth:`~repro.dram.disturb.DisturbMap.stress_contribution`) adds to
        the content-coupling stress before the threshold compare. At the
        default 0.0 the mask is bit-identical to the pure content
        predicate.
        """
        pop = self.row_population(row_index)
        return self._evaluate(
            pop.columns,
            pop.thresholds,
            np.full(len(pop.columns), pop.true_cell, dtype=bool),
            np.asarray(physical_row_bits),
            None,
            refresh_interval_ms,
            disturb_stress,
        )

    def failing_columns(
        self,
        row_index: int,
        physical_row_bits: np.ndarray,
        refresh_interval_ms: float,
    ) -> np.ndarray:
        """Physical columns (sorted) of the cells failing with this content."""
        pop = self.row_population(row_index)
        return pop.columns[
            self.failing_mask(row_index, physical_row_bits, refresh_interval_ms)
        ]

    def _evaluate(
        self,
        cols: np.ndarray,
        thresholds: np.ndarray,
        true_cell: np.ndarray,
        bits: np.ndarray,
        row_pos: Optional[np.ndarray],
        refresh_interval_ms: float,
        disturb_stress: Union[float, np.ndarray, None] = None,
    ) -> np.ndarray:
        """Failure mask for a flat batch of cells against content bits.

        ``bits`` is one row (1-D, shared by every cell) or a matrix whose
        rows are indexed by ``row_pos``. ``disturb_stress`` — a scalar, or
        an array aligned with the batch's rows (indexed by ``row_pos``) —
        adds activation-pressure stress from the read-disturbance channel
        on top of the content-coupling stress; ``None``/``0.0`` keeps the
        pure content predicate, expression-for-expression.

        When a kernels backend is engaged the per-cell loop runs in
        :mod:`repro.kernels.faultpred` (compiled under numba); the numpy
        expression below is the reference oracle and the two are pinned
        bit-identical by the cross-backend equivalence suite.
        """
        if len(cols) == 0:
            return np.zeros(0, dtype=bool)
        if kernels.engaged():
            return faultpred.evaluate(
                cols, thresholds, true_cell, bits, row_pos,
                self._stress_table(refresh_interval_ms), disturb_stress,
            )
        width = bits.shape[-1]
        valid = cols < width
        safe = np.where(valid, cols, 0)
        left = np.maximum(safe - 1, 0)
        right = np.minimum(safe + 1, width - 1)
        if bits.ndim == 1:
            value = bits[safe]
            left_value = bits[left]
            right_value = bits[right]
        else:
            value = bits[row_pos, safe]
            left_value = bits[row_pos, left]
            right_value = bits[row_pos, right]
        charged = np.where(true_cell, value == 1, value == 0)
        aggressors = ((cols > 0) & (left_value != value)).astype(np.int64)
        aggressors += ((cols + 1 < width) & (right_value != value)).astype(np.int64)
        table = self._stress_table(refresh_interval_ms)
        stress = table[aggressors]
        if disturb_stress is not None:
            extra = np.asarray(disturb_stress, dtype=np.float64)
            if extra.ndim == 0:
                if float(extra) != 0.0:
                    stress = stress + float(extra)
            elif row_pos is not None:
                stress = stress + extra[row_pos]
            else:
                raise ValueError(
                    "per-row disturb_stress needs a batched evaluation"
                )
        return valid & charged & (stress >= thresholds)

    def _gather(
        self, rows: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Concatenated (row_pos, columns, thresholds, true_cell) for rows."""
        self._ensure_rows(rows)
        pops = [self._populations[int(r)] for r in rows]
        counts = np.fromiter((len(p) for p in pops), np.int64, len(pops))
        row_pos = np.repeat(np.arange(len(pops)), counts)
        nonempty = [p for p in pops if len(p)]
        if not nonempty:
            return (
                row_pos,
                _EMPTY_COLUMNS,
                _EMPTY_THRESHOLDS,
                np.empty(0, dtype=bool),
            )
        cols = np.concatenate([p.columns for p in nonempty])
        thresholds = np.concatenate([p.thresholds for p in nonempty])
        true_cell = np.repeat(
            np.fromiter((p.true_cell for p in pops), bool, len(pops)), counts
        )
        return row_pos, cols, thresholds, true_cell

    def rows_fail(
        self,
        rows: Union[Sequence[int], np.ndarray],
        physical_bits: np.ndarray,
        refresh_interval_ms: float,
        disturb_stress: Union[float, np.ndarray, None] = None,
    ) -> np.ndarray:
        """Which of ``rows`` lose at least one bit with the given content.

        ``physical_bits`` is either one silicon-order row shared by every
        row in the batch, or a ``(len(rows), width)`` matrix of per-row
        content. Returns a boolean array aligned with ``rows``.
        ``disturb_stress`` is a scalar, or an array aligned with ``rows``,
        of read-disturbance stress composed into the failure predicate.
        """
        rows = np.asarray(rows, dtype=np.int64)
        self._check_rows(rows)
        row_pos, cols, thresholds, true_cell = self._gather(rows)
        bits = np.asarray(physical_bits)
        fails = self._evaluate(
            cols, thresholds, true_cell,
            bits, row_pos, refresh_interval_ms,
            disturb_stress,
        )
        result = np.bincount(row_pos[fails], minlength=len(rows)) > 0
        if obs.forensics_active() and obs.trace_active():
            self._emit_predicate_eval(
                rows, bits, refresh_interval_ms, disturb_stress, result
            )
        return result

    @staticmethod
    def _emit_predicate_eval(
        rows: np.ndarray,
        bits: np.ndarray,
        refresh_interval_ms: float,
        disturb_stress: Union[float, np.ndarray, None],
        result: np.ndarray,
    ) -> None:
        """Ledger record for one batch predicate evaluation (forensics).

        Captures the evaluation's inputs compactly: the CRC of the exact
        content snapshot (dtype-tagged, so byte-equal content hashes
        equal), the stress summary, and up to 64 failing rows by id.
        """
        if disturb_stress is None:
            stress_max = 0.0
        else:
            stress_arr = np.asarray(disturb_stress, dtype=np.float64)
            stress_max = float(stress_arr.max()) if stress_arr.size else 0.0
        crc = zlib.crc32(bits.dtype.char.encode())
        crc = zlib.crc32(np.ascontiguousarray(bits).tobytes(), crc)
        failing = rows[result]
        obs.emit(
            "predicate_eval",
            interval_ms=float(refresh_interval_ms),
            rows=int(len(rows)),
            failed=int(len(failing)),
            stress_max=stress_max,
            content_crc=int(crc),
            rows_failed_sample=[int(r) for r in failing[:64]],
        )

    def failing_cells_batch(
        self,
        rows: Union[Sequence[int], np.ndarray],
        physical_bits: np.ndarray,
        refresh_interval_ms: float,
        disturb_stress: Union[float, np.ndarray, None] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(row_index, physical_column) of every failing cell in the batch.

        Content semantics match :meth:`rows_fail`. Cells come out grouped
        by row in ascending column order.
        """
        rows = np.asarray(rows, dtype=np.int64)
        self._check_rows(rows)
        row_pos, cols, thresholds, true_cell = self._gather(rows)
        fails = self._evaluate(
            cols, thresholds, true_cell,
            np.asarray(physical_bits), row_pos, refresh_interval_ms,
            disturb_stress,
        )
        return rows[row_pos[fails]], cols[fails]

    def failing_cells(
        self,
        row_index: int,
        physical_row_bits: np.ndarray,
        refresh_interval_ms: float,
    ) -> List[VulnerableCell]:
        """All vulnerable cells of a row that fail with this content."""
        mask = self.failing_mask(row_index, physical_row_bits, refresh_interval_ms)
        if not mask.any():
            return []
        cells = self.cells_in_row(row_index)
        return [cell for cell, fails in zip(cells, mask) if fails]

    # ------------------------------------------------------------------
    # Worst-case (ALL-FAIL) queries
    # ------------------------------------------------------------------
    def row_can_ever_fail(self, row_index: int, refresh_interval_ms: float) -> bool:
        """Worst-case (ALL-FAIL) check: does *any* content break this row?

        The worst case for a vulnerable cell is being charged with both
        neighbours aggressing, so a row can ever fail iff it holds a
        vulnerable cell whose threshold is within worst-case stress.

        Kept as the scalar per-cell reference; module-scale scans should
        use :meth:`rows_can_ever_fail`.
        """
        worst = self.stress(2, refresh_interval_ms)
        return any(c.threshold <= worst for c in self.cells_in_row(row_index))

    def rows_can_ever_fail(
        self,
        rows: Union[Sequence[int], np.ndarray],
        refresh_interval_ms: float,
    ) -> np.ndarray:
        """Vectorised ALL-FAIL check for a batch of rows.

        Thresholds for uncached rows are generated in one vectorised pass,
        then the whole batch is answered by a single comparison of per-row
        minimum thresholds against worst-case stress.
        """
        rows = np.asarray(rows, dtype=np.int64)
        self._check_rows(rows)
        self._ensure_rows(rows)
        mins = np.fromiter(
            (self._populations[int(r)].min_threshold for r in rows),
            np.float64,
            len(rows),
        )
        return mins <= self.stress(2, refresh_interval_ms)

    def all_fail_rows(self, refresh_interval_ms: float) -> List[int]:
        """Flat indices of every row that could fail under some content."""
        mask = self.rows_can_ever_fail(
            np.arange(self.total_rows, dtype=np.int64), refresh_interval_ms
        )
        return [int(r) for r in np.flatnonzero(mask)]

    def _check_rows(self, rows: np.ndarray) -> None:
        if len(rows) and (rows.min() < 0 or rows.max() >= self.total_rows):
            bad = rows[(rows < 0) | (rows >= self.total_rows)][0]
            raise ValueError(f"row index {int(bad)} out of range")
