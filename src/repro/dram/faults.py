"""Data-dependent DRAM failure model.

Physical mechanism (paper §2): parasitic capacitance between adjacent
bitlines couples a cell to its physical left/right neighbours. Whether a
cell flips during a retention window depends on

* the cell's own weakness (per-cell retention threshold, sampled once per
  chip from a heavy-tailed distribution),
* the stored charge level, which decays with time since the last refresh —
  so failures grow (exponentially, per the paper) with the refresh interval,
* whether the cell is a *true-cell* (stores logic 1 as charge) or an
  *anti-cell* (stores logic 0 as charge) — only a charged cell can leak to
  the wrong value, so the failing *value* depends on cell polarity, and
* the neighbour content: a neighbour holding the opposite bitline voltage
  is an *aggressor* and adds coupling noise.

The model is deterministic given (chip seed, content, refresh interval):
a cell fails iff ``stress(content, interval) >= threshold(cell)``. That
determinism mirrors the repeatable, content-conditional failures the paper
measures (Figure 3), and makes the whole library unit-testable.

All neighbour relations are computed in *physical* column order (after
vendor scrambling and column remapping), which is precisely why the system
cannot enumerate these failures without knowing DRAM internals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class FaultModelConfig:
    """Tunables for the data-dependent failure population.

    The defaults are calibrated so that on the paper's test conditions
    (retention interval equivalent to 328 ms at 85C) roughly 13.5% of 8 KB
    rows contain at least one cell that can fail under *some* content
    (ALL-FAIL in Figure 4), while typical program content triggers a few
    tenths of a percent to a few percent of rows.
    """

    #: Probability that a cell is data-dependent vulnerable at all.
    vulnerable_cell_rate: float = 4.4e-6
    #: Fraction of rows using true-cell polarity (the rest are anti-cells).
    #: Real chips mix both per subarray; we assign per physical row.
    true_cell_row_fraction: float = 0.5
    #: Stress from a single aggressor neighbour, as a fraction of the
    #: two-aggressor worst case (coupling saturates, so > 0.5).
    single_aggressor_fraction: float = 0.85
    #: Content-independent leakage stress (no aggressors). Kept far below
    #: the threshold distribution: always-failing weak cells are excluded
    #: from the data-dependent population, per the paper's footnote 1.
    baseline_stress: float = 0.02
    #: Retention interval at which a vulnerable cell with both neighbours
    #: aggressing is right at its median failure point, in milliseconds.
    nominal_interval_ms: float = 328.0
    #: Exponential growth rate of stress with the retention interval.
    interval_sensitivity: float = 1.35
    #: Spread (sigma of the lognormal) of per-cell thresholds.
    threshold_sigma: float = 0.6

    def __post_init__(self) -> None:
        if not 0.0 <= self.vulnerable_cell_rate <= 1.0:
            raise ValueError("vulnerable_cell_rate must be a probability")
        if not 0.0 <= self.true_cell_row_fraction <= 1.0:
            raise ValueError("true_cell_row_fraction must be a probability")
        if not 0.0 < self.single_aggressor_fraction <= 1.0:
            raise ValueError("single_aggressor_fraction must be in (0, 1]")
        if self.baseline_stress < 0:
            raise ValueError("baseline_stress must be non-negative")
        if self.nominal_interval_ms <= 0:
            raise ValueError("nominal_interval_ms must be positive")
        if self.threshold_sigma < 0:
            raise ValueError("threshold_sigma must be non-negative")


@dataclass(frozen=True)
class VulnerableCell:
    """One data-dependent vulnerable cell, in physical coordinates."""

    row_index: int        # flat row index within the module
    physical_column: int  # bit position in silicon order
    threshold: float      # stress units; lower = weaker
    true_cell: bool       # polarity: True -> charge encodes logic 1


class FaultMap:
    """The vulnerable-cell population of one DRAM module.

    Generated lazily per row so that module-scale populations (hundreds of
    thousands of rows) stay cheap: rows without vulnerable cells cost one
    RNG draw.
    """

    def __init__(
        self,
        total_rows: int,
        bits_per_row: int,
        config: FaultModelConfig = FaultModelConfig(),
        seed: int = 0,
    ) -> None:
        if total_rows <= 0 or bits_per_row <= 0:
            raise ValueError("rows and bits_per_row must be positive")
        self.total_rows = total_rows
        self.bits_per_row = bits_per_row
        self.config = config
        self.seed = seed
        self._rows: Dict[int, Tuple[VulnerableCell, ...]] = {}
        self._row_polarity: Dict[int, bool] = {}

    # ------------------------------------------------------------------
    def _row_rng(self, row_index: int) -> np.random.Generator:
        return np.random.default_rng((self.seed << 24) ^ (row_index * 2654435761 % (1 << 48)))

    def row_is_true_cell(self, row_index: int) -> bool:
        """Polarity of a physical row (true-cell vs anti-cell)."""
        self._check_row(row_index)
        if row_index not in self._row_polarity:
            rng = self._row_rng(row_index)
            self._row_polarity[row_index] = bool(
                rng.random() < self.config.true_cell_row_fraction
            )
        return self._row_polarity[row_index]

    def cells_in_row(self, row_index: int) -> Tuple[VulnerableCell, ...]:
        """The vulnerable cells of one row, generated deterministically."""
        self._check_row(row_index)
        if row_index not in self._rows:
            self._rows[row_index] = self._generate_row(row_index)
        return self._rows[row_index]

    def _generate_row(self, row_index: int) -> Tuple[VulnerableCell, ...]:
        cfg = self.config
        rng = self._row_rng(row_index)
        true_cell = self.row_is_true_cell(row_index)
        # Skip the per-row polarity draw so cell draws stay aligned.
        n_vulnerable = rng.binomial(self.bits_per_row, cfg.vulnerable_cell_rate)
        if n_vulnerable == 0:
            return ()
        columns = rng.choice(self.bits_per_row, size=n_vulnerable, replace=False)
        thresholds = np.exp(rng.normal(0.0, cfg.threshold_sigma, size=n_vulnerable))
        cells = tuple(
            VulnerableCell(
                row_index=row_index,
                physical_column=int(col),
                threshold=float(thr),
                true_cell=true_cell,
            )
            for col, thr in zip(np.sort(columns), thresholds[np.argsort(columns)])
        )
        return cells

    def _check_row(self, row_index: int) -> None:
        if not 0 <= row_index < self.total_rows:
            raise ValueError(f"row index {row_index} out of range")

    # ------------------------------------------------------------------
    def stress(self, aggressors: int, refresh_interval_ms: float) -> float:
        """Coupling stress on a vulnerable cell with ``aggressors`` in {0,1,2}.

        Stress grows exponentially with the retention interval, normalised
        so that (2 aggressors, nominal interval) == 1.0 stress units.
        """
        if aggressors not in (0, 1, 2):
            raise ValueError("aggressors must be 0, 1, or 2")
        cfg = self.config
        interval_factor = math.exp(
            cfg.interval_sensitivity
            * math.log(max(refresh_interval_ms, 1e-9) / cfg.nominal_interval_ms)
        )
        coupling = (0.0, cfg.single_aggressor_fraction, 1.0)[aggressors]
        return (cfg.baseline_stress + coupling) * interval_factor

    def cell_fails(
        self,
        cell: VulnerableCell,
        physical_row_bits: np.ndarray,
        refresh_interval_ms: float,
    ) -> bool:
        """Whether one vulnerable cell flips, given silicon-order content.

        Only a *charged* cell can lose data: a true-cell fails only while
        storing 1, an anti-cell only while storing 0. A physical neighbour
        is an aggressor when it holds the opposite stored value.
        """
        col = cell.physical_column
        if col >= len(physical_row_bits):
            return False  # cell sits past this row's physical width
        value = int(physical_row_bits[col])
        charged = value == 1 if cell.true_cell else value == 0
        if not charged:
            return False
        aggressors = 0
        if col > 0 and int(physical_row_bits[col - 1]) != value:
            aggressors += 1
        if col + 1 < len(physical_row_bits) and int(physical_row_bits[col + 1]) != value:
            aggressors += 1
        return self.stress(aggressors, refresh_interval_ms) >= cell.threshold

    def failing_cells(
        self,
        row_index: int,
        physical_row_bits: np.ndarray,
        refresh_interval_ms: float,
    ) -> List[VulnerableCell]:
        """All vulnerable cells of a row that fail with this content."""
        return [
            cell
            for cell in self.cells_in_row(row_index)
            if self.cell_fails(cell, physical_row_bits, refresh_interval_ms)
        ]

    def row_can_ever_fail(self, row_index: int, refresh_interval_ms: float) -> bool:
        """Worst-case (ALL-FAIL) check: does *any* content break this row?

        The worst case for a vulnerable cell is being charged with both
        neighbours aggressing, so a row can ever fail iff it holds a
        vulnerable cell whose threshold is within worst-case stress.
        """
        worst = self.stress(2, refresh_interval_ms)
        return any(c.threshold <= worst for c in self.cells_in_row(row_index))

    def all_fail_rows(self, refresh_interval_ms: float) -> List[int]:
        """Flat indices of every row that could fail under some content."""
        return [
            r for r in range(self.total_rows)
            if self.row_can_ever_fail(r, refresh_interval_ms)
        ]
