"""Cycle-level memory controller: banks, FR-FCFS scheduling, refresh."""

from .bank import BankState, RankState, issue_refresh, service_request
from .controller import (
    ControllerStats,
    MemoryController,
    RefreshSettings,
    TestTrafficSettings,
)
from .request import Request, RequestKind
from .rowrefresh import RowRefreshScheduler, RowRefreshSettings
from .schedule import ArrivalSchedule
from .scheduler import FrFcfsScheduler, SchedulerConfig

__all__ = [
    "ArrivalSchedule",
    "BankState",
    "ControllerStats",
    "FrFcfsScheduler",
    "MemoryController",
    "RankState",
    "RefreshSettings",
    "Request",
    "RequestKind",
    "SchedulerConfig",
    "TestTrafficSettings",
    "issue_refresh",
    "service_request",
]
