"""FR-FCFS request scheduling.

First-Ready, First-Come-First-Served: among queued requests whose bank can
accept a command, prefer row-buffer hits (they finish fastest and keep the
bus busy), then the oldest request. Demand reads outrank posted writes and
background test traffic; writes are drained when the write queue crosses a
high-water mark, the standard write-drain policy.

The queues are indexed by bank: each (kind, bank) bucket is a FIFO deque
carrying a global enqueue sequence number, so the pick rule and
``earliest_issue_ns`` touch only the banks that actually hold work instead
of scanning the full pending list per call. The pick semantics are
unchanged from the flat-list implementation — "first eligible row-buffer
hit in enqueue order, else oldest eligible" — because enqueue order is
exactly the sequence-number order and each per-bank deque preserves it.

Everything here is on the simulator's per-instant path, so the layout is
deliberately flat: one deque attribute per request kind (enum-keyed dicts
cost an enum ``__hash__`` per access), plain int counters, and zero-count
early exits before any bank scan.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..kernels import sched as _ksched
from .bank import BankState
from .request import Request, RequestKind


@dataclass
class SchedulerConfig:
    """Queueing policy knobs."""

    write_queue_drain_threshold: int = 16
    read_queue_capacity: int = 64
    write_queue_capacity: int = 64

    def __post_init__(self) -> None:
        if self.write_queue_drain_threshold <= 0:
            raise ValueError("drain threshold must be positive")
        if self.read_queue_capacity <= 0 or self.write_queue_capacity <= 0:
            raise ValueError("queue capacities must be positive")


class _BankBucket:
    """Per-bank pending requests, one FIFO per request kind.

    ``min_arrival`` caches the smallest arrival time across all three
    deques so ``earliest_issue_ns`` is O(banks-with-work); it is restored
    by a rescan only when the request holding the minimum leaves.
    """

    __slots__ = ("reads", "writes", "tests", "count", "min_arrival")

    def __init__(self) -> None:
        self.reads: Deque[Tuple[int, Request]] = deque()
        self.writes: Deque[Tuple[int, Request]] = deque()
        self.tests: Deque[Tuple[int, Request]] = deque()
        self.count = 0
        self.min_arrival = float("inf")

    def queue_for(self, kind: RequestKind) -> Deque[Tuple[int, Request]]:
        if kind is RequestKind.READ:
            return self.reads
        if kind is RequestKind.WRITE:
            return self.writes
        return self.tests

    def recompute_min(self) -> None:
        best = float("inf")
        for queue in (self.reads, self.writes, self.tests):
            for _, request in queue:
                if request.arrival_ns < best:
                    best = request.arrival_ns
        self.min_arrival = best


class FrFcfsScheduler:
    """Bank-indexed priority queues plus the FR-FCFS pick rule."""

    def __init__(self, config: Optional[SchedulerConfig] = None) -> None:
        self.config = config or SchedulerConfig()
        self._banks: Dict[int, _BankBucket] = {}
        self._n_read = 0
        self._n_write = 0
        self._n_test = 0
        self._seq = 0
        self._draining_writes = False
        # Hot-path counters accumulate locally and reach the registry in
        # one batched flush (flush_metrics) instead of per enqueue.
        self._n_enqueued = 0
        self._n_rejected = 0
        self._n_drains = 0
        registry = obs.get_registry()
        self._c_enqueued = registry.counter("mc.sched.enqueued")
        self._c_rejected = registry.counter("mc.sched.rejected")
        self._c_drains = registry.counter("mc.sched.write_drains")
        # Kernel-path state (attach_bank_state): typed-array ring per
        # kind plus per-bank mirrors of ready/open/min-arrival/count.
        # None until a controller with an engaged kernels backend
        # attaches — standalone schedulers keep the pure-python path.
        self._k_rings: Optional[Dict[RequestKind, _ksched.KindRing]] = None
        self._k_ready: Optional[np.ndarray] = None
        self._k_open: Optional[np.ndarray] = None
        self._k_min: Optional[np.ndarray] = None
        self._k_cnt: Optional[np.ndarray] = None
        self._k_done: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def attach_bank_state(
        self, ready_ns: np.ndarray, open_rows: np.ndarray
    ) -> None:
        """Engage the compiled pick/earliest path over shared bank arrays.

        ``ready_ns`` (float64) and ``open_rows`` (int64, -1 for
        precharged) are owned and kept current by the controller; the
        scheduler maintains the per-kind rings and per-bank min-arrival
        and count mirrors. Must be called while the queues are empty.
        """
        if self.pending:
            raise ValueError("attach_bank_state requires empty queues")
        n_banks = len(ready_ns)
        self._k_rings = {
            RequestKind.READ: _ksched.KindRing(),
            RequestKind.WRITE: _ksched.KindRing(),
            RequestKind.TEST: _ksched.KindRing(),
        }
        self._k_ready = ready_ns
        self._k_open = open_rows
        self._k_min = np.full(n_banks, float("inf"), dtype=np.float64)
        self._k_cnt = np.zeros(n_banks, dtype=np.int64)
        self._k_done = np.zeros(n_banks, dtype=np.bool_)

    # ------------------------------------------------------------------
    def flush_metrics(self) -> None:
        """Push batched queue counters into the metrics registry."""
        if self._n_enqueued:
            self._c_enqueued.inc(self._n_enqueued)
            self._n_enqueued = 0
        if self._n_rejected:
            self._c_rejected.inc(self._n_rejected)
            self._n_rejected = 0
        if self._n_drains:
            self._c_drains.inc(self._n_drains)
            self._n_drains = 0

    # ------------------------------------------------------------------
    def enqueue(self, request: Request) -> bool:
        """Add a request; returns False when the target queue is full."""
        kind = request.kind
        bucket = self._banks.get(request.bank)
        if bucket is None:
            bucket = self._banks[request.bank] = _BankBucket()
        if kind is RequestKind.READ:
            if self._n_read >= self.config.read_queue_capacity:
                self._n_rejected += 1
                return False
            self._n_read += 1
            bucket.reads.append((self._seq, request))
        elif kind is RequestKind.WRITE:
            if self._n_write >= self.config.write_queue_capacity:
                self._n_rejected += 1
                return False
            self._n_write += 1
            bucket.writes.append((self._seq, request))
        else:
            self._n_test += 1
            bucket.tests.append((self._seq, request))
        bucket.count += 1
        if request.arrival_ns < bucket.min_arrival:
            bucket.min_arrival = request.arrival_ns
        if self._k_rings is not None:
            self._k_rings[kind].append(
                self._seq, request.bank, request.row, request.arrival_ns
            )
            self._k_min[request.bank] = bucket.min_arrival
            self._k_cnt[request.bank] = bucket.count
        self._seq += 1
        self._n_enqueued += 1
        return True

    @property
    def pending(self) -> int:
        return self._n_read + self._n_write + self._n_test

    def _flat_queue(self, kind: RequestKind) -> List[Request]:
        """All pending requests of one kind, in enqueue order (debug view)."""
        entries = []
        for bucket in self._banks.values():
            entries.extend(bucket.queue_for(kind))
        entries.sort()
        return [request for _, request in entries]

    @property
    def read_queue(self) -> List[Request]:
        return self._flat_queue(RequestKind.READ)

    @property
    def write_queue(self) -> List[Request]:
        return self._flat_queue(RequestKind.WRITE)

    @property
    def test_queue(self) -> List[Request]:
        return self._flat_queue(RequestKind.TEST)

    # ------------------------------------------------------------------
    def _remove(
        self,
        bucket: _BankBucket,
        queue: Deque[Tuple[int, Request]],
        entry: Tuple[int, Request],
    ) -> Request:
        if queue[0] is entry:
            queue.popleft()
        else:
            queue.remove(entry)
        bucket.count -= 1
        request = entry[1]
        kind = request.kind
        if kind is RequestKind.READ:
            self._n_read -= 1
        elif kind is RequestKind.WRITE:
            self._n_write -= 1
        else:
            self._n_test -= 1
        if request.arrival_ns <= bucket.min_arrival:
            bucket.recompute_min()
        if self._k_rings is not None:
            self._k_rings[kind].kill_seq(entry[0])
            self._k_min[request.bank] = bucket.min_arrival
            self._k_cnt[request.bank] = bucket.count
        return request

    def _pick_fr_fcfs(
        self, kind: RequestKind, banks: Sequence[BankState], now_ns: float
    ) -> Optional[Request]:
        """First eligible row-buffer hit in enqueue order, else oldest.

        Only banks that can accept a command at ``now_ns`` are scanned;
        within a bank the deque is already in enqueue (sequence) order, so
        the first matching entry is the bank's oldest candidate.
        """
        if self._k_rings is not None:
            return self._pick_kernel(kind, now_ns)
        best_hit: Optional[Tuple[int, Request, _BankBucket]] = None
        best_any: Optional[Tuple[int, Request, _BankBucket]] = None
        is_read = kind is RequestKind.READ
        is_write = kind is RequestKind.WRITE
        for bank_id, bucket in self._banks.items():
            queue = (
                bucket.reads if is_read
                else bucket.writes if is_write
                else bucket.tests
            )
            if not queue:
                continue
            bank = banks[bank_id]
            if bank.ready_ns > now_ns:
                continue
            open_row = bank.open_row
            found_any = False
            for entry in queue:
                request = entry[1]
                if request.arrival_ns > now_ns:
                    continue
                if not found_any:
                    found_any = True
                    if best_any is None or entry[0] < best_any[0]:
                        best_any = (entry[0], request, bucket)
                    if open_row is None:
                        break  # no hit possible in a precharged bank
                if request.row == open_row:
                    if best_hit is None or entry[0] < best_hit[0]:
                        best_hit = (entry[0], request, bucket)
                    break  # later entries in this bank cannot beat it
        chosen = best_hit if best_hit is not None else best_any
        if chosen is None:
            return None
        bucket = chosen[2]
        return self._remove(
            bucket, bucket.queue_for(kind), (chosen[0], chosen[1])
        )

    def _pick_kernel(
        self, kind: RequestKind, now_ns: float
    ) -> Optional[Request]:
        """Kernel-path pick: one ascending ring scan replaces the per-bank
        loop (same rule; see :mod:`repro.kernels.sched`)."""
        ring = self._k_rings[kind]
        slot = ring.pick(self._k_ready, self._k_open, self._k_done, now_ns)
        if slot < 0:
            return None
        seq = int(ring.seqs[slot])
        bucket = self._banks[int(ring.banks[slot])]
        queue = bucket.queue_for(kind)
        for entry in queue:
            if entry[0] == seq:
                return self._remove(bucket, queue, entry)
        raise RuntimeError(
            f"kernel ring out of sync: seq {seq} missing from its queue"
        )

    def next_request(
        self, banks: Sequence[BankState], now_ns: float
    ) -> Optional[Request]:
        """Pick (and remove) the next request issuable at ``now_ns``.

        Reads first; writes only when draining (high-water mark) or when
        no reads are pending; test traffic strictly last.
        """
        cfg = self.config
        writes = self._n_write
        if writes >= cfg.write_queue_drain_threshold:
            if not self._draining_writes:
                self._n_drains += 1
            self._draining_writes = True
        if not writes:
            self._draining_writes = False

        if self._draining_writes and writes:
            choice = self._pick_fr_fcfs(RequestKind.WRITE, banks, now_ns)
            if choice is not None:
                if self._n_write <= cfg.write_queue_drain_threshold // 2:
                    self._draining_writes = False
                return choice
        if self._n_read:
            choice = self._pick_fr_fcfs(RequestKind.READ, banks, now_ns)
            if choice is not None:
                return choice
        if self._n_write:
            choice = self._pick_fr_fcfs(RequestKind.WRITE, banks, now_ns)
            if choice is not None:
                return choice
        if self._n_test:
            return self._pick_fr_fcfs(RequestKind.TEST, banks, now_ns)
        return None

    def earliest_issue_ns(
        self, banks: Sequence[BankState], floor_ns: float
    ) -> Optional[float]:
        """Earliest future time any queued request becomes eligible.

        Per bank, the earliest candidate is ``max(min arrival, bank ready,
        floor)`` — identical to minimising ``max(arrival, ready, floor)``
        over that bank's requests — so the scan is O(banks with work).
        """
        if self._k_rings is not None:
            t = _ksched.earliest_issue(
                self._k_min, self._k_cnt, self._k_ready, floor_ns
            )
            return None if t == float("inf") else t
        best: Optional[float] = None
        for bank_id, bucket in self._banks.items():
            if not bucket.count:
                continue
            t = bucket.min_arrival
            ready = banks[bank_id].ready_ns
            if ready > t:
                t = ready
            if floor_ns > t:
                t = floor_ns
            if best is None or t < best:
                best = t
        return best
