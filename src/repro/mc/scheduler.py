"""FR-FCFS request scheduling.

First-Ready, First-Come-First-Served: among queued requests whose bank can
accept a command, prefer row-buffer hits (they finish fastest and keep the
bus busy), then the oldest request. Demand reads outrank posted writes and
background test traffic; writes are drained when the write queue crosses a
high-water mark, the standard write-drain policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .. import obs
from .bank import BankState
from .request import Request, RequestKind


@dataclass
class SchedulerConfig:
    """Queueing policy knobs."""

    write_queue_drain_threshold: int = 16
    read_queue_capacity: int = 64
    write_queue_capacity: int = 64

    def __post_init__(self) -> None:
        if self.write_queue_drain_threshold <= 0:
            raise ValueError("drain threshold must be positive")
        if self.read_queue_capacity <= 0 or self.write_queue_capacity <= 0:
            raise ValueError("queue capacities must be positive")


class FrFcfsScheduler:
    """Priority queues plus the FR-FCFS pick rule."""

    def __init__(self, config: Optional[SchedulerConfig] = None) -> None:
        self.config = config or SchedulerConfig()
        self.read_queue: List[Request] = []
        self.write_queue: List[Request] = []
        self.test_queue: List[Request] = []
        self._draining_writes = False
        registry = obs.get_registry()
        self._c_enqueued = registry.counter("mc.sched.enqueued")
        self._c_rejected = registry.counter("mc.sched.rejected")
        self._c_drains = registry.counter("mc.sched.write_drains")

    # ------------------------------------------------------------------
    def enqueue(self, request: Request) -> bool:
        """Add a request; returns False when the target queue is full."""
        if request.kind is RequestKind.READ:
            if len(self.read_queue) >= self.config.read_queue_capacity:
                self._c_rejected.inc()
                return False
            self.read_queue.append(request)
        elif request.kind is RequestKind.WRITE:
            if len(self.write_queue) >= self.config.write_queue_capacity:
                self._c_rejected.inc()
                return False
            self.write_queue.append(request)
        else:
            self.test_queue.append(request)
        self._c_enqueued.inc()
        return True

    @property
    def pending(self) -> int:
        return len(self.read_queue) + len(self.write_queue) + len(self.test_queue)

    # ------------------------------------------------------------------
    @staticmethod
    def _eligible(
        request: Request, banks: Sequence[BankState], now_ns: float
    ) -> bool:
        """A request may issue only when its bank can take a command now."""
        return (
            request.arrival_ns <= now_ns
            and banks[request.bank].ready_ns <= now_ns
        )

    def _pick_fr_fcfs(
        self, queue: List[Request], banks: Sequence[BankState], now_ns: float
    ) -> Optional[Request]:
        eligible = [r for r in queue if self._eligible(r, banks, now_ns)]
        if not eligible:
            return None
        hit = next(
            (r for r in eligible if banks[r.bank].open_row == r.row), None
        )
        return hit if hit is not None else eligible[0]

    def next_request(
        self, banks: Sequence[BankState], now_ns: float
    ) -> Optional[Request]:
        """Pick (and remove) the next request issuable at ``now_ns``.

        Reads first; writes only when draining (high-water mark) or when
        no reads are pending; test traffic strictly last.
        """
        cfg = self.config
        if len(self.write_queue) >= cfg.write_queue_drain_threshold:
            if not self._draining_writes:
                self._c_drains.inc()
            self._draining_writes = True
        if not self.write_queue:
            self._draining_writes = False

        if self._draining_writes and self.write_queue:
            choice = self._pick_fr_fcfs(self.write_queue, banks, now_ns)
            if choice is not None:
                self.write_queue.remove(choice)
                if len(self.write_queue) <= cfg.write_queue_drain_threshold // 2:
                    self._draining_writes = False
                return choice
        choice = self._pick_fr_fcfs(self.read_queue, banks, now_ns)
        if choice is not None:
            self.read_queue.remove(choice)
            return choice
        choice = self._pick_fr_fcfs(self.write_queue, banks, now_ns)
        if choice is not None:
            self.write_queue.remove(choice)
            return choice
        choice = self._pick_fr_fcfs(self.test_queue, banks, now_ns)
        if choice is not None:
            self.test_queue.remove(choice)
            return choice
        return None

    def earliest_issue_ns(
        self, banks: Sequence[BankState], floor_ns: float
    ) -> Optional[float]:
        """Earliest future time any queued request becomes eligible."""
        best: Optional[float] = None
        for queue in (self.read_queue, self.write_queue, self.test_queue):
            for request in queue:
                t = max(request.arrival_ns, banks[request.bank].ready_ns,
                        floor_ns)
                if best is None or t < best:
                    best = t
        return best
