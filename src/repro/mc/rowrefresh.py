"""Row-granularity refresh scheduling.

The paper's mechanisms (MEMCON, RAIDR) conceptually refresh *rows* at
per-row rates, while commodity controllers issue rank-wide auto-refresh
(REF) commands. This module provides the row-granularity alternative for
the cycle simulator: refresh work arrives as a stream of single-row
refreshes — each occupying one bank for a row cycle (tRAS + tRP = 39 ns)
instead of blocking the whole rank for tRFC — at the aggregate rate the
two-rate row population implies.

Comparing this against the all-bank model quantifies a second-order
benefit the paper leaves implicit: for equal refresh *work*, row-granular
refresh interferes less because seven of eight banks stay available.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..dram.timing import TimingParameters


@dataclass(frozen=True)
class RowRefreshSettings:
    """A two-rate row population driving per-row refresh commands.

    ``hi_rows`` rows refresh every ``hi_interval_ms``; ``lo_rows`` every
    ``lo_interval_ms``. The implied command rate is
    ``hi_rows / hi_interval + lo_rows / lo_interval``.
    """

    hi_rows: int
    lo_rows: int
    hi_interval_ms: float = 16.0
    lo_interval_ms: float = 64.0

    def __post_init__(self) -> None:
        if self.hi_rows < 0 or self.lo_rows < 0:
            raise ValueError("row counts must be non-negative")
        if self.hi_rows + self.lo_rows == 0:
            raise ValueError("need at least one row")
        if self.hi_interval_ms <= 0 or self.lo_interval_ms <= 0:
            raise ValueError("intervals must be positive")

    @property
    def total_rows(self) -> int:
        return self.hi_rows + self.lo_rows

    @property
    def commands_per_ms(self) -> float:
        """Row-refresh commands needed per millisecond."""
        return (
            self.hi_rows / self.hi_interval_ms
            + self.lo_rows / self.lo_interval_ms
        )

    @property
    def command_interval_ns(self) -> float:
        """Spacing between consecutive row-refresh commands."""
        return 1e6 / self.commands_per_ms

    def refresh_reduction(self) -> float:
        """Refresh-operation reduction vs all rows at the HI rate."""
        baseline = self.total_rows / self.hi_interval_ms
        return 1.0 - self.commands_per_ms / baseline


class RowRefreshScheduler:
    """Issues single-row refreshes round-robin across banks.

    Attach to a :class:`~repro.mc.controller.MemoryController` via its
    ``row_refresh`` parameter; the controller calls :meth:`tick` instead
    of issuing all-bank REF commands.
    """

    def __init__(
        self,
        settings: RowRefreshSettings,
        timing: TimingParameters,
        banks: int,
    ) -> None:
        if banks <= 0:
            raise ValueError("banks must be positive")
        self.settings = settings
        self.timing = timing
        self.banks = banks
        self._next_refresh_ns = settings.command_interval_ns
        self._next_bank = 0
        self.commands_issued = 0
        self.busy_ns = 0.0

    @property
    def row_cycle_ns(self) -> float:
        """Bank occupancy of one row refresh (ACT + PRE)."""
        return self.timing.tRAS + self.timing.tRP

    @property
    def next_due_ns(self) -> float:
        return self._next_refresh_ns

    def tick(self, now_ns: float, bank_states: List) -> bool:
        """Issue one row refresh if due; returns True when issued.

        The chosen bank is blocked for one row cycle starting when it is
        next free; its open row is closed (refresh implies precharge).
        """
        if now_ns < self._next_refresh_ns:
            return False
        bank = bank_states[self._next_bank]
        start = max(now_ns, bank.ready_ns)
        bank.ready_ns = start + self.row_cycle_ns
        bank.open_row = None
        if bank.act_log is not None:
            bank.act_log.close(start)
        self._next_bank = (self._next_bank + 1) % self.banks
        self._next_refresh_ns += self.settings.command_interval_ns
        self.commands_issued += 1
        self.busy_ns += self.row_cycle_ns
        return True


@dataclass(frozen=True)
class TrrSettings:
    """Target-row-refresh mitigation: per-row ACT threshold and reach.

    When a row's activation count (since its last reset) reaches
    ``threshold``, the controller refreshes its ``neighbor_radius``
    nearest rows on each side — each costing one row cycle of bank
    occupancy — and resets the aggressor's counter, the
    counter-based TRR scheme modern DDR4 devices implement in-DRAM.
    """

    threshold: int
    neighbor_radius: int = 1

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")
        if self.neighbor_radius <= 0:
            raise ValueError("neighbor_radius must be positive")


class TargetRowRefresh:
    """Counter-based TRR engine driven by the banks' activation logs.

    The controller calls :meth:`observe` after servicing each request;
    when the serviced row's ACT count reaches the threshold the engine
    precharges the bank, occupies it for one row cycle per refreshed
    neighbour, and resets the aggressor's counters. Victim rows whose
    charge was just restored contribute no further flips until the
    aggressor re-accumulates activations — exactly the reset semantics
    the disturbance model assumes.
    """

    def __init__(
        self,
        settings: TrrSettings,
        timing: TimingParameters,
        rows_per_bank: int,
    ) -> None:
        if rows_per_bank <= 0:
            raise ValueError("rows_per_bank must be positive")
        self.settings = settings
        self.timing = timing
        self.rows_per_bank = rows_per_bank
        self.refreshes_issued = 0
        self.triggers = 0
        self.busy_ns = 0.0
        #: Neighbours refreshed by the most recent trigger (forensics).
        self.last_neighbors = 0

    @property
    def row_cycle_ns(self) -> float:
        """Bank occupancy of one neighbour refresh (ACT + PRE)."""
        return self.timing.tRAS + self.timing.tRP

    def observe(self, bank, row: int, now_ns: float) -> bool:
        """Check ``row``'s counter after a service; mitigate when due.

        Returns True when a target-row refresh fired. Requires the bank
        to carry an activation log (the controller attaches one whenever
        TRR is configured).
        """
        log = bank.act_log
        if log is None or log.counts.get(row, 0) < self.settings.threshold:
            return False
        # Mitigation precharges the bank, then walks the neighbours.
        start = max(now_ns, bank.ready_ns)
        if bank.open_row is not None:
            log.close(start)
            bank.open_row = None
        radius = self.settings.neighbor_radius
        neighbors = 0
        for distance in range(1, radius + 1):
            if row - distance >= 0:
                neighbors += 1
            if row + distance < self.rows_per_bank:
                neighbors += 1
        bank.ready_ns = start + neighbors * self.row_cycle_ns
        self.busy_ns += neighbors * self.row_cycle_ns
        self.refreshes_issued += neighbors
        self.triggers += 1
        self.last_neighbors = neighbors
        log.reset_row(row)
        return True
