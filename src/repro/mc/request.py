"""Memory request records for the cycle-level simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional


class RequestKind(Enum):
    """What a DRAM request is for."""

    READ = "read"
    WRITE = "write"
    TEST = "test"     # background traffic injected by MEMCON testing


@dataclass
class Request:
    """One DRAM request flowing through the memory controller.

    Times are in nanoseconds of simulated time. ``completion_ns`` is set by
    the controller when the data transfer finishes.
    """

    kind: RequestKind
    core: int            # issuing core, or -1 for background test traffic
    bank: int
    row: int
    arrival_ns: float
    channel: int = 0
    completion_ns: Optional[float] = None

    def __post_init__(self) -> None:
        if self.channel < 0:
            raise ValueError("channel must be non-negative")
        if self.bank < 0:
            raise ValueError("bank must be non-negative")
        if self.row < 0:
            raise ValueError("row must be non-negative")
        if self.arrival_ns < 0:
            raise ValueError("arrival_ns must be non-negative")

    @property
    def is_demand(self) -> bool:
        """Demand traffic (reads the core waits on)."""
        return self.kind is RequestKind.READ

    @property
    def latency_ns(self) -> float:
        if self.completion_ns is None:
            raise ValueError("request not completed yet")
        return self.completion_ns - self.arrival_ns
