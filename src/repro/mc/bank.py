"""Bank and rank timing state for the cycle-level memory controller."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..dram.timing import TimingParameters


@dataclass
class BankState:
    """Timing state of one DRAM bank.

    ``ready_ns`` is when the bank can accept its next command;
    ``open_row`` is the row latched in the sense amps (None = precharged).
    """

    ready_ns: float = 0.0
    open_row: Optional[int] = None
    activations: int = 0
    precharges: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0


@dataclass
class RankState:
    """Rank-wide constraints: refresh blocking and data-bus occupancy."""

    refresh_until_ns: float = 0.0   # all banks blocked before this time
    bus_free_ns: float = 0.0        # next time the data bus can start a burst
    refreshes_issued: int = 0
    refresh_busy_ns: float = 0.0


def service_request(
    bank: BankState,
    rank: RankState,
    row: int,
    now_ns: float,
    timing: TimingParameters,
) -> float:
    """Issue one column access to ``row`` and return data-completion time.

    The caller (the scheduler) guarantees the bank can accept a command at
    ``now_ns`` and that no refresh is pending. Applies the row-buffer state
    machine (hit / closed / conflict) and data-bus serialisation; mutates
    the bank and rank state.
    """
    start = max(now_ns, bank.ready_ns, rank.refresh_until_ns)
    if bank.open_row == row:
        bank.row_hits += 1
        column_at = start
    elif bank.open_row is None:
        bank.row_misses += 1
        bank.activations += 1
        column_at = start + timing.tRCD
        bank.open_row = row
    else:
        bank.row_conflicts += 1
        bank.precharges += 1
        bank.activations += 1
        column_at = start + timing.tRP + timing.tRCD
        bank.open_row = row
    burst_ns = timing.burst_cycles * timing.tCK
    # The data burst must also wait for the shared bus.
    data_start = max(column_at + timing.tCAS, rank.bus_free_ns)
    data_end = data_start + burst_ns
    rank.bus_free_ns = data_start + max(burst_ns, timing.tCCD)
    # Bank can take its next column command one tCCD after this one.
    bank.ready_ns = max(column_at + timing.tCCD, data_end - timing.tCAS)
    return data_end


def issue_refresh(
    rank: RankState,
    banks: list,
    now_ns: float,
    timing: TimingParameters,
) -> float:
    """Issue an all-bank refresh at ``now_ns`` and return when it ends.

    All banks are precharged by REF; open rows are lost.
    """
    end = now_ns + timing.tRFC
    rank.refresh_until_ns = end
    rank.refreshes_issued += 1
    rank.refresh_busy_ns += timing.tRFC
    for bank in banks:
        bank.open_row = None
        bank.ready_ns = max(bank.ready_ns, end)
    return end
