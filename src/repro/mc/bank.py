"""Bank and rank timing state for the cycle-level memory controller."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..dram.timing import TimingParameters


class BankActivationLog:
    """Per-row ACT counts and open-row on-time for one bank.

    The read-disturbance channel (:mod:`repro.dram.disturb`) consumes the
    controller's *real* ACT stream: every activate records the row id, and
    every row close (PRE, REF, row refresh) accrues the interval the row
    spent open — the RowPress signal. The log is opt-in (``BankState.act_log``
    is ``None`` by default) so untracked runs pay nothing and stay
    bit-identical.

    Counts survive auto-refresh on purpose: an all-bank REF restores the
    *victims'* charge, but per-victim accounting lives in the disturbance
    model's refresh-interval scaling; the log's job is only to report how
    often each aggressor row activated. Target-row-refresh mitigation
    resets an aggressor through :meth:`reset_row` when it refreshes the
    neighbours.
    """

    __slots__ = ("counts", "on_ns", "open_row", "open_since_ns")

    def __init__(self) -> None:
        self.counts: Dict[int, int] = {}
        self.on_ns: Dict[int, float] = {}
        self.open_row: Optional[int] = None
        self.open_since_ns = 0.0

    def activate(self, row: int, t_ns: float) -> None:
        """Record an ACT of ``row`` at ``t_ns`` (closes any open interval)."""
        if self.open_row is not None:
            self.close(t_ns)
        self.counts[row] = self.counts.get(row, 0) + 1
        self.open_row = row
        self.open_since_ns = t_ns

    def close(self, t_ns: float) -> None:
        """Record the PRE of the open row at ``t_ns`` (no-op when closed)."""
        row = self.open_row
        if row is None:
            return
        duration = t_ns - self.open_since_ns
        if duration > 0.0:
            self.on_ns[row] = self.on_ns.get(row, 0.0) + duration
        self.open_row = None

    def reset_row(self, row: int) -> None:
        """Forget a row's accumulated pressure (TRR mitigation hook).

        Callers close any open interval first (mitigation precharges the
        bank), so dropping the dict entries is the whole reset.
        """
        self.counts.pop(row, None)
        self.on_ns.pop(row, None)

    def snapshot(
        self, now_ns: float
    ) -> Tuple[Dict[int, int], Dict[int, float]]:
        """(counts, on_ns) copies with the open interval virtually closed."""
        counts = dict(self.counts)
        on_ns = dict(self.on_ns)
        row = self.open_row
        if row is not None:
            duration = now_ns - self.open_since_ns
            if duration > 0.0:
                on_ns[row] = on_ns.get(row, 0.0) + duration
        return counts, on_ns


@dataclass
class BankState:
    """Timing state of one DRAM bank.

    ``ready_ns`` is when the bank can accept its next command;
    ``open_row`` is the row latched in the sense amps (None = precharged).
    ``act_log``, when attached, mirrors the ACT/PRE stream as per-row
    aggressor counters for the read-disturbance model.
    """

    ready_ns: float = 0.0
    open_row: Optional[int] = None
    activations: int = 0
    precharges: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    act_log: Optional[BankActivationLog] = None


@dataclass
class RankState:
    """Rank-wide constraints: refresh blocking and data-bus occupancy."""

    refresh_until_ns: float = 0.0   # all banks blocked before this time
    bus_free_ns: float = 0.0        # next time the data bus can start a burst
    refreshes_issued: int = 0
    refresh_busy_ns: float = 0.0


def service_request(
    bank: BankState,
    rank: RankState,
    row: int,
    now_ns: float,
    timing: TimingParameters,
) -> float:
    """Issue one column access to ``row`` and return data-completion time.

    The caller (the scheduler) guarantees the bank can accept a command at
    ``now_ns`` and that no refresh is pending. Applies the row-buffer state
    machine (hit / closed / conflict) and data-bus serialisation; mutates
    the bank and rank state.
    """
    start = max(now_ns, bank.ready_ns, rank.refresh_until_ns)
    if bank.open_row == row:
        bank.row_hits += 1
        column_at = start
    elif bank.open_row is None:
        bank.row_misses += 1
        bank.activations += 1
        column_at = start + timing.tRCD
        bank.open_row = row
        if bank.act_log is not None:
            bank.act_log.activate(row, start)
    else:
        bank.row_conflicts += 1
        bank.precharges += 1
        bank.activations += 1
        column_at = start + timing.tRP + timing.tRCD
        bank.open_row = row
        if bank.act_log is not None:
            # PRE of the old row issues at `start`; the new row's ACT
            # follows one tRP later.
            bank.act_log.close(start)
            bank.act_log.activate(row, start + timing.tRP)
    burst_ns = timing.burst_cycles * timing.tCK
    # The data burst must also wait for the shared bus.
    data_start = max(column_at + timing.tCAS, rank.bus_free_ns)
    data_end = data_start + burst_ns
    rank.bus_free_ns = data_start + max(burst_ns, timing.tCCD)
    # Bank can take its next column command one tCCD after this one.
    bank.ready_ns = max(column_at + timing.tCCD, data_end - timing.tCAS)
    return data_end


def issue_refresh(
    rank: RankState,
    banks: list,
    now_ns: float,
    timing: TimingParameters,
) -> float:
    """Issue an all-bank refresh at ``now_ns`` and return when it ends.

    All banks are precharged by REF; open rows are lost.
    """
    end = now_ns + timing.tRFC
    rank.refresh_until_ns = end
    rank.refreshes_issued += 1
    rank.refresh_busy_ns += timing.tRFC
    for bank in banks:
        bank.open_row = None
        bank.ready_ns = max(bank.ready_ns, end)
        if bank.act_log is not None:
            bank.act_log.close(now_ns)
    return end
