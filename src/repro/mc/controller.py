"""The cycle-level memory controller.

Ties together the FR-FCFS scheduler, per-bank row-buffer timing, the
rank-wide data bus, and the refresh scheduler. Refresh is the lever the
whole paper turns on: auto-refresh commands block the rank for ``tRFC``
every effective ``tREFI``, and refresh-reduction mechanisms (MEMCON,
RAIDR, slower baselines) stretch the effective ``tREFI`` in proportion to
the refresh operations they eliminate — exactly how the paper models the
mechanisms inside its simulator (§6.2).

MEMCON's testing traffic is injected as background requests: each
concurrent test contributes two full-row reads (Read&Compare) spread over
the test window (Table 3's overhead study).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from .. import obs
from ..dram.timing import DDR3_1600, TimingParameters
from .bank import BankState, RankState, issue_refresh, service_request
from .request import Request, RequestKind
from .scheduler import FrFcfsScheduler, SchedulerConfig


@dataclass
class RefreshSettings:
    """Refresh behaviour of the controller.

    ``base_interval_ms`` is the per-row retention target of the baseline
    policy; ``reduction`` removes that fraction of refresh commands (0.0
    for the baseline, up to 0.75 for ideal 64 ms operation when the
    baseline is 16 ms).
    """

    base_interval_ms: float = 16.0
    reduction: float = 0.0
    rows_per_window: int = 8192

    def __post_init__(self) -> None:
        if self.base_interval_ms <= 0:
            raise ValueError("base_interval_ms must be positive")
        if not 0.0 <= self.reduction < 1.0:
            raise ValueError("reduction must be in [0, 1)")
        if self.rows_per_window <= 0:
            raise ValueError("rows_per_window must be positive")

    @property
    def effective_trefi_ns(self) -> float:
        """Spacing of refresh commands after the reduction is applied."""
        base = self.base_interval_ms * 1e6 / self.rows_per_window
        return base / (1.0 - self.reduction)


@dataclass
class TestTrafficSettings:
    """MEMCON background test traffic (Table 3).

    ``concurrent_tests`` tests run per ``window_ms``; each test issues
    ``requests_per_test`` full-row block reads, spread uniformly.
    """

    __test__ = False  # "Test" prefix is domain vocabulary, not a pytest class

    concurrent_tests: int = 0
    window_ms: float = 64.0
    requests_per_test: int = 256  # 2 row reads x 128 blocks

    def __post_init__(self) -> None:
        if self.concurrent_tests < 0:
            raise ValueError("concurrent_tests must be non-negative")
        if self.window_ms <= 0:
            raise ValueError("window_ms must be positive")
        if self.requests_per_test <= 0:
            raise ValueError("requests_per_test must be positive")

    @property
    def request_interval_ns(self) -> Optional[float]:
        """Spacing between injected test requests (None when disabled)."""
        total = self.concurrent_tests * self.requests_per_test
        if total == 0:
            return None
        return self.window_ms * 1e6 / total


@dataclass
class ControllerStats:
    """Aggregate controller statistics for one run."""

    reads_served: int = 0
    writes_served: int = 0
    test_requests_served: int = 0
    total_read_latency_ns: float = 0.0
    refreshes_issued: int = 0
    refresh_busy_ns: float = 0.0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0

    @property
    def mean_read_latency_ns(self) -> float:
        if self.reads_served == 0:
            return 0.0
        return self.total_read_latency_ns / self.reads_served


class MemoryController:
    """One channel / one rank / N banks with FR-FCFS and auto-refresh."""

    def __init__(
        self,
        timing: TimingParameters = DDR3_1600,
        banks: int = 8,
        rows_per_bank: int = 32768,
        refresh: Optional[RefreshSettings] = None,
        test_traffic: Optional[TestTrafficSettings] = None,
        scheduler_config: Optional[SchedulerConfig] = None,
        on_read_complete: Optional[Callable[[Request], None]] = None,
        row_refresh: Optional["RowRefreshScheduler"] = None,
        seed: int = 0,
        channel: int = 0,
    ) -> None:
        if banks <= 0 or rows_per_bank <= 0:
            raise ValueError("banks and rows_per_bank must be positive")
        if channel < 0:
            raise ValueError("channel must be non-negative")
        self.timing = timing
        self.banks = [BankState() for _ in range(banks)]
        self.rows_per_bank = rows_per_bank
        self.rank = RankState()
        self.refresh = refresh or RefreshSettings()
        self.test_traffic = test_traffic or TestTrafficSettings()
        self.scheduler = FrFcfsScheduler(scheduler_config)
        self.on_read_complete = on_read_complete
        self.channel = channel
        self._reads_served = 0
        self._writes_served = 0
        self._tests_served = 0
        self._read_latency_ns = 0.0
        registry = obs.get_registry()
        self._c_refreshes = registry.counter("mc.refreshes_issued")
        self._c_test_injected = registry.counter("mc.test_requests_injected")
        self._c_served = {
            RequestKind.READ: registry.counter("mc.reads_served"),
            RequestKind.WRITE: registry.counter("mc.writes_served"),
            RequestKind.TEST: registry.counter("mc.test_requests_served"),
        }
        self._h_read_latency = registry.histogram(
            "mc.read_latency_ns",
            buckets=(25.0, 50.0, 100.0, 200.0, 400.0, 800.0, 1600.0),
        )
        # Row-granularity refresh replaces all-bank REF when supplied.
        self.row_refresh = row_refresh
        self._rng = np.random.default_rng(seed)
        self._next_refresh_ns = (
            float("inf") if row_refresh is not None
            else self.refresh.effective_trefi_ns
        )
        interval = self.test_traffic.request_interval_ns
        self._next_test_ns = interval if interval is not None else None

    # ------------------------------------------------------------------
    def enqueue(self, request: Request) -> bool:
        """Accept a request into the appropriate queue."""
        return self.scheduler.enqueue(request)

    @property
    def pending(self) -> int:
        return self.scheduler.pending

    def next_event_ns(self, now_ns: float) -> float:
        """Earliest time the controller has something to do after ``now``."""
        floor = max(now_ns, self.rank.refresh_until_ns)
        candidates = [max(self._next_refresh_ns, now_ns)]
        if self.row_refresh is not None:
            candidates.append(max(self.row_refresh.next_due_ns, now_ns))
        if self._next_test_ns is not None:
            candidates.append(max(self._next_test_ns, now_ns))
        earliest = self.scheduler.earliest_issue_ns(self.banks, floor)
        if earliest is not None:
            candidates.append(earliest)
        return min(candidates)

    # ------------------------------------------------------------------
    def tick(self, now_ns: float) -> float:
        """Process work available at ``now_ns``; return next event time.

        One call issues at most one refresh, one injected test request and
        one scheduled request; callers loop on the returned event time.
        """
        # 1. Refresh has priority: it is a hard JEDEC deadline. It acts as
        # a barrier — no request command may issue while it is pending.
        if now_ns >= self._next_refresh_ns:
            issue_refresh(self.rank, self.banks,
                          max(self._next_refresh_ns, now_ns), self.timing)
            self._c_refreshes.inc()
            if obs.trace_active():
                obs.emit("mc_refresh", t_ns=max(self._next_refresh_ns, now_ns),
                         channel=self.channel)
            self._next_refresh_ns += self.refresh.effective_trefi_ns
        if self.row_refresh is not None:
            self.row_refresh.tick(now_ns, self.banks)
        # 2. Inject background test traffic on its schedule.
        if self._next_test_ns is not None and now_ns >= self._next_test_ns:
            bank = int(self._rng.integers(len(self.banks)))
            row = int(self._rng.integers(self.rows_per_bank))
            self.scheduler.enqueue(Request(
                kind=RequestKind.TEST, core=-1, bank=bank, row=row,
                arrival_ns=self._next_test_ns, channel=self.channel,
            ))
            self._c_test_injected.inc()
            self._next_test_ns += self.test_traffic.request_interval_ns
        # 3. Issue one request if one is eligible right now (banks free,
        # no refresh in progress).
        if now_ns >= self.rank.refresh_until_ns:
            request = self.scheduler.next_request(self.banks, now_ns)
            if request is not None:
                done = service_request(
                    self.banks[request.bank], self.rank, request.row,
                    now_ns, self.timing,
                )
                request.completion_ns = done
                self._account(request)
        return self.next_event_ns(now_ns + self.timing.tCK)

    def _account(self, request: Request) -> None:
        self._c_served[request.kind].inc()
        if request.kind is RequestKind.READ:
            self._reads_served += 1
            self._read_latency_ns += request.latency_ns
            self._h_read_latency.observe(request.latency_ns)
            if self.on_read_complete is not None:
                self.on_read_complete(request)
        elif request.kind is RequestKind.WRITE:
            self._writes_served += 1
        else:
            self._tests_served += 1
        if obs.trace_active():
            obs.emit(
                "mc_request",
                t_ns=request.completion_ns,
                kind_served=request.kind.value,
                bank=request.bank,
                latency_ns=request.latency_ns,
                channel=self.channel,
            )

    # ------------------------------------------------------------------
    def stats(self) -> ControllerStats:
        refreshes = self.rank.refreshes_issued
        busy_ns = self.rank.refresh_busy_ns
        if self.row_refresh is not None:
            refreshes += self.row_refresh.commands_issued
            busy_ns += self.row_refresh.busy_ns
        stats = ControllerStats(
            reads_served=self._reads_served,
            writes_served=self._writes_served,
            test_requests_served=self._tests_served,
            total_read_latency_ns=self._read_latency_ns,
            refreshes_issued=refreshes,
            refresh_busy_ns=busy_ns,
        )
        for bank in self.banks:
            stats.row_hits += bank.row_hits
            stats.row_misses += bank.row_misses
            stats.row_conflicts += bank.row_conflicts
        return stats
