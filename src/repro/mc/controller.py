"""The cycle-level memory controller.

Ties together the FR-FCFS scheduler, per-bank row-buffer timing, the
rank-wide data bus, and the refresh scheduler. Refresh is the lever the
whole paper turns on: auto-refresh commands block the rank for ``tRFC``
every effective ``tREFI``, and refresh-reduction mechanisms (MEMCON,
RAIDR, slower baselines) stretch the effective ``tREFI`` in proportion to
the refresh operations they eliminate — exactly how the paper models the
mechanisms inside its simulator (§6.2).

MEMCON's testing traffic is injected as background requests: each
concurrent test contributes two full-row reads (Read&Compare) spread over
the test window (Table 3's overhead study).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import kernels, obs
from ..dram.timing import DDR3_1600, TimingParameters
from .bank import (
    BankActivationLog,
    BankState,
    RankState,
    issue_refresh,
    service_request,
)
from .request import Request, RequestKind
from .rowrefresh import TargetRowRefresh, TrrSettings
from .schedule import ArrivalSchedule
from .scheduler import FrFcfsScheduler, SchedulerConfig


@dataclass
class RefreshSettings:
    """Refresh behaviour of the controller.

    ``base_interval_ms`` is the per-row retention target of the baseline
    policy; ``reduction`` removes that fraction of refresh commands (0.0
    for the baseline, up to 0.75 for ideal 64 ms operation when the
    baseline is 16 ms).
    """

    base_interval_ms: float = 16.0
    reduction: float = 0.0
    rows_per_window: int = 8192

    def __post_init__(self) -> None:
        if self.base_interval_ms <= 0:
            raise ValueError("base_interval_ms must be positive")
        if not 0.0 <= self.reduction < 1.0:
            raise ValueError("reduction must be in [0, 1)")
        if self.rows_per_window <= 0:
            raise ValueError("rows_per_window must be positive")

    @property
    def effective_trefi_ns(self) -> float:
        """Spacing of refresh commands after the reduction is applied."""
        base = self.base_interval_ms * 1e6 / self.rows_per_window
        return base / (1.0 - self.reduction)


@dataclass
class TestTrafficSettings:
    """MEMCON background test traffic (Table 3).

    ``concurrent_tests`` tests run per ``window_ms``; each test issues
    ``requests_per_test`` full-row block reads, spread uniformly.
    """

    __test__ = False  # "Test" prefix is domain vocabulary, not a pytest class

    concurrent_tests: int = 0
    window_ms: float = 64.0
    requests_per_test: int = 256  # 2 row reads x 128 blocks

    def __post_init__(self) -> None:
        if self.concurrent_tests < 0:
            raise ValueError("concurrent_tests must be non-negative")
        if self.window_ms <= 0:
            raise ValueError("window_ms must be positive")
        if self.requests_per_test <= 0:
            raise ValueError("requests_per_test must be positive")

    @property
    def request_interval_ns(self) -> Optional[float]:
        """Spacing between injected test requests (None when disabled)."""
        total = self.concurrent_tests * self.requests_per_test
        if total == 0:
            return None
        return self.window_ms * 1e6 / total


@dataclass
class ControllerStats:
    """Aggregate controller statistics for one run."""

    reads_served: int = 0
    writes_served: int = 0
    test_requests_served: int = 0
    total_read_latency_ns: float = 0.0
    refreshes_issued: int = 0
    refresh_busy_ns: float = 0.0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0

    @property
    def mean_read_latency_ns(self) -> float:
        if self.reads_served == 0:
            return 0.0
        return self.total_read_latency_ns / self.reads_served


class MemoryController:
    """One channel / one rank / N banks with FR-FCFS and auto-refresh."""

    def __init__(
        self,
        timing: TimingParameters = DDR3_1600,
        banks: int = 8,
        rows_per_bank: int = 32768,
        refresh: Optional[RefreshSettings] = None,
        test_traffic: Optional[TestTrafficSettings] = None,
        scheduler_config: Optional[SchedulerConfig] = None,
        on_read_complete: Optional[Callable[[Request], None]] = None,
        row_refresh: Optional["RowRefreshScheduler"] = None,
        seed: int = 0,
        channel: int = 0,
        track_activations: bool = False,
        trr: Optional[TrrSettings] = None,
    ) -> None:
        if banks <= 0 or rows_per_bank <= 0:
            raise ValueError("banks and rows_per_bank must be positive")
        if channel < 0:
            raise ValueError("channel must be non-negative")
        self.timing = timing
        # TRR needs the ACT counters, so configuring it implies tracking.
        self.track_activations = track_activations or trr is not None
        self.banks = [
            BankState(
                act_log=BankActivationLog() if self.track_activations else None
            )
            for _ in range(banks)
        ]
        self.trr = (
            TargetRowRefresh(trr, timing, rows_per_bank)
            if trr is not None else None
        )
        self.rows_per_bank = rows_per_bank
        self.rank = RankState()
        self.refresh = refresh or RefreshSettings()
        self.test_traffic = test_traffic or TestTrafficSettings()
        self.scheduler = FrFcfsScheduler(scheduler_config)
        self.on_read_complete = on_read_complete
        self.channel = channel
        self._reads_served = 0
        self._writes_served = 0
        self._tests_served = 0
        self._read_latency_ns = 0.0
        registry = obs.get_registry()
        self._registry = registry
        self._c_refreshes = registry.counter("mc.refreshes_issued")
        self._c_test_injected = registry.counter("mc.test_requests_injected")
        self._c_served = {
            RequestKind.READ: registry.counter("mc.reads_served"),
            RequestKind.WRITE: registry.counter("mc.writes_served"),
            RequestKind.TEST: registry.counter("mc.test_requests_served"),
        }
        self._h_read_latency = registry.histogram(
            "mc.read_latency_ns",
            buckets=(25.0, 50.0, 100.0, 200.0, 400.0, 800.0, 1600.0),
        )
        # Per-request-path instruments accumulate locally and are flushed
        # in one batch (flush_metrics, called from stats()); the running
        # pending-latency list keeps observation order so the histogram
        # sum is the same float as per-request observes.
        self._pend_refreshes = 0
        self._pend_test_injected = 0
        self._pend_served = {
            RequestKind.READ: 0,
            RequestKind.WRITE: 0,
            RequestKind.TEST: 0,
        }
        self._pend_latencies: List[float] = []
        # Row-granularity refresh replaces all-bank REF when supplied.
        self.row_refresh = row_refresh
        self._rng = np.random.default_rng(seed)
        # Refresh and test injection follow fixed periodic schedules; the
        # next-k arrival times are precomputed (ArrivalSchedule) instead of
        # re-derived by per-tick compare-and-bump.
        self._refresh_schedule = (
            None if row_refresh is not None
            else ArrivalSchedule(self.refresh.effective_trefi_ns,
                                 self.refresh.effective_trefi_ns)
        )
        interval = self.test_traffic.request_interval_ns
        self._test_schedule = (
            None if interval is None else ArrivalSchedule(interval, interval)
        )
        # Kernel path: int64/float64 mirrors of per-bank (ready, open
        # row) shared with the scheduler's compiled scans. Synced at the
        # four mutation sites (service_request, issue_refresh, row
        # refresh, TRR); -1 encodes a precharged bank.
        if kernels.engaged():
            self._bank_ready = np.zeros(banks, dtype=np.float64)
            self._bank_open = np.full(banks, -1, dtype=np.int64)
            self.scheduler.attach_bank_state(
                self._bank_ready, self._bank_open
            )
        else:
            self._bank_ready = None
            self._bank_open = None

    def _sync_bank(self, index: int) -> None:
        """Refresh one bank's kernel mirror from its BankState."""
        bank = self.banks[index]
        self._bank_ready[index] = bank.ready_ns
        row = bank.open_row
        self._bank_open[index] = -1 if row is None else row

    def _sync_all_banks(self) -> None:
        for index in range(len(self.banks)):
            self._sync_bank(index)

    # ------------------------------------------------------------------
    @property
    def _next_refresh_ns(self) -> float:
        """Next auto-refresh deadline (+inf under row-granularity refresh)."""
        if self._refresh_schedule is None:
            return float("inf")
        return self._refresh_schedule.next_ns

    @property
    def _next_test_ns(self) -> Optional[float]:
        """Next test-traffic injection time (None when disabled)."""
        if self._test_schedule is None:
            return None
        return self._test_schedule.next_ns

    # ------------------------------------------------------------------
    def enqueue(self, request: Request) -> bool:
        """Accept a request into the appropriate queue."""
        return self.scheduler.enqueue(request)

    @property
    def pending(self) -> int:
        return self.scheduler.pending

    def next_event_ns(self, now_ns: float) -> float:
        """Earliest time the controller has something to do after ``now``.

        Equivalent to ``min`` over the ``max(candidate, now)``-clamped
        refresh / row-refresh / test-injection deadlines and the earliest
        queue-issue time, written branch-by-branch because it runs once
        per simulated instant.
        """
        best = float("inf")
        schedule = self._refresh_schedule
        if schedule is not None:
            best = schedule.next_ns
            if best < now_ns:
                best = now_ns
        if self.row_refresh is not None:
            candidate = self.row_refresh.next_due_ns
            if candidate < now_ns:
                candidate = now_ns
            if candidate < best:
                best = candidate
        schedule = self._test_schedule
        if schedule is not None:
            candidate = schedule.next_ns
            if candidate < now_ns:
                candidate = now_ns
            if candidate < best:
                best = candidate
        if self.scheduler.pending:
            floor = self.rank.refresh_until_ns
            if floor < now_ns:
                floor = now_ns
            earliest = self.scheduler.earliest_issue_ns(self.banks, floor)
            if earliest is not None and earliest < best:
                best = earliest
        return best

    # ------------------------------------------------------------------
    def _step(self, now_ns: float) -> Optional[Request]:
        """Process the work available at ``now_ns``; return any serviced
        request (``None`` when the instant was idle).

        One call issues at most one refresh, one injected test request and
        one scheduled request — the historical per-tick unit of work.
        """
        # 1. Refresh has priority: it is a hard JEDEC deadline. It acts as
        # a barrier — no request command may issue while it is pending.
        schedule = self._refresh_schedule
        if schedule is not None and now_ns >= schedule.next_ns:
            due = schedule.next_ns
            issue_refresh(self.rank, self.banks, max(due, now_ns), self.timing)
            if self._bank_ready is not None:
                self._sync_all_banks()
            if self._registry.enabled:
                self._pend_refreshes += 1
            if obs.trace_active():
                obs.emit("mc_refresh", t_ns=max(due, now_ns),
                         channel=self.channel)
            schedule.advance()
        if self.row_refresh is not None:
            if (
                self.row_refresh.tick(now_ns, self.banks)
                and self._bank_ready is not None
            ):
                self._sync_all_banks()
        # 2. Inject background test traffic on its schedule. The bank/row
        # draws stay scalar and per-injection so the RNG stream matches
        # the historical one draw-pair-per-request order.
        schedule = self._test_schedule
        if schedule is not None and now_ns >= schedule.next_ns:
            due = schedule.next_ns
            bank = int(self._rng.integers(len(self.banks)))
            row = int(self._rng.integers(self.rows_per_bank))
            self.scheduler.enqueue(Request(
                kind=RequestKind.TEST, core=-1, bank=bank, row=row,
                arrival_ns=due, channel=self.channel,
            ))
            if self._registry.enabled:
                self._pend_test_injected += 1
            schedule.advance()
        # 3. Issue one request if one is eligible right now (banks free,
        # no refresh in progress).
        if self.scheduler.pending and now_ns >= self.rank.refresh_until_ns:
            request = self.scheduler.next_request(self.banks, now_ns)
            if request is not None:
                bank = self.banks[request.bank]
                done = service_request(
                    bank, self.rank, request.row, now_ns, self.timing,
                )
                request.completion_ns = done
                if self._bank_ready is not None:
                    self._sync_bank(request.bank)
                if self.trr is not None:
                    fired = self.trr.observe(bank, request.row, now_ns)
                    if fired and self._bank_ready is not None:
                        self._sync_bank(request.bank)
                    if (
                        fired
                        and obs.trace_active()
                        and obs.forensics_active()
                    ):
                        # Row id uses the module-flat convention of
                        # activation snapshots so ledger rows line up
                        # with the disturbance model's victims.
                        flat = (
                            self.channel * len(self.banks) + request.bank
                        ) * self.rows_per_bank + request.row
                        obs.emit(
                            "trr_refresh",
                            t_ns=now_ns,
                            bank=request.bank,
                            row=flat,
                            bank_row=request.row,
                            channel=self.channel,
                            neighbors=self.trr.last_neighbors,
                        )
                self._account(request)
                return request
        return None

    def tick(self, now_ns: float) -> float:
        """Process work available at ``now_ns``; return next event time.

        One call issues at most one refresh, one injected test request and
        one scheduled request; callers loop on the returned event time.
        """
        self._step(now_ns)
        return self.next_event_ns(now_ns + self.timing.tCK)

    def drain(self, now_ns: float, bound_ns: float) -> "Tuple[float, float]":
        """Run every internal step in ``[now_ns, bound_ns)`` in one visit.

        The controller advances its own clock through the same sequence of
        instants the tick loop would have visited — ``t' = max(t + tCK,
        next_event)`` — so service timing is unchanged; only the Python
        round-trips per instant are gone. ``bound_ns`` is the earliest
        time the outside world may act (a core arrival, another channel's
        event, the window end); the drain additionally stops at the
        completion time of any read it services, because delivering that
        read can unstall a core.

        Returns ``(next_event, last_instant)``: the controller's next
        event time and the last instant actually processed. The caller
        must floor its next visit of *anything* at ``last_instant + tCK``
        — the poll loop applied the tCK floor per processed instant, and
        that composition is observable (a floor can push a core's poll
        past its arrival time), so it is part of the preserved semantics.
        """
        tck = self.timing.tCK
        t = now_ns
        while True:
            served = self._step(t)
            if (
                served is not None
                and served.kind is RequestKind.READ
                and served.completion_ns < bound_ns
            ):
                bound_ns = served.completion_ns
            nxt = self.next_event_ns(t + tck)
            t_next = t + tck
            if nxt > t_next:
                t_next = nxt
            if t_next >= bound_ns:
                return nxt, t
            t = t_next

    def _account(self, request: Request) -> None:
        enabled = self._registry.enabled
        if enabled:
            self._pend_served[request.kind] += 1
        if request.kind is RequestKind.READ:
            self._reads_served += 1
            self._read_latency_ns += request.latency_ns
            if enabled:
                self._pend_latencies.append(request.latency_ns)
            if self.on_read_complete is not None:
                self.on_read_complete(request)
        elif request.kind is RequestKind.WRITE:
            self._writes_served += 1
        else:
            self._tests_served += 1
        if obs.trace_active():
            obs.emit(
                "mc_request",
                t_ns=request.completion_ns,
                kind_served=request.kind.value,
                bank=request.bank,
                latency_ns=request.latency_ns,
                channel=self.channel,
            )

    # ------------------------------------------------------------------
    def activation_snapshot(
        self, now_ns: float
    ) -> List[Tuple[Dict[int, int], Dict[int, float]]]:
        """Per-bank (ACT counts, on-time ns) with open intervals closed
        virtually at ``now_ns``; requires activation tracking."""
        if not self.track_activations:
            raise ValueError(
                "controller built without track_activations/trr"
            )
        return [bank.act_log.snapshot(now_ns) for bank in self.banks]

    # ------------------------------------------------------------------
    def flush_metrics(self) -> None:
        """Push batched per-request instruments into the metrics registry.

        Counter deltas and the ordered latency backlog accumulate on the
        controller during the run and reach the registry here — called
        from :meth:`stats` and at run end — producing the same registry
        state (merge/snapshot-compatible) as per-request updates.
        """
        if self._pend_refreshes:
            self._c_refreshes.inc(self._pend_refreshes)
            self._pend_refreshes = 0
        if self._pend_test_injected:
            self._c_test_injected.inc(self._pend_test_injected)
            self._pend_test_injected = 0
        for kind, count in self._pend_served.items():
            if count:
                self._c_served[kind].inc(count)
                self._pend_served[kind] = 0
        if self._pend_latencies:
            self._h_read_latency.observe_many(self._pend_latencies)
            self._pend_latencies = []
        self.scheduler.flush_metrics()

    # ------------------------------------------------------------------
    def stats(self) -> ControllerStats:
        self.flush_metrics()
        refreshes = self.rank.refreshes_issued
        busy_ns = self.rank.refresh_busy_ns
        if self.row_refresh is not None:
            refreshes += self.row_refresh.commands_issued
            busy_ns += self.row_refresh.busy_ns
        stats = ControllerStats(
            reads_served=self._reads_served,
            writes_served=self._writes_served,
            test_requests_served=self._tests_served,
            total_read_latency_ns=self._read_latency_ns,
            refreshes_issued=refreshes,
            refresh_busy_ns=busy_ns,
        )
        for bank in self.banks:
            stats.row_hits += bank.row_hits
            stats.row_misses += bank.row_misses
            stats.row_conflicts += bank.row_conflicts
        return stats
