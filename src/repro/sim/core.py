"""Trace-driven CPU core model.

Follows the standard simple-core abstraction used by Ramulator-style
evaluations: the core retires non-memory instructions at its issue width
(4-wide at 4 GHz), issues a last-level-cache-miss DRAM read every
``1000 / MPKI`` instructions on average, overlaps up to ``max_outstanding``
misses (memory-level parallelism afforded by the 128-entry window), and
stalls when that limit is reached. Writebacks are posted: they consume
DRAM bandwidth but the core never waits on them.

The synthetic request stream carries each benchmark's row-buffer locality:
with probability ``row_hit_rate`` a request targets the same (bank, row)
as the previous request from this core, otherwise a fresh random row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..mc.request import Request, RequestKind
from ..traces.spec import BenchmarkProfile


@dataclass
class CoreConfig:
    """Core microarchitecture parameters (paper Table 2)."""

    freq_ghz: float = 4.0
    width: int = 4
    max_outstanding: int = 8   # MLP supported by the 128-entry window

    def __post_init__(self) -> None:
        if self.freq_ghz <= 0 or self.width <= 0 or self.max_outstanding <= 0:
            raise ValueError("core parameters must be positive")

    @property
    def instructions_per_ns(self) -> float:
        """Peak retirement rate (instructions per nanosecond)."""
        return self.freq_ghz * self.width


class TraceCore:
    """One core running a synthetic benchmark stream.

    The core's private clock advances in two ways: retiring the
    instruction gap before each memory request (at peak width), and being
    dragged forward by read completions while the outstanding-miss window
    is full (stall time). The issue time of the next request is always
    derived from the *current* clock, so stalls transparently delay it.
    """

    def __init__(
        self,
        core_id: int,
        benchmark: BenchmarkProfile,
        config: Optional[CoreConfig] = None,
        banks: int = 8,
        rows_per_bank: int = 32768,
        channels: int = 1,
        seed: int = 0,
    ) -> None:
        if channels <= 0:
            raise ValueError("channels must be positive")
        self.core_id = core_id
        self.benchmark = benchmark
        self.config = config or CoreConfig()
        self.banks = banks
        self.rows_per_bank = rows_per_bank
        self.channels = channels
        self._rng = np.random.default_rng((seed << 8) ^ core_id)
        self.instructions_retired = 0.0
        self.outstanding = 0
        self.stall_ns = 0.0
        self._clock_ns = 0.0
        self._last_channel = 0
        self._last_bank = 0
        self._last_row = 0
        inter_miss = 1000.0 / benchmark.mpki if benchmark.mpki > 0 else None
        self._inter_miss_mean = inter_miss
        self._pending_gap = self._draw_gap()

    # ------------------------------------------------------------------
    def _draw_gap(self) -> Optional[float]:
        """Instructions until the next memory request (None = never)."""
        if self._inter_miss_mean is None:
            return None
        return float(self._rng.exponential(self._inter_miss_mean))

    def _draw_location(self) -> Tuple[int, int, int]:
        if self._rng.random() < self.benchmark.row_hit_rate:
            return self._last_channel, self._last_bank, self._last_row
        channel = int(self._rng.integers(self.channels))
        bank = int(self._rng.integers(self.banks))
        row = int(self._rng.integers(self.rows_per_bank))
        self._last_channel = channel
        self._last_bank, self._last_row = bank, row
        return channel, bank, row

    # ------------------------------------------------------------------
    @property
    def stalled(self) -> bool:
        return self.outstanding >= self.config.max_outstanding

    def next_arrival_hint(self, now_ns: float) -> Optional[float]:
        """When this core will next want to issue, if it is not stalled."""
        if self.stalled or self._pending_gap is None:
            return None
        return self._clock_ns + self._pending_gap / self.config.instructions_per_ns

    def next_request(self, now_ns: float) -> Optional[Request]:
        """Issue the next request if the core has reached it by ``now_ns``."""
        if self.stalled or self._pending_gap is None:
            return None
        issue_at = (
            self._clock_ns + self._pending_gap / self.config.instructions_per_ns
        )
        if issue_at > now_ns:
            return None
        self.instructions_retired += self._pending_gap
        self._clock_ns = issue_at
        self._pending_gap = self._draw_gap()
        is_write = self._rng.random() < self.benchmark.write_fraction
        channel, bank, row = self._draw_location()
        request = Request(
            kind=RequestKind.WRITE if is_write else RequestKind.READ,
            core=self.core_id,
            bank=bank,
            row=row,
            arrival_ns=issue_at,
            channel=channel,
        )
        if request.kind is RequestKind.READ:
            self.outstanding += 1
        return request

    def complete_read(self, request: Request, now_ns: float) -> None:
        """A demand read came back; release its window slot."""
        if request.core != self.core_id:
            raise ValueError("request belongs to another core")
        if self.outstanding <= 0:
            raise RuntimeError("read completion with no outstanding reads")
        was_stalled = self.stalled
        self.outstanding -= 1
        if was_stalled and now_ns > self._clock_ns:
            # The window was full: the core made no progress while this
            # read was the gating miss.
            self.stall_ns += now_ns - self._clock_ns
            self._clock_ns = now_ns

    # ------------------------------------------------------------------
    def ipc(self, elapsed_ns: float) -> float:
        """Committed instructions per *CPU* cycle over the run."""
        if elapsed_ns <= 0:
            raise ValueError("elapsed_ns must be positive")
        cycles = elapsed_ns * self.config.freq_ghz
        return self.instructions_retired / cycles
