"""System simulator: trace cores, full system, workload mixes, metrics."""

from .core import CoreConfig, TraceCore
from .energy import (
    EnergyBreakdown,
    EnergyParameters,
    energy_of_run,
    refresh_energy_savings,
)
from .events import EventHeap
from .metrics import geometric_mean, harmonic_mean, speedup
from .system import (
    CoreResult,
    SystemConfig,
    SystemResult,
    SystemSimulator,
    simulate_workload,
)
from .workloads import multicore_mixes, singlecore_workloads

__all__ = [
    "CoreConfig",
    "CoreResult",
    "EnergyBreakdown",
    "EnergyParameters",
    "EventHeap",
    "energy_of_run",
    "refresh_energy_savings",
    "SystemConfig",
    "SystemResult",
    "SystemSimulator",
    "TraceCore",
    "geometric_mean",
    "harmonic_mean",
    "multicore_mixes",
    "simulate_workload",
    "singlecore_workloads",
    "speedup",
]
