"""Central event queue for the discrete-event system simulator.

A tiny min-heap keyed on ``(time, actor)`` with lazy invalidation: each
actor (a core or a channel controller) has at most one *current* posted
time; re-posting bumps a version counter so stale heap entries are
recognised and dropped when they surface. Actors are tuples like
``("core", 3)`` or ``("mc", 0)``, which also provides the deterministic
tiebreak at equal times (cores sort before controllers, then by index) —
matching the fixed visit order of the retired poll loop.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, List, Optional, Tuple

__all__ = ["EventHeap"]


class EventHeap:
    """Min-heap of per-actor next-ready times with lazy invalidation."""

    __slots__ = ("_heap", "_version", "_time")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, Hashable, int]] = []
        self._version: Dict[Hashable, int] = {}
        self._time: Dict[Hashable, float] = {}

    def __len__(self) -> int:
        return len(self._time)

    def push(self, actor: Hashable, time: float) -> None:
        """Post (or re-post) an actor's next-ready time."""
        version = self._version.get(actor, 0) + 1
        self._version[actor] = version
        self._time[actor] = time
        heapq.heappush(self._heap, (time, actor, version))

    def current(self, actor: Hashable) -> Optional[float]:
        """The actor's posted time, or None when it has none."""
        return self._time.get(actor)

    def invalidate(self, actor: Hashable) -> None:
        """Withdraw an actor's posted time (lazy: entry dropped on pop)."""
        if actor in self._time:
            self._version[actor] = self._version.get(actor, 0) + 1
            del self._time[actor]

    def prune_due(self, now: float) -> List[Hashable]:
        """Consume every posted time ``<= now``; returns those actors.

        Consumed actors no longer constrain :meth:`next_time`; the caller
        is expected to visit them this instant and re-post their next
        times.
        """
        due: List[Hashable] = []
        heap = self._heap
        while heap and heap[0][0] <= now:
            _, actor, version = heapq.heappop(heap)
            if self._version.get(actor) == version:
                self._version[actor] = version + 1  # consume
                del self._time[actor]
                due.append(actor)
        return due

    def next_time(self, default: float) -> float:
        """Earliest posted time, skipping stale entries; ``default`` when
        nothing is posted."""
        heap = self._heap
        while heap:
            time, actor, version = heap[0]
            if self._version.get(actor) == version:
                return time
            heapq.heappop(heap)
        return default
