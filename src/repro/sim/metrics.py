"""Performance metrics for simulator results."""

from __future__ import annotations

import math
from typing import Sequence

from .system import SystemResult


def speedup(result: SystemResult, baseline: SystemResult) -> float:
    """System speedup: weighted speedup ratio against a baseline run.

    For a single core this is the plain IPC ratio; for multiprogrammed
    mixes it is the normalised weighted speedup, the metric the paper's
    multi-core figures report.
    """
    if len(result.cores) != len(baseline.cores):
        raise ValueError("core counts differ")
    return result.weighted_speedup_vs(baseline) / len(result.cores)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean, the conventional aggregate for speedups.

    Computed as ``exp(mean(log(v)))`` rather than the n-th root of the
    running product: the product of many large (or tiny) speedups
    overflows to ``inf`` (or underflows to 0) in float64 long before the
    mean itself leaves the representable range.
    """
    if not values:
        raise ValueError("values must not be empty")
    if any(v <= 0 for v in values):
        raise ValueError("values must be positive")
    if len(values) == 1:
        return float(values[0])  # exact, no log/exp round-trip error
    return math.exp(math.fsum(math.log(v) for v in values) / len(values))


def harmonic_mean(values: Sequence[float]) -> float:
    """Harmonic mean (used for fairness-weighted aggregates)."""
    if not values:
        raise ValueError("values must not be empty")
    if any(v <= 0 for v in values):
        raise ValueError("values must be positive")
    return len(values) / sum(1.0 / v for v in values)
