"""DRAM energy accounting.

The paper motivates refresh reduction with energy as well as performance;
this module provides the standard command-level energy model (per-ACT/RD/
WR/REF energies plus background power, in the style of the Micron DDR3
power model) so simulator results can be converted into energy numbers.

Per-command energies default to representative DDR3-1600 x8 values scaled
to the whole rank; refresh energy scales with chip density the same way
tRFC does, which is what makes refresh reduction increasingly valuable at
8 -> 16 -> 32 Gb.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .. import obs
from ..mc.controller import ControllerStats


@dataclass(frozen=True)
class EnergyParameters:
    """Per-operation energies (nanojoules) and background power (watts)."""

    activate_nj: float = 2.2        # ACT+PRE pair, whole rank
    read_nj: float = 1.3            # column read burst
    write_nj: float = 1.4           # column write burst
    refresh_nj_8gb: float = 120.0   # one all-bank REF on an 8 Gb chip rank
    background_w: float = 0.35      # standby power, whole rank

    def __post_init__(self) -> None:
        for name in ("activate_nj", "read_nj", "write_nj",
                     "refresh_nj_8gb", "background_w"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def refresh_nj(self, density_gbit: int = 8) -> float:
        """REF energy grows with the rows covered per command."""
        if density_gbit <= 0:
            raise ValueError("density_gbit must be positive")
        return self.refresh_nj_8gb * density_gbit / 8.0


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy consumed over one simulated window, in nanojoules."""

    activate_nj: float
    read_write_nj: float
    refresh_nj: float
    background_nj: float

    @property
    def total_nj(self) -> float:
        return (self.activate_nj + self.read_write_nj
                + self.refresh_nj + self.background_nj)

    @property
    def refresh_fraction(self) -> float:
        total = self.total_nj
        return self.refresh_nj / total if total else 0.0


def energy_of_run(
    stats: ControllerStats,
    window_ns: float,
    density_gbit: int = 8,
    params: Optional[EnergyParameters] = None,
    channel: Optional[int] = None,
) -> EnergyBreakdown:
    """Convert controller statistics into an energy breakdown.

    When a trace sink is active, every call also emits an
    ``energy_rollup`` event (refresh / access / background picojoule
    totals for the window, plus the optional ``channel`` context), so
    fig14-style energy claims are traceable through the same aggregation
    pipeline as the rest of the run.
    """
    if window_ns <= 0:
        raise ValueError("window_ns must be positive")
    params = params or EnergyParameters()
    accesses = stats.row_hits + stats.row_misses + stats.row_conflicts
    activations = stats.row_misses + stats.row_conflicts
    breakdown = EnergyBreakdown(
        activate_nj=activations * params.activate_nj,
        read_write_nj=accesses * params.read_nj,
        refresh_nj=stats.refreshes_issued * params.refresh_nj(density_gbit),
        background_nj=params.background_w * window_ns * 1e-9 * 1e9,
    )
    if obs.trace_active():
        context = {} if channel is None else {"channel": channel}
        obs.emit(
            "energy_rollup",
            window_ns=window_ns,
            refresh_pj=breakdown.refresh_nj * 1e3,
            access_pj=(breakdown.activate_nj + breakdown.read_write_nj) * 1e3,
            background_pj=breakdown.background_nj * 1e3,
            **context,
        )
    return breakdown


def refresh_energy_savings(
    baseline_refreshes: int,
    reduced_refreshes: int,
    density_gbit: int = 8,
    params: Optional[EnergyParameters] = None,
) -> float:
    """Refresh energy saved (nJ) by a refresh-reduction mechanism."""
    if baseline_refreshes < 0 or reduced_refreshes < 0:
        raise ValueError("refresh counts must be non-negative")
    params = params or EnergyParameters()
    saved = baseline_refreshes - reduced_refreshes
    return saved * params.refresh_nj(density_gbit)
