"""Multiprogrammed workload mixes for the performance studies.

The paper combines four randomly selected applications from SPEC CPU2006
and the TPC server suites into 30 multiprogrammed mixes (§5). The same
construction here, seeded so the mixes are stable across runs; single-core
workloads are the individual benchmarks.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..traces.spec import benchmark_names


def multicore_mixes(
    n_mixes: int = 30,
    cores: int = 4,
    seed: int = 2017,
) -> List[List[str]]:
    """The paper's 30 random 4-app mixes (deterministic for a seed)."""
    if n_mixes <= 0 or cores <= 0:
        raise ValueError("n_mixes and cores must be positive")
    pool = benchmark_names()
    rng = np.random.default_rng(seed)
    return [
        [pool[int(i)] for i in rng.choice(len(pool), size=cores, replace=False)]
        for _ in range(n_mixes)
    ]


def singlecore_workloads(n_workloads: int = 30, seed: int = 2017) -> List[List[str]]:
    """Single-benchmark workloads, cycling through the pool."""
    if n_workloads <= 0:
        raise ValueError("n_workloads must be positive")
    pool = benchmark_names()
    rng = np.random.default_rng(seed + 1)
    order = [pool[int(i)] for i in rng.permutation(len(pool))]
    return [[order[i % len(order)]] for i in range(n_workloads)]
