"""Full-system performance simulation (paper §6.2, Table 2 configuration).

Glues N trace-driven cores to one memory controller and runs the whole
thing event-to-event. The refresh policy under evaluation is expressed as
a :class:`~repro.mc.controller.RefreshSettings` (baseline interval plus
the refresh-operation reduction the mechanism achieves) and, for MEMCON,
a :class:`~repro.mc.controller.TestTrafficSettings` describing the
injected testing requests — the same modelling methodology the paper uses
for its Figure 15/16 and Table 3 studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import kernels, obs
from ..dram.timing import DDR3_1600, TimingParameters, trfc_for_density_ns
from ..kernels.eventheap import FlatEventHeap
from ..mc.controller import (
    MemoryController,
    RefreshSettings,
    TestTrafficSettings,
)
from ..mc.request import Request, RequestKind
from ..mc.rowrefresh import RowRefreshScheduler, RowRefreshSettings, TrrSettings
from ..traces.spec import BenchmarkProfile, get_benchmark
from .core import CoreConfig, TraceCore
from .energy import energy_of_run
from .events import EventHeap


@dataclass
class SystemConfig:
    """The paper's Table 2 system, parameterised by chip density.

    ``channels`` extends the paper's single-channel DIMM: each channel is
    an independent controller + rank, and request streams interleave
    across channels on row-locality breaks.
    """

    banks: int = 8
    rows_per_bank: int = 32768
    density_gbit: int = 8
    channels: int = 1
    core: CoreConfig = field(default_factory=CoreConfig)
    refresh: RefreshSettings = field(default_factory=RefreshSettings)
    test_traffic: TestTrafficSettings = field(default_factory=TestTrafficSettings)
    #: Row-granularity refresh population; replaces all-bank REF when set.
    row_refresh: Optional[RowRefreshSettings] = None
    #: Record per-row ACT counts and open-row on-time (the read-disturbance
    #: channel's input). Off by default: untracked runs are bit-identical.
    track_activations: bool = False
    #: Counter-based target-row-refresh mitigation; implies tracking.
    trr: Optional[TrrSettings] = None

    def __post_init__(self) -> None:
        if self.channels <= 0:
            raise ValueError("channels must be positive")

    def timing(self) -> TimingParameters:
        return DDR3_1600.with_density(self.density_gbit)


@dataclass
class CoreResult:
    """Per-core outcome of one simulation."""

    benchmark: str
    instructions: float
    ipc: float
    reads_completed: int
    mean_read_latency_ns: float


@dataclass
class SystemResult:
    """Outcome of one simulation run."""

    window_ns: float
    cores: List[CoreResult]
    refreshes_issued: int
    refresh_busy_fraction: float
    row_hit_rate: float

    @property
    def total_instructions(self) -> float:
        return sum(core.instructions for core in self.cores)

    @property
    def mean_ipc(self) -> float:
        return sum(core.ipc for core in self.cores) / len(self.cores)

    def weighted_speedup_vs(self, baseline: "SystemResult") -> float:
        """Sum of per-core IPC ratios against a baseline run.

        A zero-IPC baseline core makes the metric undefined; silently
        dropping it would shrink the sum and understate every mechanism
        compared against that baseline, so it is rejected instead.
        """
        if len(self.cores) != len(baseline.cores):
            raise ValueError("core counts differ")
        for i, ref in enumerate(baseline.cores):
            if ref.ipc <= 0:
                raise ValueError(
                    f"baseline core {i} ({ref.benchmark}) has zero IPC; "
                    "weighted speedup is undefined"
                )
        return sum(
            mine.ipc / ref.ipc
            for mine, ref in zip(self.cores, baseline.cores)
        )


class SystemSimulator:
    """Event-driven simulation of cores + memory controller."""

    def __init__(
        self,
        benchmarks: Sequence[BenchmarkProfile],
        config: Optional[SystemConfig] = None,
        seed: int = 0,
    ) -> None:
        if not benchmarks:
            raise ValueError("need at least one benchmark")
        self.config = config or SystemConfig()
        timing = self.config.timing()
        self._reads_done: Dict[int, List[Request]] = {
            i: [] for i in range(len(benchmarks))
        }
        # Test traffic is spread across channels; the division remainder
        # goes to the first channels so no configured test is dropped.
        total_tests = self.config.test_traffic.concurrent_tests
        base, extra = divmod(total_tests, self.config.channels)
        per_channel_tests = [
            TestTrafficSettings(
                concurrent_tests=base + (1 if channel < extra else 0),
                window_ms=self.config.test_traffic.window_ms,
                requests_per_test=self.config.test_traffic.requests_per_test,
            )
            for channel in range(self.config.channels)
        ]
        self.controllers = [
            MemoryController(
                timing=timing,
                banks=self.config.banks,
                rows_per_bank=self.config.rows_per_bank,
                refresh=self.config.refresh,
                test_traffic=per_channel_tests[channel],
                on_read_complete=self._read_done,
                row_refresh=(
                    RowRefreshScheduler(
                        self.config.row_refresh, timing, self.config.banks
                    )
                    if self.config.row_refresh is not None else None
                ),
                seed=seed + 1009 * channel,
                channel=channel,
                track_activations=self.config.track_activations,
                trr=self.config.trr,
            )
            for channel in range(self.config.channels)
        ]
        self.cores = [
            TraceCore(
                core_id=i,
                benchmark=bench,
                config=self.config.core,
                banks=self.config.banks,
                rows_per_bank=self.config.rows_per_bank,
                channels=self.config.channels,
                seed=seed + 101 * i,
            )
            for i, bench in enumerate(benchmarks)
        ]
        self._completed_reads: List[Request] = []

    @property
    def controller(self) -> MemoryController:
        """The first channel's controller (single-channel convenience)."""
        return self.controllers[0]

    def _read_done(self, request: Request) -> None:
        self._completed_reads.append(request)

    def activation_snapshot(
        self, now_ns: float
    ) -> Dict[int, Tuple[int, float]]:
        """Module-flat aggressor counters: ``flat row -> (acts, on_ns)``.

        Flat index = ``(channel * banks + bank) * rows_per_bank + row``,
        so physical neighbourhoods never straddle a bank: in-bank
        neighbours are adjacent flat indices and bank edges fall on
        ``rows_per_bank`` multiples (the disturbance model masks pairs
        crossing those edges). Requires ``track_activations`` (or TRR).
        """
        rows_per_bank = self.config.rows_per_bank
        flat: Dict[int, tuple] = {}
        for controller in self.controllers:
            for bank_index, (counts, on_ns) in enumerate(
                controller.activation_snapshot(now_ns)
            ):
                base = (
                    controller.channel * self.config.banks + bank_index
                ) * rows_per_bank
                for row, acts in counts.items():
                    flat[base + row] = (acts, on_ns.get(row, 0.0))
        return flat

    # ------------------------------------------------------------------
    @obs.timed("sim.run")
    def run(self, window_ns: float, engine: str = "event") -> SystemResult:
        """Simulate ``window_ns`` of wall-clock time and report results.

        ``engine`` selects the inner loop: ``"event"`` (default) is the
        heap-scheduled discrete-event engine; ``"poll"`` is the retired
        cycle-polling loop, kept verbatim as the equivalence oracle.
        """
        if window_ns <= 0:
            raise ValueError("window_ns must be positive")
        if engine == "poll":
            return self._reference_run(window_ns)
        if engine != "event":
            raise ValueError(f"unknown engine {engine!r}")

        c_iterations = obs.get_registry().counter("sim.loop_iterations")
        controllers = self.controllers
        cores = self.cores
        n_channels = len(controllers)
        n_cores = len(cores)
        tck = controllers[0].timing.tCK
        completed = self._completed_reads

        # Actors post their next-ready times on the heap and are visited
        # only when due; time jumps straight to the earliest posted time
        # (floored at now + tCK, the poll loop's advance rule). Each
        # iteration touches only the due actors — the per-iteration cost
        # is proportional to the work at that instant, not to the number
        # of cores and channels.
        #
        # Actors are dense ints: core i -> i, channel ch -> n_cores + ch.
        # That encoding preserves the historical tuple actors' tiebreak
        # (all cores before all controllers, each group by index), and
        # lets the kernels backend swap in the typed-array heap.
        heap = (
            FlatEventHeap(n_cores + n_channels)
            if kernels.engaged() else EventHeap()
        )
        hints: List[Optional[float]] = []
        for i, core in enumerate(cores):
            hint = core.next_arrival_hint(0.0)
            hints.append(hint)
            if hint is not None:
                heap.push(i, hint)
        for channel in range(n_channels):
            heap.push(n_cores + channel, 0.0)  # every controller due at t=0
        # Per-core backpressure queues (the fairness fix: a refused
        # request stalls only its own core, not every later-index core).
        holdback: List[List[Request]] = [[] for _ in cores]
        blocked = 0  # cores with a pending refused request

        now = 0.0
        iterations = 0
        max_iterations = int(window_ns * 50)  # safety net, never binding
        while now < window_ns:
            iterations += 1
            if iterations > max_iterations:
                raise RuntimeError("simulator failed to make progress")
            due_cores: List[int] = []
            drain_chs: List[int] = []
            for actor in heap.prune_due(now):
                if actor < n_cores:
                    due_cores.append(actor)
                else:
                    drain_chs.append(actor - n_cores)
            touched = [False] * n_channels
            fed = False

            # --- Cores, in id order: retry refused requests, then poll.
            if blocked:
                ids = set(due_cores)
                for i in range(n_cores):
                    if holdback[i]:
                        ids.add(i)
                core_ids: Sequence[int] = sorted(ids)
            elif len(due_cores) > 1:
                due_cores.sort()
                core_ids = due_cores
            else:
                core_ids = due_cores
            for i in core_ids:
                queue = holdback[i]
                if queue:
                    while queue:
                        request = queue[0]
                        if controllers[request.channel].enqueue(request):
                            touched[request.channel] = True
                            fed = True
                            queue.pop(0)
                        else:
                            break
                    if queue:
                        continue  # still backpressured; no new requests
                    blocked -= 1
                hint = hints[i]
                if hint is None:
                    continue
                if hint > now:
                    # Not actually due (blocked-path visit or a stale
                    # wake-up); make sure the arrival stays posted.
                    if heap.current(i) is None:
                        heap.push(i, hint)
                    continue
                core = cores[i]
                while True:
                    request = core.next_request(now)
                    if request is None:
                        break
                    if controllers[request.channel].enqueue(request):
                        touched[request.channel] = True
                        fed = True
                    else:
                        queue.append(request)
                        blocked += 1
                        break
                hint = core.next_arrival_hint(now)
                hints[i] = hint
                if hint is not None:
                    heap.push(i, hint)

            # --- Controllers, in channel order: drain every due or
            # freshly-fed channel. `floor_base` tracks the last instant
            # any drain processed: the poll loop applied its tCK floor
            # per instant, and that composition is observable, so the
            # outer advance must respect it.
            floor_base = now
            if fed:
                fed_set = set(drain_chs)
                for ch in range(n_channels):
                    if touched[ch]:
                        fed_set.add(ch)
                drain_chs = sorted(fed_set)
            elif len(drain_chs) > 1:
                drain_chs.sort()
            multi = len(drain_chs) > 1
            for channel in drain_chs:
                if blocked or multi:
                    # Single-step: refused requests retry at tick cadence,
                    # and channels acting at the same instant constrain
                    # each other to the merged instant grid. (Any read
                    # completion lies beyond now + tCK, so completions
                    # never tighten this bound.)
                    bound = now + tck
                else:
                    # Sole actor: run ahead until the earliest posted
                    # event elsewhere (core arrivals + peer channels —
                    # exactly the live heap minus this channel's entry,
                    # which the drain supersedes anyway).
                    heap.invalidate(n_cores + channel)
                    bound = heap.next_time(window_ns)
                    if bound > window_ns:
                        bound = window_ns
                next_event, last_instant = controllers[channel].drain(
                    now, bound
                )
                heap.push(n_cores + channel, next_event)
                if last_instant > floor_base:
                    floor_base = last_instant

            # --- Deliver completed reads to their cores (service order).
            if completed:
                affected = set()
                for request in completed:
                    cores[request.core].complete_read(
                        request, request.completion_ns
                    )
                    self._reads_done[request.core].append(request)
                    affected.add(request.core)
                completed.clear()
                for i in affected:
                    hint = cores[i].next_arrival_hint(now)
                    hints[i] = hint
                    if hint is not None:
                        heap.push(i, hint)
                    else:
                        heap.invalidate(i)

            # --- Advance to the next posted event, floored one tCK past
            # the last instant processed this iteration. While a refused
            # request is older than `now` the poll loop crawled
            # tick-by-tick; mirror that so retry timing is preserved.
            floor = floor_base + tck
            if blocked and any(
                holdback[i] and hints[i] is not None and hints[i] <= now
                for i in range(n_cores)
            ):
                step_to = floor
            else:
                step_to = heap.next_time(floor)
            now = step_to if step_to > floor else floor

        c_iterations.inc(iterations)
        return self._collect_result(window_ns)

    def _reference_run(self, window_ns: float) -> SystemResult:
        """The retired cycle-polling loop, kept as the equivalence oracle.

        Polls every core and ticks every controller each iteration —
        including the historical global-holdback behaviour in which one
        refused request stops polling all remaining cores. Used by the
        engine-equivalence property suite and the BENCH_sim benchmarks;
        not a supported production path.
        """
        if window_ns <= 0:
            raise ValueError("window_ns must be positive")
        c_iterations = obs.get_registry().counter("sim.loop_iterations")
        now = 0.0
        guard = 0
        max_iterations = int(window_ns * 50)  # safety net, never binding
        holdback: List[Request] = []  # requests refused by a full queue
        tck = self.controllers[0].timing.tCK
        while now < window_ns:
            guard += 1
            c_iterations.inc()
            if guard > max_iterations:
                raise RuntimeError("simulator failed to make progress")
            # Retry requests that a full queue refused earlier.
            holdback = [
                r for r in holdback
                if not self.controllers[r.channel].enqueue(r)
            ]
            # Pull any core requests that are due (with backpressure).
            for core in self.cores:
                while not holdback:
                    request = core.next_request(now)
                    if request is None:
                        break
                    if not self.controllers[request.channel].enqueue(request):
                        holdback.append(request)
            next_event = min(
                controller.tick(now) for controller in self.controllers
            )
            # Deliver completed reads to their cores.
            if self._completed_reads:
                for request in self._completed_reads:
                    self.cores[request.core].complete_read(
                        request, request.completion_ns
                    )
                    self._reads_done[request.core].append(request)
                self._completed_reads.clear()
            # Advance: to the next controller event, bounded by the next
            # core request arrival (cores generate work lazily).
            arrivals = [
                hint
                for hint in (core.next_arrival_hint(now) for core in self.cores)
                if hint is not None
            ]
            step_to = min([next_event] + arrivals) if arrivals else next_event
            now = max(now + tck, step_to)
        return self._collect_result(window_ns)

    def _collect_result(self, window_ns: float) -> SystemResult:
        """Assemble the :class:`SystemResult` (shared by both engines)."""
        stats = self.controllers[0].stats()
        for controller in self.controllers[1:]:
            other = controller.stats()
            stats.row_hits += other.row_hits
            stats.row_misses += other.row_misses
            stats.row_conflicts += other.row_conflicts
        core_results = []
        for core in self.cores:
            reads = self._reads_done[core.core_id]
            mean_latency = (
                sum(r.latency_ns for r in reads) / len(reads) if reads else 0.0
            )
            core_results.append(
                CoreResult(
                    benchmark=core.benchmark.name,
                    instructions=core.instructions_retired,
                    ipc=core.ipc(window_ns),
                    reads_completed=len(reads),
                    mean_read_latency_ns=mean_latency,
                )
            )
            if obs.trace_active():
                obs.emit(
                    "sim_progress",
                    t_ns=window_ns,
                    core=core.core_id,
                    instructions=core.instructions_retired,
                    benchmark=core.benchmark.name,
                    reads_completed=len(reads),
                )
        if obs.trace_active():
            # Per-channel energy rollups ride the trace (energy_rollup
            # events) so energy claims are replayable from the stream.
            for controller in self.controllers:
                energy_of_run(
                    controller.stats(), window_ns,
                    density_gbit=self.config.density_gbit,
                    channel=controller.channel,
                )
        accesses = stats.row_hits + stats.row_misses + stats.row_conflicts
        return SystemResult(
            window_ns=window_ns,
            cores=core_results,
            refreshes_issued=sum(
                c.stats().refreshes_issued for c in self.controllers
            ),
            refresh_busy_fraction=(
                sum(c.stats().refresh_busy_ns for c in self.controllers)
                / (window_ns * len(self.controllers))
            ),
            row_hit_rate=stats.row_hits / accesses if accesses else 0.0,
        )


def simulate_workload(
    benchmark_names: Sequence[str],
    density_gbit: int = 8,
    refresh_interval_ms: float = 16.0,
    refresh_reduction: float = 0.0,
    concurrent_tests: int = 0,
    window_ns: float = 500_000.0,
    channels: int = 1,
    seed: int = 0,
) -> SystemResult:
    """Convenience wrapper: one run of a named multiprogrammed workload."""
    config = SystemConfig(
        density_gbit=density_gbit,
        channels=channels,
        refresh=RefreshSettings(
            base_interval_ms=refresh_interval_ms,
            reduction=refresh_reduction,
        ),
        test_traffic=TestTrafficSettings(concurrent_tests=concurrent_tests),
    )
    benchmarks = [get_benchmark(name) for name in benchmark_names]
    return SystemSimulator(benchmarks, config, seed=seed).run(window_ns)
