"""Checkpoint journal: completed units, durable as they finish.

The journal is a JSONL sidecar (``results.checkpoint.jsonl`` by
default) holding one fingerprinted entry per completed work unit::

    {"v": 1, "key": "fig04:bench:mcf", "fp": "1f2e...", "payload": ...,
     "wall_s": 0.031, "worker": 41287}

Entries are flushed line-by-line, so a sweep killed mid-flight leaves a
valid prefix (plus at most one truncated line, which :meth:`load`
drops). ``--resume`` loads the journal and skips every unit whose
``(key, fingerprint)`` matches the current decomposition — a journal
written with a different seed, scale, or unit layout contributes
nothing, rather than contributing silently wrong results.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional

__all__ = ["CheckpointJournal", "JOURNAL_VERSION"]

JOURNAL_VERSION = 1


class CheckpointJournal:
    """Append-only journal of completed work units."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle = None
        self.appended = 0

    # ------------------------------------------------------------------
    def load(self) -> Dict[str, Dict[str, Any]]:
        """Journalled entries keyed by unit key (last write wins).

        Tolerates a missing file and a truncated final line; any other
        malformed line raises — a corrupt journal should fail loudly,
        not resume with holes.
        """
        entries: Dict[str, Dict[str, Any]] = {}
        for entry in self._iter_entries():
            entries[entry["key"]] = entry
        return entries

    def load_by_fingerprint(self) -> Dict[Any, Dict[str, Any]]:
        """Journalled entries keyed by ``(key, fingerprint)`` pairs.

        A one-shot run never sees the same unit key under two
        fingerprints, so :meth:`load`'s last-write-wins is enough. A
        persistent service does — the same ``fig04:scan00`` key recurs
        across host jobs with different seeds — and collapsing those to
        one entry would forget completed work. This view keeps one entry
        per distinct (key, fp), letting the fleet scheduler build an
        exact per-job ``done`` map.
        """
        entries: Dict[Any, Dict[str, Any]] = {}
        for entry in self._iter_entries():
            entries[(entry["key"], entry["fp"])] = entry
        return entries

    def _iter_entries(self):
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        for index, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as exc:
                if index == len(lines) - 1:
                    break  # truncated tail: the kill signature
                raise ValueError(
                    f"{self.path}:{index + 1}: corrupt journal line"
                ) from exc
            if not isinstance(entry, dict) or entry.get("v") != JOURNAL_VERSION:
                continue  # future journal versions are skipped, not fatal
            key = entry.get("key")
            if isinstance(key, str) and "fp" in entry and "payload" in entry:
                yield entry

    # ------------------------------------------------------------------
    def append(
        self,
        key: str,
        fingerprint: str,
        payload: Any,
        wall_s: float = 0.0,
        worker: Optional[int] = None,
    ) -> None:
        """Durably record one completed unit (flushed immediately)."""
        if self._handle is None:
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        entry = {
            "v": JOURNAL_VERSION,
            "key": key,
            "fp": fingerprint,
            "payload": payload,
            "wall_s": wall_s,
            "worker": worker,
        }
        self._handle.write(json.dumps(entry, separators=(",", ":")))
        self._handle.write("\n")
        self._handle.flush()
        self.appended += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
