"""Observability merge: fold worker shards back into one run's record.

A sharded run produces one trace shard and one metrics snapshot per
worker, plus the parent's own lifecycle shard. This module reassembles
them:

* :func:`merge_run_traces` splices worker unit-blocks into the parent's
  skeleton stream, ordered by unit ``seq`` under each
  ``experiment_started`` anchor — reconstructing the *exact* event order
  a serial run would have emitted (workers bracket every unit with
  ``unit_started``/``unit_finished`` markers; the markers are consumed
  by the splice and do not survive into the merged stream). Retried
  units may leave blocks in several shards; the executor's accepted
  ``(shard, attempt)`` pair picks the authoritative one.
* :func:`merge_metric_snapshots` folds worker metrics snapshots into the
  parent registry's via :meth:`repro.obs.MetricsRegistry.merge`
  (counters sum, gauges max, histograms add bucket-wise).
* :func:`discover_trace_shards` / :func:`discover_metric_shards` find
  the shard files a (possibly killed) run left next to its outputs.

Because the merged stream equals the serial stream record-for-record,
``aggregate_trace`` over it reproduces the serial run's windowed
rollups bit for bit — the property the test suite pins down.
"""

from __future__ import annotations

import glob
import json
import os
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from ..obs.trace import read_trace
from .executor import _split_ext, metrics_shard_path, trace_shard_path

__all__ = [
    "discover_metric_shards",
    "discover_trace_shards",
    "extract_sharded_ledger",
    "iter_merged_records",
    "merge_metric_snapshots",
    "merge_run_traces",
    "parse_unit_blocks",
]

_MARKERS = ("unit_started", "unit_finished")

#: (experiment, seq) -> {(shard_label, attempt): [records]}
Blocks = Dict[Tuple[str, int], Dict[Tuple[str, int], List[dict]]]


def discover_trace_shards(base: str) -> List[str]:
    """Worker trace shards written next to the final trace path."""
    stem, ext = _split_ext(base)
    return sorted(glob.glob(f"{glob.escape(stem)}.worker-*{ext}"))


def discover_metric_shards(base: str) -> List[str]:
    """Worker metrics snapshots written next to the final metrics path."""
    stem, _ = os.path.splitext(base)
    return sorted(glob.glob(f"{glob.escape(stem)}.worker-*.json"))


def parse_unit_blocks(
    path: str, shard_label: str, blocks: Blocks
) -> List[dict]:
    """Split one shard into unit blocks; returns records outside blocks.

    Worker shards consist (only) of marker-bracketed blocks; the parent
    shard is mostly skeleton records with blocks for serially degraded
    units. A block missing its ``unit_finished`` (killed or timed-out
    worker) is kept as a partial block — better a truncated window than
    a silent hole.
    """
    skeleton: List[dict] = []
    current: Optional[Tuple[Tuple[str, int], Tuple[str, int]]] = None
    for record in read_trace(path, validate=False, tolerate_truncation=True):
        kind = record.get("kind")
        if kind == "unit_started":
            block_key = (record.get("experiment"), record.get("seq"))
            attempt_key = (shard_label, record.get("attempt"))
            blocks.setdefault(block_key, {})[attempt_key] = []
            current = (block_key, attempt_key)
        elif kind == "unit_finished":
            current = None
        elif current is not None:
            blocks[current[0]][current[1]].append(record)
        else:
            skeleton.append(record)
    return skeleton


def _pick_block(
    candidates: Mapping[Tuple[str, int], List[dict]],
    accepted: Optional[Tuple[str, int]],
) -> List[dict]:
    """The authoritative attempt's records (retries leave impostors)."""
    if accepted is not None and accepted in candidates:
        return candidates[accepted]
    # No acceptance info (e.g. merging a killed run's shards offline):
    # deterministically prefer the latest attempt.
    latest = max(candidates, key=lambda key: (key[1] or 0, key[0]))
    return candidates[latest]


def iter_merged_records(
    parent_shard: str,
    worker_shards: Iterable[str],
    accepted: Optional[Mapping[Tuple[str, int], Tuple[str, int]]] = None,
) -> Iterator[dict]:
    """Yield the canonical merged record stream of a sharded run.

    ``accepted`` maps ``(experiment, seq)`` to the executor's accepted
    ``(shard_label, attempt)``. Unit blocks are spliced, in ``seq``
    order, directly after their experiment's ``experiment_started``
    record — the position the serial run emits them from — and leftover
    blocks (experiments whose anchor never made it to disk) are
    appended at the end in unit order. Consumers that only need a
    filtered view (the forensic ledger, ad-hoc analysis of a killed
    run's shards) iterate this directly instead of materialising the
    merged file first.
    """
    blocks: Blocks = {}
    skeleton = parse_unit_blocks(parent_shard, "parent", blocks)
    for shard in worker_shards:
        label = _shard_label(shard)
        stray = parse_unit_blocks(shard, label, blocks)
        # Worker records outside any block would be a bug; keep the
        # stream lossless by treating them as trailing skeleton records.
        skeleton.extend(stray)

    by_experiment: Dict[str, List[Tuple[int, List[dict]]]] = {}
    for (experiment, seq), candidates in blocks.items():
        choice = _pick_block(
            candidates, (accepted or {}).get((experiment, seq))
        )
        by_experiment.setdefault(str(experiment), []).append((seq or 0, choice))
    for entries in by_experiment.values():
        entries.sort(key=lambda item: item[0])

    for record in skeleton:
        yield record
        if record.get("kind") == "experiment_started":
            for _seq, chosen in by_experiment.pop(
                str(record.get("experiment")), []
            ):
                yield from chosen
    # Orphan blocks: their experiment_started never hit the parent
    # shard (killed run). Append deterministically.
    for experiment in sorted(by_experiment):
        for _seq, chosen in by_experiment[experiment]:
            yield from chosen


def merge_run_traces(
    parent_shard: str,
    worker_shards: Iterable[str],
    out_path: str,
    accepted: Optional[Mapping[Tuple[str, int], Tuple[str, int]]] = None,
) -> int:
    """Write the canonical merged trace of a sharded run.

    A thin file-writing wrapper over :func:`iter_merged_records`;
    returns the number of records written.
    """
    written = 0
    parent = os.path.dirname(out_path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(out_path, "w", encoding="utf-8") as handle:
        for record in iter_merged_records(
            parent_shard, worker_shards, accepted
        ):
            handle.write(json.dumps(record, separators=(",", ":")))
            handle.write("\n")
            written += 1
    return written


def extract_sharded_ledger(
    trace_base: str,
    out_path: str,
    accepted: Optional[Mapping[Tuple[str, int], Tuple[str, int]]] = None,
) -> Dict[str, Any]:
    """Recover the forensic ledger straight from a killed run's shards.

    The normal path extracts the ledger from the merged ``--trace``
    file; this offline fallback streams :func:`iter_merged_records`
    over whatever shards survived next to ``trace_base`` (plus the
    parent shard, if present) without writing the merged trace.
    Returns the ledger census (see
    :func:`repro.obs.forensics.extract_ledger`).
    """
    from ..obs.forensics import extract_ledger

    parent_shard = trace_shard_path(trace_base, "parent")
    if not os.path.exists(parent_shard):
        parent_shard = os.devnull
    return extract_ledger(
        out_path=out_path,
        records=iter_merged_records(
            parent_shard, discover_trace_shards(trace_base), accepted
        ),
    )


def _shard_label(path: str) -> str:
    """``t.worker-g1-123.jsonl`` -> ``worker-g1-123``."""
    name = os.path.basename(path)
    stem, _ = os.path.splitext(name)
    marker = stem.rfind("worker-")
    return stem[marker:] if marker >= 0 else stem


def merge_metric_snapshots(
    base_snapshot: Optional[Dict[str, Any]],
    shard_paths: Iterable[str],
) -> Dict[str, Any]:
    """Fold worker metrics snapshots into one JSON-safe snapshot."""
    from ..obs.registry import MetricsRegistry

    registry = MetricsRegistry(enabled=True)
    if base_snapshot:
        registry.merge(base_snapshot)
    for path in shard_paths:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                snapshot = json.load(handle)
        except (OSError, json.JSONDecodeError):
            continue  # a killed worker may leave a partial snapshot
        registry.merge(snapshot)
    return registry.snapshot()
