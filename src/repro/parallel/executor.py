"""Process-pool execution of work units with retries and checkpointing.

The executor turns a deterministic unit list (:mod:`.units`) into
seq-ordered payloads, using a ``concurrent.futures``
``ProcessPoolExecutor`` under a small supervision loop:

* **chunked dispatch** — units ship in contiguous chunks to amortise
  pickling, with at most ``max_in_flight`` chunks outstanding
  (backpressure keeps the queue shallow so retries stay cheap);
* **crash handling** — a worker dying mid-chunk (``BrokenProcessPool``)
  requeues the chunk's units as singleton retries on a fresh pool;
* **per-unit timeout** — a chunk overrunning ``unit_timeout_s`` per
  unit is abandoned, its stuck workers terminated, and its units
  requeued;
* **retry cap + serial degrade** — a unit failing more than
  ``max_retries`` times runs serially in the parent process, where a
  deterministic error finally surfaces with a real traceback;
* **checkpointing** — accepted payloads are journalled as they finish,
  and units whose ``(key, fingerprint)`` already sit in the journal are
  skipped wholesale (``--resume``).

Workers initialise their own observability: a per-worker JSONL trace
shard and metrics registry (flushed at process exit through
``multiprocessing.util.Finalize`` finalisers), plus ``unit_started`` /
``unit_finished`` marker events bracketing every unit so the merge
layer (:mod:`.merge`) can reassemble the exact serial event order.

Determinism: payloads are returned in unit ``seq`` order no matter
which worker finished first, so ``merge_payloads`` sees exactly the
serial sequence.
"""

from __future__ import annotations

import json
import logging
import multiprocessing
import multiprocessing.util
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from .checkpoint import CheckpointJournal
from .units import WorkUnit, execute_unit, unit_fingerprint

__all__ = [
    "ExecutionStats",
    "ParallelExecutor",
    "WorkerObsConfig",
    "metrics_shard_path",
    "trace_shard_path",
]

logger = logging.getLogger(__name__)


def _split_ext(base: str) -> Tuple[str, str]:
    stem, ext = os.path.splitext(base)
    return stem, ext or ".jsonl"


def trace_shard_path(base: str, label: str) -> str:
    """Shard file for one event-stream producer (``label`` = who)."""
    stem, ext = _split_ext(base)
    return f"{stem}.{label}{ext}"


def metrics_shard_path(base: str, label: str) -> str:
    """Per-worker metrics-snapshot file next to the final snapshot."""
    stem, _ = os.path.splitext(base)
    return f"{stem}.{label}.json"


@dataclass(frozen=True)
class WorkerObsConfig:
    """What observability each worker process should produce.

    ``trace_base``/``metrics_base`` are the *final* output paths; each
    worker derives its own shard next to them (``t.worker-g1-123.jsonl``,
    ``m.worker-g1-123.json``) and the merge layer folds the shards back.
    ``forensics`` enables the decision-provenance gate in every worker,
    mirroring the parent's ``--forensics`` state.
    """

    trace_base: Optional[str] = None
    metrics_base: Optional[str] = None
    forensics: bool = False


# ----------------------------------------------------------------------
# Worker-side plumbing (top level: must be picklable / importable)
# ----------------------------------------------------------------------
_WORKER_LABEL: Optional[str] = None
_BUS_PUBLISHER = None  # per-process BusPublisher when the bus is wired


def _worker_counters() -> Optional[Dict[str, float]]:
    """Counter snapshot for heartbeat metric deltas (None when disabled)."""
    from .. import obs

    registry = obs.get_registry()
    if not registry.enabled:
        return None
    return registry.snapshot()["counters"]


def _dump_worker_metrics(registry, path: str) -> None:
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(registry.snapshot(), handle)
        handle.write("\n")


def _worker_init(
    obs_cfg: WorkerObsConfig, generation: int, bus_queue=None
) -> None:
    """Give the worker its own obs world (never the parent's file handles)."""
    global _WORKER_LABEL, _BUS_PUBLISHER
    from .. import kernels, obs
    from ..obs.bus import BusPublisher

    _WORKER_LABEL = f"worker-g{generation}-{os.getpid()}"
    # The queue rides through the pool initargs (a legal inheritance
    # path for both fork and spawn); heartbeats are fire-and-forget.
    _BUS_PUBLISHER = (
        BusPublisher(bus_queue, _WORKER_LABEL) if bus_queue is not None
        else None
    )
    obs.set_collector(None)
    sink = None
    if obs_cfg.trace_base:
        sink = obs.JsonlTraceSink(
            trace_shard_path(obs_cfg.trace_base, _WORKER_LABEL),
            flush_every=256,
            atexit_close=True,
        )
    obs.set_sink(sink)
    if obs_cfg.forensics:
        obs.set_forensics(True)
    registry = obs.MetricsRegistry(enabled=bool(obs_cfg.metrics_base))
    obs.set_registry(registry)
    # Resolve the kernels backend (REPRO_KERNELS rides the inherited
    # environment, fork and spawn alike) and pay any JIT cost now, before
    # the first unit's timed span; the warm-up lands on this worker's
    # registry as kernels.warmup_s.
    kernels.warmup()
    # Pool children exit through multiprocessing's _exit_function +
    # os._exit, which never runs plain atexit handlers — flush the trace
    # tail and metrics snapshot through a multiprocessing Finalizer.
    if sink is not None:
        multiprocessing.util.Finalize(None, sink.close, exitpriority=10)
    if obs_cfg.metrics_base:
        multiprocessing.util.Finalize(
            None,
            _dump_worker_metrics,
            args=(registry, metrics_shard_path(obs_cfg.metrics_base, _WORKER_LABEL)),
            exitpriority=10,
        )


def _run_unit_chunk(
    chunk: List[Tuple[Dict[str, Any], int]], quick: bool, seed: int
) -> List[Dict[str, Any]]:
    """Execute a chunk of units; per-unit outcomes, never a chunk throw.

    Exceptions are captured per unit so one bad unit doesn't discard its
    chunk-mates' finished work; the parent decides retry vs degrade.
    """
    from .. import obs

    out: List[Dict[str, Any]] = []
    for unit_dict, attempt in chunk:
        unit = WorkUnit.from_dict(unit_dict)
        obs.emit(
            "unit_started", experiment=unit.experiment, unit=unit.unit_id,
            seq=unit.seq, attempt=attempt,
        )
        if _BUS_PUBLISHER is not None:
            _BUS_PUBLISHER.heartbeat(
                "start", experiment=unit.experiment, unit=unit.unit_id,
                seq=unit.seq,
            )
        started = time.perf_counter()
        entry: Dict[str, Any] = {
            "key": unit.key,
            "seq": unit.seq,
            "attempt": attempt,
            "worker": os.getpid(),
            "shard": _WORKER_LABEL,
        }
        try:
            entry["payload"] = execute_unit(unit, quick=quick, seed=seed)
            entry["ok"] = True
        except Exception as exc:  # noqa: BLE001 — repr crosses the pipe
            entry["ok"] = False
            entry["error"] = f"{type(exc).__name__}: {exc}"
        entry["wall_s"] = time.perf_counter() - started
        obs.emit(
            "unit_finished", experiment=unit.experiment, unit=unit.unit_id,
            seq=unit.seq, attempt=attempt, wall_s=entry["wall_s"],
        )
        if _BUS_PUBLISHER is not None:
            _BUS_PUBLISHER.heartbeat(
                "finish", experiment=unit.experiment, unit=unit.unit_id,
                seq=unit.seq, wall_s=entry["wall_s"],
                counters=_worker_counters(),
            )
        out.append(entry)
    return out


# ----------------------------------------------------------------------
# Parent-side supervision
# ----------------------------------------------------------------------
@dataclass
class ExecutionStats:
    """What the supervision loop did for one unit list."""

    executed: int = 0
    skipped: int = 0
    retried: int = 0
    timeouts: int = 0
    degraded: int = 0
    pool_rebuilds: int = 0
    workers_lost: int = 0
    unit_walls: Dict[str, float] = field(default_factory=dict)
    #: unit key -> attempt id whose payload was accepted (merge layer
    #: uses this to pick the authoritative trace block after retries).
    accepted_attempts: Dict[str, int] = field(default_factory=dict)
    #: unit key -> shard label ("parent" for inline/degraded units).
    accepted_shards: Dict[str, str] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "executed": self.executed,
            "skipped": self.skipped,
            "retried": self.retried,
            "timeouts": self.timeouts,
            "degraded": self.degraded,
            "pool_rebuilds": self.pool_rebuilds,
            "workers_lost": self.workers_lost,
        }


class ParallelExecutor:
    """Run work units across a process pool, deterministically.

    One executor serves a whole runner invocation: the pool persists
    across experiments so worker start-up is paid once. ``jobs == 1``
    runs inline in the parent (no pool, no marker events) — the code
    path ``--resume`` shares with sharded runs.
    """

    def __init__(
        self,
        jobs: int,
        *,
        quick: bool = True,
        seed: int = 1,
        obs_cfg: Optional[WorkerObsConfig] = None,
        unit_timeout_s: Optional[float] = None,
        max_retries: int = 2,
        chunk_size: Optional[int] = None,
        max_in_flight: Optional[int] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if unit_timeout_s is not None and unit_timeout_s <= 0:
            raise ValueError("unit_timeout_s must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self.jobs = jobs
        self.quick = quick
        self.seed = seed
        self.obs_cfg = obs_cfg or WorkerObsConfig()
        self.unit_timeout_s = unit_timeout_s
        self.max_retries = max_retries
        self.chunk_size = chunk_size
        self.max_in_flight = max_in_flight or jobs * 2
        self._pool: Optional[ProcessPoolExecutor] = None
        self._generation = 0
        self._attempts_issued = 0
        self._workers_seen: Dict[str, int] = {}
        self.bus = None  # TelemetryBus, via attach_bus()
        self._on_tick: Optional[Callable[[], None]] = None
        self._bus_sink = None
        methods = multiprocessing.get_all_start_methods()
        self.start_method = "fork" if "fork" in methods else methods[0]

    # -- telemetry bus ---------------------------------------------------
    def attach_bus(
        self,
        bus,
        sink=None,
        on_tick: Optional[Callable[[], None]] = None,
    ) -> None:
        """Wire a :class:`~repro.obs.bus.TelemetryBus` into the pool.

        Must be called before the first pooled submission (the queue is
        handed to workers through the pool initializer). ``sink``
        additionally receives drained messages (the live aggregator);
        ``on_tick`` fires after each supervision-loop drain so a live
        reporter can refresh between unit completions.
        """
        if self._pool is not None:
            raise RuntimeError("attach_bus() after the pool started")
        self.bus = bus
        self._bus_sink = sink
        self._on_tick = on_tick

    def _service_bus(self) -> None:
        """Drain bus telemetry and let the live layer repaint."""
        if self.bus is not None:
            self.bus.drain(sink=self._bus_sink)
        if self._on_tick is not None:
            self._on_tick()

    # -- pool lifecycle -------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._generation += 1
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=multiprocessing.get_context(self.start_method),
                initializer=_worker_init,
                initargs=(
                    self.obs_cfg,
                    self._generation,
                    self.bus.queue if self.bus is not None else None,
                ),
            )
        return self._pool

    def _discard_pool(self, terminate: bool = False) -> None:
        pool, self._pool = self._pool, None
        if pool is None:
            return
        if terminate:
            # Private but stable across 3.8-3.13; the only way to reclaim
            # a worker stuck inside a timed-out unit.
            for process in getattr(pool, "_processes", {}).values():
                process.terminate()
        pool.shutdown(wait=not terminate, cancel_futures=True)

    def shutdown(self) -> None:
        """Drain the pool; workers flush their shards on the way out."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def topology(self) -> Dict[str, Any]:
        """Worker topology for the run manifest."""
        data: Dict[str, Any] = {
            "jobs": self.jobs,
            "start_method": self.start_method,
            "generations": self._generation,
            "workers": [
                {"shard": label, "units": count}
                for label, count in sorted(self._workers_seen.items())
            ],
        }
        if self.bus is not None:
            self.bus.drain(sink=self._bus_sink)
            # A worker's last finish heartbeat can still be in transit in
            # the mp queue when the result pipe has already delivered its
            # payload. After a completed run every opened unit has
            # finished, so an in-flight row here means a straggler
            # message — give it a bounded grace before exporting, or the
            # table undercounts units_done.
            deadline = time.monotonic() + 0.5
            while any(
                row.state != "lost" for row in self.bus.table.in_flight()
            ) and time.monotonic() < deadline:
                time.sleep(0.01)
                self.bus.drain(sink=self._bus_sink)
            data["telemetry"] = self.bus.to_dict()
        return data

    # -- unit execution -------------------------------------------------
    def run_units(
        self,
        units: Sequence[WorkUnit],
        *,
        journal: Optional[CheckpointJournal] = None,
        done: Optional[Mapping[str, Mapping[str, Any]]] = None,
        on_unit: Optional[Callable[[WorkUnit, bool], None]] = None,
        on_result: Optional[Callable[[WorkUnit, Any], None]] = None,
        quick: Optional[bool] = None,
        seed: Optional[int] = None,
    ) -> Tuple[List[Any], ExecutionStats]:
        """Execute ``units``, returning payloads in ``seq`` order.

        ``done`` maps unit keys to journal entries from a previous run;
        a unit is skipped iff its entry's fingerprint matches the unit's
        current fingerprint. Freshly accepted payloads are appended to
        ``journal`` the moment they arrive. ``on_unit(unit, skipped)``
        fires once per resolved unit (progress reporting);
        ``on_result(unit, payload)`` fires with every resolved payload —
        fresh or journal-skipped — as it lands, so a long-lived caller
        (the fleet scheduler) can stream results out mid-batch.

        ``quick``/``seed`` override the executor-wide defaults for this
        call only: a persistent service reuses one warm pool across jobs
        with differing seeds, where the one-shot runner pins them at
        construction. Fingerprints are computed against the effective
        values, so a journal written under one seed is never silently
        replayed under another.
        """
        run_quick = self.quick if quick is None else quick
        run_seed = self.seed if seed is None else seed
        stats = ExecutionStats()
        fingerprints = {
            unit.key: unit_fingerprint(unit, run_quick, run_seed)
            for unit in units
        }
        results: Dict[int, Any] = {}
        pending: List[WorkUnit] = []
        for unit in units:
            entry = (done or {}).get(unit.key)
            if entry is not None and entry.get("fp") == fingerprints[unit.key]:
                results[unit.seq] = entry["payload"]
                stats.skipped += 1
                if on_unit:
                    on_unit(unit, True)
                if on_result:
                    on_result(unit, entry["payload"])
            else:
                pending.append(unit)

        def accept(
            unit: WorkUnit, payload: Any, wall_s: float,
            worker: Optional[int], shard: str, attempt: int,
        ) -> None:
            results[unit.seq] = payload
            stats.executed += 1
            stats.unit_walls[unit.key] = wall_s
            stats.accepted_attempts[unit.key] = attempt
            stats.accepted_shards[unit.key] = shard
            self._workers_seen[shard] = self._workers_seen.get(shard, 0) + 1
            if journal is not None:
                journal.append(
                    unit.key, fingerprints[unit.key], payload,
                    wall_s=wall_s, worker=worker,
                )
            if on_unit:
                on_unit(unit, False)
            if on_result:
                on_result(unit, payload)

        if pending:
            if self.jobs == 1:
                self._run_inline(
                    pending, accept, emit_markers=False,
                    quick=run_quick, seed=run_seed,
                )
            else:
                self._run_pooled(
                    pending, accept, stats, fingerprints,
                    quick=run_quick, seed=run_seed,
                )
        return [results[unit.seq] for unit in units], stats

    # -- inline (jobs == 1, and the serial-degrade path) ----------------
    def _run_inline(
        self,
        units: Sequence[WorkUnit],
        accept: Callable[..., None],
        emit_markers: bool,
        quick: Optional[bool] = None,
        seed: Optional[int] = None,
    ) -> None:
        from .. import obs

        run_quick = self.quick if quick is None else quick
        run_seed = self.seed if seed is None else seed
        for unit in units:
            self._attempts_issued += 1
            attempt = self._attempts_issued
            if emit_markers:
                obs.emit(
                    "unit_started", experiment=unit.experiment,
                    unit=unit.unit_id, seq=unit.seq, attempt=attempt,
                )
            started = time.perf_counter()
            payload = execute_unit(unit, quick=run_quick, seed=run_seed)
            wall_s = time.perf_counter() - started
            if emit_markers:
                obs.emit(
                    "unit_finished", experiment=unit.experiment,
                    unit=unit.unit_id, seq=unit.seq, attempt=attempt,
                    wall_s=wall_s,
                )
            accept(unit, payload, wall_s, os.getpid(), "parent", attempt)

    # -- pooled ----------------------------------------------------------
    def _chunk(self, units: Sequence[WorkUnit]) -> List[List[WorkUnit]]:
        size = self.chunk_size or max(
            1, -(-len(units) // (self.jobs * 4))  # ceil division
        )
        return [list(units[i:i + size]) for i in range(0, len(units), size)]

    def _record_worker_lost(
        self,
        stats: ExecutionStats,
        lost_units: Sequence[WorkUnit],
        fingerprints: Mapping[str, str],
    ) -> None:
        """Name the unit(s) a dead worker was last known to hold.

        Prefers the bus's live view (rows whose last heartbeat opened a
        unit that never finished — this catches a worker that died
        *between* units, whose chunk the pool would only re-report at
        rebuild time); falls back to the failed chunk's own units.
        """
        from .. import obs

        stats.workers_lost += 1
        suspects: List[Tuple[str, Optional[str]]] = []
        if self.bus is not None:
            self.bus.drain(sink=self._bus_sink)
            for row in self.bus.table.in_flight():
                if row.unit is not None:
                    suspects.append((row.unit, row.experiment))
                self.bus.table.mark_lost(label=row.label)
        if not suspects:
            suspects = [(unit.unit_id, unit.experiment) for unit in lost_units[:1]]
        by_unit_id = {unit.unit_id: unit for unit in lost_units}
        for unit_id, experiment in suspects:
            unit = by_unit_id.get(unit_id)
            fingerprint = fingerprints.get(unit.key) if unit is not None else None
            obs.emit(
                "worker_lost",
                experiment=experiment,
                unit=unit_id,
                fingerprint=fingerprint,
            )
            if self.bus is not None:
                self.bus.record_event(
                    "worker_lost", experiment=experiment, unit=unit_id,
                    fingerprint=fingerprint,
                )
            logger.warning(
                "worker lost while holding unit %s/%s (fingerprint %s)",
                experiment, unit_id, fingerprint,
            )

    def _run_pooled(
        self,
        units: Sequence[WorkUnit],
        accept: Callable[..., None],
        stats: ExecutionStats,
        fingerprints: Mapping[str, str],
        quick: Optional[bool] = None,
        seed: Optional[int] = None,
    ) -> None:
        run_quick = self.quick if quick is None else quick
        run_seed = self.seed if seed is None else seed
        queue = deque(self._chunk(units))
        attempts: Dict[str, int] = {}
        in_flight: Dict[Any, Tuple[List[Tuple[WorkUnit, int]], float]] = {}
        units_by_key = {unit.key: unit for unit in units}

        def submit(chunk: List[WorkUnit]) -> None:
            pool = self._ensure_pool()
            tagged = []
            for unit in chunk:
                self._attempts_issued += 1
                tagged.append((unit, self._attempts_issued))
            payload = [(unit.as_dict(), attempt) for unit, attempt in tagged]
            future = pool.submit(
                _run_unit_chunk, payload, run_quick, run_seed
            )
            in_flight[future] = (tagged, time.monotonic())

        def handle_failure(unit: WorkUnit, reason: str) -> None:
            count = attempts.get(unit.key, 0) + 1
            attempts[unit.key] = count
            if count > self.max_retries:
                logger.warning(
                    "unit %s failed %d times (%s); degrading to serial",
                    unit.key, count, reason,
                )
                stats.degraded += 1
                if self.bus is not None:
                    self.bus.record_event(
                        "degrade", unit=unit.key, reason=reason,
                        attempts=count,
                    )
                self._run_inline(
                    [unit], accept, emit_markers=True,
                    quick=run_quick, seed=run_seed,
                )
            else:
                logger.warning(
                    "unit %s failed (%s); retrying (%d/%d)",
                    unit.key, reason, count, self.max_retries,
                )
                stats.retried += 1
                if self.bus is not None:
                    self.bus.record_event(
                        "retry", unit=unit.key, reason=reason, attempts=count,
                    )
                queue.append([unit])  # retries go out as singletons

        while queue or in_flight:
            while queue and len(in_flight) < self.max_in_flight:
                submit(queue.popleft())
            timeout = None
            if self.unit_timeout_s is not None and in_flight:
                now = time.monotonic()
                deadlines = [
                    submitted + self.unit_timeout_s * len(tagged) - now
                    for tagged, submitted in in_flight.values()
                ]
                timeout = max(0.0, min(deadlines))
            if self.bus is not None:
                # A blocking wait would starve the live view between
                # unit completions; wake often enough to repaint.
                timeout = 0.5 if timeout is None else min(timeout, 0.5)
            finished, _ = wait(
                set(in_flight), timeout=timeout, return_when=FIRST_COMPLETED
            )
            self._service_bus()
            broken = False
            for future in finished:
                tagged, _ = in_flight.pop(future)
                try:
                    entries = future.result()
                except BrokenProcessPool:
                    broken = True
                    self._record_worker_lost(
                        stats, [unit for unit, _ in tagged], fingerprints
                    )
                    for unit, _attempt in tagged:
                        handle_failure(unit, "worker process died")
                    continue
                except Exception as exc:  # pool plumbing, not unit code
                    broken = True
                    for unit, _attempt in tagged:
                        handle_failure(unit, f"dispatch failed: {exc!r}")
                    continue
                for entry in entries:
                    unit = units_by_key[entry["key"]]
                    if entry.get("ok"):
                        accept(
                            unit, entry["payload"], entry["wall_s"],
                            entry.get("worker"),
                            entry.get("shard") or "worker-unknown",
                            entry["attempt"],
                        )
                    else:
                        handle_failure(
                            unit, entry.get("error", "unit raised")
                        )
            if broken:
                stats.pool_rebuilds += 1
                self._discard_pool()
            if self.unit_timeout_s is not None:
                now = time.monotonic()
                overdue = [
                    future
                    for future, (tagged, submitted) in in_flight.items()
                    if now - submitted > self.unit_timeout_s * len(tagged)
                    and not future.done()
                ]
                if overdue:
                    stats.timeouts += len(overdue)
                    stats.pool_rebuilds += 1
                    abandoned = [in_flight.pop(future) for future in overdue]
                    self._discard_pool(terminate=True)
                    for tagged, _ in abandoned:
                        if self.bus is not None:
                            self.bus.record_event(
                                "timeout",
                                units=[unit.key for unit, _ in tagged],
                            )
                        for unit, _attempt in tagged:
                            handle_failure(unit, "unit timeout")
