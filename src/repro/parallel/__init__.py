"""`repro.parallel` — deterministic sharded execution of experiments.

PR 1 made the fault-population RNG counter-based, so any batch of rows
generates bit-identically no matter how the batch is composed; this
subsystem cashes that property in. Experiments decompose into
deterministic :class:`WorkUnit` shards (:mod:`.units`), a supervised
process pool executes them with chunked dispatch, backpressure,
per-unit timeouts, crash retries and serial degradation
(:mod:`.executor`), completed units are journalled for ``--resume``
(:mod:`.checkpoint`), and each worker's trace shard and metrics
snapshot are folded back into one serial-equivalent record of the run
(:mod:`.merge`).

The headline guarantee: ``python -m repro.experiments all --jobs N``
produces byte-identical result tables to the serial run for every
``N``, and the merged trace's windowed rollups equal the serial
rollups bit for bit.
"""

from .checkpoint import CheckpointJournal, JOURNAL_VERSION
from .executor import (
    ExecutionStats,
    ParallelExecutor,
    WorkerObsConfig,
    metrics_shard_path,
    trace_shard_path,
)
from .merge import (
    discover_metric_shards,
    discover_trace_shards,
    merge_metric_snapshots,
    merge_run_traces,
    parse_unit_blocks,
)
from .units import (
    WorkUnit,
    decompose,
    execute_unit,
    experiment_module,
    merge_payloads,
    register_experiment,
    unit_fingerprint,
)

__all__ = [
    "CheckpointJournal",
    "JOURNAL_VERSION",
    "ExecutionStats",
    "ParallelExecutor",
    "WorkerObsConfig",
    "metrics_shard_path",
    "trace_shard_path",
    "discover_metric_shards",
    "discover_trace_shards",
    "merge_metric_snapshots",
    "merge_run_traces",
    "parse_unit_blocks",
    "WorkUnit",
    "decompose",
    "execute_unit",
    "experiment_module",
    "merge_payloads",
    "register_experiment",
    "unit_fingerprint",
]
