"""Deterministic work units: the contract between experiments and the pool.

An experiment parallelises by decomposing into :class:`WorkUnit`\\ s —
self-describing, independently executable shards of its iteration space
(row ranges for fault-map scans, content profiles for fig04, workload
traces for the interval studies, workload mixes for the simulator
sweeps). The decomposition is a pure function of ``(experiment, quick,
seed)``: the unit list never depends on the number of jobs, so a
checkpoint journal written at ``--jobs 8`` resumes cleanly at
``--jobs 2``, and merging unit payloads in ``seq`` order reproduces the
serial run bit for bit.

Experiment modules opt in by exposing three hooks::

    units(quick=True, seed=1)            -> List[WorkUnit]
    run_unit(unit, quick=True, seed=1)   -> JSON-safe payload
    merge_units(payloads, quick=True, seed=1) -> ExperimentResult

and implementing ``run()`` as ``merge_units([run_unit(u) for u in
units()])`` — the serial path *is* the unit path, which is what makes
"bit-identical to serial" a structural property instead of a test hope.
Payloads must be JSON-safe (plain ints/floats/strings/lists/dicts)
because they round-trip through the checkpoint journal; Python's JSON
encoder preserves float64 exactly, so journalled results stay
bit-identical too.

Modules without hooks still parallelise as a single opaque unit whose
payload is the rendered :class:`ExperimentResult` dict — no speedup,
but checkpoint/resume and the runner's bookkeeping work uniformly.
"""

from __future__ import annotations

import hashlib
import importlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

__all__ = [
    "WorkUnit",
    "decompose",
    "execute_unit",
    "experiment_module",
    "merge_payloads",
    "register_experiment",
    "unit_context",
    "unit_fingerprint",
]

#: Hooks a module must expose to provide a real decomposition.
_HOOKS = ("units", "run_unit", "merge_units")

#: Experiment name -> import path, for experiments living outside
#: ``repro.experiments`` (benchmarks, tests). Units are stamped with the
#: resolved path so worker processes need no registry of their own.
_MODULE_OVERRIDES: Dict[str, str] = {}


def register_experiment(name: str, module_path: str) -> None:
    """Map an experiment name to an import path for decomposition."""
    _MODULE_OVERRIDES[name] = module_path


@dataclass(frozen=True)
class WorkUnit:
    """One independently executable shard of an experiment.

    ``params`` must be JSON-safe: it crosses process boundaries, lands in
    the checkpoint journal, and feeds the fingerprint. ``seq`` is the
    unit's position in decomposition order — merge order, never
    completion order. ``module`` pins the import path of the owning
    experiment module so any worker (fork or spawn) can resolve it.
    """

    experiment: str
    unit_id: str
    params: Dict[str, Any] = field(default_factory=dict)
    seq: int = 0
    module: Optional[str] = None

    @property
    def key(self) -> str:
        """Stable journal/bookkeeping key."""
        return f"{self.experiment}:{self.unit_id}"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "experiment": self.experiment,
            "unit_id": self.unit_id,
            "params": self.params,
            "seq": self.seq,
            "module": self.module,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "WorkUnit":
        return cls(
            experiment=data["experiment"],
            unit_id=data["unit_id"],
            params=data.get("params") or {},
            seq=int(data.get("seq", 0)),
            module=data.get("module"),
        )


def unit_context(unit: WorkUnit) -> Dict[str, Any]:
    """Labelling fields for trace records emitted while running a unit.

    Both the serial path and pool workers run the same unit objects, so
    stamping emissions with these fields (rather than anything
    process-derived) keeps serial and sharded streams byte-identical.
    """
    return {
        "experiment": unit.experiment,
        "unit": unit.unit_id,
        "seq": unit.seq,
    }


def _module_path(name: str) -> str:
    return _MODULE_OVERRIDES.get(name, f"repro.experiments.{name}")


def experiment_module(name: str, module: Optional[str] = None):
    """Import the module owning an experiment (override-aware)."""
    return importlib.import_module(module or _module_path(name))


def _has_hooks(module) -> bool:
    return all(hasattr(module, hook) for hook in _HOOKS)


def unit_fingerprint(unit: WorkUnit, quick: bool, seed: int) -> str:
    """Digest pinning a unit's identity *and* inputs.

    Two runs agree on a fingerprint iff they would compute the same
    payload, so checkpoint entries from a different seed, scale, or
    decomposition are never silently reused.
    """
    blob = json.dumps(
        {
            "experiment": unit.experiment,
            "unit_id": unit.unit_id,
            "params": unit.params,
            "quick": bool(quick),
            "seed": int(seed),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha1(blob.encode("utf-8")).hexdigest()[:20]


def decompose(name: str, quick: bool = True, seed: int = 1) -> List[WorkUnit]:
    """The deterministic unit list of an experiment.

    Falls back to a single opaque unit for modules without hooks. Raises
    ``ValueError`` on malformed decompositions (duplicate ids, ``seq``
    not the contiguous 0..n-1 range) — silent misnumbering would scramble
    the merge order.
    """
    path = _module_path(name)
    module = experiment_module(name, path)
    if not _has_hooks(module):
        return [WorkUnit(name, "all", {}, seq=0, module=path)]
    units = list(module.units(quick=quick, seed=seed))
    seen = set()
    for unit in units:
        if unit.key in seen:
            raise ValueError(f"{name}: duplicate unit id {unit.unit_id!r}")
        seen.add(unit.key)
    if sorted(u.seq for u in units) != list(range(len(units))):
        raise ValueError(f"{name}: unit seq values must be 0..{len(units) - 1}")
    stamped = [
        unit if unit.module else WorkUnit(
            unit.experiment, unit.unit_id, unit.params, unit.seq, path
        )
        for unit in units
    ]
    return sorted(stamped, key=lambda u: u.seq)


def execute_unit(unit: WorkUnit, quick: bool = True, seed: int = 1) -> Any:
    """Run one unit and return its JSON-safe payload."""
    module = experiment_module(unit.experiment, unit.module)
    if not _has_hooks(module):
        return module.run(quick=quick, seed=seed).to_dict()
    return module.run_unit(unit, quick=quick, seed=seed)


def merge_payloads(
    name: str,
    payloads: Sequence[Any],
    quick: bool = True,
    seed: int = 1,
    module: Optional[str] = None,
):
    """Fold seq-ordered unit payloads back into an ``ExperimentResult``."""
    mod = experiment_module(name, module)
    if not _has_hooks(mod):
        from ..experiments.common import ExperimentResult

        if len(payloads) != 1:
            raise ValueError(
                f"{name}: opaque experiment expects exactly one payload"
            )
        return ExperimentResult.from_dict(payloads[0])
    return mod.merge_units(list(payloads), quick=quick, seed=seed)
