"""Write-interval analysis: choosing the PRIL quantum for a workload.

The scenario behind the paper's §4: given a captured write trace, verify
the Pareto/DHR structure that justifies prediction, then sweep the
candidate quantum (CIL) against prediction accuracy and time coverage to
pick an operating point — the analysis that led the paper to 512-2048 ms.

Run with:  python examples/write_interval_analysis.py
"""

import numpy as np

from repro.analysis import (
    evaluate_predictor,
    fit_pareto,
    is_decreasing_hazard,
    ril_exceeds_probability,
    time_in_long_intervals,
)
from repro.traces import WORKLOADS, generate_trace

WORKLOAD = "ACBrotherHood"
CANDIDATE_QUANTA_MS = (128.0, 256.0, 512.0, 1024.0, 2048.0, 8192.0)


def main() -> None:
    trace = generate_trace(WORKLOADS[WORKLOAD], seed=5,
                           duration_ms=60_000.0)
    intervals = trace.all_intervals()
    print(f"{WORKLOAD}: {trace.n_writes} writes, "
          f"{len(trace.written_pages)} written pages, "
          f"{trace.duration_ms / 1000:.0f} s window")

    # ------------------------------------------------------------------
    # Structure checks: Pareto tail + decreasing hazard rate.
    # ------------------------------------------------------------------
    tail = intervals[intervals >= 2.0]
    fit = fit_pareto(tail, x_min=2.0, x_max=trace.duration_ms / 40)
    print(f"Pareto tail fit: alpha = {fit.alpha:.2f}, "
          f"R^2 = {fit.r_squared:.3f} "
          f"({'good' if fit.r_squared > 0.93 else 'poor'} fit)")
    print(f"decreasing hazard rate: "
          f"{is_decreasing_hazard(intervals[intervals >= 1.0])}")
    print(f"time in intervals >= 1024 ms: "
          f"{100 * time_in_long_intervals(trace):.1f}%\n")

    # ------------------------------------------------------------------
    # Quantum sweep: accuracy vs coverage, the paper's Figures 11-12.
    # ------------------------------------------------------------------
    print(f"{'quantum':>9} {'P(RIL>1s)':>10} {'accuracy':>9} "
          f"{'coverage':>9}")
    for quantum in CANDIDATE_QUANTA_MS:
        p_long = ril_exceeds_probability(trace, quantum)
        quality = evaluate_predictor(trace, quantum)
        print(f"{quantum:>7.0f}ms {p_long:>10.2f} "
              f"{quality.accuracy:>9.2f} {quality.time_coverage:>9.2f}")

    # Pick the smallest quantum whose prediction accuracy reaches 70%
    # while coverage stays high — the paper's rationale for operating in
    # the 512-2048 ms range.
    for quantum in CANDIDATE_QUANTA_MS:
        if evaluate_predictor(trace, quantum).accuracy >= 0.7:
            print(f"\nchosen PRIL quantum: {quantum:.0f} ms")
            break


if __name__ == "__main__":
    main()
