"""Content screening: which program images are risky in weak DRAM?

The scenario behind the paper's Figure 4: a fleet operator wants to know
how failure exposure varies with what programs actually keep in memory.
We load each SPEC CPU2006 content profile into the simulated module,
replicate it across all rows (as the paper does), run a SoftMC-style
retention pass, and rank benchmarks by failing-row exposure — all without
any knowledge of the chip's internal scrambling or remapping.

Run with:  python examples/content_screening.py
"""

from repro.dram import DramDevice, DramGeometry
from repro.dram.faults import FaultMap, FaultModelConfig
from repro.testinfra import SoftMCTester
from repro.traces import BENCHMARKS

RETENTION_MS = 328.0  # the paper's test condition (4 s at 45C scaled)
BENCHMARKS_TO_SCREEN = (
    "perlbench", "gobmk", "hmmer", "mcf", "gcc", "libquantum", "lbm",
)


def main() -> None:
    geometry = DramGeometry(
        channels=1, ranks=1, banks=4, rows_per_bank=64,
        row_size_bytes=2048, block_size_bytes=64,
    )
    results = []
    for name in BENCHMARKS_TO_SCREEN:
        # A fresh device per benchmark so retention state never leaks
        # between screens; the same seed keeps the *chip* identical.
        device = DramDevice(geometry, seed=11)
        device.cells.fault_map = FaultMap(
            total_rows=geometry.total_rows,
            bits_per_row=device.cells.vendor_mapping.physical_columns,
            config=FaultModelConfig(vulnerable_cell_rate=1.5e-4),
            seed=11,
        )
        tester = SoftMCTester(device)
        image = BENCHMARKS[name].content.generate_image(
            n_rows=16, row_bytes=geometry.row_size_bytes, seed=3,
        )
        report = tester.test_content(image, RETENTION_MS, replicate=True)
        results.append((name, report.failing_row_fraction,
                        len(report.failures)))

    worst_case = FaultMap(
        total_rows=geometry.total_rows,
        bits_per_row=DramDevice(geometry, seed=11)
        .cells.vendor_mapping.physical_columns,
        config=FaultModelConfig(vulnerable_cell_rate=1.5e-4),
        seed=11,
    ).all_fail_rows(RETENTION_MS)
    worst_fraction = len(worst_case) / geometry.total_rows

    print(f"{'benchmark':<12} {'failing rows':>12} {'bit flips':>10} "
          f"{'vs worst case':>14}")
    for name, fraction, flips in sorted(results, key=lambda r: r[1]):
        ratio = worst_fraction / fraction if fraction else float("inf")
        print(f"{name:<12} {100 * fraction:>11.2f}% {flips:>10d} "
              f"{ratio:>13.1f}x")
    print(f"{'ALL-FAIL':<12} {100 * worst_fraction:>11.2f}%")
    print("\nsparse (zero-heavy) images are an order of magnitude safer "
          "than dense float/pointer images — the content dependence "
          "MEMCON exploits.")


if __name__ == "__main__":
    main()
