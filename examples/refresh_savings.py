"""Refresh savings: from write traces to end-to-end system speedup.

The scenario behind the paper's Figures 14-16: a memory-controller
architect wants to know what a content-based two-rate refresh scheme buys
on a dense future DRAM part. We (i) measure MEMCON's refresh reduction on
realistic write traces, then (ii) feed that reduction into the cycle-level
system simulator and compare against the aggressive baseline, a RAIDR-style
profile-based scheme, and the ideal 64 ms system.

Run with:  python examples/refresh_savings.py
"""

import numpy as np

from repro.core import MemconConfig, simulate_refresh_reduction
from repro.sim import simulate_workload, speedup
from repro.traces import WORKLOADS, generate_trace

DENSITY_GBIT = 32       # a dense future chip: tRFC = 890 ns
WINDOW_NS = 100_000.0
MIX = ["mcf", "lbm", "omnetpp", "xalancbmk"]


def main() -> None:
    # ------------------------------------------------------------------
    # Step 1: what refresh reduction does MEMCON actually achieve?
    # ------------------------------------------------------------------
    reductions = []
    for name in ("Netflix", "SystemMgt", "VideoEncode"):
        trace = generate_trace(WORKLOADS[name], seed=3,
                               duration_ms=30_000.0)
        report = simulate_refresh_reduction(
            trace, MemconConfig(quantum_ms=1024.0),
            failing_page_fraction=0.02,
        )
        reductions.append(report.refresh_reduction)
        print(f"{name:<12} refresh reduction "
              f"{100 * report.refresh_reduction:.1f}% "
              f"({report.tests_total} tests)")
    memcon_reduction = float(np.mean(reductions))
    print(f"mean MEMCON reduction: {100 * memcon_reduction:.1f}% "
          f"(upper bound 75%)\n")

    # ------------------------------------------------------------------
    # Step 2: what does that buy a 4-core system on a 32 Gb chip?
    # ------------------------------------------------------------------
    baseline = simulate_workload(MIX, density_gbit=DENSITY_GBIT,
                                 window_ns=WINDOW_NS, seed=9)
    print(f"baseline (16 ms refresh): rank busy refreshing "
          f"{100 * baseline.refresh_busy_fraction:.1f}% of the time")

    mechanisms = (
        ("32 ms baseline", 0.50, 0),
        ("RAIDR (16% rows at HI-REF)", 0.63, 0),
        (f"MEMCON ({100 * memcon_reduction:.0f}% + testing)",
         memcon_reduction, 256),
        ("ideal 64 ms", 0.75, 0),
    )
    for label, reduction, tests in mechanisms:
        result = simulate_workload(
            MIX, density_gbit=DENSITY_GBIT, refresh_reduction=reduction,
            concurrent_tests=tests, window_ns=WINDOW_NS, seed=9,
        )
        print(f"{label:<32} speedup {speedup(result, baseline):.3f}x "
              f"(refresh busy {100 * result.refresh_busy_fraction:.1f}%)")


if __name__ == "__main__":
    main()
