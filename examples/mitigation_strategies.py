"""Mitigation strategies: HI-REF vs ECC vs remapping for detected failures.

The paper's mechanism detects content-conditional failures; mitigating
them admits three options (§1): refresh the row fast (HI-REF), correct
with ECC, or remap the row to a reliable spare. This example tests a
module's current content, then compares the refresh cost of each policy
and of the cheapest-first cascade that combines them.

Run with:  python examples/mitigation_strategies.py
"""

import numpy as np

from repro.core import EccConfig, RemapTable, plan_mitigations
from repro.dram import DramDevice, DramGeometry
from repro.dram.faults import FaultMap, FaultModelConfig

RETENTION_MS = 328.0


def main() -> None:
    geometry = DramGeometry(
        channels=1, ranks=1, banks=4, rows_per_bank=256,
        row_size_bytes=2048, block_size_bytes=64,
    )
    device = DramDevice(geometry, seed=17)
    device.cells.fault_map = FaultMap(
        total_rows=geometry.total_rows,
        bits_per_row=device.cells.vendor_mapping.physical_columns,
        config=FaultModelConfig(vulnerable_cell_rate=6e-4),
        seed=17,
    )

    # Fill with program-like content and collect per-row failures.
    rng = np.random.default_rng(3)
    failing_by_row = {}
    for row in range(geometry.total_rows):
        device.write_row(
            row,
            rng.integers(0, 256, geometry.row_size_bytes,
                         dtype=np.uint8).tobytes(),
            now_ms=0.0,
        )
        failing_by_row[row] = device.cells.failing_cells(row, RETENTION_MS)
    n_failing = sum(1 for cells in failing_by_row.values() if cells)
    print(f"{geometry.total_rows} rows tested at {RETENTION_MS:.0f} ms: "
          f"{n_failing} rows fail with this content\n")

    # Spare region: 1% of capacity, like a manufacturer's redundancy.
    spare_count = geometry.total_rows // 100
    policies = (
        ("HI-REF only", None, None),
        ("ECC (SECDED) only", None, EccConfig()),
        ("remap only", RemapTable(range(spare_count)), None),
        ("cascade: ECC then remap",
         RemapTable(range(spare_count)), EccConfig()),
    )
    print(f"{'policy':<26} {'LO':>5} {'ECC':>5} {'remap':>6} {'HI':>5} "
          f"{'refresh ops/window':>19}")
    for label, table, ecc in policies:
        plan = plan_mitigations(failing_by_row, remap_table=table, ecc=ecc)
        print(f"{label:<26} {plan.lo_ref_rows:>5} {plan.ecc_rows:>5} "
              f"{plan.remapped_rows:>6} {plan.hi_ref_rows:>5} "
              f"{plan.refresh_ops_per_window():>19.0f}")
    print("\nthe cascade keeps almost every row at the slow refresh rate: "
          "ECC absorbs single-bit rows, spares absorb the rest, and only "
          "overflow rows pay the 4x HI-REF cost.")


if __name__ == "__main__":
    main()
