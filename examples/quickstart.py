"""Quickstart: detect and mitigate data-dependent DRAM failures.

Walks the MEMCON pipeline end to end on a small simulated module:

1. build a DRAM device whose cells exhibit data-dependent failures,
2. fill it with program-like content and find what fails *with that
   content* (versus the worst case over all contents),
3. compute the cost-benefit crossover (MinWriteInterval),
4. run MEMCON with the PRIL predictor over a synthetic write trace and
   report the refresh reduction.

Run with:  python examples/quickstart.py
"""

from repro.core import (
    CostModel,
    MemconConfig,
    TestMode,
    simulate_refresh_reduction,
)
from repro.dram import DramDevice, DramGeometry
from repro.dram.faults import FaultMap, FaultModelConfig
from repro.testinfra import SoftMCTester, random_pattern
from repro.traces import WORKLOADS, generate_trace


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A small module with a (densified, for demo speed) data-dependent
    #    fault population. Real modules are sparser; the physics is the
    #    same: cells fail depending on their neighbours' content.
    # ------------------------------------------------------------------
    geometry = DramGeometry(
        channels=1, ranks=1, banks=2, rows_per_bank=64,
        row_size_bytes=1024, block_size_bytes=64,
    )
    device = DramDevice(geometry, seed=42)
    device.cells.fault_map = FaultMap(
        total_rows=geometry.total_rows,
        bits_per_row=device.cells.vendor_mapping.physical_columns,
        config=FaultModelConfig(vulnerable_cell_rate=3e-4),
        seed=42,
    )
    print(f"module: {geometry.total_rows} rows x "
          f"{geometry.row_size_bytes} B")

    # ------------------------------------------------------------------
    # 2. Content-conditional failures: test the same module with two
    #    different contents at a 328 ms retention interval.
    # ------------------------------------------------------------------
    tester = SoftMCTester(device)
    report_a = tester.test_pattern(random_pattern(1), 328.0)
    report_b = tester.test_pattern(random_pattern(2), 328.0)
    worst_case = device.cells.fault_map.all_fail_rows(328.0)
    print(f"content A fails {len(report_a.failing_rows)} rows, "
          f"content B fails {len(report_b.failing_rows)} rows, "
          f"worst case over any content: {len(worst_case)} rows")

    # ------------------------------------------------------------------
    # 3. When does testing pay off? The accumulated-cost crossover.
    # ------------------------------------------------------------------
    model = CostModel()
    for mode in TestMode:
        crossover = model.min_write_interval_ms(mode)
        print(f"MinWriteInterval({mode.value}) = {crossover:.0f} ms")

    # ------------------------------------------------------------------
    # 4. MEMCON + PRIL over a realistic write trace.
    # ------------------------------------------------------------------
    trace = generate_trace(WORKLOADS["Netflix"], seed=7,
                           duration_ms=30_000.0)
    report = simulate_refresh_reduction(
        trace, MemconConfig(quantum_ms=1024.0), failing_page_fraction=0.02,
    )
    print(f"workload {trace.name}: {trace.n_writes} writes over "
          f"{trace.duration_ms / 1000:.0f} s, "
          f"{len(trace.written_pages)}/{trace.total_pages} pages written")
    print(f"MEMCON refresh reduction: {100 * report.refresh_reduction:.1f}% "
          f"(upper bound {100 * report.upper_bound_reduction:.0f}%), "
          f"{report.tests_total} tests, "
          f"{report.tests_mispredicted} mispredicted")


if __name__ == "__main__":
    main()
