"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.dram import DramDevice, DramGeometry, TINY_MODULE
from repro.dram.faults import FaultMap, FaultModelConfig
from repro.traces.events import WriteTrace


@pytest.fixture
def obs_env():
    """A fresh enabled registry + in-memory trace sink, restored afterwards.

    Yields ``(registry, sink)``. Tests that exercise instrumented code
    paths use this so counters and events are recorded without leaking
    observability state into other tests.
    """
    registry = obs.MetricsRegistry(enabled=True)
    sink = obs.ListTraceSink()
    previous_registry = obs.set_registry(registry)
    previous_sink = obs.set_sink(sink)
    try:
        yield registry, sink
    finally:
        obs.set_registry(previous_registry)
        obs.set_sink(previous_sink)


@pytest.fixture
def tiny_geometry() -> DramGeometry:
    return TINY_MODULE


@pytest.fixture
def dense_fault_device() -> DramDevice:
    """A small device with a dense fault population (fast, many failures)."""
    geometry = DramGeometry(
        channels=1, ranks=1, banks=2, rows_per_bank=32,
        row_size_bytes=512, block_size_bytes=64,
    )
    device = DramDevice(geometry, seed=7)
    device.cells.fault_map = FaultMap(
        total_rows=geometry.total_rows,
        bits_per_row=device.cells.vendor_mapping.physical_columns,
        config=FaultModelConfig(vulnerable_cell_rate=5e-3),
        seed=7,
    )
    return device


def make_trace(writes: dict, duration_ms: float = 10_000.0,
               total_pages: int = 16, name: str = "test") -> WriteTrace:
    """Small literal write trace for unit tests."""
    return WriteTrace(
        duration_ms=duration_ms,
        writes={p: np.asarray(t, dtype=np.float64) for p, t in writes.items()},
        total_pages=total_pages,
        name=name,
    )


@pytest.fixture
def trace_factory():
    return make_trace
