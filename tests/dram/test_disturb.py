"""Tests for the read-disturbance (RowHammer/RowPress) model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dram.disturb import DisturbMap, DisturbModelConfig
from repro.dram.faults import FaultMap, FaultModelConfig

# Dense enough that small test modules hold real populations.
DENSE = DisturbModelConfig(hammer_vulnerable_rate=5e-3, hc_first=8.0)


def _map(seed: int, rows: int = 64, bits: int = 256, config=DENSE) -> DisturbMap:
    return DisturbMap(
        total_rows=rows, bits_per_row=bits, config=config, seed=seed,
    )


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"hammer_vulnerable_rate": -0.1},
        {"hammer_vulnerable_rate": 1.5},
        {"hc_first": 0.0},
        {"rowpress_tau_ns": 0.0},
        {"blast_radius": 0},
        {"far_neighbor_fraction": 1.1},
        {"nominal_interval_ms": 0.0},
        {"content_coupling": -1.0},
    ])
    def test_invalid_config_raises(self, kwargs):
        with pytest.raises(ValueError):
            DisturbModelConfig(**kwargs)

    def test_row_bounds_checked(self):
        with pytest.raises(ValueError):
            _map(seed=1).victim_pressure([64], [1.0])


class TestPopulation:
    def test_generation_is_batch_composition_independent(self):
        singly, batch = _map(seed=23), _map(seed=23)
        for row in range(64):
            singly.row_population(row)
        batch._ensure_rows(np.arange(64))
        for row in range(64):
            a, b = singly.row_population(row), batch.row_population(row)
            np.testing.assert_array_equal(a.columns, b.columns)
            np.testing.assert_array_equal(a.thresholds, b.thresholds)
            assert a.true_cell == b.true_cell

    def test_population_deterministic_across_instances(self):
        a, b = _map(seed=7), _map(seed=7)
        for row in range(0, 64, 5):
            np.testing.assert_array_equal(
                a.row_population(row).columns, b.row_population(row).columns
            )

    def test_different_seeds_differ(self):
        a, b = _map(seed=1), _map(seed=2)
        assert any(
            not np.array_equal(
                a.row_population(r).columns, b.row_population(r).columns
            )
            for r in range(64)
        )

    def test_polarity_agrees_with_same_seed_fault_map(self):
        """Same-seed maps share the polarity sub-stream: a row stores
        charge the same way for retention and for hammering."""
        disturb = _map(seed=42, rows=256)
        faults = FaultMap(
            total_rows=256, bits_per_row=256,
            config=FaultModelConfig(vulnerable_cell_rate=5e-3), seed=42,
        )
        for row in range(256):
            assert (
                disturb.row_population(row).true_cell
                == faults.row_is_true_cell(row)
            )

    def test_hammer_population_independent_of_retention_rate(self):
        """The hammer tags are disjoint from the content model's streams:
        the hammer population is a function of (seed, row) only."""
        sparse = _map(seed=9, config=DisturbModelConfig(
            hammer_vulnerable_rate=5e-3, threshold_sigma=0.2))
        wide = _map(seed=9, config=DisturbModelConfig(
            hammer_vulnerable_rate=5e-3, threshold_sigma=0.9))
        for row in range(64):
            np.testing.assert_array_equal(
                sparse.row_population(row).columns,
                wide.row_population(row).columns,
            )


class TestPressure:
    def test_weighted_activations_adds_rowpress_term(self):
        disturb = _map(seed=1, config=DisturbModelConfig(
            hammer_vulnerable_rate=5e-3, rowpress_tau_ns=500.0))
        rows, weights = disturb.weighted_activations(
            {3: (4, 1000.0), 10: (2, 0.0)}
        )
        assert rows.tolist() == [3, 10]
        # 4 ACTs + 1000 ns / 500 ns = 6; 2 ACTs + 0 on-time = 2.
        assert weights.tolist() == [6.0, 2.0]

    def test_empty_snapshot_gives_empty_arrays(self):
        rows, weights = _map(seed=1).weighted_activations({})
        assert len(rows) == 0 and len(weights) == 0

    def test_victim_pressure_hits_both_neighbors(self):
        victims, pressure = _map(seed=1).victim_pressure([10], [4.0])
        assert victims.tolist() == [9, 11]
        assert pressure.tolist() == [4.0, 4.0]

    def test_victim_pressure_sums_shared_victims(self):
        # Rows 10 and 12 both press on row 11.
        victims, pressure = _map(seed=1).victim_pressure([10, 12], [3.0, 5.0])
        assert victims.tolist() == [9, 11, 13]
        assert pressure.tolist() == [3.0, 8.0, 5.0]

    def test_far_neighbors_scaled_by_fraction(self):
        disturb = _map(seed=1, config=DisturbModelConfig(
            hammer_vulnerable_rate=5e-3, blast_radius=2,
            far_neighbor_fraction=0.25))
        victims, pressure = disturb.victim_pressure([10], [4.0])
        assert victims.tolist() == [8, 9, 11, 12]
        assert pressure.tolist() == [1.0, 4.0, 4.0, 1.0]

    def test_bank_edges_block_pressure(self):
        # Rows 15 and 16 sit in different 16-row banks: not neighbours.
        victims, _ = _map(seed=1).victim_pressure(
            [16], [4.0], rows_per_bank=16
        )
        assert victims.tolist() == [17]

    def test_module_edges_clipped(self):
        victims, _ = _map(seed=1).victim_pressure([0], [1.0])
        assert victims.tolist() == [1]


class TestDoseResponse:
    def test_zero_pressure_never_flips(self):
        disturb = _map(seed=3)
        rows = np.arange(64)
        assert not disturb.rows_flip(rows, np.zeros(64), 64.0).any()

    def test_flips_monotone_in_pressure(self):
        disturb = _map(seed=3)
        rows = np.arange(64)
        low = disturb.rows_flip(rows, np.full(64, 4.0), 64.0)
        high = disturb.rows_flip(rows, np.full(64, 400.0), 64.0)
        assert high.sum() >= low.sum()
        assert (high | low == high).all()  # low flips are a subset

    def test_faster_refresh_raises_effective_threshold(self):
        disturb = _map(seed=3)
        rows = np.arange(64)
        pressure = np.full(64, 12.0)
        hi = disturb.rows_flip(rows, pressure, 16.0)  # HI-REF
        lo = disturb.rows_flip(rows, pressure, 64.0)  # LO-REF
        assert lo.sum() >= hi.sum()

    def test_charge_check_uses_polarity(self):
        disturb = _map(seed=5)
        rows = np.arange(64)
        pressure = np.full(64, 1000.0)  # everything vulnerable flips
        all_ones = np.ones(256, dtype=np.uint8)
        all_zeros = np.zeros(256, dtype=np.uint8)
        ones_rows, _ = disturb.flips(rows, pressure, 64.0, all_ones)
        zeros_rows, _ = disturb.flips(rows, pressure, 64.0, all_zeros)
        worst_rows, _ = disturb.flips(rows, pressure, 64.0, None)
        # True-cell rows flip on 1s, anti-cell rows on 0s; together they
        # partition the worst case.
        assert len(ones_rows) + len(zeros_rows) == len(worst_rows)
        assert len(ones_rows) > 0 and len(zeros_rows) > 0

    def test_flip_cells_are_vulnerable_cells(self):
        disturb = _map(seed=5)
        rows = np.arange(64)
        flip_rows, flip_cols = disturb.flips(
            rows, np.full(64, 1000.0), 64.0
        )
        for row, col in zip(flip_rows, flip_cols):
            assert col in disturb.row_population(int(row)).columns.tolist()


class TestComposition:
    def test_stress_contribution_linear_and_zero_at_zero(self):
        disturb = _map(seed=1, config=DisturbModelConfig(
            hammer_vulnerable_rate=5e-3, hc_first=8.0, content_coupling=0.5))
        np.testing.assert_allclose(
            disturb.stress_contribution([0.0, 8.0, 16.0]), [0.0, 0.5, 1.0]
        )

    def test_aligned_stress_scatters_onto_batch_order(self):
        disturb = _map(seed=1, config=DisturbModelConfig(
            hammer_vulnerable_rate=5e-3, hc_first=8.0, content_coupling=0.5))
        stress = disturb.aligned_stress(
            [5, 6, 7], np.array([7, 5]), np.array([16.0, 8.0])
        )
        np.testing.assert_allclose(stress, [0.5, 0.0, 1.0])

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        content_seed=st.integers(0, 2**32 - 1),
        interval=st.sampled_from([64.0, 328.0, 1024.0]),
    )
    def test_zero_disturb_stress_reduces_to_pure_content(
        self, seed, content_seed, interval
    ):
        """The composed predicate at zero activation counts IS the
        content predicate — scalar 0.0, an all-zero array, and omission
        agree bitwise."""
        fault_map = FaultMap(
            total_rows=64, bits_per_row=256,
            config=FaultModelConfig(vulnerable_cell_rate=5e-3), seed=seed,
        )
        rng = np.random.default_rng(content_seed)
        bits = rng.integers(0, 2, size=256, dtype=np.uint8)
        rows = np.arange(64)
        pure = fault_map.rows_fail(rows, bits, interval)
        scalar = fault_map.rows_fail(rows, bits, interval, disturb_stress=0.0)
        array = fault_map.rows_fail(
            rows, bits, interval, disturb_stress=np.zeros(64)
        )
        np.testing.assert_array_equal(pure, scalar)
        np.testing.assert_array_equal(pure, array)
        for row in rows[::7]:
            np.testing.assert_array_equal(
                fault_map.failing_mask(int(row), bits, interval),
                fault_map.failing_mask(
                    int(row), bits, interval, disturb_stress=0.0
                ),
            )

    def test_disturb_stress_only_adds_failures(self):
        fault_map = FaultMap(
            total_rows=64, bits_per_row=256,
            config=FaultModelConfig(vulnerable_cell_rate=5e-3), seed=11,
        )
        bits = np.tile([1, 0], 128).astype(np.uint8)
        rows = np.arange(64)
        pure = fault_map.rows_fail(rows, bits, 328.0)
        stressed = fault_map.rows_fail(
            rows, bits, 328.0, disturb_stress=np.full(64, 2.0)
        )
        assert (stressed | pure == stressed).all()
        assert stressed.sum() > pure.sum()

    def test_array_stress_requires_batch_alignment(self):
        fault_map = FaultMap(
            total_rows=64, bits_per_row=256,
            config=FaultModelConfig(vulnerable_cell_rate=5e-2), seed=1,
        )
        row = next(
            r for r in range(64) if len(fault_map.cells_in_row(r))
        )
        with pytest.raises(ValueError):
            fault_map.failing_mask(
                row, np.zeros(256, dtype=np.uint8), 328.0,
                disturb_stress=np.zeros(3),
            )
