"""Tests for the functional DRAM device."""

import numpy as np
import pytest

from repro.dram import DeviceError, DramDevice, TINY_MODULE
from repro.dram.faults import FaultMap, FaultModelConfig
from repro.dram.geometry import DramGeometry


@pytest.fixture
def device() -> DramDevice:
    return DramDevice(TINY_MODULE, seed=3)


@pytest.fixture
def decaying_device() -> DramDevice:
    geometry = DramGeometry(
        channels=1, ranks=1, banks=2, rows_per_bank=32,
        row_size_bytes=512, block_size_bytes=64,
    )
    device = DramDevice(geometry, seed=7)
    device.cells.fault_map = FaultMap(
        total_rows=geometry.total_rows,
        bits_per_row=device.cells.vendor_mapping.physical_columns,
        config=FaultModelConfig(vulnerable_cell_rate=5e-3),
        seed=7,
    )
    return device


class TestCommandProtocol:
    def test_activate_then_read(self, device):
        device.activate(0, 0, 0, 5, now_ms=0.0)
        data = device.read_block(0, 0, 0, 2)
        assert data == bytes(64)

    def test_double_activate_raises(self, device):
        device.activate(0, 0, 0, 5, now_ms=0.0)
        with pytest.raises(DeviceError, match="already has row"):
            device.activate(0, 0, 0, 6, now_ms=0.0)

    def test_read_precharged_bank_raises(self, device):
        with pytest.raises(DeviceError, match="precharged"):
            device.read_block(0, 0, 0, 0)

    def test_write_precharged_bank_raises(self, device):
        with pytest.raises(DeviceError, match="precharged"):
            device.write_block(0, 0, 0, 0, bytes(64))

    def test_precharge_closes_row(self, device):
        device.activate(0, 0, 0, 5, now_ms=0.0)
        device.precharge(0, 0, 0)
        with pytest.raises(DeviceError):
            device.read_block(0, 0, 0, 0)

    def test_double_precharge_raises(self, device):
        with pytest.raises(DeviceError, match="already precharged"):
            device.precharge(0, 0, 0)

    def test_write_visible_after_reopen(self, device):
        payload = bytes([0x5A] * 64)
        device.activate(0, 0, 1, 3, now_ms=0.0)
        device.write_block(0, 0, 1, 7, payload)
        device.precharge(0, 0, 1)
        device.activate(0, 0, 1, 3, now_ms=1.0)
        assert device.read_block(0, 0, 1, 7) == payload

    def test_banks_independent(self, device):
        device.activate(0, 0, 0, 1, now_ms=0.0)
        device.activate(0, 0, 1, 2, now_ms=0.0)
        device.write_block(0, 0, 0, 0, bytes([1] * 64))
        device.write_block(0, 0, 1, 0, bytes([2] * 64))
        assert device.read_block(0, 0, 0, 0) == bytes([1] * 64)
        assert device.read_block(0, 0, 1, 0) == bytes([2] * 64)

    def test_out_of_range_block_raises(self, device):
        device.activate(0, 0, 0, 0, now_ms=0.0)
        with pytest.raises(DeviceError, match="block"):
            device.read_block(0, 0, 0, TINY_MODULE.blocks_per_row)


class TestRetention:
    def test_idle_row_decays(self, decaying_device):
        rng = np.random.default_rng(3)
        flipped_any = False
        for row in range(decaying_device.geometry.total_rows):
            data = rng.integers(0, 256, 512, dtype=np.uint8).tobytes()
            decaying_device.write_row(row, data, now_ms=0.0)
            if decaying_device.read_row(row, now_ms=2000.0) != data:
                flipped_any = True
        assert flipped_any

    def test_refresh_prevents_decay(self, decaying_device):
        rng = np.random.default_rng(4)
        for row in range(16):
            data = rng.integers(0, 256, 512, dtype=np.uint8).tobytes()
            decaying_device.write_row(row, data, now_ms=0.0)
            # Refresh every 64 ms: never idle long enough to fail.
            for k in range(1, 32):
                decaying_device.refresh_row(row, now_ms=64.0 * k)
            assert decaying_device.read_row(row, now_ms=2048.0) == data

    def test_activate_recharges(self, decaying_device):
        rng = np.random.default_rng(5)
        data = rng.integers(0, 256, 512, dtype=np.uint8).tobytes()
        decaying_device.write_row(0, data, now_ms=0.0)
        # Frequent reads keep the row charged (reads refresh the row).
        content = data
        for k in range(1, 64):
            content = decaying_device.read_row(0, now_ms=32.0 * k)
        assert content == data

    def test_decay_counts_grow_with_idle_time(self, decaying_device):
        rng = np.random.default_rng(6)
        total_rows = decaying_device.geometry.total_rows
        short_flips = 0
        long_flips = 0
        for row in range(total_rows):
            data = rng.integers(0, 256, 512, dtype=np.uint8).tobytes()
            decaying_device.write_row(row, data, now_ms=0.0)
            short = decaying_device.read_row(row, now_ms=300.0)
            short_flips += sum(
                bin(a ^ b).count("1") for a, b in zip(short, data)
            )
        for row in range(total_rows):
            data = rng.integers(0, 256, 512, dtype=np.uint8).tobytes()
            decaying_device.write_row(row, data, now_ms=10_000.0)
            long = decaying_device.read_row(row, now_ms=14_000.0)
            long_flips += sum(
                bin(a ^ b).count("1") for a, b in zip(long, data)
            )
        assert long_flips >= short_flips

    def test_last_charge_tracking(self, device):
        assert device.last_charge_ms(0) == 0.0
        device.write_row(0, bytes(TINY_MODULE.row_size_bytes), now_ms=5.0)
        assert device.last_charge_ms(0) == 5.0
        device.refresh_row(0, now_ms=9.0)
        assert device.last_charge_ms(0) == 9.0

    def test_refresh_counts(self, device):
        before = device.refresh_count
        device.refresh_row(0, now_ms=1.0)
        device.refresh_row(1, now_ms=1.0)
        assert device.refresh_count == before + 2

    def test_wrong_row_size_raises(self, device):
        with pytest.raises(ValueError, match="bytes"):
            device.write_row(0, b"short", now_ms=0.0)
