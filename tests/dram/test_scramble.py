"""Tests for vendor address scrambling and column remapping."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dram.scramble import (
    AddressScrambler,
    ColumnRemapper,
    VendorMapping,
    make_vendor_mapping,
)


class TestAddressScrambler:
    def test_is_bijective(self):
        scrambler = AddressScrambler(columns=256, seed=3)
        mapped = {scrambler.to_physical(c) for c in range(256)}
        assert mapped == set(range(256))

    def test_inverse_roundtrip(self):
        scrambler = AddressScrambler(columns=128, seed=5)
        for column in range(128):
            assert scrambler.to_system(scrambler.to_physical(column)) == column

    def test_different_seeds_differ(self):
        a = AddressScrambler(columns=512, seed=1)
        b = AddressScrambler(columns=512, seed=2)
        assert any(
            a.to_physical(c) != b.to_physical(c) for c in range(512)
        )

    def test_same_seed_deterministic(self):
        a = AddressScrambler(columns=512, seed=9)
        b = AddressScrambler(columns=512, seed=9)
        assert all(a.to_physical(c) == b.to_physical(c) for c in range(512))

    def test_row_scramble_roundtrip(self):
        scrambler = AddressScrambler(columns=64, seed=4)
        bits = np.random.default_rng(0).integers(0, 2, 64).astype(np.uint8)
        assert np.array_equal(
            scrambler.unscramble_row(scrambler.scramble_row(bits)), bits
        )

    def test_scramble_preserves_multiset(self):
        scrambler = AddressScrambler(columns=64, seed=4)
        bits = np.arange(64, dtype=np.int64)
        scrambled = scrambler.scramble_row(bits)
        assert sorted(scrambled) == sorted(bits)

    def test_wrong_length_raises(self):
        scrambler = AddressScrambler(columns=64, seed=4)
        with pytest.raises(ValueError, match="length"):
            scrambler.scramble_row(np.zeros(65, dtype=np.uint8))

    @given(st.integers(min_value=0, max_value=2 ** 31), st.integers(2, 200))
    @settings(max_examples=25, deadline=None)
    def test_bijection_property(self, seed, columns):
        scrambler = AddressScrambler(columns=columns, seed=seed)
        assert {scrambler.to_physical(c) for c in range(columns)} == set(
            range(columns)
        )


class TestColumnRemapper:
    def test_no_faults_is_identity(self):
        remapper = ColumnRemapper(array_columns=32, spare_columns=4)
        assert all(remapper.physical_location(c) == c for c in range(32))

    def test_faulty_column_moves_to_spare(self):
        remapper = ColumnRemapper(
            array_columns=32, spare_columns=4, faulty_columns=(5, 17)
        )
        assert remapper.physical_location(5) == 32
        assert remapper.physical_location(17) == 33
        assert remapper.physical_location(6) == 6

    def test_place_extract_roundtrip(self):
        remapper = ColumnRemapper(
            array_columns=16, spare_columns=3, faulty_columns=(1, 8)
        )
        bits = np.random.default_rng(1).integers(0, 2, 16).astype(np.uint8)
        assert np.array_equal(remapper.extract_row(remapper.place_row(bits)), bits)

    def test_faulty_positions_cleared_in_silicon(self):
        remapper = ColumnRemapper(
            array_columns=8, spare_columns=1, faulty_columns=(3,)
        )
        bits = np.ones(8, dtype=np.uint8)
        physical = remapper.place_row(bits)
        assert physical[3] == 0      # faulty main-array cell unused
        assert physical[8] == 1      # data lives in the spare

    def test_more_faults_than_spares_raises(self):
        with pytest.raises(ValueError, match="spares"):
            ColumnRemapper(array_columns=8, spare_columns=1,
                           faulty_columns=(1, 2))

    def test_duplicate_fault_raises(self):
        with pytest.raises(ValueError, match="duplicate"):
            ColumnRemapper(array_columns=8, spare_columns=2,
                           faulty_columns=(1, 1))

    def test_out_of_range_fault_raises(self):
        with pytest.raises(ValueError, match="out of range"):
            ColumnRemapper(array_columns=8, spare_columns=2,
                           faulty_columns=(9,))


class TestVendorMapping:
    def test_roundtrip_through_silicon(self):
        mapping = make_vendor_mapping(
            columns=128, seed=11, spare_columns=8, faulty_fraction=0.05
        )
        bits = np.random.default_rng(2).integers(0, 2, 128).astype(np.uint8)
        assert np.array_equal(mapping.from_silicon(mapping.to_silicon(bits)), bits)

    def test_silicon_width_includes_spares(self):
        mapping = make_vendor_mapping(columns=128, seed=1, spare_columns=8)
        assert mapping.physical_columns == 136

    def test_silicon_index_consistent_with_layout(self):
        mapping = make_vendor_mapping(
            columns=64, seed=3, spare_columns=4, faulty_fraction=0.05
        )
        bits = np.zeros(64, dtype=np.uint8)
        for column in range(64):
            bits[:] = 0
            bits[column] = 1
            physical = mapping.to_silicon(bits)
            assert physical[mapping.silicon_index(column)] == 1
            assert physical.sum() == 1

    def test_width_mismatch_raises(self):
        with pytest.raises(ValueError, match="widths"):
            VendorMapping(
                scrambler=AddressScrambler(columns=64, seed=0),
                remapper=ColumnRemapper(array_columns=32, spare_columns=0),
            )

    def test_bad_faulty_fraction_raises(self):
        with pytest.raises(ValueError, match="faulty_fraction"):
            make_vendor_mapping(columns=64, faulty_fraction=1.5)
